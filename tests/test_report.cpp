// Text table and CSV writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/report.hpp"

namespace {

using pcnna::CsvWriter;
using pcnna::TextTable;

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"layer", "rings"});
  t.add_row({"conv1", "34848"});
  t.add_row({"conv4", "3456"});
  const std::string s = t.to_string("Fig 5");
  EXPECT_NE(std::string::npos, s.find("Fig 5"));
  EXPECT_NE(std::string::npos, s.find("conv1"));
  EXPECT_NE(std::string::npos, s.find("34848"));
  // Header separator exists.
  EXPECT_NE(std::string::npos, s.find("+--"));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), pcnna::Error);
}

TEST(TextTable, SeparatorRows) {
  TextTable t({"a"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string s = t.to_string();
  // 4 rules: top, under header, separator, bottom.
  size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(4u, rules);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), pcnna::Error);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/pcnna_test.csv";
  {
    CsvWriter csv(path, {"layer", "value"});
    csv.write_row({"conv1", "1.5"});
    csv.write_row({"with,comma", "with\"quote"});
    EXPECT_EQ(2u, csv.rows_written());
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(std::string::npos, content.find("layer,value"));
  EXPECT_NE(std::string::npos, content.find("conv1,1.5"));
  // RFC-4180 quoting for the awkward cells.
  EXPECT_NE(std::string::npos, content.find("\"with,comma\""));
  EXPECT_NE(std::string::npos, content.find("\"with\"\"quote\""));
  std::remove(path.c_str());
}

TEST(Csv, ColumnMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/pcnna_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only"}), pcnna::Error);
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), pcnna::Error);
}

TEST(DistributionSummary, QuantilesOfKnownSamples) {
  // 1..100 shuffled-ish (summarize sorts internally).
  std::vector<double> samples;
  for (int v = 100; v >= 1; --v) samples.push_back(static_cast<double>(v));
  const pcnna::DistributionSummary s =
      pcnna::summarize_distribution(samples);

  EXPECT_EQ(100u, s.count);
  EXPECT_DOUBLE_EQ(50.5, s.mean);
  EXPECT_DOUBLE_EQ(1.0, s.min);
  EXPECT_DOUBLE_EQ(100.0, s.max);
  // Linear interpolation at index q * (n - 1).
  EXPECT_DOUBLE_EQ(50.5, s.p50);   // index 49.5
  EXPECT_DOUBLE_EQ(90.1, s.p90);   // index 89.1
  EXPECT_DOUBLE_EQ(99.01, s.p99);  // index 98.01
  EXPECT_NEAR(99.901, s.p999, 1e-9);
}

TEST(DistributionSummary, EmptyAndSingleton) {
  const pcnna::DistributionSummary empty =
      pcnna::summarize_distribution({});
  EXPECT_EQ(0u, empty.count);
  EXPECT_EQ(0.0, empty.p999);

  const pcnna::DistributionSummary one =
      pcnna::summarize_distribution({3.5});
  EXPECT_EQ(1u, one.count);
  EXPECT_DOUBLE_EQ(3.5, one.min);
  EXPECT_DOUBLE_EQ(3.5, one.p50);
  EXPECT_DOUBLE_EQ(3.5, one.p999);
  EXPECT_DOUBLE_EQ(3.5, one.max);
}

TEST(QuantileSorted, InterpolatesAndValidates) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(10.0, pcnna::quantile_sorted(sorted, 0.0));
  EXPECT_DOUBLE_EQ(40.0, pcnna::quantile_sorted(sorted, 1.0));
  EXPECT_DOUBLE_EQ(25.0, pcnna::quantile_sorted(sorted, 0.5));
  EXPECT_THROW(pcnna::quantile_sorted({}, 0.5), pcnna::Error);
  EXPECT_THROW(pcnna::quantile_sorted(sorted, 1.5), pcnna::Error);
}

} // namespace
