// Text table and CSV writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/report.hpp"

namespace {

using pcnna::CsvWriter;
using pcnna::TextTable;

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"layer", "rings"});
  t.add_row({"conv1", "34848"});
  t.add_row({"conv4", "3456"});
  const std::string s = t.to_string("Fig 5");
  EXPECT_NE(std::string::npos, s.find("Fig 5"));
  EXPECT_NE(std::string::npos, s.find("conv1"));
  EXPECT_NE(std::string::npos, s.find("34848"));
  // Header separator exists.
  EXPECT_NE(std::string::npos, s.find("+--"));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), pcnna::Error);
}

TEST(TextTable, SeparatorRows) {
  TextTable t({"a"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string s = t.to_string();
  // 4 rules: top, under header, separator, bottom.
  size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(4u, rules);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), pcnna::Error);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/pcnna_test.csv";
  {
    CsvWriter csv(path, {"layer", "value"});
    csv.write_row({"conv1", "1.5"});
    csv.write_row({"with,comma", "with\"quote"});
    EXPECT_EQ(2u, csv.rows_written());
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(std::string::npos, content.find("layer,value"));
  EXPECT_NE(std::string::npos, content.find("conv1,1.5"));
  // RFC-4180 quoting for the awkward cells.
  EXPECT_NE(std::string::npos, content.find("\"with,comma\""));
  EXPECT_NE(std::string::npos, content.find("\"with\"\"quote\""));
  std::remove(path.c_str());
}

TEST(Csv, ColumnMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/pcnna_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only"}), pcnna::Error);
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), pcnna::Error);
}

} // namespace
