// Execution-time model vs the paper's Eqs. (6)-(8) and Fig. 6 claims.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;
using core::PcnnaConfig;
using core::TimingFidelity;
using core::TimingModel;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TimingModel paper_model() {
  return TimingModel(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
}

TEST(TimingPaper, Eq7OpticalCoreTime) {
  // Tconv = Nlocs / fclock: conv1 = 3025 / 5 GHz = 605 ns.
  const auto t = paper_model().layer_time(alexnet_layer(0));
  EXPECT_EQ(3025u, t.locations);
  EXPECT_NEAR(605.0 * u::ns, t.optical_core_time, 1e-12);
  // conv3-5: 169 cycles = 33.8 ns.
  const auto t3 = paper_model().layer_time(alexnet_layer(2));
  EXPECT_NEAR(33.8 * u::ns, t3.optical_core_time, 1e-12);
}

TEST(TimingPaper, Eq8UpdatedInputsPerDacWorkedExample) {
  // "nc x m x s / NDAC = 384*3*1/10 ~ 116" (conv4/conv5 input shape).
  const TimingModel model = paper_model();
  EXPECT_NEAR(115.2, model.updated_inputs_per_dac(alexnet_layer(3)), 1e-12);
  EXPECT_NEAR(116.0, model.updated_inputs_per_dac(alexnet_layer(3)), 1.0);
}

TEST(TimingPaper, OpticalTimeIndependentOfKernelCount) {
  // Eq. (7) commentary: "Tconv ... is independent of the number of kernels".
  nn::ConvLayerParams base{"k", 32, 3, 1, 1, 16, 8};
  const TimingModel model = paper_model();
  const double t8 = model.layer_time(base).optical_core_time;
  base.K = 512;
  const double t512 = model.layer_time(base).optical_core_time;
  EXPECT_DOUBLE_EQ(t8, t512);
}

TEST(TimingPaper, DacBoundLayersAreSlowerThanOpticalCore) {
  const TimingModel model = paper_model();
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const auto t = model.layer_time(layer);
    EXPECT_GE(t.full_system_time, t.optical_core_time) << layer.name;
  }
}

TEST(TimingPaper, BottleneckIsInputDacForDeepLayers) {
  const TimingModel model = paper_model();
  // conv2-conv5 have nc*m*s/10 DAC conversions per location taking far more
  // than the 200 ps optical cycle.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ("input-DAC", model.layer_time(alexnet_layer(i)).bottleneck)
        << alexnet_layer(i).name;
  }
}

TEST(TimingPaper, FullSystemTimeMatchesClosedForm) {
  // conv4: fill (3456/10/6GHz) + 169 x (115.2/6GHz).
  const auto t = paper_model().layer_time(alexnet_layer(3));
  const double fill = 3456.0 / 10.0 / (6.0 * u::GSa);
  const double per_loc = 115.2 / (6.0 * u::GSa);
  EXPECT_NEAR(fill + 169.0 * per_loc, t.full_system_time, 1e-12);
}

TEST(TimingPaper, MoreDacsReduceFullSystemTime) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  double prev = 1e9;
  for (std::size_t ndac : {1u, 2u, 5u, 10u, 20u, 40u}) {
    cfg.num_input_dacs = ndac;
    const TimingModel model(cfg, TimingFidelity::kPaper);
    const double t = model.layer_time(alexnet_layer(3)).full_system_time;
    EXPECT_LT(t, prev) << ndac;
    prev = t;
  }
}

TEST(TimingPaper, EnoughDacsHitOpticalFloor) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.num_input_dacs = 100'000;
  const TimingModel model(cfg, TimingFidelity::kPaper);
  const auto conv3 = alexnet_layer(2);
  const auto t = model.layer_time(conv3);
  EXPECT_EQ("optical-clock", t.bottleneck);
  // Full time approaches Nlocs / fclock (plus negligible fill).
  EXPECT_NEAR(t.optical_core_time, t.full_system_time,
              0.05 * t.optical_core_time);
}

TEST(TimingPaper, NetworkTotalsSumLayers) {
  const TimingModel model = paper_model();
  const auto net = model.network_time(nn::alexnet_conv_layers());
  ASSERT_EQ(5u, net.layers.size());
  double opt = 0.0, full = 0.0;
  for (const auto& t : net.layers) {
    opt += t.optical_core_time;
    full += t.full_system_time;
  }
  EXPECT_DOUBLE_EQ(opt, net.total_optical_core);
  EXPECT_DOUBLE_EQ(full, net.total_full_system);
}

TEST(TimingFull, IncludesWeightLoadAndSettling) {
  const TimingModel model(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  const auto t = model.layer_time(alexnet_layer(3));
  // 1.33M weights through a 6 GSa/s DAC plus one 10 us settle.
  const double expected =
      1'327'104.0 / (6.0 * u::GSa) + 10.0 * u::us;
  EXPECT_NEAR(expected, t.weight_load_time, 1e-9);
  EXPECT_GT(t.full_system_time, t.weight_load_time);
}

TEST(TimingFull, OpticalTimeIncludesWdmSegmentation) {
  const TimingModel model(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  // conv3: 24 passes x 169 locations at 5 GHz.
  const auto t = model.layer_time(alexnet_layer(2));
  EXPECT_NEAR(24.0 * 169.0 / (5.0 * u::GHz), t.optical_core_time, 1e-15);
}

TEST(TimingFull, FullAlwaysAtLeastPaper) {
  const TimingModel paper(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const TimingModel full(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  for (const auto& layer : nn::alexnet_conv_layers()) {
    EXPECT_GE(full.layer_time(layer).full_system_time,
              paper.layer_time(layer).full_system_time)
        << layer.name;
  }
}

TEST(TimingFull, ReportsNonzeroStageTimes) {
  const TimingModel model(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  const auto t = model.layer_time(alexnet_layer(1));
  EXPECT_GT(t.dac_time, 0.0);
  EXPECT_GT(t.adc_time, 0.0);
  EXPECT_GT(t.sram_time, 0.0);
  EXPECT_GT(t.dram_time, 0.0);
  EXPECT_FALSE(t.bottleneck.empty());
}

TEST(TimingFull, PerChannelAllocationIsSlower) {
  PcnnaConfig full_cfg = PcnnaConfig::paper_defaults();
  PcnnaConfig pc_cfg = PcnnaConfig::paper_defaults();
  pc_cfg.allocation = core::RingAllocation::kPerChannel;
  const TimingModel full(full_cfg, TimingFidelity::kFull);
  const TimingModel pc(pc_cfg, TimingFidelity::kFull);
  const auto conv4 = alexnet_layer(3);
  // nc sequential channel passes plus per-pass retuning dominate.
  EXPECT_GT(pc.layer_time(conv4).full_system_time,
            full.layer_time(conv4).full_system_time);
  EXPECT_GT(pc.layer_time(conv4).optical_core_time,
            full.layer_time(conv4).optical_core_time);
}

TEST(TimingFull, SettlingCostScalesWithRecalibrations) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = core::RingAllocation::kPerChannel;
  const TimingModel model(cfg, TimingFidelity::kFull);
  const auto conv4 = alexnet_layer(3);
  const auto t = model.layer_time(conv4);
  // 384 retunings x 10 us settle = 3.84 ms of settling alone.
  EXPECT_GT(t.weight_load_time, 384.0 * 10.0 * u::us - 1e-9);
}

} // namespace
