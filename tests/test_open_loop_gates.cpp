// Promoted bench self-checks: every behavioural gate bench_open_loop
// enforces behind its exit code, re-stated as ctest-visible assertions at
// reduced request counts (label: slow). The bench keeps its own copies so
// a release run still gates itself; these tests make the same claims fail
// loudly in the ordinary test loop instead of only in release-perf CI.
//
// Gates covered: the overload hockey stick, the mixed-fleet
// capability-aware ordering, the SLO overload split, the multi-model
// affinity speedup, autoscaler sizing, fault-tolerance survival, and the
// pipeline-parallel speedup with zero steady-state swaps.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::OpenLoopReport;

constexpr std::size_t kPcus = 3;
constexpr std::size_t kRequests = 2000;
constexpr std::uint64_t kSeed = 1234;

struct Fleet {
  nn::Network net = nn::lenet5();
  nn::NetWeights weights;
  PcnnaConfig config = PcnnaConfig::paper_defaults();
};

Fleet make_fleet() {
  Fleet f;
  Rng rng(2026);
  f.weights = nn::make_network_weights(f.net, rng);
  return f;
}

BatchRunnerOptions timing_options() {
  BatchRunnerOptions o;
  o.num_pcus = kPcus;
  o.fidelity = TimingFidelity::kFull;
  o.simulate_values = false;
  o.seed = 7;
  return o;
}

/// Recalibration-heavy synth net (small maps, many channels): swap cost
/// rivals the steady-state interval — the multi-model / pipeline regime.
nn::Network make_recal_heavy(const std::string& name) {
  nn::Network net(name, nn::Shape4{1, 64, 8, 8});
  net.add_conv({name + "1", 8, 3, 1, 1, 64, 64}).add_relu();
  net.add_conv({name + "2", 8, 3, 1, 1, 64, 64}).add_relu();
  net.add_conv({name + "3", 8, 3, 1, 1, 64, 64});
  return net;
}

TEST(OpenLoopGates, OverloadHockeyStick) {
  const Fleet f = make_fleet();
  BatchRunner fleet(f.config, f.net, f.weights, timing_options());
  const double capacity = fleet.simulate_open_loop({}).fleet_capacity_rps;

  const OpenLoopReport low = fleet.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 0.3 * capacity, kSeed));
  const OpenLoopReport high = fleet.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 1.2 * capacity, kSeed + 1));
  // Overload tails must tower over light-load tails.
  EXPECT_GT(high.latency.p99, 2.0 * low.latency.p99);
}

TEST(OpenLoopGates, CapabilityAwareBeatsEarliestFreeOnSkewedFleet) {
  const Fleet f = make_fleet();
  runtime::PcuSpec big;
  big.config = f.config;
  big.tag = "big";
  runtime::PcuSpec small;
  small.config = PcnnaConfig::small_core();
  small.tag = "small";
  const std::vector<runtime::PcuSpec> specs = {big, big, small, small};

  double ef_p99 = 0.0, cap_p99 = 0.0;
  for (const DispatchPolicy policy :
       {DispatchPolicy::kEarliestFree, DispatchPolicy::kCapabilityAware}) {
    BatchRunnerOptions o = timing_options();
    o.dispatch = policy;
    BatchRunner hetero(specs, f.net, f.weights, o);
    const double big_capacity =
        2.0 / hetero.pool().pcu(0).request_interval_overlapped();
    const OpenLoopReport r = hetero.simulate_open_loop(
        runtime::poisson_arrivals(kRequests, 0.4 * big_capacity, kSeed));
    (policy == DispatchPolicy::kEarliestFree ? ef_p99 : cap_p99) =
        r.latency.p99;
  }
  EXPECT_LT(cap_p99, ef_p99);
}

TEST(OpenLoopGates, EdfWithSheddingHoldsTheInteractiveSloUnderOverload) {
  const Fleet f = make_fleet();
  BatchRunner fleet(f.config, f.net, f.weights, timing_options());
  const double capacity = fleet.simulate_open_loop({}).fleet_capacity_rps;
  const double interval = fleet.pool().pcu(0).request_interval_overlapped();
  const double warmup = fleet.pool().pcu(0).warmup_time();
  const double interactive_budget = warmup + 6.0 * interval;

  std::vector<runtime::TenantClass> mix(2);
  mix[0] = {0, runtime::PriorityClass::kInteractive, 0.2,
            interactive_budget};
  mix[1] = {1, runtime::PriorityClass::kBestEffort, 0.8,
            warmup + 60.0 * interval};

  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 1.35 * capacity, kSeed + 100);
  const runtime::SloSchedule slos =
      runtime::assign_tenants(arrivals, mix, kSeed + 200);

  const auto tenant_slice = [](const OpenLoopReport& r, std::uint32_t t) {
    for (const runtime::TenantBreakdown& b : r.per_tenant)
      if (b.tenant == t) return b;
    return runtime::TenantBreakdown{};
  };

  // FIFO earliest-free drags every tenant past the budget...
  const OpenLoopReport fifo = fleet.simulate_open_loop(arrivals, slos);
  EXPECT_GT(tenant_slice(fifo, 0).latency.p99, interactive_budget);

  // ...while EDF + shedding holds the interactive tier.
  BatchRunnerOptions o = timing_options();
  o.dispatch = DispatchPolicy::kEdf;
  o.shed_expired = true;
  BatchRunner slo_aware(f.config, f.net, f.weights, o);
  const OpenLoopReport edf = slo_aware.simulate_open_loop(arrivals, slos);
  const runtime::TenantBreakdown interactive = tenant_slice(edf, 0);
  EXPECT_LE(interactive.latency.p99, interactive_budget);
  EXPECT_GE(interactive.slo_attainment, 0.95);
  EXPECT_GT(edf.shed_requests, 0u);
}

TEST(OpenLoopGates, MultiModelAffinityOutservesModelBlindDispatch) {
  const Fleet f = make_fleet();
  const nn::Network synth = make_recal_heavy("synth_recal");
  Rng rng(404);
  const nn::NetWeights synth_weights = nn::make_network_weights(synth, rng);
  const nn::Network big = nn::alexnet();
  const nn::NetWeights big_weights = nn::make_network_weights(big, rng);

  double ll_rps = 0.0, affinity_rps = 0.0;
  std::size_t ll_swaps = 0, affinity_swaps = 0;
  for (const DispatchPolicy policy :
       {DispatchPolicy::kLeastLoaded, DispatchPolicy::kModelAffinity}) {
    BatchRunnerOptions o = timing_options();
    o.num_pcus = 6;
    o.dispatch = policy;
    BatchRunner mm(f.config, f.net, f.weights, o);
    mm.register_model(big, big_weights);
    mm.register_model(synth, synth_weights);

    // Work-balanced mix at 1.5x overload (the bench scenario, shrunk).
    double intervals[3], inv_sum = 0.0;
    for (std::uint32_t m = 0; m < 3; ++m) {
      intervals[m] = mm.pool().pcu(0).request_interval_overlapped(m);
      inv_sum += 1.0 / intervals[m];
    }
    const double offered = 1.5 * 6.0 / (3.0 / inv_sum);
    const ArrivalSchedule arrivals =
        runtime::poisson_arrivals(kRequests, offered, kSeed + 400);
    runtime::ModelSchedule models(kRequests, 0);
    Rng pick(kSeed + 500);
    for (std::size_t id = 0; id < kRequests; ++id) {
      const double u = pick.uniform() * inv_sum;
      models[id] = u < 1.0 / intervals[0]
                       ? 0u
                       : (u < 1.0 / intervals[0] + 1.0 / intervals[1] ? 1u
                                                                      : 2u);
    }
    const OpenLoopReport r = mm.simulate_open_loop(arrivals, {}, models);
    (policy == DispatchPolicy::kLeastLoaded ? ll_rps : affinity_rps) =
        r.achieved_rps;
    (policy == DispatchPolicy::kLeastLoaded ? ll_swaps : affinity_swaps) =
        r.model_swaps;
  }
  EXPECT_GE(affinity_rps, 1.3 * ll_rps);
  EXPECT_LT(affinity_swaps * 10, ll_swaps);
}

TEST(OpenLoopGates, AutoscalerRunsLeanAtLightLoad) {
  const Fleet f = make_fleet();
  BatchRunner probe(f.config, f.net, f.weights, timing_options());
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;

  BatchRunnerOptions o = timing_options();
  o.autoscaler.enabled = true;
  o.autoscaler.min_active = 1;
  o.autoscaler.max_active = kPcus;
  o.autoscaler.backlog_per_pcu = 2.0;
  o.autoscaler.shrink_after_idle =
      16.0 * probe.pool().pcu(0).request_interval_overlapped();
  BatchRunner elastic(f.config, f.net, f.weights, o);

  const OpenLoopReport light = elastic.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 0.25 * capacity, kSeed + 300));
  const OpenLoopReport heavy = elastic.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 0.9 * capacity, kSeed + 301));
  EXPECT_LT(light.autoscaler.mean_active, heavy.autoscaler.mean_active);
  EXPECT_LE(heavy.autoscaler.mean_active, static_cast<double>(kPcus));
}

TEST(OpenLoopGates, RetryAndQuarantineSurviveWhereBlindDispatchBleeds) {
  const Fleet f = make_fleet();
  BatchRunner probe(f.config, f.net, f.weights, timing_options());
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 0.6 * capacity, kSeed + 600);

  runtime::FaultModel hazard;
  hazard.mtbf = 0.25 * arrivals.back();
  hazard.horizon = arrivals.back();
  hazard.crash_weight = 2.0;
  hazard.mean_time_to_repair = arrivals.back() / 20.0;
  const runtime::FaultSchedule faults =
      runtime::poisson_faults(kPcus, hazard, kSeed + 700);

  std::size_t blind_failed = 0;
  double tolerant_served = 0.0;
  for (const bool tolerant : {false, true}) {
    BatchRunnerOptions o = timing_options();
    o.faults.schedule = faults;
    o.faults.health_aware = tolerant;
    if (tolerant) {
      o.faults.detection_latency = interval;
      o.faults.retry.max_retries = 3;
      o.faults.retry.backoff_base = 0.5 * interval;
      o.faults.repair_time = 4.0 * interval;
    }
    BatchRunner runner(f.config, f.net, f.weights, o);
    const OpenLoopReport r = runner.simulate_open_loop(arrivals);
    if (tolerant) {
      tolerant_served = static_cast<double>(r.served_requests) /
                        static_cast<double>(kRequests);
    } else {
      blind_failed = r.failed_requests;
    }
  }
  EXPECT_GT(blind_failed, 0u) << "the blind baseline must actually bleed";
  EXPECT_GE(tolerant_served, 0.95);
}

TEST(OpenLoopGates, PipelineOutservesDataParallelismAndNeverSwaps) {
  // Two resident recal-heavy models on 6 PCUs: one PCU's banks hold one
  // model at a time, so data-parallel serving keeps reprogramming while
  // two pinned 3-stage groups pay their pins once and never swap.
  const nn::Network pipe_a = make_recal_heavy("pipe_a");
  const nn::Network pipe_b = make_recal_heavy("pipe_b");
  Rng rng(606);
  const nn::NetWeights weights_a = nn::make_network_weights(pipe_a, rng);
  const nn::NetWeights weights_b = nn::make_network_weights(pipe_b, rng);

  double ll_rps = 0.0, pipe_rps = 0.0;
  std::size_t ll_swaps = 0, pipe_swaps = 0, replacements = 0;
  for (const DispatchPolicy policy :
       {DispatchPolicy::kLeastLoaded, DispatchPolicy::kPipeline}) {
    BatchRunnerOptions o = timing_options();
    o.num_pcus = 6;
    o.dispatch = policy;
    BatchRunner runner(PcnnaConfig::paper_defaults(), pipe_a, weights_a, o);
    runner.register_model(pipe_b, weights_b);
    if (policy == DispatchPolicy::kPipeline) {
      runner.build_pipeline(0, {0, 1, 2});
      runner.build_pipeline(1, {3, 4, 5});
    }
    const double interval =
        runner.pool().pcu(0).request_interval_overlapped(0);
    const ArrivalSchedule arrivals = runtime::poisson_arrivals(
        kRequests, 1.3 * 6.0 / interval, kSeed + 800);
    runtime::ModelSchedule models(kRequests, 0);
    Rng pick(kSeed + 900);
    for (std::size_t id = 0; id < kRequests; ++id)
      models[id] = pick.uniform() < 0.5 ? 0u : 1u;

    const OpenLoopReport r = runner.simulate_open_loop(arrivals, {}, models);
    if (policy == DispatchPolicy::kLeastLoaded) {
      ll_rps = r.achieved_rps;
      ll_swaps = r.model_swaps;
    } else {
      pipe_rps = r.achieved_rps;
      pipe_swaps = r.model_swaps;
      replacements = r.pipeline.replacements;
      EXPECT_EQ(2u, r.pipeline.groups);
      EXPECT_EQ(r.served_requests, r.pipeline.pipelined_requests);
    }
  }
  EXPECT_GE(pipe_rps, ll_rps);
  EXPECT_GT(ll_swaps, 0u) << "the baseline must be under bank pressure";
  EXPECT_EQ(0u, pipe_swaps);
  EXPECT_EQ(0u, replacements);
}

} // namespace
