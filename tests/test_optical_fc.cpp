// Photonic fully-connected layers (broadcast-and-weight's original use).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::EngineStats;
using core::OpticalConvEngine;
using core::PcnnaConfig;
using nn::Shape4;
using nn::Tensor;

struct FcData {
  Tensor input, weights, bias;
};

FcData make_fc(std::size_t in, std::size_t out, std::uint64_t seed = 21) {
  Rng rng(seed);
  FcData d;
  d.input = Tensor(Shape4{1, in, 1, 1});
  nn::fill_uniform(d.input, rng, 0.0, 1.0);
  d.weights = Tensor(Shape4{out, in, 1, 1});
  nn::fill_gaussian(d.weights, rng, 0.0, std::sqrt(2.0 / static_cast<double>(in)));
  d.bias = Tensor(Shape4{1, out, 1, 1});
  nn::fill_uniform(d.bias, rng, -0.05, 0.05);
  return d;
}

TEST(OpticalFc, IdealMatchesGolden) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  const FcData d = make_fc(37, 11);
  const Tensor out = engine.fully_connected(d.input, d.weights, d.bias);
  const Tensor ref = nn::fully_connected(d.input, d.weights, d.bias);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
}

TEST(OpticalFc, WdmSegmentationOverWideInputs) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.max_wavelengths = 16;
  OpticalConvEngine engine(cfg);
  const FcData d = make_fc(100, 8); // 7 passes of <=16 channels
  EngineStats stats;
  const Tensor out = engine.fully_connected(d.input, d.weights, d.bias, &stats);
  const Tensor ref = nn::fully_connected(d.input, d.weights, d.bias);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
  EXPECT_EQ(7u, stats.optical_passes);
  EXPECT_EQ(16u, stats.wavelengths_used);
  EXPECT_EQ(8u, stats.adc_conversions);
  EXPECT_EQ(100u * 8u, stats.weight_dac_conversions);
}

TEST(OpticalFc, PaperDefaultsBoundedError) {
  OpticalConvEngine engine(PcnnaConfig::paper_defaults());
  const FcData d = make_fc(64, 16);
  const Tensor out = engine.fully_connected(d.input, d.weights, d.bias);
  const Tensor ref = nn::fully_connected(d.input, d.weights, d.bias);
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.2 * ref.abs_max());
}

TEST(OpticalFc, RejectsNegativeInputsAndBadShapes) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  FcData d = make_fc(8, 4);
  d.input[0] = -0.1;
  EXPECT_THROW(engine.fully_connected(d.input, d.weights, d.bias), Error);
  const FcData ok = make_fc(8, 4);
  Tensor bad_w(Shape4{4, 9, 1, 1});
  EXPECT_THROW(engine.fully_connected(ok.input, bad_w, {}), Error);
}

TEST(OpticalFc, ZeroWeightsYieldBias) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  FcData d = make_fc(8, 4);
  d.weights.fill(0.0);
  const Tensor out = engine.fully_connected(d.input, d.weights, d.bias);
  for (std::size_t o = 0; o < 4; ++o) EXPECT_DOUBLE_EQ(d.bias[o], out[o]);
}

TEST(OpticalFc, AcceleratorOffloadsFcWhenEnabled) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.accelerate_fc = true;
  core::Accelerator acc(cfg);
  Rng rng(31);
  const nn::Network net = nn::tiny_cnn();
  const auto weights = nn::make_network_weights(net, rng);
  const auto input = nn::make_network_input(net, rng);
  const auto report = acc.run(net, weights, input);
  ASSERT_EQ(1u, report.fc_layers.size()); // tiny_cnn has one FC
  EXPECT_LT(report.fc_layers[0].max_abs_err_vs_reference, 1e-6);
  EXPECT_LT(report.output_max_abs_err, 1e-6);
  EXPECT_GT(report.fc_layers[0].timing.full_system_time, 0.0);
  EXPECT_GT(report.fc_layers[0].energy.total(), 0.0);
}

TEST(OpticalFc, AcceleratorKeepsFcOnCpuByDefault) {
  core::Accelerator acc(PcnnaConfig::ideal());
  Rng rng(32);
  const nn::Network net = nn::tiny_cnn();
  const auto weights = nn::make_network_weights(net, rng);
  const auto input = nn::make_network_input(net, rng);
  const auto report = acc.run(net, weights, input);
  EXPECT_TRUE(report.fc_layers.empty());
}

TEST(OpticalFc, LenetEndToEndFullyPhotonic) {
  // Every MAC of the network — conv and FC — through the optical core.
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.accelerate_fc = true;
  core::Accelerator acc(cfg);
  Rng rng(33);
  const nn::Network net = nn::lenet5();
  const auto weights = nn::make_network_weights(net, rng);
  const auto input = nn::make_network_input(net, rng);
  const auto report = acc.run(net, weights, input);
  ASSERT_EQ(2u, report.fc_layers.size());
  EXPECT_TRUE(report.argmax_match);
  EXPECT_LT(report.output_max_abs_err, 1e-6);
}

} // namespace
