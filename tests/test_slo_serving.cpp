// SLO-aware multi-tenant serving: class-partitioned EDF admission order,
// load shedding against per-request deadlines, elastic fleet sizing, and
// the per-tenant report slices.
//
// The load-bearing guarantees pinned here:
//  * the warmup recharge boundary (start == free_at is back-to-back, not
//    idle) holds on BOTH admission modes — the EDF rework must not flip it;
//  * EDF defers commitments: a later tighter-deadline arrival overtakes
//    already-queued work, with strict PriorityClass precedence over raw
//    deadlines;
//  * shedding rejects exactly the requests whose predicted completion
//    would blow their SLO, and served outputs stay bit-identical to the
//    sequential reference (a shed neighbor never changes anyone's bits);
//  * the autoscaler grows on backlog, shrinks after idle, and charges the
//    cold-start warmup on every (re)activation regardless of WarmupPolicy;
//  * serve_all surfaces a worker's original exception, not the secondary
//    "never served" check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::AdmissionOptions;
using runtime::AdmissionResult;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::InferenceRequest;
using runtime::OpenLoopReport;
using runtime::PcuPool;
using runtime::PriorityClass;
using runtime::RequestQueue;
using runtime::RequestResult;
using runtime::RequestSlo;
using runtime::ScheduledService;
using runtime::SloSchedule;
using runtime::TenantClass;

struct Served {
  nn::Network net;
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Served make_served(std::size_t batch, std::uint64_t seed = 55) {
  Rng rng(seed);
  Served s{nn::tiny_cnn(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  s.inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    s.inputs.push_back(nn::make_network_input(s.net, rng));
  return s;
}

BatchRunnerOptions options(std::size_t pcus, bool simulate_values = true) {
  BatchRunnerOptions o;
  o.num_pcus = pcus;
  o.simulate_values = simulate_values;
  o.seed = 123;
  return o;
}

/// One scheduling-only request (no tensor) for direct admission tests.
InferenceRequest timing_request(std::uint64_t id, double arrival,
                                PriorityClass priority = PriorityClass::kStandard,
                                double deadline =
                                    std::numeric_limits<double>::infinity(),
                                std::uint32_t tenant = 0) {
  InferenceRequest r;
  r.id = id;
  r.arrival_time = arrival;
  r.priority = priority;
  r.deadline = deadline;
  r.tenant = tenant;
  return r;
}

AdmissionResult admit(PcuPool& pool, std::vector<InferenceRequest> requests,
                      const AdmissionOptions& admission) {
  RequestQueue queue;
  for (InferenceRequest& r : requests) queue.push(std::move(r));
  queue.close();
  return pool.simulate_admission(queue, admission);
}

// --- Warmup recharge boundary (satellite bugfix) ---

// A request landing exactly when the PCU frees is back-to-back: the
// double-buffer pipeline never drained, so no warmup recharge. Pinned on
// both admission modes so the EDF rework cannot silently flip the
// comparison from strict to non-strict.
TEST(WarmupBoundary, ExactBoundaryIsBackToBackOnBothAdmissionModes) {
  const Served s = make_served(0);
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               s.net, s.weights);
  const double interval = pool.pcu(0).request_interval_overlapped();
  const double warmup = pool.pcu(0).warmup_time();
  ASSERT_GT(warmup, 0.0);

  // Request 0 at t=0 (cold), request 1 exactly at its completion
  // (back-to-back), request 2 after an idle gap (cold again).
  const double t1 = 0.0 + (interval + warmup); // request 0's completion
  const double t2 = t1 + interval + 3.0 * interval;

  for (DispatchPolicy policy :
       {DispatchPolicy::kEarliestFree, DispatchPolicy::kEdf}) {
    AdmissionOptions admission;
    admission.policy = policy;
    const AdmissionResult r =
        admit(pool,
              {timing_request(0, 0.0), timing_request(1, t1),
               timing_request(2, t2)},
              admission);
    ASSERT_EQ(3u, r.schedule.size()) << dispatch_policy_name(policy);
    EXPECT_EQ(warmup, r.schedule[0].warmup) << dispatch_policy_name(policy);
    EXPECT_EQ(0.0, r.schedule[1].warmup)
        << dispatch_policy_name(policy)
        << ": start == free_at must count as back-to-back, not idle";
    EXPECT_EQ(warmup, r.schedule[2].warmup) << dispatch_policy_name(policy);
    EXPECT_EQ(t1, r.schedule[1].start);
  }
}

// --- EDF admission order (tentpole) ---

TEST(EdfAdmission, StrictClassPrecedenceThenDeadline) {
  const Served s = make_served(0);
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               s.net, s.weights);
  const double interval = pool.pcu(0).request_interval_overlapped();

  // All queued at t=0 on one PCU. A near-expiry best-effort request must
  // NOT overtake interactive or standard traffic (class-partitioned EDF),
  // and within a class the earlier deadline wins regardless of id.
  AdmissionOptions admission;
  admission.policy = DispatchPolicy::kEdf;
  const AdmissionResult r =
      admit(pool,
            {timing_request(0, 0.0, PriorityClass::kStandard, 50.0 * interval),
             timing_request(1, 0.0, PriorityClass::kBestEffort,
                            1.0 * interval),
             timing_request(2, 0.0, PriorityClass::kInteractive,
                            40.0 * interval),
             timing_request(3, 0.0, PriorityClass::kStandard,
                            20.0 * interval)},
            admission);
  ASSERT_EQ(4u, r.schedule.size());
  EXPECT_EQ(2u, r.schedule[0].id) << "interactive first";
  EXPECT_EQ(3u, r.schedule[1].id) << "standard, earlier deadline";
  EXPECT_EQ(0u, r.schedule[2].id) << "standard, later deadline";
  EXPECT_EQ(1u, r.schedule[3].id) << "best-effort last despite its deadline";
}

TEST(EdfAdmission, LaterTighterDeadlineArrivalOvertakesQueuedWork) {
  const Served s = make_served(0);
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               s.net, s.weights);
  const double interval = pool.pcu(0).request_interval_overlapped();
  const double warmup = pool.pcu(0).warmup_time();

  // Request 0 occupies the PCU from t=0. Requests 1 and 2 arrive while it
  // runs; 2 arrives LAST but with the tighter deadline, so the deferred
  // dispatch at the first free instant must pick it before 1. The eager
  // FIFO loop could never produce this order.
  AdmissionOptions admission;
  admission.policy = DispatchPolicy::kEdf;
  const AdmissionResult r = admit(
      pool,
      {timing_request(0, 0.0, PriorityClass::kStandard, 100.0 * interval),
       timing_request(1, 0.1 * interval, PriorityClass::kStandard,
                      90.0 * interval),
       timing_request(2, 0.2 * interval, PriorityClass::kStandard,
                      5.0 * interval)},
      admission);
  ASSERT_EQ(3u, r.schedule.size());
  EXPECT_EQ(0u, r.schedule[0].id);
  EXPECT_EQ(2u, r.schedule[1].id) << "tighter deadline overtakes";
  EXPECT_EQ(1u, r.schedule[2].id);
  // Deferred dispatch starts work when the PCU frees, not earlier.
  EXPECT_EQ(warmup + interval, r.schedule[1].start);
}

TEST(EdfAdmission, WithoutDeadlinesMatchesFifoOrder) {
  const Served s = make_served(0);
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               s.net, s.weights);
  const ArrivalSchedule arrivals = runtime::poisson_arrivals(200, 1.0e6, 9);

  std::vector<InferenceRequest> fifo_reqs, edf_reqs;
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    fifo_reqs.push_back(timing_request(id, arrivals[id]));
    edf_reqs.push_back(timing_request(id, arrivals[id]));
  }
  AdmissionOptions fifo;
  AdmissionOptions edf;
  edf.policy = DispatchPolicy::kEdf;
  const AdmissionResult a = admit(pool, std::move(fifo_reqs), fifo);
  const AdmissionResult b = admit(pool, std::move(edf_reqs), edf);

  // With every deadline at +inf the EDF order degenerates to (arrival,
  // id) — FIFO — and the deferred loop must reproduce the eager loop's
  // dispatch order exactly (completion times can only match too, since
  // both dispatch to the earliest-completing free PCU of an all-equal
  // fleet).
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i)
    EXPECT_EQ(a.schedule[i].id, b.schedule[i].id) << "entry " << i;
}

// --- Load shedding (tentpole) ---

TEST(LoadShedding, RejectsExactlyTheRequestsThatWouldBlowTheirSlo) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     [&] {
                       BatchRunnerOptions o = options(1, false);
                       o.shed_expired = true;
                       return o;
                     }());
  const double interval =
      runner.pool().pcu(0).request_interval_overlapped();
  const double warmup = runner.pool().pcu(0).warmup_time();

  // Four requests at t=0, one PCU, every deadline allows exactly one
  // service (warmup + 1.5 intervals): the first is served, the rest are
  // shed the moment the PCU frees and their completion would be late.
  const std::size_t batch = 4;
  SloSchedule slos(batch, RequestSlo{7, PriorityClass::kInteractive,
                                     warmup + 1.5 * interval});
  const OpenLoopReport r = runner.simulate_open_loop(
      runtime::closed_batch_arrivals(batch), slos);

  EXPECT_EQ(batch, r.requests);
  EXPECT_EQ(1u, r.served_requests);
  EXPECT_EQ(3u, r.shed_requests);
  EXPECT_DOUBLE_EQ(0.75, r.shed_rate);
  EXPECT_DOUBLE_EQ(0.25, r.slo_attainment);
  ASSERT_EQ(1u, r.per_tenant.size());
  EXPECT_EQ(7u, r.per_tenant[0].tenant);
  EXPECT_EQ(batch, r.per_tenant[0].requests);
  EXPECT_EQ(1u, r.per_tenant[0].served);
  EXPECT_EQ(3u, r.per_tenant[0].shed);
  EXPECT_EQ(3u, r.per_tenant[0].slo_misses);
  // Achieved throughput counts served work only.
  EXPECT_DOUBLE_EQ(1.0 / r.makespan, r.achieved_rps);
}

TEST(LoadShedding, InfiniteDeadlinesAreNeverShed) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     [&] {
                       BatchRunnerOptions o = options(1, false);
                       o.shed_expired = true;
                       return o;
                     }());
  const OpenLoopReport r =
      runner.simulate_open_loop(runtime::closed_batch_arrivals(50));
  EXPECT_EQ(50u, r.requests);
  EXPECT_EQ(0u, r.shed_requests);
  EXPECT_TRUE(r.per_tenant.empty())
      << "a run without SLO metadata reports no tenant slices";
}

TEST(LoadShedding, ServedOutputsBitIdenticalAndShedSlotsFlagged) {
  const Served s = make_served(3);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     [&] {
                       BatchRunnerOptions o = options(1);
                       o.shed_expired = true;
                       return o;
                     }());
  const double interval =
      runner.pool().pcu(0).request_interval_overlapped();
  const double warmup = runner.pool().pcu(0).warmup_time();

  SloSchedule slos(3, RequestSlo{0, PriorityClass::kStandard,
                                 warmup + 1.5 * interval});
  OpenLoopReport report;
  const std::vector<RequestResult> out = runner.run_open_loop(
      s.inputs, runtime::closed_batch_arrivals(3), slos, &report);

  ASSERT_EQ(3u, out.size());
  EXPECT_FALSE(out[0].shed);
  EXPECT_TRUE(out[1].shed);
  EXPECT_TRUE(out[2].shed);
  EXPECT_TRUE(out[1].output.empty()) << "shed slots are placeholders";
  EXPECT_EQ(1u, out[1].id);

  // A shed neighbor never changes a served request's bits.
  BatchRunner single(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(1));
  EXPECT_EQ(single.run_one(s.inputs[0], 0).output, out[0].output);
  EXPECT_EQ(1u, report.served_requests);
  EXPECT_EQ(2u, report.shed_requests);
}

// --- Elastic fleet sizing (tentpole) ---

TEST(Autoscaler, GrowsOnBacklogShrinksAfterIdleAndRechargesColdStarts) {
  const Served s = make_served(0);
  runtime::PcuSpec spec;
  spec.config = PcnnaConfig::paper_defaults();
  // Pinned calibration would never re-pay warmup on its own — so any
  // warmup charged after the first request per PCU must come from the
  // autoscaler's forced cold start.
  spec.warmup = runtime::WarmupPolicy::kPinnedAfterFirst;
  BatchRunner probe(std::vector<runtime::PcuSpec>(2, spec), s.net,
                    s.weights, options(2, false));
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();
  ASSERT_GT(warmup, 0.0);

  // Phase A: burst of 6 at t=0 (backlog > 1 per active PCU -> grow to 2).
  // Phase B: sparse singles (PCU 1 idles past the threshold -> shrink).
  // Phase C: second burst (grow again -> PCU 1 must pay a cold start even
  // under kPinnedAfterFirst).
  ArrivalSchedule arrivals(6, 0.0);
  const double base = warmup + 6.0 * interval;
  for (int k = 0; k < 3; ++k)
    arrivals.push_back(base + 20.0 * interval * static_cast<double>(k));
  const double burst2 = base + 70.0 * interval;
  for (int k = 0; k < 6; ++k) arrivals.push_back(burst2);

  BatchRunner scaled(std::vector<runtime::PcuSpec>(2, spec), s.net,
                     s.weights, [&] {
                       BatchRunnerOptions o = options(2, false);
                       o.autoscaler.enabled = true;
                       o.autoscaler.min_active = 1;
                       o.autoscaler.max_active = 2;
                       o.autoscaler.backlog_per_pcu = 1.0;
                       o.autoscaler.shrink_after_idle = 5.0 * interval;
                       return o;
                     }());
  const OpenLoopReport r = scaled.simulate_open_loop(arrivals);

  EXPECT_EQ(15u, r.requests);
  EXPECT_GE(r.autoscaler.scale_ups, 2u) << "grew in both bursts";
  EXPECT_GE(r.autoscaler.scale_downs, 1u) << "shrank in the quiet phase";
  EXPECT_GT(r.autoscaler.mean_active, 1.0);
  EXPECT_LT(r.autoscaler.mean_active, 2.0);

  // The second burst's work on PCU 1 re-paid the pipeline fill.
  EXPECT_GT(r.per_pcu[1].warmup_time, warmup * 1.5)
      << "a reactivated PCU must charge the cold start even when pinned";
}

TEST(Autoscaler, DisabledReportsFullFleetActive) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(3, false));
  const OpenLoopReport r =
      runner.simulate_open_loop(runtime::uniform_arrivals(40, 1.0e5));
  EXPECT_DOUBLE_EQ(3.0, r.autoscaler.mean_active);
  EXPECT_EQ(0u, r.autoscaler.scale_ups);
  EXPECT_EQ(0u, r.autoscaler.scale_downs);
}

TEST(Autoscaler, RejectsInvalidEnvelope) {
  const Served s = make_served(0);
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               s.net, s.weights);
  AdmissionOptions admission;
  admission.autoscaler.enabled = true;
  admission.autoscaler.min_active = 0;
  EXPECT_THROW(admit(pool, {timing_request(0, 0.0)}, admission), Error);
  admission.autoscaler.min_active = 3;
  admission.autoscaler.max_active = 2;
  EXPECT_THROW(admit(pool, {timing_request(0, 0.0)}, admission), Error);
}

// --- Tenant mixes (runtime/arrival.hpp) ---

TEST(AssignTenants, DeterministicWeightedSplitWithAbsoluteDeadlines) {
  const ArrivalSchedule arrivals = runtime::poisson_arrivals(4000, 1.0e6, 3);
  const std::vector<TenantClass> mix = {
      {1, PriorityClass::kInteractive, 0.25, 1e-3},
      {2, PriorityClass::kBestEffort, 0.75, 1.0},
  };
  const SloSchedule a = runtime::assign_tenants(arrivals, mix, 42);
  const SloSchedule b = runtime::assign_tenants(arrivals, mix, 42);
  ASSERT_EQ(arrivals.size(), a.size());

  std::size_t interactive = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "same seed, same assignment";
    if (a[i].tenant == 1) {
      ++interactive;
      EXPECT_EQ(PriorityClass::kInteractive, a[i].priority);
      EXPECT_DOUBLE_EQ(arrivals[i] + 1e-3, a[i].deadline)
          << "deadline is absolute: arrival + budget";
    } else {
      EXPECT_EQ(2u, a[i].tenant);
    }
  }
  // ~25% share, generous tolerance for a seeded draw.
  EXPECT_NEAR(0.25, static_cast<double>(interactive) /
                        static_cast<double>(a.size()),
              0.05);

  const SloSchedule c = runtime::assign_tenants(arrivals, mix, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i].tenant != c[i].tenant;
  EXPECT_TRUE(differs) << "a different seed reshuffles the assignment";
}

TEST(AssignTenants, RejectsEmptyMixAndBadWeights) {
  const ArrivalSchedule arrivals = {0.0, 1.0};
  EXPECT_THROW(runtime::assign_tenants(arrivals, {}, 1), Error);
  EXPECT_THROW(
      runtime::assign_tenants(
          arrivals, {{0, PriorityClass::kStandard, 0.0, 1.0}}, 1),
      Error);
  EXPECT_THROW(
      runtime::assign_tenants(
          arrivals, {{0, PriorityClass::kStandard, -2.0, 1.0}}, 1),
      Error);
}

// --- The overload story the bench gates (small-scale mirror) ---

TEST(SloServing, EdfWithSheddingHoldsInteractiveSloWhereFifoCollapses) {
  const Served s = make_served(0);
  BatchRunner probe(PcnnaConfig::paper_defaults(), s.net, s.weights,
                    options(4, false));
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const double interval =
      probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();
  const double budget = warmup + 6.0 * interval;

  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(3000, 1.3 * capacity, 17);
  const std::vector<TenantClass> mix = {
      {0, PriorityClass::kInteractive, 0.2, budget},
      {1, PriorityClass::kBestEffort, 0.8, 60.0 * interval + warmup},
  };
  const SloSchedule slos = runtime::assign_tenants(arrivals, mix, 5);

  BatchRunner fifo(PcnnaConfig::paper_defaults(), s.net, s.weights,
                   options(4, false));
  const OpenLoopReport fifo_r = fifo.simulate_open_loop(arrivals, slos);

  BatchRunner edf(PcnnaConfig::paper_defaults(), s.net, s.weights, [&] {
    BatchRunnerOptions o = options(4, false);
    o.dispatch = DispatchPolicy::kEdf;
    o.shed_expired = true;
    return o;
  }());
  const OpenLoopReport edf_r = edf.simulate_open_loop(arrivals, slos);

  ASSERT_EQ(2u, fifo_r.per_tenant.size());
  ASSERT_EQ(2u, edf_r.per_tenant.size());
  const auto& fifo_inter = fifo_r.per_tenant[0];
  const auto& edf_inter = edf_r.per_tenant[0];
  ASSERT_EQ(0u, fifo_inter.tenant);
  ASSERT_EQ(0u, edf_inter.tenant);

  // FIFO without shedding: under 1.3x overload the queue grows without
  // bound and the interactive tail blows through its budget.
  EXPECT_GT(fifo_inter.latency.p99, budget);
  // EDF + shedding: interactive requests jump the queue and hopeless work
  // is rejected, so the served interactive tail stays within budget and
  // attainment stays high.
  EXPECT_LE(edf_inter.latency.p99, budget);
  EXPECT_GE(edf_inter.slo_attainment, 0.95);
  EXPECT_GT(edf_inter.slo_attainment, fifo_inter.slo_attainment);
}

// --- serve_all error path (satellite) ---

TEST(ServeAll, WorkerErrorSurfacesOriginalExceptionNotNeverServed) {
  const Served s = make_served(4);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(2));
  RequestQueue queue;
  for (std::uint64_t id = 0; id < 4; ++id) {
    InferenceRequest r;
    r.id = id;
    r.seed = runtime::derive_request_seed(123, id);
    // Request 2 carries a shape-mismatched (empty) input: its worker
    // throws mid-batch.
    if (id != 2) r.input = s.inputs[id];
    queue.push(std::move(r));
  }
  queue.close();

  bool threw = false;
  try {
    runner.pool().serve_all(queue, 4, /*simulate_values=*/true);
  } catch (const Error& e) {
    threw = true;
    EXPECT_EQ(std::string::npos, std::string(e.what()).find("never served"))
        << "the original worker exception must win over the secondary "
           "completeness check";
  }
  EXPECT_TRUE(threw);
}

// --- serve_scheduled subset schedules ---

TEST(ServeScheduled, SubsetScheduleLeavesPlaceholdersAndRejectsDuplicates) {
  const Served s = make_served(3);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(1));
  const auto request_for = [&](std::uint64_t id) {
    InferenceRequest r;
    r.id = id;
    r.seed = runtime::derive_request_seed(123, id);
    r.input = s.inputs[id];
    return r;
  };

  // Schedule names only ids 0 and 2: id 1 must come back untouched.
  std::vector<ScheduledService> schedule(2);
  schedule[0].id = 0;
  schedule[1].id = 2;
  std::vector<InferenceRequest> requests;
  for (std::uint64_t id = 0; id < 3; ++id)
    requests.push_back(request_for(id));
  const std::vector<RequestResult> out = runner.pool().serve_scheduled(
      std::move(requests), schedule, /*simulate_values=*/true);
  ASSERT_EQ(3u, out.size());
  EXPECT_FALSE(out[0].output.empty());
  EXPECT_TRUE(out[1].output.empty());
  EXPECT_EQ(1u, out[1].id);
  EXPECT_FALSE(out[2].output.empty());

  // Duplicates are still rejected.
  std::vector<ScheduledService> dup(2);
  dup[0].id = 0;
  dup[1].id = 0;
  std::vector<InferenceRequest> again;
  for (std::uint64_t id = 0; id < 3; ++id) again.push_back(request_for(id));
  EXPECT_THROW(
      runner.pool().serve_scheduled(std::move(again), dup, true), Error);
}

// --- Report plumbing ---

TEST(SloServing, ReportPrintsTenantTableAndShedCounts) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights, [&] {
    BatchRunnerOptions o = options(1, false);
    o.dispatch = DispatchPolicy::kEdf;
    o.shed_expired = true;
    return o;
  }());
  const double interval =
      runner.pool().pcu(0).request_interval_overlapped();
  const double warmup = runner.pool().pcu(0).warmup_time();
  SloSchedule slos(4, RequestSlo{3, PriorityClass::kInteractive,
                                 warmup + 1.5 * interval});
  const OpenLoopReport report = runner.simulate_open_loop(
      runtime::closed_batch_arrivals(4), slos);

  std::ostringstream os;
  BatchRunner::print_report(report, os, "slo unit test");
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("shed requests"));
  EXPECT_NE(std::string::npos, text.find("SLO attainment"));
  EXPECT_NE(std::string::npos, text.find("per-tenant SLO"));
  EXPECT_NE(std::string::npos, text.find("edf"));
}

TEST(SloServing, DeterministicAcrossRuns) {
  const Served s = make_served(0);
  const auto run = [&] {
    BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights, [&] {
      BatchRunnerOptions o = options(3, false);
      o.dispatch = DispatchPolicy::kEdf;
      o.shed_expired = true;
      o.autoscaler.enabled = true;
      o.autoscaler.min_active = 1;
      o.autoscaler.backlog_per_pcu = 2.0;
      o.autoscaler.shrink_after_idle = 1e-3;
      return o;
    }());
    const double capacity =
        runner.simulate_open_loop({}).fleet_capacity_rps;
    const ArrivalSchedule arrivals =
        runtime::poisson_arrivals(1500, 1.4 * capacity, 7);
    const std::vector<TenantClass> mix = {
        {0, PriorityClass::kInteractive, 0.3, 2e-4},
        {1, PriorityClass::kStandard, 0.7, 5e-3},
    };
    return runner.simulate_open_loop(
        arrivals, runtime::assign_tenants(arrivals, mix, 11));
  };
  const OpenLoopReport a = run();
  const OpenLoopReport b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.slo_attainment, b.slo_attainment);
  EXPECT_EQ(a.autoscaler.scale_ups, b.autoscaler.scale_ups);
  EXPECT_EQ(a.autoscaler.mean_active, b.autoscaler.mean_active);
  ASSERT_EQ(a.per_tenant.size(), b.per_tenant.size());
  for (std::size_t t = 0; t < a.per_tenant.size(); ++t) {
    EXPECT_EQ(a.per_tenant[t].slo_attainment, b.per_tenant[t].slo_attainment);
    EXPECT_EQ(a.per_tenant[t].latency.p99, b.per_tenant[t].latency.p99);
  }
}

} // namespace
