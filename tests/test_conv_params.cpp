// Table I parameter algebra and the paper's worked numbers (Eqs. 1-3, 6).
#include <gtest/gtest.h>

#include "nn/conv_params.hpp"
#include "nn/models.hpp"

namespace {

using pcnna::nn::ConvLayerParams;

ConvLayerParams alexnet_layer(std::size_t i) {
  return pcnna::nn::alexnet_conv_layers().at(i);
}

TEST(ConvParams, Eq1InputSize) {
  // conv1: Ninput = 224 * 224 * 3 = 150 528 (the paper's 150k x saving).
  EXPECT_EQ(150'528u, alexnet_layer(0).input_size());
}

TEST(ConvParams, Eq2KernelSize) {
  // conv1: Nkernel = 11 * 11 * 3 = 363.
  EXPECT_EQ(363u, alexnet_layer(0).kernel_size());
  // conv4: 3 * 3 * 384 = 3456.
  EXPECT_EQ(3456u, alexnet_layer(3).kernel_size());
}

TEST(ConvParams, Eq3OutputSize) {
  // conv1: ((224 + 4 - 11)/4 + 1)^2 * 96 = 55^2 * 96.
  const auto conv1 = alexnet_layer(0);
  EXPECT_EQ(55u, conv1.output_side());
  EXPECT_EQ(55u * 55u * 96u, conv1.output_size());
}

TEST(ConvParams, Eq6NumLocations) {
  EXPECT_EQ(3025u, alexnet_layer(0).num_locations()); // 55^2
  EXPECT_EQ(729u, alexnet_layer(1).num_locations());  // 27^2
  EXPECT_EQ(169u, alexnet_layer(2).num_locations());  // 13^2
  EXPECT_EQ(169u, alexnet_layer(3).num_locations());
  EXPECT_EQ(169u, alexnet_layer(4).num_locations());
}

TEST(ConvParams, NoutputEqualsNlocsTimesK) {
  for (const auto& layer : pcnna::nn::alexnet_conv_layers()) {
    EXPECT_EQ(layer.output_size(), layer.num_locations() * layer.K) << layer.name;
  }
}

TEST(ConvParams, WeightCounts) {
  // conv4 holds the most weights in AlexNet (paper SS V-A).
  const auto layers = pcnna::nn::alexnet_conv_layers();
  const std::uint64_t conv4 = layers[3].weight_count();
  EXPECT_EQ(384u * 3u * 3u * 384u, conv4);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (i != 3) EXPECT_LT(layers[i].weight_count(), conv4) << layers[i].name;
  }
}

TEST(ConvParams, MacsAreLocationsTimesWeights) {
  const auto conv3 = alexnet_layer(2);
  EXPECT_EQ(conv3.num_locations() * conv3.weight_count(), conv3.macs());
}

TEST(ConvParams, UpdatedInputsPerLocation) {
  // Paper SS V-B: nc * m * s; conv4: 384*3*1 = 1152 (/10 DACs ~ 116).
  EXPECT_EQ(1152u, alexnet_layer(3).updated_inputs_per_location());
  // conv1: 3 * 11 * 4 = 132.
  EXPECT_EQ(132u, alexnet_layer(0).updated_inputs_per_location());
}

TEST(ConvParams, StrideAndPaddingAffectOutputSide) {
  ConvLayerParams p{"t", 10, 3, 0, 1, 1, 1};
  EXPECT_EQ(8u, p.output_side());
  p.p = 1;
  EXPECT_EQ(10u, p.output_side());
  p.s = 2;
  EXPECT_EQ(5u, p.output_side());
}

TEST(ConvParams, FloorDivisionInOutputSide) {
  // (7 + 0 - 3)/2 + 1 = 3 (floor of 4/2 exactly); (8-3)/2+1 = floor(2.5)+1 = 3.
  ConvLayerParams p{"t", 8, 3, 0, 2, 1, 1};
  EXPECT_EQ(3u, p.output_side());
}

TEST(ConvParams, ValidateRejectsDegenerate) {
  EXPECT_THROW((ConvLayerParams{"z", 0, 3, 0, 1, 1, 1}).validate(), pcnna::Error);
  EXPECT_THROW((ConvLayerParams{"z", 8, 0, 0, 1, 1, 1}).validate(), pcnna::Error);
  EXPECT_THROW((ConvLayerParams{"z", 8, 3, 0, 0, 1, 1}).validate(), pcnna::Error);
  EXPECT_THROW((ConvLayerParams{"z", 8, 3, 0, 1, 0, 1}).validate(), pcnna::Error);
  EXPECT_THROW((ConvLayerParams{"z", 8, 3, 0, 1, 1, 0}).validate(), pcnna::Error);
  // Kernel larger than padded input.
  EXPECT_THROW((ConvLayerParams{"z", 4, 7, 0, 1, 1, 1}).validate(), pcnna::Error);
  // But fine with enough padding.
  EXPECT_NO_THROW((ConvLayerParams{"z", 4, 7, 2, 1, 1, 1}).validate());
}

} // namespace
