// Electronic baseline models (Eyeriss, YodaNN, CPU).
#include <gtest/gtest.h>

#include "baselines/cpu.hpp"
#include "baselines/eyeriss.hpp"
#include "baselines/yodann.hpp"
#include "common/units.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TEST(Eyeriss, UtilizationWithinUnitInterval) {
  const baselines::EyerissModel model;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double util = model.utilization(layer);
    EXPECT_GT(util, 0.0) << layer.name;
    EXPECT_LE(util, 1.0) << layer.name;
  }
}

TEST(Eyeriss, ThreeByThreeKernelsNearlyFillTheArray) {
  // conv3: strips of 3 x min(13, 14) = 39 PEs replicate 4x = 156/168.
  const baselines::EyerissModel model;
  EXPECT_DOUBLE_EQ(156.0 / 168.0, model.utilization(alexnet_layer(2)));
}

TEST(Eyeriss, LayerTimeIsMacsOverThroughput) {
  const baselines::EyerissModel model;
  const auto conv3 = alexnet_layer(2);
  const double throughput =
      168.0 * model.utilization(conv3) * 0.85 * 200.0 * u::MHz;
  EXPECT_NEAR(static_cast<double>(conv3.macs()) / throughput,
              model.layer_time(conv3), 1e-12);
}

TEST(Eyeriss, AlexNetLayerTimesInMillisecondBand) {
  // Eyeriss reports AlexNet conv layers in the ~1-20 ms range; the
  // analytical model must land in that order of magnitude.
  const baselines::EyerissModel model;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double t = model.layer_time(layer);
    EXPECT_GT(t, 0.5 * u::ms) << layer.name;
    EXPECT_LT(t, 50.0 * u::ms) << layer.name;
  }
}

TEST(Yodann, PeakThroughputAndTime) {
  const baselines::YodannModel model;
  EXPECT_NEAR(32.0 * 32.0 * 480.0 * u::MHz, model.peak_throughput(), 1.0);
  const auto conv3 = alexnet_layer(2);
  EXPECT_NEAR(static_cast<double>(conv3.macs()) /
                  (model.peak_throughput() * 0.9),
              model.layer_time(conv3), 1e-12);
}

TEST(Yodann, FasterThanEyerissButElectronic) {
  const baselines::EyerissModel eyeriss;
  const baselines::YodannModel yodann;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    EXPECT_LT(yodann.layer_time(layer), eyeriss.layer_time(layer))
        << layer.name;
  }
}

TEST(Cpu, MeasuresSmallLayerDirectly) {
  baselines::CpuDirectBaseline cpu;
  nn::ConvLayerParams small{"s", 16, 3, 1, 1, 4, 8};
  bool extrapolated = true;
  const auto m = cpu.measure(small, &extrapolated);
  EXPECT_FALSE(extrapolated);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.macs_per_s, 1e6); // any modern CPU exceeds 1 MMAC/s
}

TEST(Cpu, ExtrapolatesHugeLayers) {
  baselines::CpuDirectBaseline cpu;
  cpu.max_direct_macs = 1'000'000; // force cropping
  bool extrapolated = false;
  const auto m = cpu.measure(alexnet_layer(1), &extrapolated);
  EXPECT_TRUE(extrapolated);
  EXPECT_GT(m.seconds, 0.0);
}

TEST(Baselines, RejectBadConfigs) {
  baselines::EyerissConfig e;
  e.efficiency = 0.0;
  EXPECT_THROW(baselines::EyerissModel{e}, Error);
  baselines::YodannConfig y;
  y.clock = 0.0;
  EXPECT_THROW(baselines::YodannModel{y}, Error);
}

} // namespace
