// Whole-chip area/power budget.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/chip_report.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;
using core::ChipBudget;
using core::ChipReportModel;
using core::PcnnaConfig;

TEST(ChipReport, TotalsAreComponentSums) {
  const ChipReportModel model(PcnnaConfig::paper_defaults());
  const ChipBudget b = model.layer_budget(nn::alexnet_conv_layers()[2]);
  EXPECT_NEAR(b.ring_area + b.dac_area + b.adc_area + b.sram_area,
              b.total_area(), 1e-18);
  EXPECT_NEAR(b.laser_power + b.heater_power + b.dac_power + b.adc_power +
                  b.sram_power,
              b.total_power(), 1e-15);
}

TEST(ChipReport, DacAreaMatchesPaperComponents) {
  // 10 input DACs + 1 weight DAC at 0.52 mm^2 each [16].
  const ChipReportModel model(PcnnaConfig::paper_defaults());
  const ChipBudget b = model.layer_budget(nn::alexnet_conv_layers()[0]);
  EXPECT_NEAR(11.0 * 0.52 * u::mm2, b.dac_area, 1e-12);
  EXPECT_NEAR(0.443 * u::mm2, b.sram_area, 1e-12); // [15]
}

TEST(ChipReport, NetworkBudgetSizedByLargestLayer) {
  const ChipReportModel model(PcnnaConfig::paper_defaults());
  const auto layers = nn::alexnet_conv_layers();
  const ChipBudget net = model.network_budget(layers);
  // conv4 has the most rings under Eq. 5.
  EXPECT_EQ(1'327'104u, net.rings);
  for (const auto& layer : layers) {
    EXPECT_GE(net.rings, model.layer_budget(layer).rings) << layer.name;
  }
}

TEST(ChipReport, PerChannelAllocationShrinksRingArea) {
  PcnnaConfig pc = PcnnaConfig::paper_defaults();
  pc.allocation = core::RingAllocation::kPerChannel;
  const auto layers = nn::alexnet_conv_layers();
  const ChipBudget full =
      ChipReportModel(PcnnaConfig::paper_defaults()).network_budget(layers);
  const ChipBudget per_channel = ChipReportModel(pc).network_budget(layers);
  EXPECT_LT(per_channel.ring_area, full.ring_area);
  EXPECT_EQ(11'616u, per_channel.rings); // conv1 K*m*m dominates
}

TEST(ChipReport, PaperConv4PerChannelAreaIsTwoPointTwo) {
  PcnnaConfig pc = PcnnaConfig::paper_defaults();
  pc.allocation = core::RingAllocation::kPerChannel;
  const ChipReportModel model(pc);
  const ChipBudget b = model.layer_budget(nn::alexnet_conv_layers()[3]);
  EXPECT_EQ(3456u, b.rings);
  EXPECT_NEAR(2.16 * u::mm2, b.ring_area, 0.01 * u::mm2);
}

TEST(ChipReport, LaserPowerScalesWithWavelengths) {
  const ChipReportModel model(PcnnaConfig::paper_defaults());
  const ChipBudget b = model.layer_budget(nn::alexnet_conv_layers()[2]);
  // 96 WDM channels at 10 mW / 20% wall plug = 50 mW each.
  EXPECT_EQ(96u, b.wavelengths);
  EXPECT_NEAR(96.0 * 50.0 * u::mW, b.laser_power, 1e-9);
}

TEST(ChipReport, EmptyNetworkThrows) {
  const ChipReportModel model(PcnnaConfig::paper_defaults());
  EXPECT_THROW(model.network_budget({}), Error);
}

} // namespace
