// Open-loop arrival generators: seeded Poisson statistics and determinism,
// trace-file round trips, schedule validation, and offered-rate accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "runtime/arrival.hpp"

namespace {

using namespace pcnna;
using runtime::ArrivalSchedule;
using runtime::closed_batch_arrivals;
using runtime::load_arrival_trace;
using runtime::offered_rate;
using runtime::parse_arrival_trace;
using runtime::poisson_arrivals;
using runtime::uniform_arrivals;
using runtime::validate_arrival_schedule;
using runtime::write_arrival_trace;

TEST(PoissonArrivals, DeterministicAcrossRuns) {
  const ArrivalSchedule a = poisson_arrivals(500, 1000.0, 42);
  const ArrivalSchedule b = poisson_arrivals(500, 1000.0, 42);
  EXPECT_EQ(a, b) << "same (count, rate, seed) must be bitwise reproducible";

  const ArrivalSchedule c = poisson_arrivals(500, 1000.0, 43);
  EXPECT_NE(a, c) << "a different seed must draw a different schedule";
}

TEST(PoissonArrivals, MeanInterArrivalMatchesRate) {
  constexpr std::size_t kCount = 20000;
  constexpr double kRate = 1000.0; // mean gap 1 ms
  const ArrivalSchedule a = poisson_arrivals(kCount, kRate, 7);

  ASSERT_EQ(kCount, a.size());
  validate_arrival_schedule(a); // nonnegative + nondecreasing
  const double mean_gap = a.back() / static_cast<double>(kCount);
  // Standard error of the mean gap is 1/(rate*sqrt(n)) ~ 0.7 %; 5 % is a
  // comfortable deterministic bound for this fixed seed.
  EXPECT_NEAR(1.0 / kRate, mean_gap, 0.05 / kRate);

  // Exponential gaps: about 1/e of them exceed the mean (burstiness that
  // uniform arrivals lack).
  std::size_t above = 0;
  double prev = 0.0;
  for (double t : a) {
    if (t - prev > 1.0 / kRate) ++above;
    prev = t;
  }
  const double frac = static_cast<double>(above) / kCount;
  EXPECT_NEAR(std::exp(-1.0), frac, 0.02);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(poisson_arrivals(10, 0.0, 1), Error);
  EXPECT_THROW(poisson_arrivals(10, -5.0, 1), Error);
}

TEST(UniformArrivals, EvenSpacingAtRate) {
  const ArrivalSchedule a = uniform_arrivals(5, 100.0);
  ASSERT_EQ(5u, a.size());
  EXPECT_DOUBLE_EQ(0.0, a[0]);
  EXPECT_DOUBLE_EQ(0.04, a[4]);
}

TEST(ClosedBatchArrivals, AllAtTimeZero) {
  const ArrivalSchedule a = closed_batch_arrivals(4);
  ASSERT_EQ(4u, a.size());
  for (double t : a) EXPECT_EQ(0.0, t);
  EXPECT_TRUE(std::isinf(offered_rate(a)))
      << "a closed batch offers infinite load";
}

TEST(ArrivalTrace, RoundTripsBitExactly) {
  const ArrivalSchedule original = poisson_arrivals(200, 12345.0, 9);
  std::stringstream io;
  write_arrival_trace(io, original);
  const ArrivalSchedule parsed = parse_arrival_trace(io);
  ASSERT_EQ(original.size(), parsed.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(original[i], parsed[i]) << "timestamp " << i << " drifted";
}

TEST(ArrivalTrace, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a header comment\n"
      "\n"
      "0.001\n"
      "   \t \n"
      "  2.5e-3  \n"
      "# trailing comment\n"
      "0.004\r\n");
  const ArrivalSchedule a = parse_arrival_trace(in);
  ASSERT_EQ(3u, a.size());
  EXPECT_DOUBLE_EQ(0.001, a[0]);
  EXPECT_DOUBLE_EQ(0.0025, a[1]);
  EXPECT_DOUBLE_EQ(0.004, a[2]);
}

TEST(ArrivalTrace, RejectsMalformedAndInvalidSchedules) {
  std::istringstream junk("0.001\nnot-a-number\n");
  EXPECT_THROW(parse_arrival_trace(junk), Error);

  std::istringstream decreasing("0.002\n0.001\n");
  EXPECT_THROW(parse_arrival_trace(decreasing), Error);

  std::istringstream negative("-0.5\n");
  EXPECT_THROW(parse_arrival_trace(negative), Error);
}

TEST(ArrivalTrace, LoadsFromFile) {
  const std::string path = "pcnna_test_arrival_trace.txt";
  const ArrivalSchedule original = uniform_arrivals(16, 500.0);
  {
    std::ofstream out(path);
    write_arrival_trace(out, original);
  }
  const ArrivalSchedule loaded = load_arrival_trace(path);
  EXPECT_EQ(original, loaded);
  std::remove(path.c_str());

  EXPECT_THROW(load_arrival_trace("definitely/not/a/real/path.txt"), Error);
}

TEST(ValidateArrivalSchedule, RejectsNonFiniteTimestamps) {
  EXPECT_THROW(validate_arrival_schedule({0.0, std::nan("")}), Error);
  EXPECT_THROW(
      validate_arrival_schedule({std::numeric_limits<double>::infinity()}),
      Error);
  validate_arrival_schedule({}); // empty is fine
  validate_arrival_schedule({0.0, 0.0, 1.0});
}

TEST(OfferedRate, CountOverLastArrival) {
  const ArrivalSchedule a = uniform_arrivals(100, 1000.0);
  // 100 arrivals, last at 99 ms -> 100/0.099 req/s.
  EXPECT_NEAR(100.0 / 0.099, offered_rate(a), 1e-6);
  EXPECT_TRUE(std::isinf(offered_rate({})));
}

} // namespace
