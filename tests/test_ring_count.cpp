// Ring-count and area model vs the paper's SS V-A worked numbers.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/ring_count.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;
using core::RingAllocation;
using core::RingCountModel;

const RingCountModel model;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TEST(RingCount, Eq4UnfilteredConv1IsFivePointTwoBillion) {
  // "approximately 5.2 Billion microrings without filtering".
  const auto conv1 = alexnet_layer(0);
  EXPECT_EQ(150'528ull * 96ull * 363ull, model.unfiltered(conv1));
  EXPECT_NEAR(5.2e9, static_cast<double>(model.unfiltered(conv1)), 0.05e9);
}

TEST(RingCount, Eq5FilteredConv1IsThirtyFiveThousand) {
  // "the same number once non-receptive field values are filtered would be
  // 35 thousand".
  const auto conv1 = alexnet_layer(0);
  EXPECT_EQ(96u * 363u, model.filtered(conv1));
  EXPECT_EQ(34'848u, model.filtered(conv1));
}

TEST(RingCount, SavingsFactorIsNinput150k) {
  // "a saving of more than 150k x" — the ratio is exactly Ninput = 150 528.
  const auto conv1 = alexnet_layer(0);
  EXPECT_DOUBLE_EQ(150'528.0, model.savings_factor(conv1));
  EXPECT_GT(model.savings_factor(conv1), 150'000.0);
}

TEST(RingCount, Conv4PerChannelIs3456) {
  // The paper's conv4 worked number (DESIGN.md inconsistency #1):
  // 3456 = K * m * m = 384 * 9 under the per-channel allocation.
  const auto conv4 = alexnet_layer(3);
  EXPECT_EQ(3456u, model.filtered(conv4, RingAllocation::kPerChannel));
  // Strict Eq. (5) gives K * Nkernel = 384 * 3456 = 1 327 104.
  EXPECT_EQ(1'327'104u, model.filtered(conv4, RingAllocation::kFullKernel));
}

TEST(RingCount, Conv4AreaIsTwoPointTwoSquareMillimeters) {
  // "Considering a microring size of 25um x 25um, it takes an area of
  // 2.2mm^2 to fit all the microrings" (3456 rings).
  const auto conv4 = alexnet_layer(3);
  const double area =
      model.area(model.filtered(conv4, RingAllocation::kPerChannel));
  EXPECT_NEAR(2.2 * u::mm2, area, 0.05 * u::mm2);
}

TEST(RingCount, FilteredNeverExceedsUnfiltered) {
  for (const auto& layer : nn::alexnet_conv_layers()) {
    EXPECT_LE(model.filtered(layer), model.unfiltered(layer)) << layer.name;
    EXPECT_LE(model.filtered(layer, RingAllocation::kPerChannel),
              model.filtered(layer, RingAllocation::kFullKernel))
        << layer.name;
  }
}

TEST(RingCount, AllAlexNetLayersFigure5) {
  // Full Fig. 5 dataset: filtered and unfiltered counts per layer.
  const std::uint64_t expected_filtered[] = {34'848u, 614'400u, 884'736u,
                                             1'327'104u, 884'736u};
  const auto layers = nn::alexnet_conv_layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_EQ(expected_filtered[i], model.filtered(layers[i])) << layers[i].name;
    EXPECT_EQ(layers[i].input_size() * expected_filtered[i],
              model.unfiltered(layers[i]))
        << layers[i].name;
  }
}

TEST(RingCount, MaxFilteredAcrossNetworkSizesTheSharedCore) {
  const auto layers = nn::alexnet_conv_layers();
  // conv4 needs the most rings under Eq. (5) (it holds the most weights).
  EXPECT_EQ(1'327'104u, model.max_filtered(layers));
  // Under per-channel allocation conv1 dominates: K*m*m = 96*121 = 11 616.
  EXPECT_EQ(11'616u, model.max_filtered(layers, RingAllocation::kPerChannel));
}

TEST(RingCount, AreaScalesWithPitch) {
  const RingCountModel fine(10.0 * u::um);
  EXPECT_NEAR(100.0 * u::um2, fine.area(1), 1e-18);
  EXPECT_NEAR(1.0 * u::mm2, fine.area(10'000), 1e-12);
}

TEST(RingCount, RejectsBadPitch) {
  EXPECT_THROW(RingCountModel(0.0), Error);
}

} // namespace
