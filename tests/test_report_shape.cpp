// Regression tests for the shape of the printed OpenLoopReport.
//
// The fault section of print_report once printed "retries", "recovered
// requests", "quarantines", "repairs", "plan epoch bumps", and "retry
// latency p99" rows whenever any fault was injected — including fault-blind
// runs (health_aware == false) where the retry/quarantine machinery is
// structurally disabled and those rows are guaranteed zeros. The rows are
// now gated on the machinery actually acting; these tests pin the gating
// by printing hand-built reports and asserting on the rendered rows.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/batch_runner.hpp"

namespace {

using pcnna::runtime::BatchRunner;
using pcnna::runtime::OpenLoopReport;

std::string print(const OpenLoopReport& report) {
  std::ostringstream os;
  BatchRunner::print_report(report, os, "report shape");
  return os.str();
}

OpenLoopReport base_report() {
  OpenLoopReport r;
  r.pcus = 2;
  r.requests = 10;
  r.served_requests = 10;
  r.makespan = 1.0;
  return r;
}

TEST(ReportShape, NoFaultRunPrintsNoFaultSection) {
  const std::string text = print(base_report());
  EXPECT_EQ(std::string::npos, text.find("fault injections"));
  EXPECT_EQ(std::string::npos, text.find("retries"));
  EXPECT_EQ(std::string::npos, text.find("quarantines"));
}

TEST(ReportShape, FaultBlindRunHidesRetryAndQuarantineRows) {
  OpenLoopReport r = base_report();
  // A fault-blind run: faults landed and destroyed work, but with
  // health_aware == false nothing retried, quarantined, or repaired.
  r.fault.injections = 3;
  r.fault.crash_losses = 2;
  r.fault.transient_corruptions = 1;
  r.fault.lost_requests = 2;
  r.failed_requests = 2;
  r.served_requests = 8;

  const std::string text = print(r);
  EXPECT_NE(std::string::npos, text.find("fault injections"));
  EXPECT_NE(std::string::npos, text.find("crash losses"));
  EXPECT_NE(std::string::npos, text.find("transient corruptions"));
  EXPECT_NE(std::string::npos, text.find("failed requests"));
  // The machinery never acted: no zero-filled feature rows.
  EXPECT_EQ(std::string::npos, text.find("retries"));
  EXPECT_EQ(std::string::npos, text.find("recovered requests"));
  EXPECT_EQ(std::string::npos, text.find("quarantines"));
  EXPECT_EQ(std::string::npos, text.find("repairs"));
  EXPECT_EQ(std::string::npos, text.find("plan epoch bumps"));
  EXPECT_EQ(std::string::npos, text.find("retry latency"));
}

TEST(ReportShape, HealthAwareRunPrintsTheFullFaultSection) {
  OpenLoopReport r = base_report();
  r.fault.injections = 3;
  r.fault.crash_losses = 1;
  r.fault.retries = 2;
  r.fault.recovered_requests = 2;
  r.fault.quarantines = 1;
  r.fault.repairs = 1;
  r.fault.repair_time = 0.25;
  r.fault.plan_epoch_bumps = 1;
  r.retry_latency.count = 2;
  r.retry_latency.p99 = 0.5;

  const std::string text = print(r);
  EXPECT_NE(std::string::npos, text.find("fault injections"));
  EXPECT_NE(std::string::npos, text.find("retries"));
  EXPECT_NE(std::string::npos, text.find("recovered requests"));
  EXPECT_NE(std::string::npos, text.find("quarantines"));
  EXPECT_NE(std::string::npos, text.find("repairs"));
  EXPECT_NE(std::string::npos, text.find("plan epoch bumps"));
  EXPECT_NE(std::string::npos, text.find("retry latency p99"));
}

TEST(ReportShape, RetriesWithoutQuarantinesPrintsOnlyRetryRows) {
  OpenLoopReport r = base_report();
  // Transient faults recovered by retry alone — no crash, no quarantine.
  r.fault.injections = 2;
  r.fault.transient_corruptions = 2;
  r.fault.retries = 2;
  r.fault.recovered_requests = 2;

  const std::string text = print(r);
  EXPECT_NE(std::string::npos, text.find("retries"));
  EXPECT_NE(std::string::npos, text.find("recovered requests"));
  EXPECT_EQ(std::string::npos, text.find("quarantines"));
  EXPECT_EQ(std::string::npos, text.find("plan epoch bumps"));
}

} // namespace
