// Failure injection: stuck ring heaters and their system-level effect.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "photonics/weight_bank.hpp"

namespace {

using namespace pcnna;

phot::WeightBank make_bank(std::size_t channels, std::uint64_t seed = 3) {
  static Rng rng(0);
  rng.reseed(seed);
  return phot::WeightBank(phot::WdmGrid(channels), phot::WeightBankConfig{},
                          rng);
}

TEST(FaultInjection, StuckRingIgnoresRetuning) {
  Rng rng(1);
  phot::MicroringConfig cfg;
  phot::MicroringResonator ring(cfg, rng);
  ring.set_thermal_shift(0.1e-9);
  const double before = ring.thermal_shift();
  ring.set_stuck(true);
  EXPECT_DOUBLE_EQ(before, ring.set_thermal_shift(0.3e-9));
  EXPECT_DOUBLE_EQ(before, ring.thermal_shift());
  ring.set_stuck(false);
  EXPECT_NE(before, ring.set_thermal_shift(0.3e-9));
}

TEST(FaultInjection, BankTracksStuckCount) {
  auto bank = make_bank(6);
  EXPECT_EQ(0u, bank.stuck_rings());
  bank.fail_ring(1);
  bank.fail_ring(4);
  EXPECT_EQ(2u, bank.stuck_rings());
  bank.fail_ring(1, false);
  EXPECT_EQ(1u, bank.stuck_rings());
  EXPECT_THROW(bank.fail_ring(99), Error);
}

TEST(FaultInjection, StuckRingBreaksItsOwnWeightOnly) {
  auto bank = make_bank(6);
  // Program once, then freeze ring 2 and retarget everything.
  bank.calibrate(std::vector<double>{0.0, 0.0, 0.9, 0.0, 0.0, 0.0});
  bank.fail_ring(2);
  const std::vector<double> targets = {0.5, -0.5, -0.9, 0.25, -0.25, 0.75};
  const auto achieved = bank.calibrate(targets);
  // Ring 2 cannot move: still near its old weight, far from the new target.
  EXPECT_GT(std::abs(achieved[2] - targets[2]), 0.5);
  EXPECT_NEAR(0.9, achieved[2], 0.1);
  // Healthy rings stay accurate.
  for (std::size_t i : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_NEAR(targets[i], achieved[i], 0.01) << "ring " << i;
  }
}

TEST(FaultInjection, StuckAtZeroWeightIsBenignForZeroTargets) {
  auto bank = make_bank(4);
  // Fresh banks park at weight 0; a heater stuck there only hurts nonzero
  // targets.
  bank.fail_ring(0);
  const auto achieved = bank.calibrate(std::vector<double>{0.0, 0.4, -0.4, 0.8});
  EXPECT_NEAR(0.0, achieved[0], 0.02);
  EXPECT_NEAR(0.4, achieved[1], 0.01);
}

TEST(FaultInjection, DetectionDegradesGracefullyWithFaults) {
  // MAC error grows with the number of stuck rings but stays bounded by the
  // faulty channels' contribution.
  const std::vector<double> targets = {0.8, -0.8, 0.8, -0.8,
                                       0.8, -0.8, 0.8, -0.8};
  phot::WdmSignal in(8);
  for (std::size_t i = 0; i < 8; ++i) in[i] = 1e-3;

  double prev_err = 0.0;
  for (std::size_t faults = 0; faults <= 4; ++faults) {
    auto bank = make_bank(8, /*seed=*/77);
    for (std::size_t f = 0; f < faults; ++f) bank.fail_ring(f);
    const auto achieved = bank.calibrate(targets);
    double err = 0.0;
    for (std::size_t i = 0; i < 8; ++i)
      err += std::abs(achieved[i] - targets[i]);
    EXPECT_GE(err, prev_err - 1e-9) << faults;
    // Each fault can cost at most the full weight swing of one channel.
    EXPECT_LE(err, static_cast<double>(faults) * 2.0 + 0.1) << faults;
    prev_err = err;
  }
}

TEST(FaultInjection, HealthyBankUnaffectedByUnsticking) {
  auto bank = make_bank(4);
  bank.fail_ring(2);
  bank.fail_ring(2, false);
  const std::vector<double> targets = {0.3, -0.3, 0.6, -0.6};
  const auto achieved = bank.calibrate(targets);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(targets[i], achieved[i], 0.01);
}

} // namespace

// ---------------------------------------------------------------------------
// Engine-level fault injection (PcnnaConfig::stuck_ring_rate).
// ---------------------------------------------------------------------------

#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

namespace {

using core::EngineStats;
using core::OpticalConvEngine;
using core::PcnnaConfig;

TEST(EngineFaults, ZeroRateInjectsNothing) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.stuck_ring_rate = 0.0;
  OpticalConvEngine engine(cfg);
  Rng rng(61);
  nn::ConvLayerParams layer{"f", 8, 3, 1, 1, 2, 4};
  EngineStats stats;
  engine.conv2d(nn::make_input(layer, rng), nn::make_conv_weights(layer, rng),
                {}, 1, 1, &stats);
  EXPECT_EQ(0u, stats.stuck_rings);
}

TEST(EngineFaults, RateProducesProportionalFaults) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.stuck_ring_rate = 0.1;
  cfg.seed = 5;
  OpticalConvEngine engine(cfg);
  Rng rng(62);
  nn::ConvLayerParams layer{"f", 10, 3, 1, 1, 8, 16}; // 16*72 = 1152 rings
  EngineStats stats;
  engine.conv2d(nn::make_input(layer, rng), nn::make_conv_weights(layer, rng),
                {}, 1, 1, &stats);
  const double observed = static_cast<double>(stats.stuck_rings) /
                          static_cast<double>(stats.rings_used);
  EXPECT_NEAR(0.1, observed, 0.04);
}

TEST(EngineFaults, ErrorGrowsWithFaultRateButStaysBounded) {
  Rng rng(63);
  nn::ConvLayerParams layer{"f", 10, 3, 1, 1, 4, 8};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto golden = nn::conv2d_direct(input, weights, {}, 1, 1);

  double prev = -1.0;
  for (double rate : {0.0, 0.05, 0.25}) {
    PcnnaConfig cfg = PcnnaConfig::ideal();
    cfg.stuck_ring_rate = rate;
    cfg.seed = 7;
    OpticalConvEngine engine(cfg);
    const auto out = engine.conv2d(input, weights, {}, 1, 1);
    const double err = pcnna::rmse(out.data(), golden.data());
    EXPECT_GE(err, prev) << rate; // monotone degradation
    prev = err;
    // Even at 25% dead tuners the conv stays within the output scale.
    EXPECT_LT(err, golden.abs_max()) << rate;
  }
}

// A frozen ring heater is a *fabrication* fault, not a calibration one: no
// amount of re-trimming (the repair path's recalibration) can move it, and
// the measured_usable_range re-probe over the live bank — the health check
// a repair would run — sees the collapsed range where the pristine closed
// form would not.
TEST(EngineFaults, FrozenRingSurvivesRecalibrationAndShrinksTheProbe) {
  auto healthy = make_bank(5, /*seed=*/91);
  const double pristine = core::measured_usable_range(healthy);
  ASSERT_GT(pristine, 0.0);

  auto faulty = make_bank(5, /*seed=*/91);
  faulty.fail_ring(2); // the probe reads the middle channel
  // Repeated recalibration passes — what a quarantine repair pays — cannot
  // move the frozen heater off its parked zero weight.
  const std::vector<double> targets = {0.7, -0.7, 0.7, -0.7, 0.7};
  std::vector<double> achieved;
  for (int pass = 0; pass < 3; ++pass) achieved = faulty.calibrate(targets);
  EXPECT_EQ(1u, faulty.stuck_rings());
  EXPECT_NEAR(0.0, achieved[2], 0.05);
  EXPECT_GT(std::abs(achieved[2] - targets[2]), 0.5);

  // The re-probe over the live bank exposes the fault: the middle channel
  // cannot reach either extreme, so the measured range collapses relative
  // to the same bank without the fault.
  const double reprobed = core::measured_usable_range(faulty);
  EXPECT_LT(reprobed, 0.5 * pristine);
}

TEST(EngineFaults, FaultsAreDeterministicPerSeed) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.stuck_ring_rate = 0.1;
  cfg.seed = 99;
  Rng rng(64);
  nn::ConvLayerParams layer{"f", 8, 3, 1, 1, 2, 4};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  OpticalConvEngine a(cfg), b(cfg);
  EXPECT_EQ(a.conv2d(input, weights, {}, 1, 1),
            b.conv2d(input, weights, {}, 1, 1));
}

} // namespace
