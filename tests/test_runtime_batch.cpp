// Batch-parallel runtime: bit-identity with the sequential path, work
// conservation under dynamic sharding, schedule determinism, and the
// double-buffered recalibration overlap model.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::FleetReport;
using runtime::RequestResult;

struct Served {
  nn::Network net;
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Served make_served(std::size_t batch, std::uint64_t seed = 11) {
  Rng rng(seed);
  Served s{nn::tiny_cnn(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  s.inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    s.inputs.push_back(nn::make_network_input(s.net, rng));
  return s;
}

BatchRunnerOptions options(std::size_t pcus, bool simulate_values = true) {
  BatchRunnerOptions o;
  o.num_pcus = pcus;
  o.simulate_values = simulate_values;
  o.seed = 99;
  return o;
}

// The headline contract: a noisy batch sharded across several PCUs is
// bit-identical to serving each request alone on a single PCU, because every
// request carries its own engine seed.
TEST(BatchRunner, BatchedOutputsBitIdenticalToSequential) {
  const Served s = make_served(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults(); // noise ON

  BatchRunner fleet(config, s.net, s.weights, options(/*pcus=*/3));
  const std::vector<RequestResult> batched = fleet.run(s.inputs);

  BatchRunner single(config, s.net, s.weights, options(/*pcus=*/1));
  ASSERT_EQ(s.inputs.size(), batched.size());
  for (std::size_t id = 0; id < s.inputs.size(); ++id) {
    const RequestResult alone = single.run_one(s.inputs[id], id);
    EXPECT_EQ(alone.output, batched[id].output)
        << "request " << id << " differs between batched and sequential";
  }
}

// Order independence on one physical PCU: serving a request after a pile of
// other work gives the same bits as serving it first.
TEST(BatchRunner, ServeHistoryDoesNotLeakIntoResults) {
  const Served s = make_served(4);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner runner(config, s.net, s.weights, options(/*pcus=*/1));
  const RequestResult fresh = runner.run_one(s.inputs[2], 2);
  runner.run(s.inputs); // arbitrary interleaved history
  const RequestResult reserved = runner.run_one(s.inputs[2], 2);
  EXPECT_EQ(fresh.output, reserved.output);
}

TEST(BatchRunner, ShardingConservesWork) {
  const Served s = make_served(17); // prime: uneven split across 4 PCUs
  BatchRunner fleet(PcnnaConfig::paper_defaults(), s.net, s.weights,
                    options(/*pcus=*/4));
  FleetReport report;
  const std::vector<RequestResult> results = fleet.run(s.inputs, &report);

  // Every request served exactly once, returned in id order.
  ASSERT_EQ(17u, results.size());
  for (std::size_t id = 0; id < results.size(); ++id) {
    EXPECT_EQ(id, results[id].id);
    EXPECT_GT(results[id].output.size(), 0u);
  }

  // Physical sharding: per-PCU wall counters sum to the batch.
  std::size_t wall_total = 0;
  for (std::size_t p = 0; p < fleet.pool().size(); ++p)
    wall_total += fleet.pool().pcu(p).stats().requests_served;
  EXPECT_EQ(17u, wall_total);

  // Virtual sharding: deterministic least-loaded schedule = 17 over 4.
  ASSERT_EQ(4u, report.virtual_requests_per_pcu.size());
  EXPECT_EQ(17u, std::accumulate(report.virtual_requests_per_pcu.begin(),
                                 report.virtual_requests_per_pcu.end(),
                                 std::size_t{0}));
  EXPECT_EQ(5u, report.virtual_requests_per_pcu[0]);
  EXPECT_EQ(4u, report.virtual_requests_per_pcu[3]);
}

TEST(BatchRunner, DeterministicUnderFixedSeed) {
  const Served s = make_served(8);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  FleetReport r1, r2;
  BatchRunner a(config, s.net, s.weights, options(/*pcus=*/3));
  BatchRunner b(config, s.net, s.weights, options(/*pcus=*/3));
  const auto out1 = a.run(s.inputs, &r1);
  const auto out2 = b.run(s.inputs, &r2);

  for (std::size_t id = 0; id < out1.size(); ++id)
    EXPECT_EQ(out1[id].output, out2[id].output);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.throughput_rps, r2.throughput_rps);
  EXPECT_EQ(r1.total_energy, r2.total_energy);
  EXPECT_EQ(r1.virtual_requests_per_pcu, r2.virtual_requests_per_pcu);

  // A different base seed changes the noise draw (noise is on), so at least
  // one output must differ.
  BatchRunnerOptions other = options(3);
  other.seed = 1234567;
  BatchRunner c(config, s.net, s.weights, other);
  const auto out3 = c.run(s.inputs);
  bool any_diff = false;
  for (std::size_t id = 0; id < out1.size(); ++id)
    any_diff = any_diff || !(out1[id].output == out3[id].output);
  EXPECT_TRUE(any_diff);
}

// Double buffering hides weight-bank recalibration behind optical compute:
// the steady-state interval is shorter than the serial request time at kFull
// fidelity, and exactly equal under kPaper (which models no recal cost).
TEST(BatchRunner, OverlapShortensStdyStateIntervalAtFullFidelity) {
  const Served s = make_served(2);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunnerOptions full = options(/*pcus=*/1, /*simulate_values=*/false);
  full.fidelity = TimingFidelity::kFull;
  BatchRunner runner(config, s.net, s.weights, full);
  FleetReport report;
  runner.run(s.inputs, &report);
  EXPECT_LT(report.request_interval, report.request_time_serial);
  EXPECT_GT(report.overlap_speedup, 1.0);

  BatchRunnerOptions paper = full;
  paper.fidelity = TimingFidelity::kPaper;
  BatchRunner paper_runner(config, s.net, s.weights, paper);
  FleetReport paper_report;
  paper_runner.run(s.inputs, &paper_report);
  EXPECT_DOUBLE_EQ(paper_report.request_time_serial,
                   paper_report.request_interval);
  EXPECT_DOUBLE_EQ(1.0, paper_report.overlap_speedup);
}

TEST(BatchRunner, FleetThroughputScalesNearLinearly) {
  const Served s = make_served(64);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  for (std::size_t pcus : {2u, 4u, 8u}) {
    BatchRunnerOptions o = options(pcus, /*simulate_values=*/false);
    BatchRunner fleet(config, s.net, s.weights, o);
    FleetReport report;
    fleet.run(s.inputs, &report);
    EXPECT_GE(report.speedup_vs_sequential,
              0.8 * static_cast<double>(pcus))
        << "fleet of " << pcus << " PCUs below 0.8N scaling";
    // Double buffering may fail to help but must never report a slowdown.
    EXPECT_LE(report.request_interval, report.request_time_serial);
    EXPECT_GE(report.overlap_speedup, 1.0);
    // Overlap gains can push the fleet past "ideal" N x serial scaling, but
    // never past N x the per-request overlap speedup.
    EXPECT_LE(report.speedup_vs_sequential,
              static_cast<double>(pcus) * report.overlap_speedup + 1e-9);
  }
}

TEST(BatchRunner, MakespanMatchesClosedForm) {
  const Served s = make_served(10);
  BatchRunnerOptions o = options(/*pcus=*/4, /*simulate_values=*/false);
  BatchRunner fleet(PcnnaConfig::paper_defaults(), s.net, s.weights, o);
  FleetReport report;
  fleet.run(s.inputs, &report);

  // 10 requests over 4 PCUs -> busiest virtual PCU serves ceil(10/4) = 3.
  const double warmup = report.max_latency - 3.0 * report.request_interval;
  EXPECT_NEAR(report.makespan, warmup + 3.0 * report.request_interval,
              1e-12 + 1e-9 * report.makespan);
  EXPECT_NEAR(report.throughput_rps, 10.0 / report.makespan,
              1e-6 * report.throughput_rps);
  EXPECT_GE(report.mean_latency, report.request_interval);
  EXPECT_LE(report.mean_latency, report.max_latency);
}

TEST(BatchRunner, ReportPrintsThroughCommonReport) {
  const Served s = make_served(4);
  BatchRunnerOptions o = options(/*pcus=*/2, /*simulate_values=*/false);
  BatchRunner fleet(PcnnaConfig::paper_defaults(), s.net, s.weights, o);
  FleetReport report;
  fleet.run(s.inputs, &report);

  std::ostringstream os;
  BatchRunner::print_report(report, os, "unit test fleet");
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("unit test fleet"));
  EXPECT_NE(std::string::npos, text.find("throughput"));
  EXPECT_NE(std::string::npos, text.find("per-PCU schedule"));
  EXPECT_NE(std::string::npos, text.find("dispatch policy"));
}

TEST(BatchRunner, EnergyAggregatesAcrossFleet) {
  const Served s = make_served(6);
  BatchRunnerOptions o = options(/*pcus=*/3, /*simulate_values=*/false);
  BatchRunner fleet(PcnnaConfig::paper_defaults(), s.net, s.weights, o);
  FleetReport report;
  fleet.run(s.inputs, &report);
  EXPECT_GT(report.total_energy, 0.0);
  EXPECT_NEAR(report.total_energy, 6.0 * report.energy_per_request,
              1e-9 * report.total_energy);
}

} // namespace
