// Systolic-array (TPU-class) baseline model.
#include <gtest/gtest.h>

#include "baselines/eyeriss.hpp"
#include "baselines/systolic.hpp"
#include "common/units.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;
using baselines::SystolicConfig;
using baselines::SystolicModel;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TEST(Systolic, TilesCoverTheWeightMatrix) {
  const SystolicModel model;
  // conv3: Nkernel = 2304 -> 9 row tiles; K = 384 -> 2 col tiles.
  EXPECT_EQ(18u, model.tiles(alexnet_layer(2)));
  // conv1: Nkernel = 363 -> 2 x 1.
  EXPECT_EQ(2u, model.tiles(alexnet_layer(0)));
}

TEST(Systolic, UtilizationWithinUnitInterval) {
  const SystolicModel model;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double util = model.utilization(layer);
    EXPECT_GT(util, 0.0) << layer.name;
    EXPECT_LE(util, 1.0) << layer.name;
  }
}

TEST(Systolic, SmallLayersWasteTheArray) {
  const SystolicModel model;
  // LeNet c1: 25 x 6 weights on a 256 x 256 array.
  const auto lenet_c1 = nn::lenet5_conv_layers()[0];
  EXPECT_LT(model.utilization(lenet_c1), 0.01);
  // AlexNet conv4 (3456 x 384) fills its tiles far better.
  EXPECT_GT(model.utilization(alexnet_layer(3)), 0.5);
}

TEST(Systolic, LayerTimeMatchesClosedForm) {
  const SystolicModel model;
  const auto conv3 = alexnet_layer(2);
  const double cycles =
      static_cast<double>(model.tiles(conv3)) * (169.0 + 256.0 + 256.0);
  EXPECT_NEAR(cycles / (700.0 * u::MHz * 0.85), model.layer_time(conv3),
              1e-12);
}

TEST(Systolic, BeatsEyerissOnLargeLayersHasMorePes) {
  // A 64k-MAC array should outrun the 168-PE Eyeriss on the big layers.
  const SystolicModel systolic;
  const baselines::EyerissModel eyeriss;
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LT(systolic.layer_time(alexnet_layer(i)),
              eyeriss.layer_time(alexnet_layer(i)))
        << alexnet_layer(i).name;
  }
}

TEST(Systolic, RejectsBadConfig) {
  SystolicConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(SystolicModel{cfg}, Error);
  cfg = {};
  cfg.efficiency = 1.5;
  EXPECT_THROW(SystolicModel{cfg}, Error);
}

} // namespace
