// WDM grid and optical signals.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "photonics/optical_signal.hpp"
#include "photonics/wdm.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(WdmGrid, UniformSpacing) {
  phot::WdmGrid grid(8, 1550.0 * u::nm, 0.8 * u::nm);
  EXPECT_EQ(8u, grid.channels());
  EXPECT_DOUBLE_EQ(1550.0 * u::nm, grid.wavelength(0));
  EXPECT_NEAR(1550.8 * u::nm, grid.wavelength(1), 1e-18);
  EXPECT_NEAR(1555.6 * u::nm, grid.wavelength(7), 1e-18);
  EXPECT_NEAR(0.8 * u::nm * 7, grid.span(), 1e-18);
}

TEST(WdmGrid, FrequencyMatchesC0OverLambda) {
  phot::WdmGrid grid(2);
  EXPECT_NEAR(u::c0 / (1550.0 * u::nm), grid.frequency(0), 1e3);
  // ~100 GHz channel spacing at 0.8 nm around 1550 nm.
  const double df = grid.frequency(0) - grid.frequency(1);
  EXPECT_NEAR(100.0 * u::GHz, df, 1.0 * u::GHz);
}

TEST(WdmGrid, WavelengthsVectorMatches) {
  phot::WdmGrid grid(4);
  const auto ws = grid.wavelengths();
  ASSERT_EQ(4u, ws.size());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(grid.wavelength(i), ws[i]);
}

TEST(WdmGrid, RejectsDegenerateConfigs) {
  EXPECT_THROW(phot::WdmGrid(0), Error);
  EXPECT_THROW(phot::WdmGrid(4, 0.0), Error);
  EXPECT_THROW(phot::WdmGrid(4, 1550 * u::nm, 0.0), Error);
}

TEST(WdmSignal, TotalPowerSums) {
  phot::WdmSignal sig(3);
  sig[0] = 1e-3;
  sig[1] = 2e-3;
  sig[2] = 0.5e-3;
  EXPECT_NEAR(3.5e-3, sig.total_power(), 1e-15);
}

TEST(WdmSignal, AttenuationInDb) {
  phot::WdmSignal sig(2);
  sig[0] = 1.0;
  sig[1] = 2.0;
  sig.attenuate_db(3.0103); // ~half power
  EXPECT_NEAR(0.5, sig[0], 1e-4);
  EXPECT_NEAR(1.0, sig[1], 2e-4);
}

TEST(WdmSignal, NegativePowerRejected) {
  EXPECT_THROW(phot::WdmSignal({1.0, -0.5}), Error);
  phot::WdmSignal sig(1);
  EXPECT_THROW(sig.attenuate_db(-1.0), Error);
  EXPECT_THROW(sig.scale(-2.0), Error);
}

TEST(WdmSignal, ScaleIsLinear) {
  phot::WdmSignal sig(2);
  sig[0] = 1.0;
  sig[1] = 4.0;
  sig.scale(0.25);
  EXPECT_DOUBLE_EQ(0.25, sig[0]);
  EXPECT_DOUBLE_EQ(1.0, sig[1]);
}

} // namespace
