// NCHW tensor.
#include <gtest/gtest.h>

#include "nn/tensor.hpp"

namespace {

using pcnna::nn::Shape4;
using pcnna::nn::Tensor;

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape4{1, 2, 3, 4});
  EXPECT_EQ(24u, t.size());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(0.0, t[i]);
}

TEST(Tensor, RowMajorNchwIndexing) {
  Tensor t(Shape4{2, 3, 4, 5});
  // index(n,c,h,w) = ((n*C + c)*H + h)*W + w
  EXPECT_EQ(0u, t.index(0, 0, 0, 0));
  EXPECT_EQ(1u, t.index(0, 0, 0, 1));
  EXPECT_EQ(5u, t.index(0, 0, 1, 0));
  EXPECT_EQ(20u, t.index(0, 1, 0, 0));
  EXPECT_EQ(60u, t.index(1, 0, 0, 0));
  EXPECT_EQ(t.size() - 1, t.index(1, 2, 3, 4));
}

TEST(Tensor, AtReadsAndWrites) {
  Tensor t(Shape4{1, 2, 2, 2});
  t.at(0, 1, 1, 0) = 42.0;
  EXPECT_DOUBLE_EQ(42.0, t.at(0, 1, 1, 0));
  EXPECT_DOUBLE_EQ(42.0, t[t.index(0, 1, 1, 0)]);
}

TEST(Tensor, ConstructFromData) {
  Tensor t(Shape4{1, 1, 2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(3.0, t.at(0, 0, 1, 0));
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape4{1, 1, 2, 2}, {1.0}), pcnna::Error);
}

TEST(Tensor, MinMaxAbsMax) {
  Tensor t(Shape4{1, 1, 1, 4}, {-5.0, 2.0, 3.0, -1.0});
  EXPECT_DOUBLE_EQ(-5.0, t.min());
  EXPECT_DOUBLE_EQ(3.0, t.max());
  EXPECT_DOUBLE_EQ(5.0, t.abs_max());
}

TEST(Tensor, Fill) {
  Tensor t(Shape4{1, 1, 2, 2});
  t.fill(7.5);
  EXPECT_DOUBLE_EQ(7.5, t.min());
  EXPECT_DOUBLE_EQ(7.5, t.max());
}

TEST(Tensor, ShapeEquality) {
  EXPECT_EQ((Shape4{1, 2, 3, 4}), (Shape4{1, 2, 3, 4}));
  EXPECT_NE((Shape4{1, 2, 3, 4}), (Shape4{1, 2, 4, 3}));
  EXPECT_EQ(24u, (Shape4{1, 2, 3, 4}).elements());
}

TEST(Tensor, EqualityComparesShapeAndData) {
  Tensor a(Shape4{1, 1, 1, 2}, {1.0, 2.0});
  Tensor b(Shape4{1, 1, 1, 2}, {1.0, 2.0});
  Tensor c(Shape4{1, 1, 2, 1}, {1.0, 2.0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(0u, t.size());
}

} // namespace
