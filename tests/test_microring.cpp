// Microring resonator: Lorentzian response, thermal tuning, quantization,
// fabrication disorder.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/microring.hpp"

namespace {

using namespace pcnna;
namespace u = units;

phot::MicroringResonator make_ring(phot::MicroringConfig cfg = {},
                                   std::uint64_t seed = 1) {
  Rng rng(seed);
  return phot::MicroringResonator(cfg, rng);
}

TEST(Microring, LinewidthFromQ) {
  phot::MicroringConfig cfg;
  cfg.design_wavelength = 1550.0 * u::nm;
  cfg.q_factor = 20'000.0;
  auto ring = make_ring(cfg);
  EXPECT_NEAR(1550.0 * u::nm / 20'000.0, ring.linewidth(), 1e-20);
}

TEST(Microring, OnResonanceDropsMaxFraction) {
  phot::MicroringConfig cfg;
  cfg.max_drop = 0.9;
  auto ring = make_ring(cfg);
  EXPECT_NEAR(0.9, ring.drop_fraction(ring.resonance()), 1e-12);
}

TEST(Microring, LorentzianHalfWidthAtHalfMax) {
  auto ring = make_ring();
  const double half = 0.5 * ring.linewidth();
  const double on = ring.drop_fraction(ring.resonance());
  EXPECT_NEAR(on / 2.0, ring.drop_fraction(ring.resonance() + half), on * 1e-9);
  EXPECT_NEAR(on / 2.0, ring.drop_fraction(ring.resonance() - half), on * 1e-9);
}

TEST(Microring, DropFallsOffSymmetricallyAndMonotonically) {
  auto ring = make_ring();
  const double res = ring.resonance();
  double prev = ring.drop_fraction(res);
  for (int i = 1; i <= 20; ++i) {
    const double delta = i * 0.02 * u::nm;
    const double d = ring.drop_fraction(res + delta);
    EXPECT_LT(d, prev);
    EXPECT_NEAR(d, ring.drop_fraction(res - delta), d * 1e-9);
    prev = d;
  }
}

TEST(Microring, ThroughPlusDropConserveEnergyMinusLoss) {
  phot::MicroringConfig cfg;
  cfg.insertion_loss_db = 0.0;
  auto ring = make_ring(cfg);
  for (double delta : {0.0, 0.01, 0.1, 0.5}) {
    const double lambda = ring.resonance() + delta * u::nm;
    EXPECT_NEAR(1.0, ring.drop_fraction(lambda) + ring.through_fraction(lambda),
                1e-12);
  }
}

TEST(Microring, InsertionLossReducesThrough) {
  phot::MicroringConfig cfg;
  cfg.insertion_loss_db = 3.0;
  auto ring = make_ring(cfg);
  const double far = ring.resonance() + 100.0 * u::nm;
  // -3 dB is a factor of 0.50119, not exactly one half.
  EXPECT_NEAR(from_db(-3.0), ring.through_fraction(far), 1e-4);
}

TEST(Microring, ThermalShiftMovesResonanceRed) {
  auto ring = make_ring();
  const double before = ring.resonance();
  // Applied shift matches the request to within one quantization step.
  const double step =
      ring.config().max_detuning / ((std::uint64_t{1} << 12) - 1);
  const double applied = ring.set_thermal_shift(0.2 * u::nm);
  EXPECT_NEAR(0.2 * u::nm, applied, step);
  EXPECT_NEAR(before + applied, ring.resonance(), 1e-18);
}

TEST(Microring, ShiftClampsToRange) {
  phot::MicroringConfig cfg;
  cfg.max_detuning = 0.4 * u::nm;
  auto ring = make_ring(cfg);
  EXPECT_LE(ring.set_thermal_shift(5.0 * u::nm), 0.4 * u::nm + 1e-15);
  EXPECT_DOUBLE_EQ(0.0, ring.set_thermal_shift(-1.0 * u::nm));
}

TEST(Microring, ShiftIsQuantized) {
  phot::MicroringConfig cfg;
  cfg.tuning_bits = 4; // 15 steps over the range
  cfg.max_detuning = 0.4 * u::nm;
  cfg.fab_sigma = 0.0;
  auto ring = make_ring(cfg);
  const double step = 0.4 * u::nm / 15.0;
  const double applied = ring.set_thermal_shift(0.37 * step);
  EXPECT_NEAR(0.0, applied, 1e-18); // rounds down to level 0
  const double applied2 = ring.set_thermal_shift(0.63 * step);
  EXPECT_NEAR(step, applied2, 1e-18); // rounds up to level 1
}

TEST(Microring, HeaterPowerProportionalToShift) {
  phot::MicroringConfig cfg;
  cfg.thermal_efficiency = 0.25 * u::nm / u::mW;
  auto ring = make_ring(cfg);
  ring.set_thermal_shift(0.25 * u::nm);
  EXPECT_NEAR(1.0 * u::mW, ring.heater_power(), 0.01 * u::mW);
}

TEST(Microring, FabricationDisorderShiftsNaturalResonance) {
  phot::MicroringConfig cfg;
  cfg.fab_sigma = 0.05 * u::nm;
  Rng rng(7);
  int moved = 0;
  for (int i = 0; i < 32; ++i) {
    phot::MicroringResonator ring(cfg, rng);
    if (std::abs(ring.natural_resonance() - cfg.design_wavelength) > 1e-15)
      ++moved;
  }
  EXPECT_EQ(32, moved);
}

TEST(Microring, NoDisorderWhenSigmaZero) {
  auto ring = make_ring();
  EXPECT_DOUBLE_EQ(ring.config().design_wavelength, ring.natural_resonance());
}

TEST(Microring, AreaIsFootprintSquared) {
  phot::MicroringConfig cfg;
  cfg.footprint_side = 25.0 * u::um;
  auto ring = make_ring(cfg);
  EXPECT_NEAR(625.0 * u::um2, ring.area(), 1e-18);
}

TEST(Microring, RejectsBadConfig) {
  Rng rng(1);
  phot::MicroringConfig cfg;
  cfg.q_factor = 0.5;
  EXPECT_THROW(phot::MicroringResonator(cfg, rng), Error);
  cfg = {};
  cfg.max_drop = 1.5;
  EXPECT_THROW(phot::MicroringResonator(cfg, rng), Error);
  cfg = {};
  cfg.tuning_bits = 0;
  EXPECT_THROW(phot::MicroringResonator(cfg, rng), Error);
  cfg = {};
  cfg.tuning_bits = 50;
  EXPECT_THROW(phot::MicroringResonator(cfg, rng), Error);
}

} // namespace
