// Full-system accelerator: network runs, fidelity metrics, reports.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "core/throughput.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::Accelerator;
using core::PcnnaConfig;
using core::TimingFidelity;

struct NetData {
  nn::Network net;
  nn::NetWeights weights;
  nn::Tensor input;
};

NetData make_tiny(std::uint64_t seed = 11) {
  Rng rng(seed);
  NetData d{nn::tiny_cnn(), {}, {}};
  d.weights = nn::make_network_weights(d.net, rng);
  d.input = nn::make_network_input(d.net, rng);
  return d;
}

TEST(Accelerator, IdealRunMatchesReferenceEndToEnd) {
  Accelerator acc(PcnnaConfig::ideal());
  const NetData d = make_tiny();
  const auto report = acc.run(d.net, d.weights, d.input);
  EXPECT_LT(report.output_max_abs_err, 1e-7);
  EXPECT_TRUE(report.argmax_match);
  ASSERT_EQ(2u, report.conv_layers.size());
  for (const auto& layer : report.conv_layers) {
    EXPECT_LT(layer.max_abs_err_vs_reference, 1e-7) << layer.layer_name;
  }
}

TEST(Accelerator, PaperDefaultsKeepClassificationUsable) {
  Accelerator acc(PcnnaConfig::paper_defaults());
  const NetData d = make_tiny();
  const auto report = acc.run(d.net, d.weights, d.input);
  // Analog noise is bounded; the output distribution stays close.
  EXPECT_LT(report.output_rmse, 0.15);
  EXPECT_GT(report.output_rmse, 0.0);
}

TEST(Accelerator, TimingAndEnergyFilledPerConvLayer) {
  Accelerator acc(PcnnaConfig::paper_defaults());
  const NetData d = make_tiny();
  const auto report = acc.run(d.net, d.weights, d.input);
  for (const auto& layer : report.conv_layers) {
    EXPECT_GT(layer.timing.optical_core_time, 0.0) << layer.layer_name;
    EXPECT_GE(layer.timing.full_system_time, layer.timing.optical_core_time);
    EXPECT_GT(layer.energy.total(), 0.0);
    EXPECT_GT(layer.engine.locations, 0u);
  }
  EXPECT_GT(report.total_full_system_time, 0.0);
  EXPECT_GT(report.total_energy, 0.0);
}

TEST(Accelerator, SimulateValuesFalseSkipsEngineButKeepsTiming) {
  Accelerator acc(PcnnaConfig::paper_defaults());
  const NetData d = make_tiny();
  const auto report = acc.run(d.net, d.weights, d.input,
                              /*simulate_values=*/false);
  // Values equal the reference exactly; timing still modeled.
  EXPECT_DOUBLE_EQ(0.0, report.output_max_abs_err);
  EXPECT_TRUE(report.argmax_match);
  for (const auto& layer : report.conv_layers) {
    EXPECT_GT(layer.timing.full_system_time, 0.0);
    EXPECT_EQ(0u, layer.engine.locations); // engine untouched
  }
}

TEST(Accelerator, RunConvSingleLayerReport) {
  Accelerator acc(PcnnaConfig::ideal());
  Rng rng(13);
  nn::ConvLayerParams params{"solo", 8, 3, 1, 1, 2, 4};
  const auto input = nn::make_input(params, rng);
  const auto weights = nn::make_conv_weights(params, rng);
  const auto bias = nn::make_conv_bias(params, rng);
  core::LayerRunReport report;
  const auto out = acc.run_conv(input, weights, bias, 1, 1, &report);
  EXPECT_EQ(64u, out.size() / 4);
  EXPECT_LT(report.max_abs_err_vs_reference, 1e-7);
  EXPECT_GT(report.timing.full_system_time, 0.0);
  EXPECT_GT(report.energy.total(), 0.0);
}

TEST(Accelerator, FidelityChoiceChangesTotals) {
  const NetData d = make_tiny();
  Accelerator paper(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  Accelerator full(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  const auto rp = paper.run(d.net, d.weights, d.input, false, false);
  const auto rf = full.run(d.net, d.weights, d.input, false, false);
  EXPECT_GT(rf.total_full_system_time, rp.total_full_system_time);
}

TEST(Accelerator, MismatchedInputThrows) {
  Accelerator acc(PcnnaConfig::ideal());
  const NetData d = make_tiny();
  nn::Tensor bad(nn::Shape4{1, 2, 9, 9});
  EXPECT_THROW(acc.run(d.net, d.weights, bad), Error);
}

// Batch aggregates moved off the deprecated Accelerator::run_batch onto
// runtime::BatchRunner / FleetReport (ROADMAP deprecation plan step 1):
// request_time_serial is the old time_per_image, makespan_sequential the
// old total_time.
TEST(Accelerator, FleetReportBatchScalesLinearly) {
  const NetData d = make_tiny();
  runtime::BatchRunnerOptions options;
  options.num_pcus = 1;
  options.fidelity = TimingFidelity::kPaper;
  options.simulate_values = false;
  options.double_buffer = false;
  runtime::BatchRunner runner(PcnnaConfig::paper_defaults(), d.net, d.weights,
                              options);

  runtime::FleetReport one, many;
  runner.run({d.input}, &one);
  runner.run(std::vector<nn::Tensor>(6, d.input), &many);
  EXPECT_DOUBLE_EQ(one.request_time_serial, many.request_time_serial);
  EXPECT_NEAR(6.0 * one.makespan_sequential, many.makespan_sequential,
              1e-12 * many.makespan_sequential);
  EXPECT_DOUBLE_EQ(one.energy_per_request, many.energy_per_request);
  EXPECT_GT(one.request_time_serial, 0.0);
  // The old run_batch's images_per_second, folded into the fleet report.
  EXPECT_DOUBLE_EQ(1.0 / one.request_time_serial, one.sequential_rps);
  EXPECT_DOUBLE_EQ(one.sequential_rps, many.sequential_rps);
}

// Deliberate behavior change from the deprecated run_batch (which threw on
// zero images): for a serving fleet an empty batch is a valid degenerate
// case — no requests, no results, a zero-request report.
TEST(Accelerator, FleetReportEmptyBatchIsValid) {
  const NetData d = make_tiny();
  runtime::BatchRunnerOptions options;
  options.num_pcus = 1;
  options.simulate_values = false;
  runtime::BatchRunner runner(PcnnaConfig::paper_defaults(), d.net, d.weights,
                              options);
  runtime::FleetReport report;
  const auto results = runner.run({}, &report);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(0u, report.requests);
  EXPECT_DOUBLE_EQ(0.0, report.makespan);
}

TEST(Accelerator, FleetReportMatchesSingleCorePipelineInterval) {
  // Cross-check with ThroughputModel: one core's pipeline interval equals
  // the sequential per-image conv time reported by the fleet.
  const NetData d = make_tiny();
  runtime::BatchRunnerOptions options;
  options.num_pcus = 1;
  options.fidelity = TimingFidelity::kPaper;
  options.simulate_values = false;
  options.double_buffer = false;
  runtime::BatchRunner runner(PcnnaConfig::paper_defaults(), d.net, d.weights,
                              options);
  runtime::FleetReport report;
  runner.run({d.input}, &report);

  const core::ThroughputModel throughput(PcnnaConfig::paper_defaults());
  const auto pipeline = throughput.pipeline(d.net.conv_layers(), 1);
  EXPECT_NEAR(pipeline.interval, report.request_time_serial,
              1e-12 * pipeline.interval);
}

TEST(Accelerator, ReferenceOutputPopulatedOnlyWhenComparing) {
  Accelerator acc(PcnnaConfig::ideal());
  const NetData d = make_tiny();
  const auto with_ref = acc.run(d.net, d.weights, d.input, true, true);
  EXPECT_FALSE(with_ref.reference_output.empty());
  const auto without_ref = acc.run(d.net, d.weights, d.input, true, false);
  EXPECT_TRUE(without_ref.reference_output.empty());
}

} // namespace
