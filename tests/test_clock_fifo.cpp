// Clock domains and FIFO buffers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "electronics/clock.hpp"
#include "electronics/fifo.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Clock, PeriodAndCycles) {
  elec::ClockDomain fast("optical", 5.0 * u::GHz);
  EXPECT_DOUBLE_EQ(200.0 * u::ps, fast.period());
  EXPECT_DOUBLE_EQ(200.0 * u::ns, fast.time_for(1000));
  EXPECT_EQ(1000u, fast.cycles_for(200.0 * u::ns));
}

TEST(Clock, CyclesRoundUp) {
  elec::ClockDomain clk("c", 1.0 * u::GHz);
  EXPECT_EQ(2u, clk.cycles_for(1.5 * u::ns));
  EXPECT_EQ(1u, clk.cycles_for(1.0 * u::ns));
  EXPECT_EQ(0u, clk.cycles_for(0.0));
}

TEST(Clock, PaperTwoDomainArrangement) {
  elec::ClockPair pair;
  EXPECT_DOUBLE_EQ(5.0 * u::GHz, pair.fast.frequency());
  EXPECT_GT(pair.fast.frequency(), pair.main.frequency());
}

TEST(Clock, RejectsZeroFrequency) {
  EXPECT_THROW(elec::ClockDomain("x", 0.0), Error);
}

TEST(Fifo, PushPopOccupancy) {
  elec::FifoBuffer fifo("input", 100);
  EXPECT_TRUE(fifo.empty());
  fifo.push(60);
  EXPECT_EQ(60u, fifo.size());
  EXPECT_EQ(40u, fifo.free_space());
  fifo.pop(20);
  EXPECT_EQ(40u, fifo.size());
  EXPECT_FALSE(fifo.full());
}

TEST(Fifo, OverflowAndUnderflowThrow) {
  elec::FifoBuffer fifo("x", 10);
  fifo.push(10);
  EXPECT_TRUE(fifo.full());
  EXPECT_THROW(fifo.push(1), Error);
  fifo.pop(10);
  EXPECT_THROW(fifo.pop(1), Error);
}

TEST(Fifo, HighWaterMarkPersists) {
  elec::FifoBuffer fifo("x", 100);
  fifo.push(70);
  fifo.pop(70);
  fifo.push(10);
  EXPECT_EQ(70u, fifo.high_water_mark());
}

TEST(Fifo, ThroughputAccounting) {
  elec::FifoBuffer fifo("x", 100);
  fifo.push(30);
  fifo.pop(30);
  fifo.push(50);
  EXPECT_EQ(80u, fifo.total_pushed());
}

TEST(Fifo, ClearEmptiesButKeepsStats) {
  elec::FifoBuffer fifo("x", 10);
  fifo.push(8);
  fifo.clear();
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(8u, fifo.high_water_mark());
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(elec::FifoBuffer("x", 0), Error);
}

} // namespace
