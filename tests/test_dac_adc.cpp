// Data converters: quantization, rate, energy.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "electronics/adc.hpp"
#include "electronics/dac.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Dac, LevelsFromBits) {
  elec::DacConfig cfg;
  cfg.bits = 8;
  elec::Dac dac(cfg);
  EXPECT_EQ(256u, dac.levels());
}

TEST(Dac, QuantizesToGrid) {
  elec::DacConfig cfg;
  cfg.bits = 2; // levels at 0, 1/3, 2/3, 1
  elec::Dac dac(cfg);
  EXPECT_DOUBLE_EQ(0.0, dac.convert(0.0));
  EXPECT_DOUBLE_EQ(1.0, dac.convert(1.0));
  EXPECT_NEAR(1.0 / 3.0, dac.convert(0.3), 1e-12);
  EXPECT_NEAR(2.0 / 3.0, dac.convert(0.6), 1e-12);
}

TEST(Dac, ClipsOutOfRange) {
  elec::Dac dac{elec::DacConfig{}};
  EXPECT_DOUBLE_EQ(0.0, dac.convert(-0.5));
  EXPECT_DOUBLE_EQ(1.0, dac.convert(1.5));
}

TEST(Dac, QuantizationErrorBoundedByHalfLsb) {
  elec::DacConfig cfg;
  cfg.bits = 6;
  elec::Dac dac(cfg);
  for (int i = 0; i <= 1000; ++i) {
    const double x = i / 1000.0;
    EXPECT_LE(std::abs(dac.convert(x) - x), dac.lsb() / 2.0 + 1e-15);
  }
}

TEST(Dac, SixteenBitIsTransparentAtDoublePrecisionTolerances) {
  elec::Dac dac{elec::DacConfig{}}; // paper's 16 b DAC
  EXPECT_LT(dac.lsb(), 2e-5);
}

TEST(Dac, ConversionTimeAtPaperRate) {
  elec::Dac dac{elec::DacConfig{}}; // 6 GSa/s
  // Eq. (8) worked example: ~116 conversions take ~19.3 ns.
  EXPECT_NEAR(116.0 / (6.0 * u::GSa), dac.conversion_time(116), 1e-12);
}

TEST(Dac, ConversionEnergy) {
  elec::DacConfig cfg;
  cfg.power = 300.0 * u::mW;
  cfg.sample_rate = 6.0 * u::GSa;
  elec::Dac dac(cfg);
  EXPECT_NEAR(0.3 * 1000.0 / 6e9, dac.conversion_energy(1000), 1e-15);
}

TEST(Dac, FullScaleScalesOutput) {
  elec::DacConfig cfg;
  cfg.full_scale = 2.5;
  elec::Dac dac(cfg);
  EXPECT_NEAR(2.5, dac.convert(1.0), 1e-12);
  EXPECT_NEAR(1.25, dac.convert(0.5), 1e-4);
}

TEST(Adc, SignedQuantization) {
  elec::AdcConfig cfg;
  cfg.bits = 8;
  elec::Adc adc(cfg);
  EXPECT_NEAR(0.0, adc.convert(0.0), adc.lsb());
  EXPECT_NEAR(0.5, adc.convert(0.5), adc.lsb());
  EXPECT_NEAR(-0.5, adc.convert(-0.5), adc.lsb());
  EXPECT_DOUBLE_EQ(1.0, adc.convert(1.0));
  EXPECT_DOUBLE_EQ(-1.0, adc.convert(-1.0));
}

TEST(Adc, ClipsBeyondFullScale) {
  elec::Adc adc{elec::AdcConfig{}};
  EXPECT_DOUBLE_EQ(1.0, adc.convert(3.0));
  EXPECT_DOUBLE_EQ(-1.0, adc.convert(-3.0));
}

TEST(Adc, ErrorBoundedByHalfLsb) {
  elec::AdcConfig cfg;
  cfg.bits = 8;
  elec::Adc adc(cfg);
  for (int i = -100; i <= 100; ++i) {
    const double x = i / 100.0;
    EXPECT_LE(std::abs(adc.convert(x) - x), adc.lsb() / 2.0 + 1e-15);
  }
}

TEST(Adc, PaperRateTiming) {
  elec::Adc adc{elec::AdcConfig{}}; // 2.8 GSa/s [17]
  // Digitizing 384 kernel outputs (conv4) takes ~137 ns on one ADC.
  EXPECT_NEAR(384.0 / 2.8e9, adc.conversion_time(384), 1e-12);
}

TEST(Adc, PaperPowerSpec) {
  elec::Adc adc{elec::AdcConfig{}};
  EXPECT_NEAR(44.6 * u::mW, adc.config().power, 1e-6);
}

TEST(Converters, RejectBadConfigs) {
  elec::DacConfig d;
  d.bits = 0;
  EXPECT_THROW(elec::Dac{d}, Error);
  d = {};
  d.sample_rate = 0.0;
  EXPECT_THROW(elec::Dac{d}, Error);
  elec::AdcConfig a;
  a.bits = 30;
  EXPECT_THROW(elec::Adc{a}, Error);
  a = {};
  a.full_scale = 0.0;
  EXPECT_THROW(elec::Adc{a}, Error);
}

} // namespace
