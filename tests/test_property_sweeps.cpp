// Parameterized property tests: invariants that must hold across layer
// shapes, allocations, and hardware configurations.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/noise_budget.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/ring_count.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::RingAllocation;
using core::RingCountModel;
using core::Scheduler;
using core::TimingFidelity;
using core::TimingModel;

// ---------------------------------------------------------------------------
// Sweep over a grid of layer shapes.
// ---------------------------------------------------------------------------

struct ShapeCase {
  nn::ConvLayerParams layer;
};

void PrintTo(const ShapeCase& c, std::ostream* os) { *os << c.layer.name; }

class LayerShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(LayerShapeSweep, FilteredRingsNeverExceedUnfiltered) {
  const RingCountModel model;
  const auto& layer = GetParam().layer;
  EXPECT_LE(model.filtered(layer), model.unfiltered(layer));
  EXPECT_LE(model.filtered(layer, RingAllocation::kPerChannel),
            model.filtered(layer, RingAllocation::kFullKernel));
  EXPECT_DOUBLE_EQ(static_cast<double>(layer.input_size()),
                   model.savings_factor(layer));
}

TEST_P(LayerShapeSweep, OutputAlgebraConsistentWithGoldenConv) {
  const auto& layer = GetParam().layer;
  Rng rng(101);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto out = nn::conv2d_direct(input, weights, {}, layer.s, layer.p);
  EXPECT_EQ(layer.output_side(), out.shape().h);
  EXPECT_EQ(layer.output_side(), out.shape().w);
  EXPECT_EQ(layer.K, out.shape().c);
  EXPECT_EQ(layer.output_size(), out.size());
}

TEST_P(LayerShapeSweep, SchedulerCoversEveryReceptiveFieldValueOnce) {
  const auto& layer = GetParam().layer;
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const auto plan = sched.plan(layer);
  std::uint64_t prev_end = 0;
  for (const auto& slice : plan.groups) {
    EXPECT_EQ(prev_end, slice.begin);
    prev_end = slice.end;
  }
  const std::uint64_t per_pass = plan.allocation == RingAllocation::kFullKernel
                                     ? layer.kernel_size()
                                     : layer.m * layer.m;
  EXPECT_EQ(per_pass, prev_end);
  EXPECT_EQ(layer.num_locations(), plan.locations);
}

TEST_P(LayerShapeSweep, PaperTimingInvariants) {
  const auto& layer = GetParam().layer;
  const TimingModel model(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const auto t = model.layer_time(layer);
  // Eq. (7) exactly.
  EXPECT_DOUBLE_EQ(static_cast<double>(layer.num_locations()) / 5e9,
                   t.optical_core_time);
  // Electronics can only slow the optical core down.
  EXPECT_GE(t.full_system_time, t.optical_core_time);
}

TEST_P(LayerShapeSweep, OpticalTimeIndependentOfK) {
  nn::ConvLayerParams layer = GetParam().layer;
  const TimingModel model(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const double t_base = model.layer_time(layer).optical_core_time;
  layer.K *= 7;
  EXPECT_DOUBLE_EQ(t_base, model.layer_time(layer).optical_core_time);
}

TEST_P(LayerShapeSweep, FullFidelityDominatesPaperFidelity) {
  const auto& layer = GetParam().layer;
  const TimingModel paper(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const TimingModel full(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  EXPECT_GE(full.layer_time(layer).full_system_time,
            paper.layer_time(layer).full_system_time);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayerShapeSweep,
    ::testing::Values(
        ShapeCase{{"s3x3", 16, 3, 1, 1, 8, 16}},
        ShapeCase{{"s5x5", 16, 5, 2, 1, 4, 8}},
        ShapeCase{{"s1x1", 12, 1, 0, 1, 16, 32}},
        ShapeCase{{"s7x7s2", 28, 7, 3, 2, 3, 12}},
        ShapeCase{{"s11x11s4", 64, 11, 2, 4, 3, 16}},
        ShapeCase{{"nopad", 10, 3, 0, 1, 2, 4}},
        ShapeCase{{"bigstride", 17, 3, 0, 3, 5, 6}},
        ShapeCase{{"deep", 8, 3, 1, 1, 96, 4}}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.layer.name;
    });

// ---------------------------------------------------------------------------
// DAC-count sweep: Eq. (8) monotonicity.
// ---------------------------------------------------------------------------

class DacSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DacSweep, MoreDacsNeverSlower) {
  PcnnaConfig fewer = PcnnaConfig::paper_defaults();
  PcnnaConfig more = PcnnaConfig::paper_defaults();
  fewer.num_input_dacs = GetParam();
  more.num_input_dacs = GetParam() * 2;
  const TimingModel m_fewer(fewer, TimingFidelity::kPaper);
  const TimingModel m_more(more, TimingFidelity::kPaper);
  for (const auto& layer : nn::alexnet_conv_layers()) {
    EXPECT_LE(m_more.layer_time(layer).full_system_time,
              m_fewer.layer_time(layer).full_system_time)
        << layer.name << " NDAC=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(NdacGrid, DacSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 50));

// ---------------------------------------------------------------------------
// Functional-engine fidelity sweep over shapes (ideal config must match the
// golden convolution everywhere).
// ---------------------------------------------------------------------------

class EngineShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(EngineShapeSweep, IdealEngineMatchesGolden) {
  const auto& layer = GetParam().layer;
  Rng rng(202);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto bias = nn::make_conv_bias(layer, rng);
  core::OpticalConvEngine engine(PcnnaConfig::ideal());
  const auto out = engine.conv2d(input, weights, bias, layer.s, layer.p);
  const auto ref = nn::conv2d_direct(input, weights, bias, layer.s, layer.p);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6) << layer.name;
}

INSTANTIATE_TEST_SUITE_P(
    EngineShapes, EngineShapeSweep,
    ::testing::Values(ShapeCase{{"e3x3", 8, 3, 1, 1, 2, 4}},
                      ShapeCase{{"e5x5s2", 9, 5, 2, 2, 3, 2}},
                      ShapeCase{{"e1x1", 6, 1, 0, 1, 4, 8}},
                      ShapeCase{{"enopad", 7, 3, 0, 1, 2, 3}},
                      ShapeCase{{"estride3", 11, 3, 1, 3, 2, 2}}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.layer.name;
    });

// ---------------------------------------------------------------------------
// ADC-resolution sweep: functional error shrinks monotonically (within
// tolerance) as the back-end converter gains bits.
// ---------------------------------------------------------------------------

class AdcBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdcBitsSweep, ErrorBoundedByLsbScale) {
  const int bits = GetParam();
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.enable_quantization = true;
  cfg.adc.bits = bits;
  cfg.input_dac.bits = 16;
  cfg.weight_dac.bits = 16;

  nn::ConvLayerParams layer{"adc", 8, 3, 1, 1, 2, 4};
  Rng rng(303);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  core::OpticalConvEngine engine(cfg);
  const auto out = engine.conv2d(input, weights, {}, 1, 1);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 1);

  const double n_kernel = static_cast<double>(layer.kernel_size());
  const double fs = cfg.adc_headroom * std::sqrt(n_kernel);
  const double lsb = 2.0 * fs / (std::pow(2.0, bits) - 1.0);
  const double scale = weights.abs_max() * input.abs_max();
  // Half-LSB quantization, times the ~1/denom electronic recovery factor,
  // plus slack for the 16 b front end.
  EXPECT_LT(nn::max_abs_diff(out, ref), (lsb / 2.0 + 2e-3) * scale * 1.3)
      << bits << " bits";
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsSweep, ::testing::Values(6, 8, 10, 12, 16));


// ---------------------------------------------------------------------------
// Noise-budget property sweeps: SNR monotonicity across the design space.
// ---------------------------------------------------------------------------


class FanoutSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FanoutSweep, SnrDegradesMonotonicallyWithFanout) {
  const core::NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const std::size_t fanout = GetParam();
  const auto narrow = model.pass_budget(64, 1, fanout, 64);
  const auto wide = model.pass_budget(64, 1, fanout * 4, 64);
  EXPECT_GT(narrow.snr_db, wide.snr_db) << fanout;
  // Signal current per MAC falls linearly with the broadcast split.
  EXPECT_GT(narrow.denom_current, wide.denom_current) << fanout;
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep,
                         ::testing::Values(2, 8, 32, 96, 256));

class ChannelsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelsSweep, WiderBanksCollectMoreShotNoise) {
  const core::NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const std::size_t channels = GetParam();
  const auto few = model.pass_budget(channels, 1, 16, channels);
  const auto many = model.pass_budget(channels * 2, 1, 16, channels * 2);
  EXPECT_GE(many.sigma_shot, few.sigma_shot) << channels;
  EXPECT_GE(many.mean_branch_current, few.mean_branch_current) << channels;
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelsSweep,
                         ::testing::Values(4, 16, 48, 96));

} // namespace
