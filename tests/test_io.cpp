// Tensor serialization round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "nn/conv_ref.hpp"
#include "nn/io.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using nn::Shape4;
using nn::Tensor;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TensorIo, RoundTripIsBitExact) {
  Rng rng(5);
  Tensor t(Shape4{2, 3, 4, 5});
  nn::fill_gaussian(t, rng, 0.0, 1.0);
  const std::string path = tmp_path("roundtrip.pcnt");
  nn::save_tensor(path, t);
  const Tensor back = nn::load_tensor(path);
  EXPECT_EQ(t, back);
  std::remove(path.c_str());
}

TEST(TensorIo, PreservesSpecialValues) {
  Tensor t(Shape4{1, 1, 1, 4},
           {0.0, -0.0, 1e-308, std::numeric_limits<double>::max()});
  const std::string path = tmp_path("special.pcnt");
  nn::save_tensor(path, t);
  const Tensor back = nn::load_tensor(path);
  EXPECT_EQ(t, back);
  EXPECT_TRUE(std::signbit(back[1]));
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(nn::load_tensor(tmp_path("does-not-exist.pcnt")), Error);
}

TEST(TensorIo, BadMagicThrows) {
  const std::string path = tmp_path("garbage.pcnt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a tensor at all, just bytes";
  }
  EXPECT_THROW(nn::load_tensor(path), Error);
  std::remove(path.c_str());
}

TEST(TensorIo, TruncatedPayloadThrows) {
  Rng rng(6);
  Tensor t(Shape4{1, 1, 8, 8});
  nn::fill_gaussian(t, rng, 0.0, 1.0);
  const std::string path = tmp_path("trunc.pcnt");
  nn::save_tensor(path, t);
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_THROW(nn::load_tensor(path), Error);
  std::remove(path.c_str());
}

TEST(TensorIo, NetworkWeightsRoundTripThroughReference) {
  Rng rng(7);
  const nn::Network net = nn::tiny_cnn();
  const auto weights = nn::make_network_weights(net, rng);
  const auto input = nn::make_network_input(net, rng);

  nn::save_network_weights(::testing::TempDir(), "tiny", weights);
  const auto back = nn::load_network_weights(::testing::TempDir(), "tiny", net);

  // Same weights -> bit-identical forward pass.
  const Tensor ref = nn::forward_reference(net, weights, input);
  const Tensor loaded = nn::forward_reference(net, back, input);
  EXPECT_EQ(ref, loaded);
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    EXPECT_EQ(weights.weight[i], back.weight[i]) << i;
    EXPECT_EQ(weights.bias[i], back.bias[i]) << i;
  }
}

} // namespace
