// SRAM cache and DRAM channel models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "electronics/dram.hpp"
#include "electronics/sram.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Sram, PaperCapacityIsEightThousandWords) {
  elec::Sram sram{elec::SramConfig{}};
  // "128kb capacity that can store 8 thousand 16bit values" [15].
  EXPECT_EQ(8000u, sram.capacity_words());
}

TEST(Sram, AllocateTracksOccupancy) {
  elec::Sram sram{elec::SramConfig{}};
  sram.allocate(3000);
  EXPECT_EQ(3000u, sram.used_words());
  EXPECT_EQ(5000u, sram.free_words());
  sram.release(1000);
  EXPECT_EQ(2000u, sram.used_words());
}

TEST(Sram, OverflowThrows) {
  elec::Sram sram{elec::SramConfig{}};
  sram.allocate(8000);
  EXPECT_THROW(sram.allocate(1), Error);
}

TEST(Sram, ReleaseMoreThanUsedThrows) {
  elec::Sram sram{elec::SramConfig{}};
  sram.allocate(10);
  EXPECT_THROW(sram.release(11), Error);
}

TEST(Sram, AccessTimeAtPaperSpec) {
  elec::Sram sram{elec::SramConfig{}};
  // 7 ns per word access [15].
  EXPECT_NEAR(7.0 * u::ns, sram.read(1), 1e-15);
  EXPECT_NEAR(700.0 * u::ns, sram.write(100), 1e-12);
}

TEST(Sram, StatisticsAccumulate) {
  elec::Sram sram{elec::SramConfig{}};
  sram.read(10);
  sram.write(5);
  sram.read(2);
  EXPECT_EQ(12u, sram.reads());
  EXPECT_EQ(5u, sram.writes());
  EXPECT_NEAR(17.0 * sram.config().access_energy, sram.access_energy(), 1e-18);
  sram.reset_stats();
  EXPECT_EQ(0u, sram.reads() + sram.writes());
}

TEST(Sram, AlexNetWorkingSetsFit) {
  // Every AlexNet receptive field (Nkernel words) fits the 8000-word cache —
  // the premise of the paper's input-buffering scheme.
  elec::Sram sram{elec::SramConfig{}};
  for (std::uint64_t n_kernel : {363u, 2400u, 2304u, 3456u, 3456u}) {
    EXPECT_LE(n_kernel, sram.capacity_words());
  }
}

TEST(Dram, TransferTimeIsLatencyPlusBandwidth) {
  elec::DramConfig cfg;
  cfg.bandwidth = 12.8e9;
  cfg.first_access_latency = 50.0 * u::ns;
  elec::Dram dram(cfg);
  EXPECT_NEAR(50e-9 + 1280.0 / 12.8e9, dram.transfer_time(1280), 1e-15);
  EXPECT_DOUBLE_EQ(0.0, dram.transfer_time(0));
}

TEST(Dram, TrafficAccounting) {
  elec::Dram dram{elec::DramConfig{}};
  dram.read(1000);
  dram.write(500);
  dram.read(24);
  EXPECT_EQ(1024u, dram.bytes_read());
  EXPECT_EQ(500u, dram.bytes_written());
  EXPECT_EQ(3u, dram.transactions());
  EXPECT_NEAR(1524.0 * dram.config().energy_per_byte, dram.access_energy(),
              1e-15);
  dram.reset_stats();
  EXPECT_EQ(0u, dram.transactions());
}

TEST(Dram, ReadAndWriteReturnTransferTime) {
  elec::Dram dram{elec::DramConfig{}};
  EXPECT_DOUBLE_EQ(dram.transfer_time(4096), dram.read(4096));
  EXPECT_DOUBLE_EQ(dram.transfer_time(4096), dram.write(4096));
}

TEST(Memory, RejectBadConfigs) {
  elec::SramConfig s;
  s.word_bits = 0;
  EXPECT_THROW(elec::Sram{s}, Error);
  elec::DramConfig d;
  d.bandwidth = 0.0;
  EXPECT_THROW(elec::Dram{d}, Error);
}

} // namespace
