// Unit tests for the fleet telemetry layer: the Chrome trace writer, the
// metrics registry (counter / gauge / log-bucket histogram with Kahan
// accumulation), span derivation from an admission run, and the device
// LayerTrace exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/trace_writer.hpp"
#include "core/config.hpp"
#include "core/trace.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/pcu_pool.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::AdmissionOptions;
using runtime::AdmissionResult;
using runtime::Counter;
using runtime::DispatchPolicy;
using runtime::Histogram;
using runtime::InferenceRequest;
using runtime::MetricsRegistry;
using runtime::PcuPool;
using runtime::RequestQueue;
using runtime::RequestSpan;
using runtime::ScheduledService;
using runtime::SpanKind;
using runtime::Telemetry;

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size()))
    ++n;
  return n;
}

// --- TraceWriter ---

TEST(TraceWriter, EmitsChromeObjectFormat) {
  TraceWriter w;
  w.set_process_name(1, "fleet");
  w.set_thread_name(1, 0, "pcu 0");
  w.complete(1, 0, "req 0", "service", 1.0, 2.5,
             {TraceArg::num("id", 0.0), TraceArg::str("priority", "std")});
  w.instant(2, 3, "shed", "shed", 4.0);
  w.counter(1, "queue depth", 0.5, "pending", 7.0);
  EXPECT_EQ(5u, w.size());

  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();
  EXPECT_NE(std::string::npos, json.find("\"traceEvents\""));
  EXPECT_NE(std::string::npos, json.find("\"displayTimeUnit\""));
  EXPECT_NE(std::string::npos, json.find("\"process_name\""));
  EXPECT_NE(std::string::npos, json.find("\"thread_name\""));
  EXPECT_NE(std::string::npos, json.find("\"req 0\""));
  EXPECT_NE(std::string::npos, json.find("\"service\""));
  // 1.0 s start -> 1e6 us, 1.5 s duration -> 1.5e6 us.
  EXPECT_NE(std::string::npos, json.find("1000000"));
  EXPECT_NE(std::string::npos, json.find("1500000"));
  // Deterministic serialization: a second write is byte-identical.
  std::ostringstream again;
  w.write(again);
  EXPECT_EQ(json, again.str());
}

TEST(TraceWriter, RejectsNegativeDurations) {
  TraceWriter w;
  EXPECT_THROW(w.complete(0, 0, "bad", "", 2.0, 1.0), Error);
}

// --- Histogram ---

TEST(Histogram, LogBucketsCoverUnderflowAndOverflow) {
  // 6 buckets spanning 1e-3..1e3: upper bounds one decade apart.
  Histogram h(1e-3, 1e3, 6);
  ASSERT_EQ(6u, h.upper_bounds().size());
  EXPECT_DOUBLE_EQ(1e3, h.upper_bounds().back());
  ASSERT_EQ(7u, h.bucket_counts().size()); // +Inf overflow slot

  h.observe(5e-4);  // below lo: lands in the first bucket
  h.observe(5e-2);  // second bucket (1e-2 < v <= 1e-1)
  h.observe(2e3);   // above hi: overflow bucket
  EXPECT_EQ(3u, h.count());
  EXPECT_EQ(1u, h.bucket_counts()[0]);
  EXPECT_EQ(1u, h.bucket_counts()[1]);
  EXPECT_EQ(1u, h.bucket_counts()[6]);
}

TEST(Histogram, KahanSumSurvivesMagnitudeDisparity) {
  Histogram h(1e-6, 1e3, 8);
  // Naive summation loses the two 1.0s under the 1e16 (1e16 + 1 == 1e16
  // in double); the compensated sum keeps them.
  h.observe(1e16);
  h.observe(1.0);
  h.observe(1.0);
  h.observe(-1e16);
  EXPECT_EQ(2.0, h.sum());
  EXPECT_EQ(4u, h.count());
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, ReRequestReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("pcnna_x_total", "x");
  a.add(3);
  Counter& b = reg.counter("pcnna_x_total", "x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(3u, b.value());
  // A name cannot change kind.
  EXPECT_THROW(reg.gauge("pcnna_x_total", "x"), Error);
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("pcnna_served_total", "Requests served").add(5);
  reg.gauge("pcnna_busy{pcu=\"0\"}", "Busy time").set(1.5);
  reg.gauge("pcnna_busy{pcu=\"1\"}", "Busy time").set(2.5);
  Histogram& h =
      reg.histogram("pcnna_wait_seconds", "Queue wait", 1e-3, 1e3, 6);
  h.observe(0.5);
  h.observe(2.0);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("# TYPE pcnna_served_total counter"));
  EXPECT_NE(std::string::npos, text.find("pcnna_served_total 5"));
  // One HELP/TYPE header per family, even with two labeled series.
  EXPECT_EQ(1u, count_of(text, "# TYPE pcnna_busy gauge"));
  EXPECT_NE(std::string::npos, text.find("pcnna_busy{pcu=\"0\"} 1.5"));
  EXPECT_NE(std::string::npos, text.find("pcnna_busy{pcu=\"1\"} 2.5"));
  // Histogram: cumulative buckets, +Inf, then _sum and _count.
  EXPECT_NE(std::string::npos, text.find("# TYPE pcnna_wait_seconds histogram"));
  EXPECT_NE(std::string::npos,
            text.find("pcnna_wait_seconds_bucket{le=\"+Inf\"} 2"));
  EXPECT_NE(std::string::npos, text.find("pcnna_wait_seconds_sum 2.5"));
  EXPECT_NE(std::string::npos, text.find("pcnna_wait_seconds_count 2"));
  // Cumulative monotonicity: the ~1 s bucket already holds the 0.5 obs
  // but not the 2.0 one. The bound is pow-derived (not exactly 1.0), so
  // render it with the exporter's own %.17g formatting.
  char bound[64];
  std::snprintf(bound, sizeof bound, "%.17g", h.upper_bounds()[2]);
  EXPECT_NE(std::string::npos,
            text.find("pcnna_wait_seconds_bucket{le=\"" + std::string(bound) +
                      "\"} 1"));
}

// --- Span derivation from an admission run ---

struct Fixture {
  nn::Network net = nn::tiny_cnn();
  nn::NetWeights weights;
  Fixture() {
    Rng rng(31);
    weights = nn::make_network_weights(net, rng);
  }
};

std::vector<InferenceRequest> burst(std::size_t count, double spacing) {
  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < count; ++id) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = static_cast<double>(id) * spacing;
    requests.push_back(r);
  }
  return requests;
}

AdmissionResult admit(PcuPool& pool, std::vector<InferenceRequest> requests,
                      const AdmissionOptions& options) {
  RequestQueue queue;
  for (InferenceRequest& r : requests) queue.push(std::move(r));
  queue.close();
  return pool.simulate_admission(queue, options);
}

TEST(Telemetry, ServiceSpansMirrorTheScheduleExactly) {
  Fixture f;
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               f.net, f.weights);
  Telemetry telemetry;
  AdmissionOptions o;
  o.telemetry = &telemetry;
  o.policy = DispatchPolicy::kEdf; // event-driven: queue-depth hook fires
  const AdmissionResult r = admit(pool, burst(16, 0.0), o);
  ASSERT_EQ(16u, r.schedule.size());

  // One queue-wait and one service span per schedule entry, same order,
  // same bits.
  std::vector<const RequestSpan*> service;
  for (const RequestSpan& s : telemetry.spans())
    if (s.kind == SpanKind::kService) service.push_back(&s);
  ASSERT_EQ(r.schedule.size(), service.size());
  for (std::size_t i = 0; i < r.schedule.size(); ++i) {
    const ScheduledService& s = r.schedule[i];
    EXPECT_EQ(s.id, service[i]->id);
    EXPECT_EQ(s.pcu, service[i]->pcu);
    EXPECT_EQ(s.start, service[i]->start);
    EXPECT_EQ(s.completion, service[i]->end);
    EXPECT_EQ(s.warmup, service[i]->warmup);
    EXPECT_EQ(s.swap, service[i]->swap);
  }
  EXPECT_FALSE(telemetry.queue_depth_samples().empty());

  // Dispatch counter hook saw every commitment.
  std::ostringstream prom;
  telemetry.write_prometheus(prom);
  EXPECT_NE(std::string::npos,
            prom.str().find("pcnna_dispatches_total 16"));
  EXPECT_NE(std::string::npos,
            prom.str().find("pcnna_requests_served_total 16"));
}

TEST(Telemetry, ChromeTraceIsDeterministicAndWellFormed) {
  Fixture f;
  const auto run = [&]() {
    PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
                 f.net, f.weights);
    Telemetry telemetry;
    AdmissionOptions o;
    o.telemetry = &telemetry;
    o.policy = DispatchPolicy::kEdf;
    admit(pool, burst(32, 1e-6), o);
    std::ostringstream os;
    telemetry.write_chrome_trace(os);
    return os.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b) << "identical runs must serialize identical traces";
  EXPECT_NE(std::string::npos, a.find("\"pcnna fleet\""));
  EXPECT_NE(std::string::npos, a.find("\"otherData\""));
  EXPECT_NE(std::string::npos, a.find("\"queue depth\""));
}

TEST(Telemetry, ShedAndQueueSpansLandOnTenantTracks) {
  Fixture f;
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               f.net, f.weights);
  const double interval = pool.pcu(0).request_interval_overlapped();
  Telemetry telemetry;
  AdmissionOptions o;
  o.telemetry = &telemetry;
  o.policy = DispatchPolicy::kEdf;
  o.shed_expired = true;
  // All-at-once burst with a deadline only the first few can meet.
  std::vector<InferenceRequest> requests = burst(12, 0.0);
  for (InferenceRequest& r : requests) {
    r.tenant = static_cast<std::uint32_t>(r.id % 2);
    r.deadline = 3.0 * interval + pool.pcu(0).warmup_time();
  }
  const AdmissionResult r = admit(pool, std::move(requests), o);
  ASSERT_GT(r.shed.shed, 0u);

  std::size_t shed_spans = 0;
  for (const RequestSpan& s : telemetry.spans()) {
    if (s.kind == SpanKind::kShed) {
      ++shed_spans;
      EXPECT_EQ(RequestSpan::kNoPcu, s.pcu);
      EXPECT_EQ(s.start, s.end) << "shed is an instant";
    }
  }
  EXPECT_EQ(r.shed.shed, shed_spans);
  std::ostringstream os;
  telemetry.write_chrome_trace(os);
  EXPECT_NE(std::string::npos, os.str().find("\"pcnna tenants\""));
  EXPECT_NE(std::string::npos, os.str().find("\"shed\""));
}

// --- Device LayerTrace exporter (satellite) ---

TEST(LayerTraceChrome, ExportsEveryEventKindOnItsOwnTrack) {
  const core::TraceSimulator sim(PcnnaConfig::paper_defaults());
  const auto layers = nn::alexnet_conv_layers();
  const core::LayerTrace trace = sim.trace_layer(layers[0]);
  ASSERT_GT(trace.events.size(), 0u);

  std::ostringstream os;
  core::write_chrome_trace(trace, os);
  const std::string json = os.str();
  EXPECT_NE(std::string::npos, json.find("\"traceEvents\""));
  EXPECT_NE(std::string::npos, json.find(layers[0].name));
  EXPECT_NE(std::string::npos, json.find("\"optical\""));
  EXPECT_NE(std::string::npos, json.find("\"weight-load\""));
  // Every event made it through (plus metadata events on top).
  EXPECT_GE(count_of(json, "\"ph\""), trace.events.size());
  // Determinism.
  std::ostringstream again;
  core::write_chrome_trace(trace, again);
  EXPECT_EQ(json, again.str());
}

} // namespace
