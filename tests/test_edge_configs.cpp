// Pathological and boundary hardware configurations: the simulator must
// stay correct (or fail loudly) at the edges of the design space.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::Scheduler;
using core::TimingFidelity;
using core::TimingModel;

TEST(EdgeConfigs, SingleWavelengthSerializesEverything) {
  // max_wavelengths = 1: every receptive-field value is its own pass.
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.max_wavelengths = 1;
  core::OpticalConvEngine engine(cfg);
  Rng rng(91);
  nn::ConvLayerParams layer{"t", 6, 3, 0, 1, 2, 2};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  core::EngineStats stats;
  const auto out = engine.conv2d(input, weights, {}, 1, 0, &stats);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 0);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
  EXPECT_EQ(16u * 18u, stats.optical_passes); // locations * Nkernel
}

TEST(EdgeConfigs, SingleDacSingleAdcStillPlans) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.num_input_dacs = 1;
  cfg.num_adcs = 1;
  const TimingModel model(cfg, TimingFidelity::kFull);
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const auto t = model.layer_time(layer);
    EXPECT_GT(t.full_system_time, 0.0) << layer.name;
    EXPECT_GE(t.full_system_time, t.optical_core_time) << layer.name;
  }
}

TEST(EdgeConfigs, OneByOneKernelLayer) {
  // 1x1 convs (network-in-network style): Nkernel = nc, one value per
  // spatial location per channel.
  core::OpticalConvEngine engine(PcnnaConfig::ideal());
  Rng rng(92);
  nn::ConvLayerParams layer{"pointwise", 6, 1, 0, 1, 8, 4};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto out = engine.conv2d(input, weights, {}, 1, 0);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 0);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
}

TEST(EdgeConfigs, KernelCoversWholeInput) {
  // m == n: exactly one location — the conv degenerates to a dot product.
  core::OpticalConvEngine engine(PcnnaConfig::ideal());
  Rng rng(93);
  nn::ConvLayerParams layer{"global", 5, 5, 0, 1, 3, 4};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  core::EngineStats stats;
  const auto out = engine.conv2d(input, weights, {}, 1, 0, &stats);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 0);
  EXPECT_EQ(1u, stats.locations);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
}

TEST(EdgeConfigs, SingleKernelLayer) {
  core::OpticalConvEngine engine(PcnnaConfig::ideal());
  Rng rng(94);
  nn::ConvLayerParams layer{"k1", 8, 3, 1, 1, 2, 1};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto out = engine.conv2d(input, weights, {}, 1, 1);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 1);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
}

TEST(EdgeConfigs, SlowClockMakesOpticsTheBottleneck) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.fast_clock = 1e6; // 1 MHz "optical" clock
  const TimingModel model(cfg, TimingFidelity::kPaper);
  const auto t = model.layer_time(nn::alexnet_conv_layers()[3]);
  EXPECT_EQ("optical-clock", t.bottleneck);
}

TEST(EdgeConfigs, TinySramRejectsBigLayers) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.sram.capacity_bits = 16.0 * 100; // 100 words
  const Scheduler sched(cfg);
  EXPECT_THROW(sched.plan(nn::alexnet_conv_layers()[1]), Error);
  // conv1's 363-word receptive field also fails at 100 words.
  EXPECT_THROW(sched.plan(nn::alexnet_conv_layers()[0]), Error);
  // A small enough layer still plans.
  nn::ConvLayerParams small{"s", 8, 3, 0, 1, 4, 2}; // 36 words
  EXPECT_NO_THROW(sched.plan(small));
}

TEST(EdgeConfigs, ValidateCatchesNonsense) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.num_input_dacs = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = PcnnaConfig::paper_defaults();
  cfg.stuck_ring_rate = 1.5;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = PcnnaConfig::paper_defaults();
  cfg.max_wavelengths = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(EdgeConfigs, HopelesslyBroadRingsFailLoudly) {
  // Q = 2000 makes the linewidth comparable to the channel spacing: no
  // signed weight range exists, and the engine must refuse (not silently
  // produce garbage).
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  cfg.bank.ring.q_factor = 2'000.0;
  core::OpticalConvEngine engine(cfg);
  Rng rng(95);
  nn::ConvLayerParams layer{"lowq", 6, 3, 0, 1, 2, 2};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  EXPECT_THROW(engine.conv2d(input, weights, {}, 1, 0), Error);
}

TEST(EdgeConfigs, ModeratelyLowQStillCalibrates) {
  // Q = 8000 is lossy but workable: the range shrinks, calibration copes.
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  cfg.bank.ring.q_factor = 8'000.0;
  core::OpticalConvEngine engine(cfg);
  Rng rng(95);
  nn::ConvLayerParams layer{"lowq", 6, 3, 0, 1, 2, 2};
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto out = engine.conv2d(input, weights, {}, 1, 0);
  const auto ref = nn::conv2d_direct(input, weights, {}, 1, 0);
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.2 * ref.abs_max());
}

} // namespace
