// Multi-core layer-pipelined throughput model.
#include <gtest/gtest.h>

#include "core/throughput.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::ThroughputModel;
using core::ThroughputReport;

const std::vector<nn::ConvLayerParams>& alexnet() {
  static const auto layers = nn::alexnet_conv_layers();
  return layers;
}

TEST(Throughput, SingleCoreIntervalEqualsLatency) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const ThroughputReport r = model.pipeline(alexnet(), 1);
  EXPECT_EQ(1u, r.cores);
  EXPECT_DOUBLE_EQ(r.latency, r.interval);
  EXPECT_DOUBLE_EQ(1.0, r.throughput_speedup);
  ASSERT_EQ(1u, r.stages.size());
  EXPECT_EQ(0u, r.stages[0].first);
  EXPECT_EQ(4u, r.stages[0].second);
}

TEST(Throughput, StagesPartitionAllLayersContiguously) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  for (std::size_t cores : {2u, 3u, 4u, 5u}) {
    const ThroughputReport r = model.pipeline(alexnet(), cores);
    ASSERT_EQ(cores, r.stages.size()) << cores;
    EXPECT_EQ(0u, r.stages.front().first);
    EXPECT_EQ(alexnet().size() - 1, r.stages.back().second);
    for (std::size_t i = 1; i < r.stages.size(); ++i) {
      EXPECT_EQ(r.stages[i - 1].second + 1, r.stages[i].first) << cores;
    }
  }
}

TEST(Throughput, IntervalIsMaxStageTime) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const ThroughputReport r = model.pipeline(alexnet(), 3);
  double mx = 0.0, sum = 0.0;
  for (double t : r.stage_times) {
    mx = std::max(mx, t);
    sum += t;
  }
  EXPECT_DOUBLE_EQ(mx, r.interval);
  EXPECT_NEAR(sum, r.latency, 1e-15);
}

TEST(Throughput, MoreCoresNeverSlower) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  double prev = 0.0;
  for (std::size_t cores = 1; cores <= 5; ++cores) {
    const ThroughputReport r = model.pipeline(alexnet(), cores);
    EXPECT_GE(r.images_per_second(), prev) << cores;
    prev = r.images_per_second();
  }
}

TEST(Throughput, LatencyUnchangedByPipelining) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const double latency1 = model.pipeline(alexnet(), 1).latency;
  const double latency5 = model.pipeline(alexnet(), 5).latency;
  EXPECT_DOUBLE_EQ(latency1, latency5);
}

TEST(Throughput, FiveCoresBoundedByLargestLayer) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const ThroughputReport r = model.pipeline(alexnet(), 5);
  // One layer per core: interval = slowest single layer (conv1, 6.66 us).
  double slowest = 0.0;
  for (double t : r.stage_times) slowest = std::max(slowest, t);
  EXPECT_DOUBLE_EQ(slowest, r.interval);
  EXPECT_GT(r.throughput_speedup, 2.0);
  EXPECT_LE(r.throughput_speedup, 5.0);
}

TEST(Throughput, MoreCoresThanLayersClamps) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const ThroughputReport r = model.pipeline(alexnet(), 100);
  EXPECT_EQ(alexnet().size(), r.cores);
}

TEST(Throughput, OptimalBeatsNaiveEvenSplit) {
  // The DP must never be worse than splitting layers evenly by count.
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  const ThroughputReport r = model.pipeline(alexnet(), 2);
  // Naive split 0..1 / 2..4 or 0..2 / 3..4 — compute both by hand.
  core::TimingModel timing(PcnnaConfig::paper_defaults(),
                           core::TimingFidelity::kPaper);
  std::vector<double> t;
  for (const auto& layer : alexnet())
    t.push_back(timing.layer_time(layer).full_system_time);
  const double split_a = std::max(t[0] + t[1], t[2] + t[3] + t[4]);
  const double split_b = std::max(t[0] + t[1] + t[2], t[3] + t[4]);
  EXPECT_LE(r.interval, std::min(split_a, split_b) + 1e-15);
}

TEST(Throughput, EmptyOrZeroArgsThrow) {
  const ThroughputModel model(PcnnaConfig::paper_defaults());
  EXPECT_THROW(model.pipeline({}, 2), Error);
  EXPECT_THROW(model.pipeline(alexnet(), 0), Error);
}

} // namespace
