// Event-driven trace simulator, cross-checked against the closed-form
// timing model.
#include <gtest/gtest.h>

#include <sstream>

#include "core/timing_model.hpp"
#include "core/trace.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
using core::LayerTrace;
using core::PcnnaConfig;
using core::TraceEventKind;
using core::TraceSimulator;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TEST(Trace, EventCountsMatchThePlan) {
  const TraceSimulator sim(PcnnaConfig::paper_defaults());
  const auto conv3 = alexnet_layer(2);
  const LayerTrace trace = sim.trace_layer(conv3);
  EXPECT_EQ(169u, trace.count(TraceEventKind::kInputDac));
  EXPECT_EQ(169u, trace.count(TraceEventKind::kOpticalPass));
  EXPECT_EQ(169u, trace.count(TraceEventKind::kAdcSample));
  EXPECT_EQ(169u, trace.count(TraceEventKind::kSramStage));
  EXPECT_EQ(1u, trace.count(TraceEventKind::kWeightLoad));
  EXPECT_EQ(1u, trace.count(TraceEventKind::kRingSettle));
  EXPECT_EQ(1u, trace.count(TraceEventKind::kDramRead));
  EXPECT_EQ(1u, trace.count(TraceEventKind::kDramWrite));
}

TEST(Trace, EventsAreCausallyOrderedPerLocation) {
  const TraceSimulator sim(PcnnaConfig::paper_defaults());
  const LayerTrace trace = sim.trace_layer(alexnet_layer(2));
  // Reconstruct per-location stage intervals and check the linear order.
  for (const auto& e : trace.events) {
    EXPECT_LE(e.start, e.end);
    EXPECT_GE(e.start, 0.0);
    EXPECT_LE(e.end, trace.total_time + 1e-15);
  }
  double prev_dac_start = -1.0;
  for (const auto& e : trace.events) {
    if (e.kind != TraceEventKind::kInputDac) continue;
    EXPECT_GT(e.start, prev_dac_start); // locations strictly ordered
    prev_dac_start = e.start;
    EXPECT_GE(e.start, trace.weight_load_end - 1e-15);
  }
}

TEST(Trace, AgreesWithClosedFormTimingModel) {
  const PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  const TraceSimulator sim(cfg);
  const core::TimingModel model(cfg, core::TimingFidelity::kFull);
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const LayerTrace trace = sim.trace_layer(layer);
    const auto closed = model.layer_time(layer);
    // Event-driven vs closed-form: same model, off by at most one pipeline
    // interval plus rounding.
    const double tolerance = 0.02 * closed.full_system_time + 1e-9;
    EXPECT_NEAR(closed.full_system_time, trace.total_time, tolerance)
        << layer.name;
  }
}

TEST(Trace, BusyTimesMatchStageTotals) {
  const PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  const TraceSimulator sim(cfg);
  const core::TimingModel model(cfg, core::TimingFidelity::kFull);
  const auto conv4 = alexnet_layer(3);
  const LayerTrace trace = sim.trace_layer(conv4);
  const auto closed = model.layer_time(conv4);
  EXPECT_NEAR(closed.dac_time, trace.busy(TraceEventKind::kInputDac),
              1e-3 * closed.dac_time);
  EXPECT_NEAR(closed.adc_time, trace.busy(TraceEventKind::kAdcSample),
              1e-3 * closed.adc_time);
  EXPECT_NEAR(closed.optical_core_time,
              trace.busy(TraceEventKind::kOpticalPass),
              1e-3 * closed.optical_core_time);
}

TEST(Trace, PerChannelAllocationEmitsOneSettlePerChannel) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = core::RingAllocation::kPerChannel;
  const TraceSimulator sim(cfg);
  const auto conv3 = alexnet_layer(2);
  const LayerTrace trace = sim.trace_layer(conv3);
  EXPECT_EQ(256u, trace.count(TraceEventKind::kRingSettle));
  EXPECT_EQ(256u, trace.count(TraceEventKind::kWeightLoad));
  EXPECT_EQ(256u * 169u, trace.count(TraceEventKind::kInputDac));
  // Settling alone costs nc * 10 us.
  EXPECT_GE(trace.total_time, 256.0 * 10e-6);
}

TEST(Trace, DramStreamsConcurrentlyFromTimeZero) {
  const TraceSimulator sim(PcnnaConfig::paper_defaults());
  const LayerTrace trace = sim.trace_layer(alexnet_layer(0));
  for (const auto& e : trace.events) {
    if (e.kind == TraceEventKind::kDramRead) EXPECT_DOUBLE_EQ(0.0, e.start);
  }
}

TEST(Trace, PrintProducesReadableTimeline) {
  const TraceSimulator sim(PcnnaConfig::paper_defaults());
  const LayerTrace trace = sim.trace_layer(alexnet_layer(2));
  std::ostringstream os;
  trace.print(os, 10);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("weight-load"));
  EXPECT_NE(std::string::npos, s.find("optical"));
  EXPECT_NE(std::string::npos, s.find("more)")); // truncation marker
}

TEST(Trace, TotalCoversComputeAndDram) {
  const TraceSimulator sim(PcnnaConfig::paper_defaults());
  const LayerTrace trace = sim.trace_layer(alexnet_layer(1));
  EXPECT_GE(trace.total_time, trace.compute_end - 1e-18);
  EXPECT_GE(trace.compute_end, trace.weight_load_end);
}

} // namespace
