// Deterministic RNG: reproducibility and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"

using pcnna::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(first, a.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(17);
  std::vector<double> xs(100'000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(0.5, pcnna::mean(xs), 0.01);
  EXPECT_NEAR(std::sqrt(1.0 / 12.0), pcnna::stddev(xs), 0.01);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(19);
  std::vector<double> xs(100'000);
  for (double& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(2.0, pcnna::mean(xs), 0.05);
  EXPECT_NEAR(3.0, pcnna::stddev(xs), 0.05);
}

TEST(Rng, NormalTailsAreSane) {
  Rng rng(23);
  int beyond3 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (std::abs(rng.normal()) > 3.0) ++beyond3;
  // P(|Z| > 3) ~ 0.27%; allow generous slack.
  EXPECT_GT(beyond3, 100);
  EXPECT_LT(beyond3, 600);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(29);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 800);
    EXPECT_LT(c, n / 10 + 800);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(31);
  EXPECT_THROW(rng.uniform_index(0), pcnna::Error);
}
