// PR 3 hot-path rewrite: A/B bit-identity against the frozen reference
// engine, scratch-buffer reuse, determinism under intra-image parallelism,
// and the pinned RNG draw-order contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/engine_reference.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_params.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "nn/tensor.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::EngineStats;
using core::OpticalConvEngine;
using core::PcnnaConfig;
using core::ReferenceConvEngine;
using core::RingAllocation;

const nn::ConvLayerParams kLayerA{"hotA", 8, 3, 1, 1, 3, 5};
const nn::ConvLayerParams kLayerB{"hotB", 12, 5, 2, 2, 2, 4};

struct LayerData {
  nn::Tensor input, weights, bias;
};

LayerData make_data(const nn::ConvLayerParams& layer, std::uint64_t seed = 42,
                    bool signed_input = false) {
  Rng rng(seed);
  LayerData d;
  d.input = nn::make_input(layer, rng);
  if (signed_input) {
    for (std::size_t i = 0; i < d.input.size(); ++i)
      d.input[i] = rng.uniform(-1.0, 1.0);
  }
  d.weights = nn::make_conv_weights(layer, rng);
  d.bias = nn::make_conv_bias(layer, rng);
  return d;
}

void expect_stats_equal(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.locations, b.locations);
  EXPECT_EQ(a.optical_passes, b.optical_passes);
  EXPECT_EQ(a.dac_conversions, b.dac_conversions);
  EXPECT_EQ(a.adc_conversions, b.adc_conversions);
  EXPECT_EQ(a.weight_dac_conversions, b.weight_dac_conversions);
  EXPECT_EQ(a.recalibrations, b.recalibrations);
  EXPECT_EQ(a.banks_built, b.banks_built);
  EXPECT_EQ(a.rings_used, b.rings_used);
  EXPECT_EQ(a.wavelengths_used, b.wavelengths_used);
  EXPECT_EQ(a.stuck_rings, b.stuck_rings);
  EXPECT_EQ(a.mean_calibration_error, b.mean_calibration_error);
  EXPECT_EQ(a.max_calibration_error, b.max_calibration_error);
  EXPECT_EQ(a.total_heater_power, b.total_heater_power);
  EXPECT_EQ(a.total_ring_area, b.total_ring_area);
}

/// Run the frozen reference and the rewritten engine on the same layer with
/// engine_threads in {1, 2, 4}; every variant must be bit-identical.
void expect_ab_identity(PcnnaConfig cfg, const nn::ConvLayerParams& layer,
                        bool signed_input = false) {
  const LayerData d = make_data(layer, 42, signed_input);
  ReferenceConvEngine reference(cfg);
  EngineStats ref_stats;
  const nn::Tensor expected =
      reference.conv2d(d.input, d.weights, d.bias, layer.s, layer.p, &ref_stats);

  for (std::size_t threads : {1u, 2u, 4u}) {
    PcnnaConfig tcfg = cfg;
    tcfg.engine_threads = threads;
    OpticalConvEngine engine(tcfg);
    EngineStats stats;
    const nn::Tensor got =
        engine.conv2d(d.input, d.weights, d.bias, layer.s, layer.p, &stats);
    EXPECT_TRUE(expected == got)
        << "threads=" << threads
        << " max|diff|=" << nn::max_abs_diff(expected, got);
    expect_stats_equal(ref_stats, stats);
  }
}

TEST(EngineAbIdentity, IdealConfig) {
  expect_ab_identity(PcnnaConfig::ideal(), kLayerA);
}

TEST(EngineAbIdentity, PaperDefaultsNoiseAndQuantization) {
  expect_ab_identity(PcnnaConfig::paper_defaults(), kLayerA);
}

TEST(EngineAbIdentity, SecondLayerShape) {
  expect_ab_identity(PcnnaConfig::paper_defaults(), kLayerB);
}

TEST(EngineAbIdentity, QuantizationOnly) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  expect_ab_identity(cfg, kLayerA);
}

TEST(EngineAbIdentity, NoiseOnly) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_quantization = false;
  expect_ab_identity(cfg, kLayerA);
}

TEST(EngineAbIdentity, StuckRingFaults) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.stuck_ring_rate = 0.1;
  expect_ab_identity(cfg, kLayerA);
}

TEST(EngineAbIdentity, PerChannelAllocation) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = RingAllocation::kPerChannel;
  expect_ab_identity(cfg, kLayerA);
}

TEST(EngineAbIdentity, PerChannelIdeal) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.allocation = RingAllocation::kPerChannel;
  expect_ab_identity(cfg, kLayerA);
}

TEST(EngineAbIdentity, DualRailSignedInputs) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.dual_rail_inputs = true;
  expect_ab_identity(cfg, kLayerA, /*signed_input=*/true);
}

TEST(EngineAbIdentity, WideReceptiveFieldSplitsIntoGroups) {
  // nc * m * m = 128 > max_wavelengths forces multiple group slices.
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.max_wavelengths = 48;
  const nn::ConvLayerParams wide{"wide", 6, 4, 1, 1, 8, 3};
  expect_ab_identity(cfg, wide);
}

// Shot noise with zero dark current makes the photodiode draw count
// data-dependent; the engine must fall back to the sequential noisy path
// and still match the reference for any requested thread count.
TEST(EngineAbIdentity, ShotOnlyZeroDarkFallsBackSequential) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.bank.photodiode.enable_thermal_noise = false;
  cfg.bank.photodiode.dark_current = 0.0;
  expect_ab_identity(cfg, kLayerA);
}

// --- scratch-buffer reuse -------------------------------------------------
// One engine instance serving different layers (and the same layer twice)
// must produce outputs bit-identical to a fresh engine per call. The RNG is
// reset between calls (the serving runtime's per-request reseed pattern) so
// the only thing that could differ is stale scratch state.
TEST(EngineScratchReuse, AcrossLayersAndRepeatsBitIdentical) {
  for (std::size_t threads : {1u, 4u}) {
    PcnnaConfig cfg = PcnnaConfig::paper_defaults();
    cfg.engine_threads = threads;

    const LayerData a = make_data(kLayerA);
    const LayerData b = make_data(kLayerB, 7);

    OpticalConvEngine shared(cfg);
    const nn::Tensor out_a1 =
        shared.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);
    shared.reset_rng();
    const nn::Tensor out_b =
        shared.conv2d(b.input, b.weights, b.bias, kLayerB.s, kLayerB.p);
    shared.reset_rng();
    const nn::Tensor out_a2 =
        shared.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);

    OpticalConvEngine fresh_a(cfg);
    const nn::Tensor want_a =
        fresh_a.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);
    OpticalConvEngine fresh_b(cfg);
    const nn::Tensor want_b =
        fresh_b.conv2d(b.input, b.weights, b.bias, kLayerB.s, kLayerB.p);

    EXPECT_TRUE(want_a == out_a1) << "threads=" << threads;
    EXPECT_TRUE(want_b == out_b) << "threads=" << threads;
    EXPECT_TRUE(want_a == out_a2)
        << "threads=" << threads << " (same layer twice through one engine)";
  }
}

TEST(EngineScratchReuse, PerChannelAllocationAcrossLayers) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = RingAllocation::kPerChannel;
  cfg.engine_threads = 4;

  const LayerData a = make_data(kLayerA);
  const LayerData b = make_data(kLayerB, 7);

  OpticalConvEngine shared(cfg);
  const nn::Tensor out_a =
      shared.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);
  shared.reset_rng();
  const nn::Tensor out_b =
      shared.conv2d(b.input, b.weights, b.bias, kLayerB.s, kLayerB.p);

  OpticalConvEngine fresh_a(cfg), fresh_b(cfg);
  EXPECT_TRUE(out_a ==
              fresh_a.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p));
  EXPECT_TRUE(out_b ==
              fresh_b.conv2d(b.input, b.weights, b.bias, kLayerB.s, kLayerB.p));
}

// After a threaded noisy conv, the engine RNG must sit at exactly the same
// state as after a sequential one — the pre-drawn noise stream consumes the
// generator identically. Proven by running a second conv afterwards.
TEST(EngineScratchReuse, RngStateUnperturbedByThreads) {
  const LayerData a = make_data(kLayerA);

  PcnnaConfig seq = PcnnaConfig::paper_defaults();
  OpticalConvEngine sequential(seq);
  const nn::Tensor s1 =
      sequential.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);
  const nn::Tensor s2 =
      sequential.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);

  PcnnaConfig par = seq;
  par.engine_threads = 4;
  OpticalConvEngine threaded(par);
  const nn::Tensor t1 =
      threaded.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);
  const nn::Tensor t2 =
      threaded.conv2d(a.input, a.weights, a.bias, kLayerA.s, kLayerA.p);

  EXPECT_TRUE(s1 == t1);
  EXPECT_TRUE(s2 == t2); // second conv continues from identical RNG state
  EXPECT_FALSE(s1 == s2); // noise: consecutive runs differ without reseed
}

// BatchRunnerOptions::engine_threads threads intra-image parallelism
// through the serving fleet; served outputs must stay bit-identical to the
// single-threaded fleet.
TEST(EngineScratchReuse, BatchRunnerEngineThreadsBitIdentical) {
  const nn::Network net = nn::tiny_cnn();
  Rng rng(19);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  std::vector<nn::Tensor> inputs;
  for (std::size_t i = 0; i < 3; ++i)
    inputs.push_back(nn::make_network_input(net, rng));

  runtime::BatchRunnerOptions base;
  base.num_pcus = 2;
  base.seed = 3;
  runtime::BatchRunner plain(PcnnaConfig::paper_defaults(), net, weights,
                             base);
  const auto expected = plain.run(inputs);

  runtime::BatchRunnerOptions threaded = base;
  threaded.engine_threads = 2;
  runtime::BatchRunner fleet(PcnnaConfig::paper_defaults(), net, weights,
                             threaded);
  const auto got = fleet.run(inputs);

  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_TRUE(expected[i].output == got[i].output) << "request " << i;
}

// --- pinned RNG draw-order contracts ---------------------------------------
// inject_stuck_faults: exactly one uniform per ring, ascending ring index,
// regardless of outcome. A manual replica driven by a second RNG at the
// same seed must reproduce the stuck pattern and leave its generator at the
// identical state.
TEST(EngineRngContract, InjectStuckFaultsDrawOrderPinned) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.stuck_ring_rate = 0.4;
  const std::size_t channels = 9;

  Rng bank_rng(5);
  phot::WeightBank bank(phot::WdmGrid(channels), cfg.bank, bank_rng);

  Rng draw(11);
  Rng replica = draw; // value copy: identical stream
  EngineStats st;
  core::inject_stuck_faults(cfg, bank, draw, st);

  std::size_t expected_stuck = 0;
  for (std::size_t i = 0; i < channels; ++i) {
    const bool stuck = replica.uniform() < cfg.stuck_ring_rate;
    if (stuck) ++expected_stuck;
    EXPECT_EQ(stuck, bank.ring(i).stuck()) << "ring " << i;
  }
  EXPECT_EQ(expected_stuck, st.stuck_rings);
  EXPECT_EQ(expected_stuck, bank.stuck_rings());
  // Both generators consumed exactly `channels` uniforms.
  EXPECT_EQ(replica.next_u64(), draw.next_u64());
}

TEST(EngineRngContract, InjectStuckFaultsZeroRateDrawsNothing) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.stuck_ring_rate = 0.0;
  Rng bank_rng(5);
  phot::WeightBank bank(phot::WdmGrid(4), cfg.bank, bank_rng);
  Rng draw(11);
  Rng replica = draw;
  EngineStats st;
  core::inject_stuck_faults(cfg, bank, draw, st);
  EXPECT_EQ(0u, st.stuck_rings);
  EXPECT_EQ(replica.next_u64(), draw.next_u64());
}

// measured_usable_range: consumes exactly the fabrication draws of one
// bank construction (one normal per ring when fab_sigma > 0); the probe
// calibrations draw nothing.
TEST(EngineRngContract, MeasuredUsableRangeDrawOrderPinned) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.bank.ring.fab_sigma = 0.05e-9; // enable fabrication disorder draws
  const std::size_t channels = 7;

  Rng draw(21);
  Rng replica = draw;
  const double usable = core::measured_usable_range(cfg, channels, draw);
  EXPECT_GT(usable, 0.0);

  // Replica: construct the same bank (fab draws only), no calibration.
  phot::WeightBank bank(phot::WdmGrid(channels), cfg.bank, replica);
  EXPECT_EQ(replica.next_u64(), draw.next_u64());
}

TEST(EngineRngContract, MeasuredUsableRangeZeroFabSigmaDrawsNothing) {
  PcnnaConfig cfg = PcnnaConfig::ideal(); // fab_sigma = 0
  ASSERT_EQ(0.0, cfg.bank.ring.fab_sigma);
  Rng draw(33);
  Rng replica = draw;
  core::measured_usable_range(cfg, 5, draw);
  EXPECT_EQ(replica.next_u64(), draw.next_u64());
}

} // namespace
