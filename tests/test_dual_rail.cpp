// Dual-rail encoding of signed inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::EngineStats;
using core::OpticalConvEngine;
using core::PcnnaConfig;
using nn::Shape4;
using nn::Tensor;

struct SignedLayer {
  Tensor input, weights, bias;
};

SignedLayer make_signed(std::uint64_t seed = 71) {
  Rng rng(seed);
  SignedLayer d;
  d.input = Tensor(Shape4{1, 2, 8, 8});
  nn::fill_gaussian(d.input, rng, 0.0, 0.5); // genuinely signed inputs
  nn::ConvLayerParams layer{"t", 8, 3, 1, 1, 2, 4};
  d.weights = nn::make_conv_weights(layer, rng);
  d.bias = nn::make_conv_bias(layer, rng);
  return d;
}

TEST(DualRail, DisabledRejectsSignedInputs) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  const SignedLayer d = make_signed();
  EXPECT_THROW(engine.conv2d(d.input, d.weights, d.bias, 1, 1), Error);
}

TEST(DualRail, IdealMatchesGoldenOnSignedInputs) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.dual_rail_inputs = true;
  OpticalConvEngine engine(cfg);
  const SignedLayer d = make_signed();
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
}

TEST(DualRail, DoublesTheOpticalWork) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.dual_rail_inputs = true;
  OpticalConvEngine engine(cfg);
  const SignedLayer d = make_signed();
  EngineStats dual;
  engine.conv2d(d.input, d.weights, d.bias, 1, 1, &dual);

  // Same shape with non-negative inputs runs single-rail.
  Rng rng(72);
  nn::ConvLayerParams layer{"t", 8, 3, 1, 1, 2, 4};
  const Tensor pos_input = nn::make_input(layer, rng);
  EngineStats single;
  engine.conv2d(pos_input, d.weights, d.bias, 1, 1, &single);

  EXPECT_EQ(2 * single.optical_passes, dual.optical_passes);
  EXPECT_EQ(2 * single.adc_conversions, dual.adc_conversions);
}

TEST(DualRail, NonNegativeInputsStaySingleRailEvenWhenEnabled) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.dual_rail_inputs = true;
  OpticalConvEngine engine(cfg);
  Rng rng(73);
  nn::ConvLayerParams layer{"t", 8, 3, 1, 1, 2, 4};
  const Tensor input = nn::make_input(layer, rng);
  const Tensor weights = nn::make_conv_weights(layer, rng);
  EngineStats stats;
  engine.conv2d(input, weights, {}, 1, 1, &stats);
  // One pass per location (Nkernel = 18 fits one 96-channel group).
  EXPECT_EQ(64u, stats.optical_passes);
}

TEST(DualRail, NoisyErrorStaysBounded) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.dual_rail_inputs = true;
  OpticalConvEngine engine(cfg);
  const SignedLayer d = make_signed();
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  // Two rails add noise in quadrature; still within the analog budget.
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.25 * ref.abs_max());
}

TEST(DualRail, BiasAppliedExactlyOnce) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.dual_rail_inputs = true;
  OpticalConvEngine engine(cfg);
  SignedLayer d = make_signed();
  d.weights.fill(0.0); // output must be exactly the bias
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t i = 0; i < 64; ++i)
      EXPECT_DOUBLE_EQ(d.bias.at(0, k, 0, 0), out[k * 64 + i]);
}

} // namespace
