// Property tests for the telemetry observation-not-perturbation contract.
//
// Pinned here:
//  * attaching a Telemetry to the admission loop changes NOTHING: for
//    every dispatch policy x fault schedule x engine_threads setting, the
//    schedule, shed decisions, fault report, and autoscaler stats of a
//    telemetry-on run are bitwise identical to the telemetry-off run;
//  * functional serving with telemetry on produces bit-identical outputs
//    and an unchanged OpenLoopReport;
//  * telemetry itself is deterministic: two telemetry-on runs over the
//    same inputs serialize byte-identical Chrome traces and Prometheus
//    snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/pcu_pool.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::AdmissionOptions;
using runtime::AdmissionResult;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::InferenceRequest;
using runtime::OpenLoopReport;
using runtime::PcuPool;
using runtime::PriorityClass;
using runtime::RequestQueue;
using runtime::RequestResult;
using runtime::ScheduledService;
using runtime::Telemetry;

struct TwoModels {
  nn::Network net;
  nn::NetWeights weights_a;
  nn::NetWeights weights_b;
};

TwoModels make_two_models(std::uint64_t seed = 31) {
  Rng rng(seed);
  TwoModels t{nn::tiny_cnn(), {}, {}};
  t.weights_a = nn::make_network_weights(t.net, rng);
  t.weights_b = nn::make_network_weights(t.net, rng);
  return t;
}

AdmissionResult admit(PcuPool& pool, std::vector<InferenceRequest> requests,
                      const AdmissionOptions& admission) {
  RequestQueue queue;
  for (InferenceRequest& r : requests) queue.push(std::move(r));
  queue.close();
  return pool.simulate_admission(queue, admission);
}

/// Bitwise equality over every ScheduledService field — doubles compared
/// exactly: "telemetry changed nothing" means identical bits, not "close".
void expect_bit_identical(const AdmissionResult& a, const AdmissionResult& b) {
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    const ScheduledService& x = a.schedule[i];
    const ScheduledService& y = b.schedule[i];
    EXPECT_EQ(x.id, y.id) << "entry " << i;
    EXPECT_EQ(x.pcu, y.pcu) << "entry " << i;
    EXPECT_EQ(x.arrival, y.arrival) << "entry " << i;
    EXPECT_EQ(x.start, y.start) << "entry " << i;
    EXPECT_EQ(x.completion, y.completion) << "entry " << i;
    EXPECT_EQ(x.warmup, y.warmup) << "entry " << i;
    EXPECT_EQ(x.swap, y.swap) << "entry " << i;
    EXPECT_EQ(x.swapped, y.swapped) << "entry " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "entry " << i;
    ASSERT_EQ(x.stages.size(), y.stages.size()) << "entry " << i;
    for (std::size_t j = 0; j < x.stages.size(); ++j) {
      EXPECT_EQ(x.stages[j].pcu, y.stages[j].pcu) << i << "/" << j;
      EXPECT_EQ(x.stages[j].start, y.stages[j].start) << i << "/" << j;
      EXPECT_EQ(x.stages[j].completion, y.stages[j].completion)
          << i << "/" << j;
      EXPECT_EQ(x.stages[j].pin, y.stages[j].pin) << i << "/" << j;
      EXPECT_EQ(x.stages[j].handoff, y.stages[j].handoff) << i << "/" << j;
    }
  }
  ASSERT_EQ(a.shed.shed, b.shed.shed);
  ASSERT_EQ(a.shed.decisions.size(), b.shed.decisions.size());
  for (std::size_t i = 0; i < a.shed.decisions.size(); ++i) {
    EXPECT_EQ(a.shed.decisions[i].id, b.shed.decisions[i].id);
    EXPECT_EQ(a.shed.decisions[i].decision_time,
              b.shed.decisions[i].decision_time);
  }
  EXPECT_EQ(a.fault.injections, b.fault.injections);
  EXPECT_EQ(a.fault.retries, b.fault.retries);
  EXPECT_EQ(a.fault.lost_requests, b.fault.lost_requests);
  ASSERT_EQ(a.fault.attempts.size(), b.fault.attempts.size());
  for (std::size_t i = 0; i < a.fault.attempts.size(); ++i) {
    EXPECT_EQ(a.fault.attempts[i].id, b.fault.attempts[i].id);
    EXPECT_EQ(a.fault.attempts[i].start, b.fault.attempts[i].start);
    EXPECT_EQ(a.fault.attempts[i].end, b.fault.attempts[i].end);
  }
  EXPECT_EQ(a.autoscaler.scale_ups, b.autoscaler.scale_ups);
  EXPECT_EQ(a.autoscaler.scale_downs, b.autoscaler.scale_downs);
  EXPECT_EQ(a.autoscaler.mean_active, b.autoscaler.mean_active);
  EXPECT_EQ(a.pipeline.pipelined_requests, b.pipeline.pipelined_requests);
  EXPECT_EQ(a.pipeline.pin_time, b.pipeline.pin_time);
  EXPECT_EQ(a.pipeline.handoff_time, b.pipeline.handoff_time);
}

/// Overloaded two-model SLO stream with mixed classes and finite deadlines.
std::vector<InferenceRequest> seeded_stream(const PcuPool& pool,
                                            std::size_t count,
                                            std::uint64_t seed) {
  const double interval = pool.pcu(0).request_interval_overlapped(0);
  const double warmup = pool.pcu(0).warmup_time(0);
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(count, 6.0 / interval, seed);
  Rng rng(seed * 7919 + 1);
  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < count; ++id) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = arrivals[id];
    r.model_id = static_cast<std::uint32_t>(rng.next_u64() % 2);
    const std::uint64_t cls = rng.next_u64() % 3;
    r.priority = cls == 0 ? PriorityClass::kInteractive
                          : (cls == 1 ? PriorityClass::kStandard
                                      : PriorityClass::kBestEffort);
    r.tenant = static_cast<std::uint32_t>(cls);
    r.deadline = arrivals[id] + warmup +
                 (2.0 + static_cast<double>(rng.next_u64() % 8)) * interval;
    requests.push_back(r);
  }
  return requests;
}

// --- The contract: telemetry on == telemetry off, bit for bit ---

TEST(TelemetryPurity, OnVsOffBitIdenticalForEveryPolicyAndFaultSchedule) {
  const TwoModels t = make_two_models();
  PcuPool pool(4, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  pool.build_pipeline(/*model=*/1, {0, 1});
  const double interval = pool.pcu(0).request_interval_overlapped(0);
  constexpr std::size_t kCount = 250;

  runtime::FaultModel hazard;
  hazard.mtbf = 50.0 * interval;
  hazard.horizon = 200.0 * interval;
  hazard.mean_time_to_repair = 15.0 * interval;

  for (const DispatchPolicy policy : runtime::kAllDispatchPolicies) {
    for (const int fault_mode : {0, 1, 2}) {
      AdmissionOptions off;
      off.policy = policy;
      off.shed_expired = true;
      if (fault_mode > 0) {
        off.faults.schedule = runtime::poisson_faults(4, hazard, 113);
        off.faults.health_aware = fault_mode == 2;
        off.faults.detection_latency = 0.5 * interval;
        off.faults.retry.backoff_base = 0.25 * interval;
        off.faults.repair_time = 2.0 * interval;
      }
      AdmissionOptions on = off;
      Telemetry telemetry;
      on.telemetry = &telemetry;

      SCOPED_TRACE(std::string(runtime::dispatch_policy_name(policy)) +
                   " faults " + std::to_string(fault_mode));
      const AdmissionResult a =
          admit(pool, seeded_stream(pool, kCount, 7), off);
      const AdmissionResult b =
          admit(pool, seeded_stream(pool, kCount, 7), on);
      ASSERT_GT(a.schedule.size(), 0u);
      expect_bit_identical(a, b);
      // ... and telemetry actually observed the run it rode along on.
      EXPECT_FALSE(telemetry.spans().empty());
    }
  }
}

TEST(TelemetryPurity, OnVsOffBitIdenticalAcrossEngineThreads) {
  const TwoModels t = make_two_models();
  const auto build = [&](std::size_t threads) {
    runtime::PcuSpec spec;
    spec.config = PcnnaConfig::paper_defaults();
    spec.engine_threads = threads;
    return PcuPool(std::vector<runtime::PcuSpec>(3, spec),
                   TimingFidelity::kFull, t.net, t.weights_a);
  };
  PcuPool one = build(1);
  PcuPool many = build(8);
  one.register_model(t.net, t.weights_b);
  many.register_model(t.net, t.weights_b);

  AdmissionOptions o;
  o.policy = DispatchPolicy::kModelAffinity;
  o.shed_expired = true;
  Telemetry telemetry_one;
  Telemetry telemetry_many;
  AdmissionOptions o_one = o;
  o_one.telemetry = &telemetry_one;
  AdmissionOptions o_many = o;
  o_many.telemetry = &telemetry_many;

  const AdmissionResult a = admit(one, seeded_stream(one, 300, 11), o_one);
  const AdmissionResult b = admit(many, seeded_stream(many, 300, 11), o_many);
  expect_bit_identical(a, b);

  // The telemetry artifacts themselves are host-independent too.
  std::ostringstream trace_one, trace_many, prom_one, prom_many;
  telemetry_one.write_chrome_trace(trace_one);
  telemetry_many.write_chrome_trace(trace_many);
  telemetry_one.write_prometheus(prom_one);
  telemetry_many.write_prometheus(prom_many);
  EXPECT_EQ(trace_one.str(), trace_many.str());
  EXPECT_EQ(prom_one.str(), prom_many.str());
}

// --- Determinism of the artifacts: same run, same bytes ---

TEST(TelemetryPurity, TwoTelemetryRunsSerializeIdenticalArtifacts) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  const auto run = [&]() {
    Telemetry telemetry;
    AdmissionOptions o;
    o.policy = DispatchPolicy::kEdf;
    o.shed_expired = true;
    o.telemetry = &telemetry;
    admit(pool, seeded_stream(pool, 300, 23), o);
    std::ostringstream trace, prom;
    telemetry.write_chrome_trace(trace);
    telemetry.write_prometheus(prom);
    return std::make_pair(trace.str(), prom.str());
  };
  const auto [trace_a, prom_a] = run();
  const auto [trace_b, prom_b] = run();
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(prom_a, prom_b);
}

// --- Functional serving: outputs and report unchanged under telemetry ---

TEST(TelemetryPurity, FunctionalOutputsAndReportUnchanged) {
  const TwoModels t = make_two_models();
  constexpr std::size_t kBatch = 24;

  const auto serve = [&](Telemetry* telemetry, OpenLoopReport* report) {
    BatchRunnerOptions options;
    options.num_pcus = 2;
    options.dispatch = DispatchPolicy::kEdf;
    options.shed_expired = true;
    options.telemetry = telemetry;
    BatchRunner runner(PcnnaConfig::paper_defaults(), t.net, t.weights_a,
                       options);
    const double interval =
        runner.pool().pcu(0).request_interval_overlapped(0);

    std::vector<nn::Tensor> inputs;
    Rng rng(5);
    for (std::size_t i = 0; i < kBatch; ++i)
      inputs.push_back(nn::make_network_input(t.net, rng));
    const ArrivalSchedule arrivals =
        runtime::poisson_arrivals(kBatch, 3.0 / interval, 77);
    runtime::SloSchedule slos(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      slos[i].tenant = static_cast<std::uint32_t>(i % 2);
      slos[i].deadline =
          arrivals[i] + runner.pool().pcu(0).warmup_time(0) + 8.0 * interval;
    }
    return runner.run_open_loop(inputs, arrivals, slos, report);
  };

  OpenLoopReport report_off, report_on;
  Telemetry telemetry;
  const std::vector<RequestResult> off = serve(nullptr, &report_off);
  const std::vector<RequestResult> on = serve(&telemetry, &report_on);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].id, on[i].id);
    EXPECT_EQ(off[i].shed, on[i].shed);
    EXPECT_EQ(off[i].output, on[i].output) << "request " << i;
  }
  EXPECT_EQ(report_off.makespan, report_on.makespan);
  EXPECT_EQ(report_off.latency.p99, report_on.latency.p99);
  EXPECT_EQ(report_off.total_energy, report_on.total_energy);
  EXPECT_EQ(report_off.shed_requests, report_on.shed_requests);
  ASSERT_EQ(report_off.per_pcu.size(), report_on.per_pcu.size());
  for (std::size_t p = 0; p < report_off.per_pcu.size(); ++p) {
    EXPECT_EQ(report_off.per_pcu[p].busy_time, report_on.per_pcu[p].busy_time);
    EXPECT_EQ(report_off.per_pcu[p].requests, report_on.per_pcu[p].requests);
  }

  // Telemetry recorded the engine-phase counters of the functional run.
  std::ostringstream prom;
  telemetry.write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(std::string::npos, text.find("pcnna_engine_bank_passes_total"));
  EXPECT_EQ(std::string::npos, text.find("pcnna_engine_bank_passes_total 0\n"))
      << "functional serving must record non-zero engine work";
}

} // namespace
