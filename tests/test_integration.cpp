// Integration tests: the paper's headline claims, end to end.
#include <gtest/gtest.h>

#include "baselines/eyeriss.hpp"
#include "baselines/yodann.hpp"
#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/ring_count.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using core::TimingModel;

TEST(Integration, OpticalCoreReachesFiveOrdersVsEyeriss) {
  // Abstract SS V-B: "its optical core potentially offer more than 5 order
  // of magnitude speedup compared to state-of-the-art electronic
  // counterparts" — true for the 13x13 layers where Nlocs is tiny.
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const baselines::EyerissModel eyeriss;
  double best = 0.0;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double speedup = eyeriss.layer_time(layer) /
                           pcnna.layer_time(layer).optical_core_time;
    best = std::max(best, speedup);
  }
  EXPECT_GT(best, 1e5);
}

TEST(Integration, FullSystemReachesThreeOrdersVsEyeriss) {
  // "even when taking these electronic I/O limitations into account ... 3
  // orders of magnitude execution time improvement".
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const baselines::EyerissModel eyeriss;
  double best = 0.0;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double speedup = eyeriss.layer_time(layer) /
                           pcnna.layer_time(layer).full_system_time;
    best = std::max(best, speedup);
  }
  EXPECT_GT(best, 1e3);
}

TEST(Integration, EveryLayerBeatsBothElectronicBaselines) {
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const baselines::EyerissModel eyeriss;
  const baselines::YodannModel yodann;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const double t = pcnna.layer_time(layer).full_system_time;
    EXPECT_LT(t, eyeriss.layer_time(layer)) << layer.name;
    EXPECT_LT(t, yodann.layer_time(layer)) << layer.name;
  }
}

TEST(Integration, ElectronicIoCostsTwoOrdersForDeepLayers) {
  // Fig. 6 shape: PCNNA(O+E) sits orders above PCNNA(O) for the deep
  // layers because the DAC, not the optical clock, sets the pace.
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const auto conv4 = nn::alexnet_conv_layers()[3];
  const auto t = pcnna.layer_time(conv4);
  const double penalty = t.full_system_time / t.optical_core_time;
  EXPECT_GT(penalty, 50.0);
  EXPECT_LT(penalty, 1000.0);
}

TEST(Integration, AlexNetConvStackTotalsAreMicroseconds) {
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const auto net = pcnna.network_time(nn::alexnet_conv_layers());
  // Optical core: 4261 locations total -> ~852 ns.
  EXPECT_NEAR(852e-9, net.total_optical_core, 5e-9);
  // Full system: tens of microseconds (DAC-bound).
  EXPECT_GT(net.total_full_system, 10e-6);
  EXPECT_LT(net.total_full_system, 100e-6);
}

TEST(Integration, LenetEndToEndThroughPhotonicCore) {
  // A complete (small) CNN inference through the functional photonic path
  // under paper-default analog impairments: classification must match the
  // reference and the error stay bounded.
  Rng rng(55);
  const nn::Network net = nn::lenet5();
  const auto weights = nn::make_network_weights(net, rng);
  const auto input = nn::make_network_input(net, rng);

  core::Accelerator acc(PcnnaConfig::ideal());
  const auto report = acc.run(net, weights, input);
  EXPECT_LT(report.output_max_abs_err, 1e-6);
  EXPECT_TRUE(report.argmax_match);
  ASSERT_EQ(3u, report.conv_layers.size());
}

TEST(Integration, VggPlansAndTimesUnderPaperModel) {
  // The analytical pipeline must scale to VGG-16 without blowing the SRAM
  // working set or overflowing any counter.
  const TimingModel pcnna(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper);
  const auto net = pcnna.network_time(nn::vgg16_conv_layers());
  ASSERT_EQ(13u, net.layers.size());
  EXPECT_GT(net.total_full_system, net.total_optical_core);
  // VGG has 137 788 kernel locations total -> ~27.6 us optical.
  EXPECT_NEAR(137'788.0 / 5e9, net.total_optical_core, 1e-9);
}

TEST(Integration, RingSavingsHoldAcrossCatalogNetworks) {
  const core::RingCountModel rings;
  for (const auto& layer : nn::vgg16_conv_layers()) {
    EXPECT_GE(rings.savings_factor(layer), 1e4) << layer.name;
  }
  for (const auto& layer : nn::lenet5_conv_layers()) {
    EXPECT_GE(rings.savings_factor(layer), 25.0) << layer.name;
  }
}


TEST(Integration, AlexNetConv1FunctionalThroughPhotonicCore) {
  // The paper's first layer (224x224x3, 96 kernels of 11x11x3) pushed MAC
  // by MAC through the photonic models — ~105M MACs, the largest functional
  // run in the suite. Noise off to make the bound deterministic.
  Rng rng(2718);
  const auto conv1 = nn::alexnet_conv_layers()[0];
  const auto input = nn::make_input(conv1, rng);
  const auto weights = nn::make_conv_weights(conv1, rng);
  const auto bias = nn::make_conv_bias(conv1, rng);

  core::PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  core::OpticalConvEngine engine(cfg);
  core::EngineStats stats;
  const auto out = engine.conv2d(input, weights, bias, conv1.s, conv1.p, &stats);
  const auto ref = nn::conv2d_direct(input, weights, bias, conv1.s, conv1.p);

  EXPECT_EQ(3025u, stats.locations);
  EXPECT_EQ(conv1.weight_count(), stats.rings_used);
  // 8b ADC + calibration residuals: a few percent of the output swing.
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.05 * ref.abs_max());
}

} // namespace
