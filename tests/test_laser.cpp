// Laser diode: CW power, RIN statistics, wall-plug power.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/laser.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Laser, ZeroBandwidthIsDeterministic) {
  phot::LaserDiode laser(phot::LaserConfig{});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(laser.cw_power(), laser.emit(0.0, rng));
}

TEST(Laser, RinNoiseMatchesSpec) {
  phot::LaserConfig cfg;
  cfg.power = 1.0 * u::mW;
  cfg.rin_db_per_hz = -155.0;
  phot::LaserDiode laser(cfg);
  Rng rng(2);
  const double bw = 5.0 * u::GHz;
  std::vector<double> samples(20'000);
  for (double& s : samples) s = laser.emit(bw, rng);
  EXPECT_NEAR(cfg.power, mean(samples), cfg.power * 1e-3);
  const double expected_sigma =
      cfg.power * std::sqrt(from_db(cfg.rin_db_per_hz) * bw);
  EXPECT_NEAR(expected_sigma, stddev(samples), expected_sigma * 0.05);
}

TEST(Laser, PowerNeverNegative) {
  phot::LaserConfig cfg;
  cfg.rin_db_per_hz = -60.0; // absurdly noisy
  phot::LaserDiode laser(cfg);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(laser.emit(100.0 * u::GHz, rng), 0.0);
}

TEST(Laser, WallPlugPower) {
  phot::LaserConfig cfg;
  cfg.power = 2.0 * u::mW;
  cfg.wall_plug_efficiency = 0.2;
  phot::LaserDiode laser(cfg);
  EXPECT_NEAR(10.0 * u::mW, laser.electrical_power(), 1e-12);
}

TEST(Laser, RejectsBadConfig) {
  phot::LaserConfig cfg;
  cfg.power = 0.0;
  EXPECT_THROW(phot::LaserDiode{cfg}, Error);
  cfg = {};
  cfg.rin_db_per_hz = 3.0;
  EXPECT_THROW(phot::LaserDiode{cfg}, Error);
  cfg = {};
  cfg.wall_plug_efficiency = 1.5;
  EXPECT_THROW(phot::LaserDiode{cfg}, Error);
}

} // namespace
