// Layer scheduler: mapping invariants for both allocations.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
using core::LayerPlan;
using core::PcnnaConfig;
using core::RingAllocation;
using core::Scheduler;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

TEST(Scheduler, GroupsTileTheReceptiveFieldExactly) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const LayerPlan plan = sched.plan(layer);
    std::uint64_t covered = 0;
    std::uint64_t prev_end = 0;
    for (const auto& slice : plan.groups) {
      EXPECT_EQ(prev_end, slice.begin) << layer.name;
      EXPECT_GT(slice.end, slice.begin) << layer.name;
      covered += slice.size();
      prev_end = slice.end;
    }
    EXPECT_EQ(layer.kernel_size(), covered) << layer.name;
  }
}

TEST(Scheduler, FullKernelRingsMatchEq5) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const LayerPlan plan = sched.plan(alexnet_layer(3));
  EXPECT_EQ(1'327'104u, plan.rings_total);
  EXPECT_EQ(1u, plan.recalibrations);
}

TEST(Scheduler, PerChannelRingsMatchPaperWorkedNumber) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = RingAllocation::kPerChannel;
  const Scheduler sched(cfg);
  const LayerPlan plan = sched.plan(alexnet_layer(3));
  EXPECT_EQ(3456u, plan.rings_total);
  EXPECT_EQ(384u, plan.recalibrations); // one retuning per input channel
  // Groups tile m*m = 9 values.
  std::uint64_t covered = 0;
  for (const auto& slice : plan.groups) covered += slice.size();
  EXPECT_EQ(9u, covered);
}

TEST(Scheduler, CyclesPerLocationReflectWdmBudget) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.max_wavelengths = 96;
  const Scheduler sched(cfg);
  // conv3: Nkernel = 2304 -> 24 passes of 96 channels.
  const LayerPlan plan = sched.plan(alexnet_layer(2));
  EXPECT_EQ(24u, plan.cycles_per_location);
  EXPECT_EQ(24u, plan.groups.size());
}

TEST(Scheduler, PerChannelCyclesIncludeChannelLoop) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.allocation = RingAllocation::kPerChannel;
  const Scheduler sched(cfg);
  // conv3: nc = 256 channel passes, m*m = 9 fits one group.
  const LayerPlan plan = sched.plan(alexnet_layer(2));
  EXPECT_EQ(256u, plan.cycles_per_location);
}

TEST(Scheduler, InputDacConversionsCountFreshValues) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const auto conv4 = alexnet_layer(3);
  const LayerPlan plan = sched.plan(conv4);
  // First location: full receptive field (3456); then 168 locations x
  // nc*m*s = 1152 fresh values.
  EXPECT_EQ(3456u + 168u * 1152u, plan.input_dac_conversions);
}

TEST(Scheduler, FreshValuesClampToKernelSizeForLargeStrides) {
  // With s >= m the whole window refreshes: min(nc*m*s, Nkernel).
  const Scheduler sched(PcnnaConfig::paper_defaults());
  nn::ConvLayerParams wide{"wide", 16, 2, 0, 4, 1, 1};
  const LayerPlan plan = sched.plan(wide);
  // nc*m*s = 8 > Nkernel = 4 -> clamp to 4.
  EXPECT_EQ(4u + (plan.locations - 1) * 4u, plan.input_dac_conversions);
}

TEST(Scheduler, DramTrafficFullKernel) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const auto conv1 = alexnet_layer(0);
  const LayerPlan plan = sched.plan(conv1);
  EXPECT_EQ(conv1.input_size() + conv1.weight_count(), plan.dram_read_words);
  EXPECT_EQ(conv1.output_size(), plan.dram_write_words);
}

TEST(Scheduler, PerChannelPaysPartialSumRoundTrips) {
  PcnnaConfig full_cfg = PcnnaConfig::paper_defaults();
  PcnnaConfig pc_cfg = PcnnaConfig::paper_defaults();
  pc_cfg.allocation = RingAllocation::kPerChannel;
  const auto conv4 = alexnet_layer(3);
  const LayerPlan full = Scheduler(full_cfg).plan(conv4);
  const LayerPlan pc = Scheduler(pc_cfg).plan(conv4);
  // Per-channel writes partial sums for every pass but the last.
  const std::uint64_t roundtrips = conv4.num_locations() * conv4.K * (conv4.nc - 1);
  EXPECT_EQ(full.dram_write_words + roundtrips, pc.dram_write_words);
  EXPECT_EQ(full.dram_read_words + roundtrips, pc.dram_read_words);
  EXPECT_GT(pc.adc_conversions, full.adc_conversions);
}

TEST(Scheduler, AdcConversionsOnePerKernelPerLocation) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const auto conv2 = alexnet_layer(1);
  const LayerPlan plan = sched.plan(conv2);
  EXPECT_EQ(conv2.num_locations() * conv2.K, plan.adc_conversions);
}

TEST(Scheduler, SramWorkingSetIsReceptiveField) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  for (const auto& layer : nn::alexnet_conv_layers()) {
    EXPECT_EQ(layer.kernel_size(), sched.plan(layer).sram_words) << layer.name;
  }
}

TEST(Scheduler, OversizedWorkingSetThrows) {
  // A receptive field beyond 8000 words cannot be cached.
  const Scheduler sched(PcnnaConfig::paper_defaults());
  nn::ConvLayerParams huge{"huge", 64, 5, 0, 1, 512, 4}; // 5*5*512 = 12800
  EXPECT_THROW(sched.plan(huge), Error);
}

TEST(Scheduler, PlanNetworkCoversAllLayers) {
  const Scheduler sched(PcnnaConfig::paper_defaults());
  const auto plans = sched.plan_network(nn::alexnet_conv_layers());
  ASSERT_EQ(5u, plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    EXPECT_EQ(nn::alexnet_conv_layers()[i].name, plans[i].layer.name);
}

TEST(Scheduler, WeightDacConversionsEqualWeightCount) {
  for (auto allocation :
       {RingAllocation::kFullKernel, RingAllocation::kPerChannel}) {
    PcnnaConfig cfg = PcnnaConfig::paper_defaults();
    cfg.allocation = allocation;
    const Scheduler sched(cfg);
    const auto conv3 = alexnet_layer(2);
    EXPECT_EQ(conv3.weight_count(), sched.plan(conv3).weight_dac_conversions);
  }
}

} // namespace
