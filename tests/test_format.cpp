// Engineering-notation formatting.
#include <gtest/gtest.h>

#include "common/format.hpp"

namespace {

using namespace pcnna;

TEST(Format, Time) {
  EXPECT_EQ("605 ns", format_time(605e-9));
  EXPECT_EQ("2.20 us", format_time(2.2e-6));
  EXPECT_EQ("16.5 ms", format_time(16.5e-3));
  EXPECT_EQ("1.00 s", format_time(1.0));
  EXPECT_EQ("200 ps", format_time(200e-12));
  EXPECT_EQ("0 s", format_time(0.0));
}

TEST(Format, Area) {
  EXPECT_EQ("2.16 mm^2", format_area(2.16e-6));
  EXPECT_EQ("625.00 um^2", format_area(625e-12));
}

TEST(Format, Count) {
  EXPECT_EQ("5.25 B", format_count(5.2454e9));
  EXPECT_EQ("34.8 K", format_count(34'848));
  EXPECT_EQ("3456", format_count(3456));
  EXPECT_EQ("1.33 M", format_count(1'327'104));
  EXPECT_EQ("0", format_count(0));
}

TEST(Format, Power) {
  EXPECT_EQ("44.6 mW", format_power(44.6e-3));
  EXPECT_EQ("1.00 W", format_power(1.0));
  EXPECT_EQ("250 uW", format_power(250e-6));
}

TEST(Format, Energy) {
  EXPECT_EQ("1.30 uJ", format_energy(1.3e-6));
  EXPECT_EQ("20.0 pJ", format_energy(20e-12));
}

TEST(Format, Bytes) {
  EXPECT_EQ("1.00 KiB", format_bytes(1024));
  EXPECT_EQ("129 KiB", format_bytes(132'096));
  EXPECT_EQ("512 B", format_bytes(512));
}

TEST(Format, Freq) {
  EXPECT_EQ("5.00 GHz", format_freq(5e9));
  EXPECT_EQ("200 MHz", format_freq(200e6));
}

TEST(Format, FixedAndSci) {
  EXPECT_EQ("3.14", format_fixed(3.14159, 2));
  EXPECT_EQ("3.1e+05", format_sci(312345.0, 2));
}

TEST(Format, NegativeValues) {
  EXPECT_EQ("-2.20 us", format_time(-2.2e-6));
}

} // namespace
