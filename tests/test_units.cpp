// Units and physical constants.
#include <gtest/gtest.h>

#include "common/units.hpp"

namespace u = pcnna::units;

TEST(Units, TimeScales) {
  EXPECT_DOUBLE_EQ(1e-3, u::ms);
  EXPECT_DOUBLE_EQ(1e-6, u::us);
  EXPECT_DOUBLE_EQ(1e-9, u::ns);
  EXPECT_DOUBLE_EQ(1e-12, u::ps);
  EXPECT_DOUBLE_EQ(5.0e9, 5.0 * u::GHz);
}

TEST(Units, PaperComponentSpecs) {
  // The paper's headline component numbers expressed in base units.
  EXPECT_DOUBLE_EQ(6.0e9, 6.0 * u::GSa);          // input DAC rate [16]
  EXPECT_DOUBLE_EQ(2.8e9, 2.8 * u::GSa);          // ADC rate [17]
  EXPECT_DOUBLE_EQ(7.0e-9, 7.0 * u::ns);          // SRAM access [15]
  EXPECT_DOUBLE_EQ(25.0e-6, 25.0 * u::um);        // ring pitch [10]
  EXPECT_DOUBLE_EQ(0.443e-6, 0.443 * u::mm2);     // SRAM area [15]
  EXPECT_DOUBLE_EQ(128.0e3, 128.0 * u::kb);       // SRAM capacity [15]
}

TEST(Units, AreaScales) {
  // 25 um x 25 um ring = 625 um^2; 3456 of them = 2.16 mm^2 (paper SS V-A).
  const double ring = (25.0 * u::um) * (25.0 * u::um);
  EXPECT_NEAR(625.0 * u::um2, ring, 1e-18);
  EXPECT_NEAR(2.16 * u::mm2, 3456 * ring, 0.005 * u::mm2);
}

TEST(Units, PhysicalConstants) {
  EXPECT_NEAR(3.0e8, u::c0, 0.01e8);
  EXPECT_GT(u::q_e, 1.6e-19);
  EXPECT_LT(u::q_e, 1.61e-19);
  EXPECT_NEAR(1.38e-23, u::k_B, 0.01e-23);
}

TEST(Units, InformationSizes) {
  EXPECT_DOUBLE_EQ(8.0, u::byte);
  EXPECT_DOUBLE_EQ(8.0 * 1024.0, u::KiB);
}
