// Pipeline-parallel serving through BatchRunner: the golden bit-identity
// contract and kPipeline's composition with the rest of the front door.
//
// The load-bearing guarantees pinned here:
//  * golden bit-identity — for the same per-request seeds, a model served
//    through a pinned multi-PCU pipeline, a data-parallel fleet, and the
//    sequential single-PCU reference produce bitwise-equal outputs, and
//    engine_threads never perturbs a single bit (the stage hand-off
//    carries the engine RNG state across chip boundaries);
//  * a steady-state pinned pipeline records zero model swaps, pays each
//    stage pin exactly once, and charges busy time to the stage PCUs;
//  * kPipeline composes with deadlines, shedding, and the autoscaler
//    without breaking conservation or determinism;
//  * crashing a stage PCU re-places the group deterministically
//    (replacements > 0) and the run keeps serving.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::OpenLoopReport;
using runtime::RequestResult;

/// Recalibration-heavy 3-conv net: the regime pipeline groups target.
nn::Network make_pipelined_net() {
  nn::Network net("piped", nn::Shape4{1, 32, 8, 8});
  net.add_conv({"p1", 8, 3, 1, 1, 32, 32}).add_relu();
  net.add_conv({"p2", 8, 3, 1, 1, 32, 32}).add_relu();
  net.add_conv({"p3", 8, 3, 1, 1, 32, 32});
  return net;
}

struct Fixture {
  nn::Network net = make_pipelined_net();
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Fixture make_fixture(std::size_t batch) {
  Fixture f;
  Rng rng(23);
  f.weights = nn::make_network_weights(f.net, rng);
  for (std::size_t i = 0; i < batch; ++i)
    f.inputs.push_back(nn::make_network_input(f.net, rng));
  return f;
}

BatchRunnerOptions base_options() {
  BatchRunnerOptions o;
  o.num_pcus = 3;
  o.fidelity = TimingFidelity::kFull;
  o.simulate_values = true;
  o.seed = 9;
  return o;
}

// --- Golden bit-identity (satellite) ---

TEST(PipelineGolden, PipelinedEqualsDataParallelEqualsSequential) {
  const Fixture f = make_fixture(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  const ArrivalSchedule arrivals(f.inputs.size(), 0.0);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    BatchRunnerOptions sopts = base_options();
    sopts.num_pcus = 1;
    sopts.engine_threads = threads;
    BatchRunner sequential(config, f.net, f.weights, sopts);

    BatchRunnerOptions dopts = base_options();
    dopts.engine_threads = threads;
    dopts.dispatch = DispatchPolicy::kLeastLoaded;
    BatchRunner data_parallel(config, f.net, f.weights, dopts);
    const std::vector<RequestResult> dp =
        data_parallel.run_open_loop(f.inputs, arrivals);

    BatchRunnerOptions popts = base_options();
    popts.engine_threads = threads;
    popts.dispatch = DispatchPolicy::kPipeline;
    BatchRunner pipelined(config, f.net, f.weights, popts);
    pipelined.build_pipeline(/*model=*/0, {0, 1, 2});
    OpenLoopReport report;
    const std::vector<RequestResult> pl =
        pipelined.run_open_loop(f.inputs, arrivals, &report);
    ASSERT_EQ(f.inputs.size(), report.pipeline.pipelined_requests);

    for (std::size_t id = 0; id < f.inputs.size(); ++id) {
      const RequestResult ref = sequential.run_one(f.inputs[id], id);
      EXPECT_TRUE(ref.output == dp[id].output)
          << "data-parallel request " << id << " at " << threads
          << " engine threads";
      EXPECT_TRUE(ref.output == pl[id].output)
          << "pipelined request " << id << " at " << threads
          << " engine threads";
    }
  }
}

// --- Steady-state accounting ---

TEST(PipelineServing, PinnedPipelineNeverSwapsAndChargesStagePcus) {
  const Fixture f = make_fixture(0);
  BatchRunnerOptions o = base_options();
  o.simulate_values = false;
  o.dispatch = DispatchPolicy::kPipeline;
  BatchRunner runner(PcnnaConfig::paper_defaults(), f.net, f.weights, o);
  runner.build_pipeline(/*model=*/0, {0, 1, 2});

  const double interval = runner.pool().pcu(0).request_interval_overlapped(0);
  constexpr std::size_t kCount = 500;
  const OpenLoopReport r = runner.simulate_open_loop(
      runtime::poisson_arrivals(kCount, 0.9 / interval, 3));

  EXPECT_EQ(kCount, r.requests);
  EXPECT_EQ(kCount, r.served_requests);
  EXPECT_EQ(0u, r.model_swaps);
  EXPECT_EQ(0.0, r.model_swap_time);
  EXPECT_EQ(1u, r.pipeline.groups);
  EXPECT_EQ(kCount, r.pipeline.pipelined_requests);
  EXPECT_EQ(3 * kCount, r.pipeline.stage_spans);
  EXPECT_EQ(0u, r.pipeline.replacements);
  EXPECT_GT(r.pipeline.pin_time, 0.0);

  // Every stage PCU worked; the head (uniform layers on a homogeneous
  // chain place stage 0 on PCU 0) is credited with the requests.
  ASSERT_EQ(3u, r.per_pcu.size());
  EXPECT_EQ(kCount, r.per_pcu[0].requests);
  for (const runtime::PcuBreakdown& b : r.per_pcu) {
    EXPECT_GT(b.busy_time, 0.0);
    EXPECT_EQ(0u, b.swaps);
  }
  // The one-time pins surface as warmup on the stage PCUs.
  double warmup = 0.0;
  for (const runtime::PcuBreakdown& b : r.per_pcu) warmup += b.warmup_time;
  EXPECT_EQ(r.pipeline.pin_time, warmup);
}

TEST(PipelineServing, HandoffTimeIsChargedBetweenStages) {
  const Fixture f = make_fixture(0);
  BatchRunnerOptions o = base_options();
  o.simulate_values = false;
  o.dispatch = DispatchPolicy::kPipeline;

  const auto completion_with = [&](double handoff) {
    BatchRunner runner(PcnnaConfig::paper_defaults(), f.net, f.weights, o);
    runner.build_pipeline(/*model=*/0, {0, 1, 2}, handoff);
    const OpenLoopReport r =
        runner.simulate_open_loop(ArrivalSchedule(8, 0.0));
    // 2 stage boundaries per request across 8 requests.
    if (handoff == 0.0)
      EXPECT_EQ(0.0, r.pipeline.handoff_time);
    else
      EXPECT_NEAR(16.0 * handoff, r.pipeline.handoff_time, 1e-9 * handoff);
    return r.makespan;
  };
  const double free_makespan = completion_with(0.0);
  const double taxed_makespan = completion_with(1e-6);
  EXPECT_GT(taxed_makespan, free_makespan);
}

// --- Composition with the SLO front door ---

TEST(PipelineServing, ComposesWithDeadlinesSheddingAndAutoscaler) {
  const Fixture f = make_fixture(0);
  BatchRunnerOptions o = base_options();
  o.num_pcus = 4;
  o.simulate_values = false;
  o.dispatch = DispatchPolicy::kPipeline;
  o.shed_expired = true;
  o.autoscaler.enabled = true;
  o.autoscaler.min_active = 1;
  o.autoscaler.backlog_per_pcu = 1.5;

  BatchRunner runner(PcnnaConfig::paper_defaults(), f.net, f.weights, o);
  runner.build_pipeline(/*model=*/0, {0, 1, 2});
  const double interval = runner.pool().pcu(0).request_interval_overlapped(0);
  o.autoscaler.shrink_after_idle = 3.0 * interval;

  constexpr std::size_t kCount = 600;
  // 2x overload with tight deadlines: the pipeline must shed the excess
  // instead of serving uselessly late.
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kCount, 2.0 / interval, 7);
  const runtime::SloSchedule slos = runtime::assign_tenants(
      arrivals,
      {{0, runtime::PriorityClass::kInteractive, 1.0, 6.0 * interval},
       {1, runtime::PriorityClass::kBestEffort, 1.0, 3.0 * interval}},
      11);

  const OpenLoopReport a = runner.simulate_open_loop(arrivals, slos);
  EXPECT_GT(a.shed_requests, 0u);
  EXPECT_GT(a.pipeline.pipelined_requests, 0u);
  EXPECT_EQ(0u, a.model_swaps);
  // Conservation through the composed stack.
  EXPECT_EQ(kCount, a.requests);
  EXPECT_EQ(a.requests,
            a.served_requests + a.shed_requests + a.failed_requests);
  // And the whole composition is deterministic.
  const OpenLoopReport b = runner.simulate_open_loop(arrivals, slos);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.pipeline.pin_time, b.pipeline.pin_time);
}

// --- Fault quarantine and deterministic re-placement ---

TEST(PipelineServing, CrashedStagePcuTriggersDeterministicReplacement) {
  const Fixture f = make_fixture(0);
  BatchRunnerOptions o = base_options();
  o.num_pcus = 3;
  o.simulate_values = false;
  o.dispatch = DispatchPolicy::kPipeline;

  const auto run = [&] {
    BatchRunner runner(PcnnaConfig::paper_defaults(), f.net, f.weights, o);
    runner.build_pipeline(/*model=*/0, {0, 1, 2});
    const double interval =
        runner.pool().pcu(0).request_interval_overlapped(0);
    BatchRunnerOptions fo = o;
    // Crash the middle stage PCU mid-run; recover it later. The group
    // re-places onto the two survivors, then back onto all three.
    fo.faults.schedule = {
        {20.0 * interval, 1, runtime::FaultKind::kCrash, 1.0},
        {60.0 * interval, 1, runtime::FaultKind::kRecover, 1.0},
    };
    fo.faults.detection_latency = 0.5 * interval;
    fo.faults.retry.backoff_base = 0.25 * interval;
    BatchRunner faulty(PcnnaConfig::paper_defaults(), f.net, f.weights, fo);
    faulty.build_pipeline(/*model=*/0, {0, 1, 2});
    return faulty.simulate_open_loop(
        runtime::poisson_arrivals(300, 0.9 / interval, 5));
  };

  const OpenLoopReport a = run();
  EXPECT_GE(a.pipeline.replacements, 2u); // down to survivors, back up
  EXPECT_GT(a.fault.injections, 0u);
  EXPECT_GT(a.served_requests, 0u);
  // Retried chains re-dispatch through the (re-placed) group, so the
  // pipelined count can only meet or exceed the served count.
  EXPECT_GE(a.pipeline.pipelined_requests, a.served_requests);
  EXPECT_EQ(a.requests,
            a.served_requests + a.shed_requests + a.failed_requests);

  const OpenLoopReport b = run();
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.pipeline.replacements, b.pipeline.replacements);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pipeline.pin_time, b.pipeline.pin_time);
}

} // namespace
