// AOT layer planner and its memoizing PlanCache.
//
// The load-bearing guarantees pinned here:
//  * exact hit/miss/invalidation accounting — every lookup lands in
//    exactly one bucket, and a warm second pass over the same network is
//    100% hits (the >= 95% warm-path gate);
//  * a cached strategy is bit-identical to a freshly searched one
//    (memberwise equality over the plan, the timing, and the calibration
//    artifact);
//  * bumping the recalibration epoch invalidates exactly the entries
//    inserted before the bump — newer entries keep hitting;
//  * the configuration digest separates everything that plans differently
//    (fields, fidelity) and nothing that doesn't (engine_threads).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/config.hpp"
#include "core/planner.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::LayerStrategy;
using core::NetworkPlan;
using core::PlanCache;
using core::PlanCacheStats;
using core::PlanKey;
using core::Planner;
using core::RingAllocation;
using core::TimingFidelity;
using core::TimingModel;
using core::config_hash;
using core::plan_config_key;

nn::ConvLayerParams layer_a() {
  // LeNet-ish small conv layer.
  return {"conv_a", 28, 5, 0, 1, 1, 6};
}

nn::ConvLayerParams layer_b() {
  return {"conv_b", 14, 5, 0, 1, 6, 16};
}

// --- Configuration digest ---

TEST(ConfigHash, EqualConfigsHashEqualAndEveryModeledFieldSeparates) {
  const PcnnaConfig base = PcnnaConfig::paper_defaults();
  EXPECT_EQ(config_hash(base), config_hash(PcnnaConfig::paper_defaults()));

  PcnnaConfig c = base;
  c.max_wavelengths /= 2;
  EXPECT_NE(config_hash(base), config_hash(c));

  c = base;
  c.allocation = RingAllocation::kPerChannel;
  EXPECT_NE(config_hash(base), config_hash(c));

  c = base;
  c.seed += 1; // drives the fabrication draws of the calibration artifact
  EXPECT_NE(config_hash(base), config_hash(c));

  c = base;
  c.bank.ring.fab_sigma += 1e-12;
  EXPECT_NE(config_hash(base), config_hash(c));

  c = base;
  c.sram.capacity_bits *= 2.0;
  EXPECT_NE(config_hash(base), config_hash(c));

  c = base;
  c.dram.bandwidth *= 2.0;
  EXPECT_NE(config_hash(base), config_hash(c));
}

TEST(ConfigHash, EngineThreadsDoesNotSplitTheCache) {
  // A host-parallelism knob no modeled quantity depends on: hashing it
  // would only cause spurious misses between identical-planning runs.
  PcnnaConfig a = PcnnaConfig::paper_defaults();
  PcnnaConfig b = a;
  b.engine_threads = 8;
  EXPECT_EQ(config_hash(a), config_hash(b));
}

TEST(PlanKeyTest, SameShapeDifferentNameSharesTheKey) {
  Planner planner(PcnnaConfig::paper_defaults());
  nn::ConvLayerParams renamed = layer_a();
  renamed.name = "something_else";
  EXPECT_EQ(planner.key(layer_a()), planner.key(renamed));

  nn::ConvLayerParams wider = layer_a();
  wider.K += 1;
  EXPECT_FALSE(planner.key(layer_a()) == planner.key(wider));
}

// --- Hit/miss accounting (satellite) ---

TEST(PlanCacheTest, ExactHitMissAccounting) {
  Planner planner(PcnnaConfig::paper_defaults());
  const PlanCacheStats& stats = planner.cache().stats();

  planner.plan_layer(layer_a());
  EXPECT_EQ((PlanCacheStats{0, 1, 0}), stats) << "cold lookup is one miss";
  planner.plan_layer(layer_a());
  EXPECT_EQ((PlanCacheStats{1, 1, 0}), stats);
  planner.plan_layer(layer_b());
  EXPECT_EQ((PlanCacheStats{1, 2, 0}), stats);
  planner.plan_layer(layer_b());
  planner.plan_layer(layer_a());
  EXPECT_EQ((PlanCacheStats{3, 2, 0}), stats);
  EXPECT_EQ(2u, planner.cache().size());
}

TEST(PlanCacheTest, SecondIdenticalNetworkPassIsAllHits) {
  Planner planner(PcnnaConfig::paper_defaults());
  const std::vector<nn::ConvLayerParams> layers =
      nn::alexnet().conv_layers();

  const NetworkPlan cold = planner.plan_network(layers);
  const std::size_t cold_misses = planner.cache().stats().misses;
  EXPECT_EQ(0u, planner.cache().stats().hits);
  EXPECT_LE(cold_misses, layers.size());

  const NetworkPlan warm = planner.plan_network(layers);
  const PlanCacheStats& stats = planner.cache().stats();
  // The warm-path gate: >= 95% hits on the second identical pass. Every
  // lookup hits (100%), because nothing was invalidated in between.
  EXPECT_EQ(layers.size(), stats.hits);
  EXPECT_EQ(cold_misses, stats.misses) << "no new misses on the warm pass";
  EXPECT_EQ(0u, stats.invalidations);
  ASSERT_EQ(cold.layers.size(), warm.layers.size());
  EXPECT_EQ(cold.total_latency, warm.total_latency);
}

TEST(PlanCacheTest, SharedCacheMemoizesAcrossPlanners) {
  PlanCache shared;
  Planner first(PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
                &shared);
  first.plan_layer(layer_a());
  Planner second(PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
                 &shared);
  second.plan_layer(layer_a());
  EXPECT_EQ(1u, shared.stats().hits);
  EXPECT_EQ(1u, shared.stats().misses);
}

TEST(PlanCacheTest, FidelitiesNeverShareEntries) {
  PlanCache shared;
  Planner full(PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               &shared);
  Planner paper(PcnnaConfig::paper_defaults(), TimingFidelity::kPaper,
                &shared);
  full.plan_layer(layer_a());
  paper.plan_layer(layer_a());
  EXPECT_EQ(0u, shared.stats().hits);
  EXPECT_EQ(2u, shared.stats().misses);
  EXPECT_EQ(2u, shared.size());
}

// --- Bit-identical cached strategies (satellite) ---

TEST(PlannerTest, CachedStrategyBitIdenticalToFreshSearch) {
  Planner planner(PcnnaConfig::paper_defaults());
  const LayerStrategy first = planner.plan_layer(layer_b());
  const LayerStrategy cached = planner.plan_layer(layer_b());
  // Memberwise equality: the mapping, the timing breakdown (exact double
  // compares), and the calibration artifact all round-trip the cache.
  EXPECT_EQ(first, cached);

  Planner fresh(PcnnaConfig::paper_defaults());
  EXPECT_EQ(first, fresh.plan_layer(layer_b()))
      << "a fresh planner's search reproduces the strategy bit-for-bit";
}

// --- Epoch invalidation (satellite) ---

TEST(PlanCacheTest, EpochBumpInvalidatesExactlyTheStaleEntries) {
  Planner planner(PcnnaConfig::paper_defaults());
  planner.plan_layer(layer_a()); // inserted under epoch 0

  planner.cache().bump_epoch();
  planner.plan_layer(layer_b()); // inserted under epoch 1 — stays fresh

  // layer_a is stale: evicted on lookup, one invalidation + one miss, and
  // the re-planned entry is cached under the current epoch.
  planner.plan_layer(layer_a());
  EXPECT_EQ((PlanCacheStats{0, 3, 1}), planner.cache().stats());

  // Exactly the stale entry was invalidated: both now hit.
  planner.plan_layer(layer_a());
  planner.plan_layer(layer_b());
  EXPECT_EQ((PlanCacheStats{2, 3, 1}), planner.cache().stats());
  EXPECT_EQ(1u, planner.cache().epoch());
}

TEST(PlanCacheTest, RecalibratedStrategyStaysBitIdenticalUnderSameSeed) {
  // The epoch models device drift; with an unchanged config seed the
  // re-measured calibration artifact lands on the same value, so the
  // re-planned strategy is equal. (A real recalibration changes the seed,
  // which changes the PlanKey itself.)
  Planner planner(PcnnaConfig::paper_defaults());
  const LayerStrategy before = planner.plan_layer(layer_a());
  planner.cache().bump_epoch();
  EXPECT_EQ(before, planner.plan_layer(layer_a()));
}

// A quarantine repair re-trims ONE PCU configuration's banks; the
// fault-tolerant admission loop bumps exactly that configuration's epoch
// (plan_config_key), so strategies planned for other device models must
// stay fresh.
TEST(PlanCacheTest, PerConfigBumpInvalidatesOnlyThatConfiguration) {
  PlanCache shared;
  PcnnaConfig big = PcnnaConfig::paper_defaults();
  PcnnaConfig small = PcnnaConfig::paper_defaults();
  small.max_wavelengths = big.max_wavelengths / 2;
  Planner big_planner(big, TimingFidelity::kFull, &shared);
  Planner small_planner(small, TimingFidelity::kFull, &shared);
  big_planner.plan_layer(layer_a());
  small_planner.plan_layer(layer_a());
  EXPECT_EQ(2u, shared.size());

  // Repair the "big" PCU: only its configuration's entry goes stale.
  shared.bump_epoch(plan_config_key(big, TimingFidelity::kFull));
  small_planner.plan_layer(layer_a()); // hit — untouched configuration
  big_planner.plan_layer(layer_a());   // invalidation + miss, re-inserted
  EXPECT_EQ((PlanCacheStats{1, 3, 1}), shared.stats());

  // The re-inserted entry carries the bumped effective epoch: fresh again.
  big_planner.plan_layer(layer_a());
  EXPECT_EQ((PlanCacheStats{2, 3, 1}), shared.stats());
  EXPECT_EQ(0u, shared.epoch()) << "per-config bumps never move the global";
  EXPECT_EQ(1u, shared.epoch(plan_config_key(big, TimingFidelity::kFull)));
  EXPECT_EQ(0u, shared.epoch(plan_config_key(small, TimingFidelity::kFull)));
}

TEST(PlanCacheTest, PerConfigAndGlobalEpochsCompose) {
  PlanCache cache;
  const std::uint64_t key =
      plan_config_key(PcnnaConfig::paper_defaults(), TimingFidelity::kFull);
  EXPECT_EQ(0u, cache.epoch(key));
  cache.bump_epoch(key);
  cache.bump_epoch(key);
  cache.bump_epoch(); // global drift on top of two repairs
  EXPECT_EQ(3u, cache.epoch(key));
  EXPECT_EQ(1u, cache.epoch());
  EXPECT_EQ(1u, cache.epoch(key + 1)) << "unbumped digests track the global";
}

// plan_config_key folds the fidelity into the configuration digest: the
// same physical config under a different timing model is a different
// calibration domain.
TEST(PlanCacheTest, PlanConfigKeySeparatesFidelities) {
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  EXPECT_NE(plan_config_key(config, TimingFidelity::kFull),
            plan_config_key(config, TimingFidelity::kPaper));
  EXPECT_EQ(plan_config_key(config, TimingFidelity::kFull),
            plan_config_key(PcnnaConfig::paper_defaults(),
                            TimingFidelity::kFull));
}

TEST(PlanCacheTest, ClearDropsEntriesAndStatsButKeepsTheEpoch) {
  Planner planner(PcnnaConfig::paper_defaults());
  planner.plan_layer(layer_a());
  planner.cache().bump_epoch();
  planner.cache().clear();
  EXPECT_EQ(0u, planner.cache().size());
  EXPECT_EQ((PlanCacheStats{0, 0, 0}), planner.cache().stats());
  EXPECT_EQ(1u, planner.cache().epoch())
      << "the epoch tracks the physical device, not the cache contents";
}

// --- Search quality ---

TEST(PlannerTest, SearchNeverLosesToTheAsConfiguredMapping) {
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  Planner planner(config);
  const TimingModel baseline(config, TimingFidelity::kFull);
  for (const nn::ConvLayerParams& layer : nn::alexnet().conv_layers()) {
    const LayerStrategy s = planner.plan_layer(layer);
    // The as-configured candidate is in the search space, so the winner
    // can only match or beat it.
    EXPECT_LE(s.latency, baseline.layer_time(layer).full_system_time)
        << layer.name;
    EXPECT_EQ(s.latency, s.timing.full_system_time) << layer.name;
    EXPECT_GE(s.candidates_searched, 2u) << layer.name;
    EXPECT_LE(s.wavelengths, config.max_wavelengths) << layer.name;
    EXPECT_GT(s.usable_range, 0.0) << layer.name;
    EXPECT_GE(s.plan.group_size, 1u) << layer.name;
  }
}

TEST(PlannerTest, NetworkPlanTotalsAreTheSumOfTheWinners) {
  Planner planner(PcnnaConfig::paper_defaults());
  const std::vector<nn::ConvLayerParams> layers =
      nn::lenet5().conv_layers();
  const NetworkPlan plan = planner.plan_network(layers);
  ASSERT_EQ(layers.size(), plan.layers.size());
  double sum = 0.0;
  for (const LayerStrategy& s : plan.layers) sum += s.latency;
  EXPECT_DOUBLE_EQ(sum, plan.total_latency);
  EXPECT_GT(plan.baseline_latency, 0.0);
  EXPECT_LE(plan.total_latency, plan.baseline_latency);
}

TEST(PlannerTest, RejectsDegenerateLayers) {
  Planner planner(PcnnaConfig::paper_defaults());
  nn::ConvLayerParams bad = layer_a();
  bad.m = 0;
  EXPECT_THROW(planner.plan_layer(bad), Error);
}

} // namespace
