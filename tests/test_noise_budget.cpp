// Closed-form noise budget, cross-validated against the functional
// simulator — the analytical model must predict what the Monte Carlo
// photonic chain actually does.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "core/noise_budget.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::NoiseBudget;
using core::NoiseBudgetModel;
using core::PcnnaConfig;

TEST(NoiseBudget, NoiseOffMeansZeroAnalogSigma) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  const NoiseBudgetModel model(cfg);
  const auto b = model.layer_budget(nn::alexnet_conv_layers()[2]);
  EXPECT_DOUBLE_EQ(0.0, b.mac_sigma);
  EXPECT_DOUBLE_EQ(0.0, b.adc_quantization_sigma);
  EXPECT_GT(b.snr_db, 1e6);
}

TEST(NoiseBudget, ComponentsCombineInQuadrature) {
  const NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const auto b = model.layer_budget(nn::alexnet_conv_layers()[2]);
  EXPECT_NEAR(std::sqrt(b.sigma_rin * b.sigma_rin + b.sigma_shot * b.sigma_shot +
                        b.sigma_thermal * b.sigma_thermal),
              b.sigma_pass, 1e-18);
  EXPECT_NEAR(std::sqrt(b.mac_sigma * b.mac_sigma +
                        b.adc_quantization_sigma * b.adc_quantization_sigma),
              b.total_mac_sigma(), 1e-18);
}

TEST(NoiseBudget, MoreLaserPowerImprovesSnr) {
  PcnnaConfig lo = PcnnaConfig::paper_defaults();
  PcnnaConfig hi = PcnnaConfig::paper_defaults();
  lo.enable_quantization = false;
  hi.enable_quantization = false;
  lo.laser.power = 1e-3;
  hi.laser.power = 10e-3;
  const auto b_lo =
      NoiseBudgetModel(lo).layer_budget(nn::alexnet_conv_layers()[2]);
  const auto b_hi =
      NoiseBudgetModel(hi).layer_budget(nn::alexnet_conv_layers()[2]);
  EXPECT_GT(b_hi.snr_db, b_lo.snr_db);
}

TEST(NoiseBudget, MoreFanoutHurtsSnr) {
  const NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const auto few = model.pass_budget(64, 1, /*fanout=*/8, 64);
  const auto many = model.pass_budget(64, 1, /*fanout=*/512, 64);
  EXPECT_GT(few.snr_db, many.snr_db);
}

TEST(NoiseBudget, MorePassesAccumulateNoise) {
  const NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const auto one = model.pass_budget(64, 1, 16, 64);
  const auto nine = model.pass_budget(64, 9, 16, 9 * 64);
  EXPECT_NEAR(3.0, nine.mac_sigma / one.mac_sigma, 1e-9);
}

TEST(NoiseBudget, DominantSourceIsNamed) {
  const NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  const auto b = model.layer_budget(nn::alexnet_conv_layers()[0]);
  const std::string source = b.dominant_source;
  EXPECT_TRUE(source == "RIN" || source == "shot" || source == "thermal" ||
              source == "ADC")
      << source;
}

TEST(NoiseBudget, ThermalSigmaMatchesClosedForm) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.laser.rin_db_per_hz = -300.0; // kill RIN
  cfg.bank.photodiode.enable_shot_noise = false;
  const NoiseBudgetModel model(cfg);
  const auto b = model.pass_budget(32, 1, 8, 32);
  const double expected = std::sqrt(2.0 * 4.0 * units::k_B * 300.0 *
                                    cfg.fast_clock /
                                    cfg.bank.photodiode.load_resistance);
  EXPECT_NEAR(expected, b.sigma_thermal, expected * 1e-9);
  EXPECT_NEAR(expected, b.sigma_pass, expected * 1e-6);
}

// The headline test: predicted MAC sigma must match the functional
// simulator's empirically measured error within a factor-of-two band
// (distributional assumptions are approximate, but the scale must agree).
TEST(NoiseBudget, PredictsFunctionalSimulatorError) {
  nn::ConvLayerParams layer{"probe", 10, 3, 1, 1, 8, 16};
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_quantization = false; // isolate the analog noise
  cfg.seed = 31337;

  Rng rng(11);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto golden = nn::conv2d_direct(input, weights, {}, layer.s, layer.p);

  core::OpticalConvEngine engine(cfg);
  const auto out = engine.conv2d(input, weights, {}, layer.s, layer.p);
  const double measured_rmse = rmse(out.data(), golden.data());

  // The budget predicts sigma in normalized MAC units; convert to output
  // units with the same recover factor the engine uses (~ x_scale *
  // w_absmax / denom, denom ~ 0.95 * usable ~ 0.9).
  const NoiseBudgetModel model(cfg);
  const auto b = model.layer_budget(layer);
  const double recover = input.abs_max() * weights.abs_max() / 0.9;
  const double predicted_rmse = b.total_mac_sigma() * recover;

  EXPECT_GT(measured_rmse, predicted_rmse / 2.0);
  EXPECT_LT(measured_rmse, predicted_rmse * 2.0);
}

TEST(NoiseBudget, PerChannelAllocationPaysQuantizationPerPass) {
  PcnnaConfig full = PcnnaConfig::paper_defaults();
  PcnnaConfig pc = PcnnaConfig::paper_defaults();
  pc.allocation = core::RingAllocation::kPerChannel;
  const auto conv3 = nn::alexnet_conv_layers()[2];
  const auto b_full = NoiseBudgetModel(full).layer_budget(conv3);
  const auto b_pc = NoiseBudgetModel(pc).layer_budget(conv3);
  EXPECT_GT(b_pc.adc_quantization_sigma, b_full.adc_quantization_sigma);
}

TEST(NoiseBudget, RejectsDegenerateArgs) {
  const NoiseBudgetModel model(PcnnaConfig::paper_defaults());
  EXPECT_THROW(model.pass_budget(0, 1, 1, 1), Error);
  EXPECT_THROW(model.pass_budget(1, 0, 1, 1), Error);
  EXPECT_THROW(model.pass_budget(1, 1, 0, 1), Error);
}

} // namespace
