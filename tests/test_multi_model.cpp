// Multi-model serving: per-request model routing, weight-bank swap
// accounting, and the model-affinity dispatch policy.
//
// The load-bearing guarantees pinned here:
//  * swap-cost regression: a two-model alternating trace on one PCU
//    charges exactly (requests - 1) swaps under FIFO, and kModelAffinity
//    on two PCUs charges zero once each model has a home;
//  * the swap charge replaces (never stacks on) the pipeline-fill warmup,
//    and the serial schedule never charges swaps at all;
//  * shed placeholders carry model_id and tenant, so per-model accounting
//    stays correct under load shedding (satellite bugfix);
//  * functional outputs route to the registered model's weights and stay
//    bit-identical to a single-model runner built with those weights.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::AdmissionOptions;
using runtime::AdmissionResult;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::InferenceRequest;
using runtime::ModelSchedule;
using runtime::OpenLoopReport;
using runtime::PcuPool;
using runtime::PriorityClass;
using runtime::RequestQueue;
using runtime::RequestResult;
using runtime::RequestSlo;
using runtime::ScheduledService;
using runtime::SloSchedule;

struct TwoModels {
  nn::Network net;
  nn::NetWeights weights_a;
  nn::NetWeights weights_b;
};

/// Same architecture twice with independent weights: model identity is
/// which weight bank is programmed, which is exactly what a swap changes.
TwoModels make_two_models(std::uint64_t seed = 77) {
  Rng rng(seed);
  TwoModels t{nn::tiny_cnn(), {}, {}};
  t.weights_a = nn::make_network_weights(t.net, rng);
  t.weights_b = nn::make_network_weights(t.net, rng);
  return t;
}

InferenceRequest timing_request(std::uint64_t id, double arrival,
                                std::uint32_t model) {
  InferenceRequest r;
  r.id = id;
  r.arrival_time = arrival;
  r.model_id = model;
  return r;
}

AdmissionResult admit(PcuPool& pool, std::vector<InferenceRequest> requests,
                      const AdmissionOptions& admission) {
  RequestQueue queue;
  for (InferenceRequest& r : requests) queue.push(std::move(r));
  queue.close();
  return pool.simulate_admission(queue, admission);
}

std::size_t count_swaps(const std::vector<ScheduledService>& schedule) {
  std::size_t swaps = 0;
  for (const ScheduledService& s : schedule)
    if (s.swapped) ++swaps;
  return swaps;
}

// --- Pcu-level model registry ---

TEST(MultiModel, RegisterModelExtendsEveryPcuAndSwapStaysWithinInterval) {
  const TwoModels t = make_two_models();
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  EXPECT_EQ(1u, pool.num_models());
  const std::uint32_t id = pool.register_model(t.net, t.weights_b);
  EXPECT_EQ(1u, id);
  EXPECT_EQ(2u, pool.num_models());

  for (std::size_t p = 0; p < pool.size(); ++p) {
    const runtime::Pcu& pcu = pool.pcu(p);
    EXPECT_EQ(2u, pcu.num_models());
    // The swap is the full serial reprogram of every bank; each of those
    // recalibrations appears in exactly one term of the steady-state
    // interval's max-sum, so the swap can never exceed the interval.
    for (std::uint32_t m = 0; m < 2; ++m) {
      EXPECT_GT(pcu.swap_time(m), 0.0);
      EXPECT_LE(pcu.swap_time(m), pcu.request_interval_overlapped(m));
      EXPECT_GE(pcu.swap_time(m), pcu.warmup_time(m))
          << "the full reprogram subsumes the single-layer pipeline fill";
    }
  }
}

TEST(MultiModel, UnknownModelIdIsRejected) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  EXPECT_THROW(admit(pool, {timing_request(0, 0.0, 1)}, {}), Error);
  EXPECT_THROW(pool.pcu(0).swap_time(3), Error);
}

// --- Swap-cost regression (satellite) ---

TEST(SwapAccounting, AlternatingTraceOnOnePcuChargesExactlyNMinusOneSwaps) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  const std::size_t n = 8;
  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < n; ++id)
    requests.push_back(
        timing_request(id, 0.0, static_cast<std::uint32_t>(id % 2)));
  const AdmissionResult r = admit(pool, std::move(requests), {});

  ASSERT_EQ(n, r.schedule.size());
  // First programming is free of swap (nothing to tear down); every
  // subsequent request switches, so exactly n - 1 swaps.
  EXPECT_EQ(n - 1, count_swaps(r.schedule));
  EXPECT_FALSE(r.schedule[0].swapped);
  EXPECT_EQ(pool.pcu(0).warmup_time(0), r.schedule[0].warmup);
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t model = r.schedule[i].model;
    EXPECT_TRUE(r.schedule[i].swapped) << "entry " << i;
    EXPECT_EQ(pool.pcu(0).swap_time(model), r.schedule[i].swap);
    EXPECT_EQ(0.0, r.schedule[i].warmup)
        << "the swap subsumes the pipeline fill, never stacks on it";
    // Back-to-back on one PCU: each start is the previous completion.
    EXPECT_EQ(r.schedule[i - 1].completion, r.schedule[i].start);
  }
}

TEST(SwapAccounting, RepeatedSameModelNeverSwaps) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < 6; ++id)
    requests.push_back(timing_request(id, 0.0, 1));
  const AdmissionResult r = admit(pool, std::move(requests), {});
  EXPECT_EQ(0u, count_swaps(r.schedule));
  for (const ScheduledService& s : r.schedule) EXPECT_EQ(0.0, s.swap);
}

TEST(SwapAccounting, SerialScheduleChargesNoSwaps) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < 6; ++id)
    requests.push_back(
        timing_request(id, 0.0, static_cast<std::uint32_t>(id % 2)));
  AdmissionOptions serial;
  serial.double_buffer = false;
  const AdmissionResult r = admit(pool, std::move(requests), serial);
  // Every layer pays its recalibration inline on every request, so a model
  // switch costs nothing extra.
  EXPECT_EQ(0u, count_swaps(r.schedule));
  for (const ScheduledService& s : r.schedule) {
    EXPECT_EQ(0.0, s.swap);
    EXPECT_EQ(s.start + pool.pcu(0).request_time_serial(s.model),
              s.completion);
  }
}

TEST(ModelAffinity, TwoPcusReachZeroSwapSteadyState) {
  const TwoModels t = make_two_models();
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < 12; ++id)
    requests.push_back(
        timing_request(id, 0.0, static_cast<std::uint32_t>(id % 2)));
  AdmissionOptions affinity;
  affinity.policy = DispatchPolicy::kModelAffinity;
  const AdmissionResult r = admit(pool, std::move(requests), affinity);

  ASSERT_EQ(12u, r.schedule.size());
  // Each model claims an unprogrammed PCU on first sight (zero swap) and
  // every later request waits for its home PCU instead of thrashing.
  EXPECT_EQ(0u, count_swaps(r.schedule));
  for (const ScheduledService& s : r.schedule) {
    EXPECT_EQ(0.0, s.swap);
    EXPECT_EQ(static_cast<std::size_t>(s.model % 2 == 0 ? 0 : 1), s.pcu)
        << "request " << s.id << " must stay on its model's home PCU";
  }
}

TEST(ModelAffinity, FallsBackAndPaysSwapWhenDeadlineWouldBlow) {
  const TwoModels t = make_two_models();
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  const double interval = pool.pcu(0).request_interval_overlapped(1);
  const double warmup = pool.pcu(0).warmup_time(1);
  const double swap = pool.pcu(0).swap_time(1);
  const double margin = 0.5 * std::min(swap, interval);

  // Geometry (all derived from the accessors): PCU 0 becomes model 0's
  // home, PCU 1 model 1's. A backlogged model-1 request keeps PCU 1 busy
  // until t1_free while PCU 0 sits free and programmed with model 0. The
  // probe request arrives `margin` before t1_free, so waiting for its
  // home finishes sooner than swapping (margin < swap) — the policy
  // defers unless the deadline cannot survive the wait.
  const double both_free = warmup + interval;  // r0/r1 complete together
  const double t1_free = both_free + interval; // r2 holds PCU 1
  const double probe_arrival = t1_free - margin;
  ASSERT_GT(probe_arrival, both_free);

  const auto run = [&](double deadline) {
    std::vector<InferenceRequest> requests;
    requests.push_back(timing_request(0, 0.0, 0)); // programs PCU 0
    requests.push_back(timing_request(1, 0.0, 1)); // programs PCU 1
    requests.push_back(timing_request(2, 0.0, 1)); // backlogs PCU 1
    InferenceRequest probe = timing_request(3, probe_arrival, 1);
    probe.deadline = deadline;
    requests.push_back(probe);
    AdmissionOptions affinity;
    affinity.policy = DispatchPolicy::kModelAffinity;
    const AdmissionResult r = admit(pool, std::move(requests), affinity);
    for (const ScheduledService& s : r.schedule)
      if (s.id == 3) return s;
    ADD_FAILURE() << "probe request missing from the schedule";
    return r.schedule.back();
  };

  // Slack deadline: waiting for the busy home PCU both meets the SLO and
  // beats swapping, so the probe defers and serves swap-free on PCU 1.
  const ScheduledService patient =
      run(std::numeric_limits<double>::infinity());
  EXPECT_EQ(1u, patient.pcu);
  EXPECT_FALSE(patient.swapped);
  EXPECT_EQ(0.0, patient.swap);
  EXPECT_EQ(t1_free, patient.start) << "deferred until its home freed";

  // Tight deadline: the affinity queue's predicted completion
  // (t1_free + interval) blows the SLO, so the probe abandons the wait
  // at its arrival and swaps onto the free model-0 PCU instead.
  const ScheduledService urgent = run(t1_free + interval - margin * 0.5);
  EXPECT_EQ(0u, urgent.pcu) << "deadline pressure overrides affinity";
  EXPECT_TRUE(urgent.swapped);
  EXPECT_EQ(pool.pcu(0).swap_time(1), urgent.swap);
  EXPECT_EQ(probe_arrival, urgent.start)
      << "dispatched the moment the wait became SLO-infeasible";
}

TEST(ModelAffinity, SingleModelMatchesEarliestFreeDispatch) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(120, 8.0e5, 21);

  const auto run = [&](DispatchPolicy policy) {
    std::vector<InferenceRequest> requests;
    for (std::size_t id = 0; id < arrivals.size(); ++id)
      requests.push_back(timing_request(id, arrivals[id], 0));
    AdmissionOptions o;
    o.policy = policy;
    return admit(pool, std::move(requests), o);
  };
  const AdmissionResult a = run(DispatchPolicy::kEarliestFree);
  const AdmissionResult b = run(DispatchPolicy::kModelAffinity);

  // One model, no SLO metadata: affinity degenerates to FIFO onto free
  // PCUs and must reproduce the legacy schedule exactly.
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].id, b.schedule[i].id) << "entry " << i;
    EXPECT_EQ(a.schedule[i].pcu, b.schedule[i].pcu) << "entry " << i;
    EXPECT_EQ(a.schedule[i].start, b.schedule[i].start) << "entry " << i;
    EXPECT_EQ(a.schedule[i].completion, b.schedule[i].completion)
        << "entry " << i;
  }
  EXPECT_EQ(0u, count_swaps(b.schedule));
}

// --- BatchRunner plumbing: reports, placeholders, functional routing ---

TEST(MultiModel, ReportCountsSwapsPerPcuAndFleetWide) {
  const TwoModels t = make_two_models();
  BatchRunner runner(PcnnaConfig::paper_defaults(), t.net, t.weights_a, [] {
    BatchRunnerOptions o;
    o.num_pcus = 1;
    o.simulate_values = false;
    return o;
  }());
  runner.register_model(t.net, t.weights_b);

  const std::size_t n = 6;
  ModelSchedule models;
  for (std::size_t id = 0; id < n; ++id)
    models.push_back(static_cast<std::uint32_t>(id % 2));
  const OpenLoopReport r = runner.simulate_open_loop(
      runtime::closed_batch_arrivals(n), {}, models);

  EXPECT_EQ(n - 1, r.model_swaps);
  EXPECT_GT(r.model_swap_time, 0.0);
  ASSERT_EQ(1u, r.per_pcu.size());
  EXPECT_EQ(n - 1, r.per_pcu[0].swaps);
  EXPECT_EQ(r.model_swap_time, r.per_pcu[0].swap_time);
}

TEST(MultiModel, ShedPlaceholdersCarryModelAndTenant) {
  const TwoModels t = make_two_models();
  Rng rng(5);
  std::vector<nn::Tensor> inputs;
  for (int i = 0; i < 3; ++i)
    inputs.push_back(nn::make_network_input(t.net, rng));

  BatchRunner runner(PcnnaConfig::paper_defaults(), t.net, t.weights_a, [] {
    BatchRunnerOptions o;
    o.num_pcus = 1;
    o.shed_expired = true;
    return o;
  }());
  runner.register_model(t.net, t.weights_b);
  const double interval =
      runner.pool().pcu(0).request_interval_overlapped(0);
  const double warmup = runner.pool().pcu(0).warmup_time(0);

  // One PCU, three same-instant arrivals, deadlines that admit exactly one
  // service: requests 1 and 2 are shed — their placeholder results must
  // still identify the model and tenant they were for.
  SloSchedule slos(3, RequestSlo{9, PriorityClass::kInteractive,
                                 warmup + 1.5 * interval});
  const ModelSchedule models = {0, 1, 1};
  OpenLoopReport report;
  const std::vector<RequestResult> out =
      runner.run_open_loop(inputs, runtime::closed_batch_arrivals(3), slos,
                           models, &report);

  ASSERT_EQ(3u, out.size());
  EXPECT_FALSE(out[0].shed);
  EXPECT_TRUE(out[1].shed);
  EXPECT_TRUE(out[2].shed);
  for (std::size_t id = 0; id < 3; ++id) {
    EXPECT_EQ(models[id], out[id].model_id) << "request " << id;
    EXPECT_EQ(9u, out[id].tenant) << "request " << id;
  }
  EXPECT_EQ(2u, report.shed_requests);
}

TEST(MultiModel, OutputsRouteToTheRequestedModelBitIdentically) {
  const TwoModels t = make_two_models();
  Rng rng(11);
  const nn::Tensor input = nn::make_network_input(t.net, rng);

  BatchRunnerOptions o;
  o.num_pcus = 1;
  o.seed = 123;
  BatchRunner multi(PcnnaConfig::paper_defaults(), t.net, t.weights_a, o);
  multi.register_model(t.net, t.weights_b);

  // Request id 0 targets model 1: its output must match a single-model
  // runner built directly on weights_b (same request seed, same device).
  OpenLoopReport report;
  const std::vector<RequestResult> out = multi.run_open_loop(
      {input}, runtime::closed_batch_arrivals(1), {}, {1}, &report);
  ASSERT_EQ(1u, out.size());
  ASSERT_FALSE(out[0].output.empty());
  EXPECT_EQ(1u, out[0].model_id);

  BatchRunner single(PcnnaConfig::paper_defaults(), t.net, t.weights_b, o);
  EXPECT_EQ(single.run_one(input, 0).output, out[0].output)
      << "model routing must select weights_b's banks exactly";

  BatchRunner other(PcnnaConfig::paper_defaults(), t.net, t.weights_a, o);
  EXPECT_NE(other.run_one(input, 0).output, out[0].output)
      << "the two models must actually differ for this test to bite";
}

TEST(MultiModel, ModelScheduleLengthAndIdsAreValidated) {
  const TwoModels t = make_two_models();
  BatchRunner runner(PcnnaConfig::paper_defaults(), t.net, t.weights_a, [] {
    BatchRunnerOptions o;
    o.num_pcus = 1;
    o.simulate_values = false;
    return o;
  }());
  runner.register_model(t.net, t.weights_b);

  // Wrong length and out-of-range model ids both throw.
  EXPECT_THROW(runner.simulate_open_loop(runtime::closed_batch_arrivals(3),
                                         {}, {0, 1}),
               Error);
  EXPECT_THROW(runner.simulate_open_loop(runtime::closed_batch_arrivals(2),
                                         {}, {0, 2}),
               Error);
}

} // namespace
