// MRR weight bank: calibration, signed weighting, crosstalk, linearity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/weight_bank.hpp"

namespace {

using namespace pcnna;
namespace u = units;

phot::WeightBankConfig default_cfg() { return phot::WeightBankConfig{}; }

phot::WeightBankConfig ideal_cfg() {
  phot::WeightBankConfig cfg;
  cfg.model_crosstalk = false;
  cfg.ring.q_factor = 2.0e6;
  cfg.ring.max_drop = 1.0 - 1e-9;
  cfg.ring.insertion_loss_db = 0.0;
  cfg.ring.tuning_bits = 44;
  cfg.ring.max_detuning = 1.55 * u::nm;
  return cfg;
}

TEST(WeightBank, RangeIsNearlySymmetricUnitInterval) {
  Rng rng(1);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  EXPECT_GT(bank.max_weight(), 0.9);
  EXPECT_LE(bank.max_weight(), 1.0);
  EXPECT_LT(bank.min_weight(), -0.9);
  EXPECT_GE(bank.min_weight(), -1.0);
}

TEST(WeightBank, FreshBankParksAtZeroWeight) {
  Rng rng(2);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(0.0, bank.effective_weight(i), 0.01);
}

TEST(WeightBank, CalibrationHitsTargetsWithCrosstalk) {
  Rng rng(3);
  phot::WeightBank bank(phot::WdmGrid(8), default_cfg(), rng);
  const std::vector<double> targets = {0.5,  -0.5, 0.9,  -0.9,
                                       0.05, 0.25, -0.75, 0.0};
  const auto achieved = bank.calibrate(targets);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_NEAR(targets[i], achieved[i], 5e-3) << "ring " << i;
}

TEST(WeightBank, IdealCalibrationIsNearExact) {
  Rng rng(4);
  phot::WeightBank bank(phot::WdmGrid(8), ideal_cfg(), rng);
  const std::vector<double> targets = {0.3, -0.6, 0.99, -0.99, 0.0, 0.111, -0.2, 0.77};
  const auto achieved = bank.calibrate(targets);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_NEAR(targets[i], achieved[i], 1e-7) << "ring " << i;
}

TEST(WeightBank, OutOfRangeTargetsClampToRange) {
  Rng rng(5);
  phot::WeightBank bank(phot::WdmGrid(2), default_cfg(), rng);
  const auto achieved = bank.calibrate(std::vector<double>{1.0, -1.0});
  EXPECT_NEAR(bank.max_weight(), achieved[0], 5e-3);
  EXPECT_LT(achieved[1], -0.9);
  // |w| > 1 is a caller bug, not a clamp.
  EXPECT_THROW(bank.calibrate(std::vector<double>{1.5, 0.0}), Error);
}

TEST(WeightBank, WrongWeightCountThrows) {
  Rng rng(6);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  EXPECT_THROW(bank.calibrate(std::vector<double>{0.1, 0.2}), Error);
}

TEST(WeightBank, DetectComputesWeightedSum) {
  Rng rng(7);
  phot::WeightBank bank(phot::WdmGrid(6), default_cfg(), rng);
  const std::vector<double> weights = {0.5, -0.5, 0.25, -0.25, 0.8, 0.0};
  const auto achieved = bank.calibrate(weights);

  phot::WdmSignal in(6);
  const std::vector<double> powers = {1e-3, 2e-3, 0.5e-3, 1e-3, 0.1e-3, 3e-3};
  double expected = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    in[i] = powers[i];
    expected += powers[i] * achieved[i];
  }
  const double resp = default_cfg().photodiode.responsivity;
  EXPECT_NEAR(resp * expected, bank.detect(in, 0.0, rng), 1e-12);
}

TEST(WeightBank, PropagateIsLinearInInputs) {
  Rng rng(8);
  phot::WeightBank bank(phot::WdmGrid(5), default_cfg(), rng);
  bank.calibrate(std::vector<double>{0.4, -0.3, 0.9, -0.9, 0.1});

  // channel_splits must reproduce propagate for arbitrary bundles.
  const auto splits = bank.channel_splits();
  phot::WdmSignal in(5);
  for (std::size_t i = 0; i < 5; ++i) in[i] = 0.3e-3 * static_cast<double>(i + 1);
  double drop = 0.0, thru = 0.0;
  bank.propagate(in, drop, thru);
  double drop2 = 0.0, thru2 = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    drop2 += in[i] * splits[i].drop;
    thru2 += in[i] * splits[i].thru;
  }
  EXPECT_NEAR(drop, drop2, 1e-15);
  EXPECT_NEAR(thru, thru2, 1e-15);
}

TEST(WeightBank, CrosstalkShiftsOpenLoopWeights) {
  // With iterative calibration disabled (open loop), the crosstalk model
  // leaves a measurable weight error that the isolated model does not.
  Rng rng1(9), rng2(9);
  phot::WeightBankConfig xcfg = default_cfg();
  xcfg.model_crosstalk = true;
  xcfg.calibration_iterations = 0;
  phot::WeightBankConfig ncfg = default_cfg();
  ncfg.model_crosstalk = false;

  phot::WeightBank xbank(phot::WdmGrid(2), xcfg, rng1);
  phot::WeightBank nbank(phot::WdmGrid(2), ncfg, rng2);
  // Ring 1 fully on resonance; probe channel 0's weight in both models.
  xbank.calibrate(std::vector<double>{0.0, 1.0});
  nbank.calibrate(std::vector<double>{0.0, 1.0});
  const double w_x = xbank.effective_weight(0);
  const double w_n = nbank.effective_weight(0);
  // Open-loop crosstalk pulls channel 0 away from zero by more than the
  // isolated model's quantization-level residue.
  EXPECT_GT(std::abs(w_x), std::abs(w_n) + 1e-4);
}

TEST(WeightBank, CalibrationIterationsCancelCrosstalk) {
  Rng rng_open(21), rng_closed(21);
  phot::WeightBankConfig open_cfg = default_cfg();
  open_cfg.calibration_iterations = 0;
  phot::WeightBank open_bank(phot::WdmGrid(8), open_cfg, rng_open);
  phot::WeightBank closed_bank(phot::WdmGrid(8), default_cfg(), rng_closed);

  const std::vector<double> targets = {0.9, -0.9, 0.9, -0.9,
                                       0.9, -0.9, 0.9, -0.9};
  const auto open_w = open_bank.calibrate(targets);
  const auto closed_w = closed_bank.calibrate(targets);
  double open_err = 0.0, closed_err = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    open_err += std::abs(open_w[i] - targets[i]);
    closed_err += std::abs(closed_w[i] - targets[i]);
  }
  EXPECT_LT(closed_err, open_err);
}

TEST(WeightBank, CalibrationCompensatesFabricationDisorder) {
  phot::WeightBankConfig cfg = default_cfg();
  cfg.ring.fab_sigma = 0.05 * u::nm;
  Rng rng(10);
  phot::WeightBank bank(phot::WdmGrid(6), cfg, rng);
  const std::vector<double> targets = {0.5, -0.5, 0.2, -0.2, 0.8, -0.8};
  const auto achieved = bank.calibrate(targets);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_NEAR(targets[i], achieved[i], 0.02) << "ring " << i;
}

TEST(WeightBank, HeaterPowerIsFiniteAndPositiveAfterCalibration) {
  Rng rng(11);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  bank.calibrate(std::vector<double>{0.5, -0.5, 0.9, -0.9});
  EXPECT_GT(bank.total_heater_power(), 0.0);
  EXPECT_LT(bank.total_heater_power(), 4.0 * 10.0 * u::mW);
}

TEST(WeightBank, AreaScalesWithRingCount) {
  Rng rng(12);
  phot::WeightBank bank(phot::WdmGrid(16), default_cfg(), rng);
  EXPECT_NEAR(16.0 * 625.0 * u::um2, bank.total_area(), 1e-15);
}

TEST(WeightBank, ChannelCountMismatchThrows) {
  Rng rng(13);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  phot::WdmSignal wrong(3);
  double d = 0.0, t = 0.0;
  EXPECT_THROW(bank.propagate(wrong, d, t), Error);
}

TEST(WeightBank, DetectNoiseIsBounded) {
  Rng rng(14);
  phot::WeightBank bank(phot::WdmGrid(4), default_cfg(), rng);
  const auto achieved = bank.calibrate(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  phot::WdmSignal in(4);
  for (std::size_t i = 0; i < 4; ++i) in[i] = 1e-3;
  double ideal = 0.0;
  for (std::size_t i = 0; i < 4; ++i) ideal += in[i] * achieved[i];
  ideal *= default_cfg().photodiode.responsivity;
  // 5 GHz detection bandwidth noise should stay within ~1% of a ~2 mA-scale
  // signal over many draws.
  for (int i = 0; i < 100; ++i) {
    const double sample = bank.detect(in, 5.0 * u::GHz, rng);
    EXPECT_NEAR(ideal, sample, 0.01 * std::abs(ideal));
  }
}

} // namespace
