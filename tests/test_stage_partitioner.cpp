// StagePartitioner: the deterministic layer-range splitter behind
// pipeline-parallel serving.
//
// The load-bearing guarantees pinned here:
//  * partitions are contiguous, cover every op exactly once, and each
//    stage owns at least one conv op — electronic ops ride with the conv
//    that produced their input;
//  * the DP is optimal: the bottleneck (maximum) stage cost matches a
//    brute-force search over all contiguous splits, so the balance bound
//    max/min never drifts without a test catching it;
//  * ties resolve deterministically toward the earliest boundaries;
//  * assign_stages is capability-driven: the heaviest stage lands on the
//    strongest PCU (fewest whole-model passes), ties by lowest index;
//  * place_pipeline is a pure function of the surviving member set, so
//    re-placement after a quarantine is deterministic and repeatable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/stage_partitioner.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/synth.hpp"
#include "runtime/pcu_pool.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::StagePartitioner;
using core::StageRange;
using core::TimingFidelity;
using runtime::PcuPool;
using runtime::PcuSpec;

/// Brute-force minimal bottleneck cost over all contiguous splits of
/// `costs` into `stages` ranges, each holding >= 1 positive-cost op.
std::size_t brute_force_bottleneck(const std::vector<std::size_t>& costs,
                                   std::size_t lo, std::size_t stages) {
  const std::size_t n = costs.size();
  if (stages == 1) {
    std::size_t sum = 0;
    bool positive = false;
    for (std::size_t i = lo; i < n; ++i) {
      sum += costs[i];
      positive = positive || costs[i] > 0;
    }
    return positive ? sum : static_cast<std::size_t>(-1);
  }
  std::size_t best = static_cast<std::size_t>(-1);
  std::size_t head = 0;
  bool positive = false;
  for (std::size_t cut = lo + 1; cut < n; ++cut) {
    head += costs[cut - 1];
    positive = positive || costs[cut - 1] > 0;
    if (!positive) continue;
    const std::size_t rest = brute_force_bottleneck(costs, cut, stages - 1);
    if (rest == static_cast<std::size_t>(-1)) continue;
    best = std::min(best, std::max(head, rest));
  }
  return best;
}

void expect_contiguous_cover(const std::vector<StageRange>& ranges,
                             const std::vector<std::size_t>& costs) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(0u, ranges.front().op_begin);
  EXPECT_EQ(costs.size(), ranges.back().op_end);
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    EXPECT_LT(ranges[j].op_begin, ranges[j].op_end) << "stage " << j;
    if (j > 0)
      EXPECT_EQ(ranges[j - 1].op_end, ranges[j].op_begin) << "stage " << j;
    std::size_t sum = 0;
    for (std::size_t i = ranges[j].op_begin; i < ranges[j].op_end; ++i)
      sum += costs[i];
    EXPECT_EQ(sum, ranges[j].cost) << "stage " << j;
    EXPECT_GT(sum, 0u) << "stage " << j << " holds no conv op";
  }
}

// --- partition_costs: the raw DP ---

TEST(PartitionCosts, ContiguousCoverAndOptimalBottleneck) {
  // Randomized vectors with interleaved zero-cost (electronic) ops,
  // checked against brute force at every feasible stage count.
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::size_t> costs;
    const std::size_t n = 3 + rng.next_u64() % 6; // 3..8 ops
    std::size_t positive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool conv = i == 0 || rng.next_u64() % 3 != 0;
      costs.push_back(conv ? 1 + rng.next_u64() % 20 : 0);
      positive += conv ? 1 : 0;
    }
    for (std::size_t stages = 1; stages <= positive; ++stages) {
      const std::vector<StageRange> ranges =
          core::partition_costs(costs, stages);
      ASSERT_EQ(stages, ranges.size());
      expect_contiguous_cover(ranges, costs);
      std::size_t bottleneck = 0;
      for (const StageRange& r : ranges)
        bottleneck = std::max(bottleneck, r.cost);
      EXPECT_EQ(brute_force_bottleneck(costs, 0, stages), bottleneck)
          << "trial " << trial << " stages " << stages;
    }
  }
}

TEST(PartitionCosts, TiesResolveTowardTheEarliestBoundary) {
  // {1,1,1,1} into 2 stages: splits after op 2 and op 3 both achieve the
  // optimal bottleneck of 2; the earliest boundary must win.
  const std::vector<StageRange> ranges = core::partition_costs({1, 1, 1, 1}, 2);
  ASSERT_EQ(2u, ranges.size());
  EXPECT_EQ(2u, ranges[0].op_end);
  // And the choice is stable across calls.
  const std::vector<StageRange> again = core::partition_costs({1, 1, 1, 1}, 2);
  EXPECT_EQ(ranges[0].op_end, again[0].op_end);
}

TEST(PartitionCosts, RejectsInfeasibleStageCounts) {
  EXPECT_THROW(core::partition_costs({1, 1}, 0), Error);
  EXPECT_THROW(core::partition_costs({1, 1}, 3), Error);
  EXPECT_THROW(core::partition_costs({0, 0}, 1), Error);
}

// --- StagePartitioner over real networks ---

TEST(StagePartitionerTest, ElectronicOpsRideWithTheirConv) {
  const nn::Network net = nn::lenet5();
  const StagePartitioner part(PcnnaConfig::paper_defaults());
  const std::vector<std::size_t> costs = part.op_costs(net);
  ASSERT_EQ(net.ops().size(), costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (net.ops()[i].kind == nn::OpKind::kConv)
      EXPECT_GT(costs[i], 0u) << "op " << i;
    else
      EXPECT_EQ(0u, costs[i]) << "op " << i;
  }

  const std::size_t max_stages = StagePartitioner::max_stages(net);
  EXPECT_EQ(3u, max_stages); // lenet5 has three conv layers
  for (std::size_t stages = 1; stages <= max_stages; ++stages) {
    const std::vector<StageRange> ranges = part.partition(net, stages);
    expect_contiguous_cover(ranges, costs);
    // Every stage must *start* at a conv boundary (except stage 0, which
    // also absorbs any leading electronic ops).
    for (std::size_t j = 1; j < ranges.size(); ++j)
      EXPECT_EQ(nn::OpKind::kConv, net.ops()[ranges[j].op_begin].kind)
          << "stage " << j;
  }
  EXPECT_THROW(part.partition(net, max_stages + 1), Error);
  EXPECT_THROW(part.partition(net, 0), Error);
}

TEST(StagePartitionerTest, BalanceBoundOnUniformLayers) {
  // Three identical conv layers into 3 stages: perfectly balanced, so the
  // bottleneck-to-lightest ratio is exactly 1.
  nn::Network net("uniform", nn::Shape4{1, 16, 8, 8});
  for (int i = 0; i < 3; ++i)
    net.add_conv({"c" + std::to_string(i), 8, 3, 1, 1, 16, 16});
  const StagePartitioner part(PcnnaConfig::paper_defaults());
  const std::vector<StageRange> ranges = part.partition(net, 3);
  std::size_t lo = ranges[0].cost, hi = ranges[0].cost;
  for (const StageRange& r : ranges) {
    lo = std::min(lo, r.cost);
    hi = std::max(hi, r.cost);
  }
  EXPECT_EQ(lo, hi);

  // VGG-16 into 4 stages: layer costs are skewed, but the bottleneck can
  // never exceed the whole-network serial cost and the partition must
  // beat the trivial bound serial/1 (i.e. actually split work).
  const nn::Network vgg = nn::vgg16();
  const std::vector<std::size_t> vcosts = part.op_costs(vgg);
  const std::size_t serial =
      std::accumulate(vcosts.begin(), vcosts.end(), std::size_t{0});
  const std::vector<StageRange> vranges = part.partition(vgg, 4);
  std::size_t bottleneck = 0;
  for (const StageRange& r : vranges)
    bottleneck = std::max(bottleneck, r.cost);
  EXPECT_LT(bottleneck, serial);
  // A 4-way split of a 13-conv net must land within 2x of the ideal
  // serial/4 bottleneck — the DP is optimal, this guards cost modeling.
  EXPECT_LE(bottleneck, (serial + 1) / 2);
}

// --- assign_stages: capability-driven stage placement ---

TEST(AssignStages, HeaviestStageGoesToTheStrongestPcu) {
  const std::vector<StageRange> stages = {
      {0, 2, 10}, {2, 4, 30}, {4, 6, 20}};
  // Candidate PCU 7 is strongest (2 passes), 5 weakest (9 passes).
  const std::vector<std::size_t> candidates = {5, 6, 7};
  const std::vector<std::size_t> passes = {9, 4, 2};
  const std::vector<std::size_t> got =
      core::assign_stages(stages, candidates, passes);
  ASSERT_EQ(3u, got.size());
  EXPECT_EQ(7u, got[1]); // heaviest stage (30) -> strongest PCU
  EXPECT_EQ(6u, got[2]); // next (20) -> next strongest
  EXPECT_EQ(5u, got[0]); // lightest (10) -> weakest
}

TEST(AssignStages, TiesBreakTowardLowestIndices) {
  // Equal-cost stages on equal-strength candidates: stage order and PCU
  // order must both fall back to lowest-index-first.
  const std::vector<StageRange> stages = {{0, 1, 5}, {1, 2, 5}};
  const std::vector<std::size_t> got =
      core::assign_stages(stages, {3, 1, 2}, {4, 4, 4});
  ASSERT_EQ(2u, got.size());
  EXPECT_EQ(1u, got[0]); // stage 0 first on ties, lowest PCU index first
  EXPECT_EQ(2u, got[1]);
}

TEST(AssignStages, RejectsTooFewCandidates) {
  const std::vector<StageRange> stages = {{0, 1, 5}, {1, 2, 5}};
  EXPECT_THROW(core::assign_stages(stages, {0}, {1}), Error);
  EXPECT_THROW(core::assign_stages(stages, {0, 1}, {1}), Error);
}

// --- build_pipeline / place_pipeline on a pool ---

struct Fixture {
  nn::Network net = nn::lenet5();
  nn::NetWeights weights;
};

Fixture make_fixture() {
  Fixture f;
  Rng rng(7);
  f.weights = nn::make_network_weights(f.net, rng);
  return f;
}

/// A WDM budget tight enough that lenet5's wide layers need extra
/// segmented bank passes — the "small" PCU of a mixed fleet.
PcnnaConfig weak_config() {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.max_wavelengths = 12;
  return cfg;
}

TEST(BuildPipeline, ValidatesItsArguments) {
  const Fixture f = make_fixture();
  PcuPool pool(4, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               f.net, f.weights);
  EXPECT_THROW(pool.build_pipeline(1, {0, 1}), Error);  // unregistered model
  EXPECT_THROW(pool.build_pipeline(0, {}), Error);      // empty group
  EXPECT_THROW(pool.build_pipeline(0, {0, 0}), Error);  // duplicate member
  EXPECT_THROW(pool.build_pipeline(0, {0, 9}), Error);  // PCU out of range
  EXPECT_THROW(pool.build_pipeline(0, {0, 1}, -1.0), Error); // bad hand-off
  // lenet5 has 3 conv ops: a 4-stage chain cannot exist.
  EXPECT_THROW(pool.build_pipeline(0, {0, 1, 2, 3}), Error);

  ASSERT_EQ(0u, pool.build_pipeline(0, {0, 1, 2}));
  EXPECT_EQ(1u, pool.num_pipelines());
  // One group per model, and members are reserved fleet-wide.
  EXPECT_THROW(pool.build_pipeline(0, {3}), Error);
}

TEST(BuildPipeline, HeaviestStageLandsOnTheStrongestMember) {
  const Fixture f = make_fixture();
  // Mixed chain: one strong PCU among two weak ones.
  PcuSpec strong{PcnnaConfig::paper_defaults(), 0,
                 runtime::WarmupPolicy::kRechargeAfterIdle, "big"};
  PcuSpec weak{weak_config(), 0, runtime::WarmupPolicy::kRechargeAfterIdle,
               "small"};
  PcuPool pool({weak, strong, weak}, TimingFidelity::kFull, f.net, f.weights);
  pool.build_pipeline(0, {0, 1, 2});
  const runtime::PipelineGroup& g = pool.pipeline(0);
  ASSERT_EQ(3u, g.stages.size());

  std::size_t heaviest = 0;
  for (std::size_t j = 1; j < g.stages.size(); ++j)
    if (g.stages[j].cost > g.stages[heaviest].cost) heaviest = j;
  std::size_t strongest = g.members.front();
  for (const std::size_t p : g.members)
    if (pool.pcu(p).channel_split_passes(0) <
        pool.pcu(strongest).channel_split_passes(0))
      strongest = p;
  EXPECT_EQ(1u, strongest) << "fixture: the middle PCU is the strong one";
  EXPECT_EQ(strongest, g.stages[heaviest].pcu);
}

TEST(PlacePipeline, QuarantineReplacementIsDeterministic) {
  const Fixture f = make_fixture();
  PcuPool pool(4, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               f.net, f.weights);
  pool.build_pipeline(0, {0, 1, 2});
  const runtime::PipelineGroup& placed = pool.pipeline(0);
  ASSERT_EQ(3u, placed.stages.size());

  // Simulate quarantining member 1: re-place over the survivors, twice.
  runtime::PipelineGroup a = placed;
  runtime::PipelineGroup b = placed;
  const std::vector<std::size_t> survivors = {0, 2};
  pool.place_pipeline(a, survivors);
  pool.place_pipeline(b, survivors);

  ASSERT_EQ(2u, a.stages.size()); // min(members, survivors) stages
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t j = 0; j < a.stages.size(); ++j) {
    EXPECT_EQ(a.stages[j].pcu, b.stages[j].pcu) << "stage " << j;
    EXPECT_EQ(a.stages[j].op_begin, b.stages[j].op_begin) << "stage " << j;
    EXPECT_EQ(a.stages[j].op_end, b.stages[j].op_end) << "stage " << j;
    EXPECT_EQ(a.stages[j].cost, b.stages[j].cost) << "stage " << j;
    // Survivors only.
    EXPECT_NE(1u, a.stages[j].pcu) << "stage " << j;
  }
  // The 2-stage ranges still cover the whole network contiguously.
  EXPECT_EQ(0u, a.stages.front().op_begin);
  EXPECT_EQ(f.net.ops().size(), a.stages.back().op_end);
  EXPECT_EQ(a.stages.front().op_end, a.stages.back().op_begin);

  // Recovery is the inverse: re-placing over the full member set restores
  // the original 3-stage placement exactly.
  pool.place_pipeline(a, placed.members);
  ASSERT_EQ(placed.stages.size(), a.stages.size());
  for (std::size_t j = 0; j < a.stages.size(); ++j) {
    EXPECT_EQ(placed.stages[j].pcu, a.stages[j].pcu) << "stage " << j;
    EXPECT_EQ(placed.stages[j].op_begin, a.stages[j].op_begin)
        << "stage " << j;
    EXPECT_EQ(placed.stages[j].op_end, a.stages[j].op_end) << "stage " << j;
  }
}

} // namespace
