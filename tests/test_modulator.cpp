// Mach-Zehnder modulator: transfer function, predistortion, extinction.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "photonics/modulator.hpp"

namespace {

using namespace pcnna;

TEST(Mzm, RawTransferIsSinSquared) {
  phot::MzmConfig cfg;
  cfg.v_pi = 2.0;
  phot::MachZehnderModulator mzm(cfg);
  EXPECT_NEAR(0.0, mzm.raw_transfer(0.0), 1e-12);
  EXPECT_NEAR(0.5, mzm.raw_transfer(1.0), 1e-12); // half-wave/2
  EXPECT_NEAR(1.0, mzm.raw_transfer(2.0), 1e-12); // full Vpi
}

TEST(Mzm, PredistortedResponseIsLinear) {
  phot::MzmConfig cfg;
  cfg.predistort = true;
  cfg.insertion_loss_db = 0.0;
  cfg.extinction_ratio_db = 300.0; // negligible floor
  phot::MachZehnderModulator mzm(cfg);
  for (double x : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(x, mzm.transmit_fraction(x), 1e-10) << "x=" << x;
  }
}

TEST(Mzm, UncompensatedResponseIsNonlinear) {
  phot::MzmConfig cfg;
  cfg.predistort = false;
  cfg.insertion_loss_db = 0.0;
  cfg.extinction_ratio_db = 300.0;
  phot::MachZehnderModulator mzm(cfg);
  // sin^2(pi/2 * 0.5) = 0.5, so the midpoint matches, but quarter points sag.
  EXPECT_NEAR(0.5, mzm.transmit_fraction(0.5), 1e-9);
  EXPECT_LT(mzm.transmit_fraction(0.25), 0.25);
  EXPECT_GT(mzm.transmit_fraction(0.75), 0.75);
}

TEST(Mzm, InsertionLossScalesOutput) {
  phot::MzmConfig cfg;
  cfg.insertion_loss_db = 3.0;
  cfg.extinction_ratio_db = 300.0;
  phot::MachZehnderModulator mzm(cfg);
  EXPECT_NEAR(from_db(-3.0), mzm.transmit_fraction(1.0), 1e-9);
}

TEST(Mzm, ExtinctionFloorLeaksAtZero) {
  phot::MzmConfig cfg;
  cfg.insertion_loss_db = 0.0;
  cfg.extinction_ratio_db = 20.0; // 1% floor
  phot::MachZehnderModulator mzm(cfg);
  EXPECT_NEAR(0.01, mzm.transmit_fraction(0.0), 1e-9);
}

TEST(Mzm, ModulateAppliesToInputPower) {
  phot::MzmConfig cfg;
  cfg.insertion_loss_db = 0.0;
  cfg.extinction_ratio_db = 300.0;
  phot::MachZehnderModulator mzm(cfg);
  EXPECT_NEAR(0.5e-3, mzm.modulate(1e-3, 0.5), 1e-12);
}

TEST(Mzm, OutOfRangeInputThrows) {
  phot::MachZehnderModulator mzm{phot::MzmConfig{}};
  EXPECT_THROW(mzm.transmit_fraction(-0.1), Error);
  EXPECT_THROW(mzm.transmit_fraction(1.1), Error);
}

TEST(Mzm, MonotoneInInput) {
  phot::MachZehnderModulator mzm{phot::MzmConfig{}};
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = mzm.transmit_fraction(i / 100.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

} // namespace
