// Model catalogs: the exact shapes the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace {

using namespace pcnna::nn;

TEST(Models, AlexNetConv1MatchesPaper) {
  const auto layers = alexnet_conv_layers();
  ASSERT_EQ(5u, layers.size());
  // "input feature map of shape 224x224x3 and 96 kernels of shape 11x11x3".
  EXPECT_EQ(224u, layers[0].n);
  EXPECT_EQ(3u, layers[0].nc);
  EXPECT_EQ(11u, layers[0].m);
  EXPECT_EQ(96u, layers[0].K);
  EXPECT_EQ(4u, layers[0].s);
}

TEST(Models, AlexNetLayerChainIsConsistent) {
  // After conv1 (55) + pool (27): conv2 sees 27x27x96, and so on.
  const auto layers = alexnet_conv_layers();
  EXPECT_EQ(55u, layers[0].output_side());
  EXPECT_EQ(27u, layers[1].n);
  EXPECT_EQ(layers[0].K, layers[1].nc);
  EXPECT_EQ(27u, layers[1].output_side());
  EXPECT_EQ(13u, layers[2].n);
  EXPECT_EQ(layers[1].K, layers[2].nc);
  EXPECT_EQ(layers[2].K, layers[3].nc);
  EXPECT_EQ(layers[3].K, layers[4].nc);
}

TEST(Models, AlexNetFullGraphBuildsAndEndsAt1000) {
  const Network net = alexnet();
  EXPECT_EQ((Shape4{1, 1000, 1, 1}), net.output_shape());
  // 5 conv + 3 fc parameterized ops.
  std::size_t convs = 0, fcs = 0;
  for (const auto& op : net.ops()) {
    if (op.kind == OpKind::kConv) ++convs;
    if (op.kind == OpKind::kFullyConnected) ++fcs;
  }
  EXPECT_EQ(5u, convs);
  EXPECT_EQ(3u, fcs);
  // ~60M parameters total (sanity band for single-tower AlexNet).
  EXPECT_GT(net.weight_count(), 55'000'000u);
  EXPECT_LT(net.weight_count(), 65'000'000u);
}

TEST(Models, LeNet5Shapes) {
  const auto layers = lenet5_conv_layers();
  ASSERT_EQ(3u, layers.size());
  EXPECT_EQ(28u, layers[0].output_side());
  EXPECT_EQ(10u, layers[1].output_side());
  EXPECT_EQ(1u, layers[2].output_side());
  const Network net = lenet5();
  EXPECT_EQ((Shape4{1, 10, 1, 1}), net.output_shape());
}

TEST(Models, Vgg16Has13ConvLayersAllThreeByThree) {
  const auto layers = vgg16_conv_layers();
  ASSERT_EQ(13u, layers.size());
  for (const auto& layer : layers) {
    EXPECT_EQ(3u, layer.m) << layer.name;
    EXPECT_EQ(1u, layer.p) << layer.name;
    EXPECT_EQ(1u, layer.s) << layer.name;
    // Same-padding: output side equals input side.
    EXPECT_EQ(layer.n, layer.output_side()) << layer.name;
  }
  const Network net = vgg16();
  EXPECT_EQ((Shape4{1, 1000, 1, 1}), net.output_shape());
  // VGG-16 conv stack is ~15.3G MACs.
  EXPECT_GT(net.conv_macs(), 15'000'000'000u);
  EXPECT_LT(net.conv_macs(), 15'600'000'000u);
}

TEST(Models, ResNet18ConvCatalog) {
  const auto layers = resnet18_conv_layers();
  ASSERT_EQ(20u, layers.size());
  // Stem: 7x7/2 on 224 -> 112.
  EXPECT_EQ(112u, layers[0].output_side());
  // Channel chain is consistent within each stage.
  for (const auto& layer : layers) {
    EXPECT_NO_THROW(layer.validate()) << layer.name;
  }
  // Strided blocks halve the side: l2_b0_c1 is 56 -> 28.
  const auto* l2 = &layers[5];
  EXPECT_EQ("l2_b0_c1", l2->name);
  EXPECT_EQ(28u, l2->output_side());
  // Downsample projections are 1x1 stride 2.
  const auto* ds = &layers[7];
  EXPECT_EQ("l2_b0_ds", ds->name);
  EXPECT_EQ(1u, ds->m);
  EXPECT_EQ(2u, ds->s);
  EXPECT_EQ(l2->output_side(), ds->output_side());
  // ~1.8 GMACs for the conv stack (sanity band).
  std::uint64_t macs = 0;
  for (const auto& layer : layers) macs += layer.macs();
  EXPECT_GT(macs, 1'700'000'000u);
  EXPECT_LT(macs, 1'900'000'000u);
}

TEST(Models, ResNet18FitsThePcnnaCache) {
  // Every receptive field must fit the 8000-word SRAM (3*3*512 = 4608 max).
  for (const auto& layer : resnet18_conv_layers()) {
    EXPECT_LE(layer.kernel_size(), 8000u) << layer.name;
  }
}

TEST(Models, TinyCnnIsSmall) {
  const Network net = tiny_cnn();
  EXPECT_LT(net.conv_macs(), 20'000u);
  EXPECT_EQ((Shape4{1, 10, 1, 1}), net.output_shape());
}

} // namespace
