// Streaming JSON writer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

using pcnna::JsonWriter;

TEST(Json, FlatObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().kv("name", "conv1").kv("rings", std::uint64_t{34848})
      .kv("time", 0.25).kv("ok", true).end_object();
  w.finish();
  EXPECT_EQ(R"({"name":"conv1","rings":34848,"time":0.25,"ok":true})",
            os.str());
}

TEST(Json, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().key("layers").begin_array();
  w.begin_object().kv("id", 1).end_object();
  w.begin_object().kv("id", 2).end_object();
  w.end_array().end_object();
  w.finish();
  EXPECT_EQ(R"({"layers":[{"id":1},{"id":2}]})", os.str());
}

TEST(Json, ArrayOfScalarsCommaSeparation) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array().value(1).value(2).value(3).end_array();
  w.finish();
  EXPECT_EQ("[1,2,3]", os.str());
}

TEST(Json, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value("a\"b\\c\nd\te");
  w.finish();
  EXPECT_EQ(R"("a\"b\\c\nd\te")", os.str());
}

TEST(Json, ControlCharactersEscapedAsUnicode) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(std::string_view("\x01", 1));
  EXPECT_EQ("\"\\u0001\"", os.str());
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ("[null,null]", os.str());
}

TEST(Json, NullValue) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().key("x").null().end_object();
  EXPECT_EQ(R"({"x":null})", os.str());
}

TEST(Json, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), pcnna::Error); // value without key
  }
  {
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), pcnna::Error); // key inside array
  }
  {
    JsonWriter w(os);
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), pcnna::Error); // two keys in a row
  }
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), pcnna::Error); // mismatched end
    EXPECT_THROW(w.finish(), pcnna::Error);    // unbalanced
  }
}

TEST(Json, RoundNumbersPrintCompact) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(2.5);
  EXPECT_EQ("2.5", os.str());
}

} // namespace
