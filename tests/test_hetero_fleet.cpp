// Heterogeneous PCU fleets: PcuSpec construction, pluggable dispatch
// policies, warmup policies, and the per-PCU report breakdowns.
//
// The load-bearing guarantees pinned here:
//  * a homogeneous fleet built from a PcuSpec vector is bit-identical to
//    the legacy (count, config) constructor — outputs and every report
//    field (the tentpole's backward-compatibility promise);
//  * every dispatch policy is deterministic;
//  * capability-aware dispatch beats earliest-free on a skewed mixed
//    fleet, because it refuses to park requests on PCUs whose WDM budget
//    needs extra segmented bank passes;
//  * warmup policies charge the pipeline fill exactly when documented,
//    observable through PcuBreakdown::warmup_time.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::DispatchPolicy;
using runtime::FleetReport;
using runtime::OpenLoopReport;
using runtime::PcuSpec;
using runtime::RequestResult;
using runtime::WarmupPolicy;

struct Served {
  nn::Network net;
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Served make_served(std::size_t batch, std::uint64_t seed = 33) {
  Rng rng(seed);
  Served s{nn::tiny_cnn(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  s.inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    s.inputs.push_back(nn::make_network_input(s.net, rng));
  return s;
}

BatchRunnerOptions options(std::size_t pcus, bool simulate_values = true) {
  BatchRunnerOptions o;
  o.num_pcus = pcus;
  o.simulate_values = simulate_values;
  o.seed = 77;
  return o;
}

/// A WDM budget tight enough that tiny_cnn's second conv layer
/// (3x3x4 = 36-wide receptive field) needs extra segmented passes.
PcnnaConfig tight_wavelength_config() {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.max_wavelengths = 12;
  return cfg;
}

/// 2 big + 2 small PCUs — the skewed fleet used across these tests.
std::vector<PcuSpec> mixed_specs() {
  PcuSpec big;
  big.config = PcnnaConfig::paper_defaults();
  big.tag = "big";
  PcuSpec small;
  small.config = tight_wavelength_config();
  small.tag = "small";
  return {big, big, small, small};
}

void expect_open_loop_reports_equal(const OpenLoopReport& a,
                                    const OpenLoopReport& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.achieved_rps, b.achieved_rps);
  EXPECT_EQ(a.fleet_capacity_rps, b.fleet_capacity_rps);
  EXPECT_EQ(a.latency.mean, b.latency.mean);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.p999, b.latency.p999);
  EXPECT_EQ(a.latency.max, b.latency.max);
  EXPECT_EQ(a.queue_wait.mean, b.queue_wait.mean);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.utilization_per_pcu, b.utilization_per_pcu);
  EXPECT_EQ(a.virtual_requests_per_pcu, b.virtual_requests_per_pcu);
  ASSERT_EQ(a.per_pcu.size(), b.per_pcu.size());
  for (std::size_t p = 0; p < a.per_pcu.size(); ++p) {
    EXPECT_EQ(a.per_pcu[p].requests, b.per_pcu[p].requests);
    EXPECT_EQ(a.per_pcu[p].busy_time, b.per_pcu[p].busy_time);
    EXPECT_EQ(a.per_pcu[p].warmup_time, b.per_pcu[p].warmup_time);
    EXPECT_EQ(a.per_pcu[p].utilization, b.per_pcu[p].utilization);
    EXPECT_EQ(a.per_pcu[p].tag, b.per_pcu[p].tag);
  }
}

// The tentpole's backward-compatibility promise: a homogeneous fleet built
// via the PcuSpec vector produces bit-identical outputs and reports to the
// legacy (count, config) constructor.
TEST(HeteroFleet, HomogeneousSpecVectorBitIdenticalToLegacyConstructor) {
  const Served s = make_served(8);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner legacy(config, s.net, s.weights, options(/*pcus=*/3));
  FleetReport legacy_fleet;
  const std::vector<RequestResult> legacy_out =
      legacy.run(s.inputs, &legacy_fleet);

  std::vector<PcuSpec> specs(3);
  for (PcuSpec& spec : specs) spec.config = config;
  BatchRunner via_specs(specs, s.net, s.weights, options(/*pcus=*/3));
  EXPECT_TRUE(via_specs.pool().homogeneous());
  FleetReport spec_fleet;
  const std::vector<RequestResult> spec_out =
      via_specs.run(s.inputs, &spec_fleet);

  ASSERT_EQ(legacy_out.size(), spec_out.size());
  for (std::size_t id = 0; id < legacy_out.size(); ++id)
    EXPECT_EQ(legacy_out[id].output, spec_out[id].output)
        << "request " << id << " differs between constructors";

  EXPECT_EQ(legacy_fleet.makespan, spec_fleet.makespan);
  EXPECT_EQ(legacy_fleet.makespan_sequential, spec_fleet.makespan_sequential);
  EXPECT_EQ(legacy_fleet.request_time_serial, spec_fleet.request_time_serial);
  EXPECT_EQ(legacy_fleet.request_interval, spec_fleet.request_interval);
  EXPECT_EQ(legacy_fleet.mean_latency, spec_fleet.mean_latency);
  EXPECT_EQ(legacy_fleet.max_latency, spec_fleet.max_latency);
  EXPECT_EQ(legacy_fleet.total_energy, spec_fleet.total_energy);
  EXPECT_EQ(legacy_fleet.virtual_requests_per_pcu,
            spec_fleet.virtual_requests_per_pcu);

  // Same promise on the open-loop timing path.
  const ArrivalSchedule arrivals = runtime::poisson_arrivals(500, 2000.0, 4);
  expect_open_loop_reports_equal(legacy.simulate_open_loop(arrivals),
                                 via_specs.simulate_open_loop(arrivals));
}

// Engine threads are a host-simulation knob with bit-identical outputs,
// so per-spec thread overrides must not demote a fleet to heterogeneous
// (which would refuse dynamic sharding for no reason).
TEST(HeteroFleet, EngineThreadOverridesKeepPoolHomogeneous) {
  const Served s = make_served(4);
  std::vector<PcuSpec> specs(2);
  specs[0].config = PcnnaConfig::paper_defaults();
  specs[0].engine_threads = 1;
  specs[1].config = PcnnaConfig::paper_defaults();
  specs[1].engine_threads = 2;
  BatchRunner fleet(specs, s.net, s.weights, options(/*pcus=*/2));
  EXPECT_TRUE(fleet.pool().homogeneous());

  // And the outputs really are thread-count-independent: identical to a
  // single-threaded legacy fleet.
  BatchRunner legacy(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/2));
  const auto out = fleet.run(s.inputs);
  const auto ref = legacy.run(s.inputs);
  for (std::size_t id = 0; id < out.size(); ++id)
    EXPECT_EQ(ref[id].output, out[id].output);
}

// Every dispatch policy yields a bitwise-identical schedule when re-run.
TEST(HeteroFleet, EveryDispatchPolicyIsDeterministic) {
  const Served s = make_served(0);
  for (const DispatchPolicy policy : runtime::kAllDispatchPolicies) {
    BatchRunnerOptions o = options(/*pcus=*/4, /*simulate_values=*/false);
    o.dispatch = policy;
    BatchRunner fleet(mixed_specs(), s.net, s.weights, o);
    const ArrivalSchedule arrivals = runtime::poisson_arrivals(
        1500, 0.6 * fleet.simulate_open_loop({}).fleet_capacity_rps, 9);
    const OpenLoopReport a = fleet.simulate_open_loop(arrivals);
    const OpenLoopReport b = fleet.simulate_open_loop(arrivals);
    EXPECT_EQ(a.dispatch, policy);
    expect_open_loop_reports_equal(a, b);
  }
}

// The small PCUs pay extra segmented bank passes for the wide layer, so
// the pool's capability bar is the big PCUs' split count.
TEST(HeteroFleet, SplitPassCapabilityReflectsWavelengthBudget) {
  const Served s = make_served(0);
  BatchRunner fleet(mixed_specs(), s.net, s.weights,
                    options(/*pcus=*/4, /*simulate_values=*/false));
  runtime::PcuPool& pool = fleet.pool();
  EXPECT_FALSE(pool.homogeneous());
  EXPECT_GT(pool.pcu(2).channel_split_passes(),
            pool.pcu(0).channel_split_passes());
  EXPECT_EQ(pool.min_split_passes(), pool.pcu(0).channel_split_passes());
  // The big PCU is also strictly faster on this network.
  EXPECT_LT(pool.pcu(0).request_time_serial(),
            pool.pcu(2).request_time_serial());
}

/// Timing-only LeNet-5 model set (no inputs): the realistic skewed-fleet
/// workload. paper_defaults() vs small_core() differ several-fold in the
/// double-buffered request interval (per-channel allocation pays nc
/// thermal-settle recalibrations per layer) *and* in split passes.
Served make_lenet_served() {
  Rng rng(41);
  Served s{nn::lenet5(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  return s;
}

std::vector<PcuSpec> lenet_mixed_specs() {
  PcuSpec big;
  big.config = PcnnaConfig::paper_defaults();
  big.tag = "big";
  PcuSpec small;
  small.config = PcnnaConfig::small_core();
  small.tag = "small";
  return {big, big, small, small};
}

// On a skewed trace the capability-aware policy keeps every request on the
// big PCUs; earliest-free parks work on the slow ones whenever they are
// free first, which inflates the tail.
TEST(HeteroFleet, CapabilityAwareBeatsEarliestFreeOnSkewedTrace) {
  const Served s = make_lenet_served();

  BatchRunnerOptions ef = options(/*pcus=*/4, /*simulate_values=*/false);
  ef.dispatch = DispatchPolicy::kEarliestFree;
  BatchRunner ef_fleet(lenet_mixed_specs(), s.net, s.weights, ef);

  BatchRunnerOptions cap = ef;
  cap.dispatch = DispatchPolicy::kCapabilityAware;
  BatchRunner cap_fleet(lenet_mixed_specs(), s.net, s.weights, cap);

  // The small PCUs genuinely are both slower and less capable here.
  const runtime::PcuPool& pool = cap_fleet.pool();
  ASSERT_GT(pool.pcu(2).channel_split_passes(),
            pool.pcu(0).channel_split_passes());
  ASSERT_GT(pool.pcu(2).request_interval_overlapped(),
            2.0 * pool.pcu(0).request_interval_overlapped());

  // Offered load the capable (big) subset absorbs comfortably: 40 % of the
  // rate of the two big PCUs alone.
  const double big_capacity =
      2.0 / pool.pcu(0).request_interval_overlapped();
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(2000, 0.4 * big_capacity, 13);

  const OpenLoopReport ef_report = ef_fleet.simulate_open_loop(arrivals);
  const OpenLoopReport cap_report = cap_fleet.simulate_open_loop(arrivals);

  // Capability-aware never touches the small PCUs...
  EXPECT_EQ(0u, cap_report.virtual_requests_per_pcu[2]);
  EXPECT_EQ(0u, cap_report.virtual_requests_per_pcu[3]);
  // ...earliest-free does...
  EXPECT_GT(ef_report.virtual_requests_per_pcu[2], 0u);
  // ...and paying the small PCUs' extra passes costs tail latency.
  EXPECT_LT(cap_report.latency.p99, ef_report.latency.p99);
  EXPECT_LT(cap_report.latency.mean, ef_report.latency.mean);
}

// Least-loaded scores predicted completion, so an idle slow PCU loses to
// an idle fast one. Earliest-free scores only free times, so on a sparse
// stream it keeps bouncing back to whichever PCU finished longest ago —
// including the slow one.
TEST(HeteroFleet, LeastLoadedPrefersFasterPcuOverLowerIndex) {
  const Served s = make_lenet_served();
  PcuSpec small;
  small.config = PcnnaConfig::small_core();
  small.tag = "small";
  PcuSpec big;
  big.config = PcnnaConfig::paper_defaults();
  big.tag = "big";
  const std::vector<PcuSpec> specs = {small, big}; // slow one first

  BatchRunnerOptions ll = options(/*pcus=*/2, /*simulate_values=*/false);
  ll.dispatch = DispatchPolicy::kLeastLoaded;
  BatchRunner ll_fleet(specs, s.net, s.weights, ll);

  BatchRunnerOptions ef = ll;
  ef.dispatch = DispatchPolicy::kEarliestFree;
  BatchRunner ef_fleet(specs, s.net, s.weights, ef);

  // Sparse arrivals: the whole fleet is idle at every arrival.
  const double capacity = ll_fleet.simulate_open_loop({}).fleet_capacity_rps;
  const ArrivalSchedule arrivals =
      runtime::uniform_arrivals(40, 0.01 * capacity);

  const OpenLoopReport ll_report = ll_fleet.simulate_open_loop(arrivals);
  const OpenLoopReport ef_report = ef_fleet.simulate_open_loop(arrivals);

  EXPECT_EQ(0u, ll_report.virtual_requests_per_pcu[0])
      << "least-loaded must never pick the slow PCU while the fast one "
         "completes sooner";
  EXPECT_EQ(40u, ll_report.virtual_requests_per_pcu[1]);
  EXPECT_GT(ef_report.virtual_requests_per_pcu[0], 0u)
      << "earliest-free is blind to speed and serves some requests slowly";
  EXPECT_LT(ll_report.latency.max, ef_report.latency.max);
}

// Warmup policies charge the pipeline fill exactly when documented, and
// the charges are observable in PcuBreakdown::warmup_time.
TEST(HeteroFleet, WarmupPoliciesChargeThePipelineFillAsDocumented) {
  const Served s = make_served(0);
  const auto report_for = [&](WarmupPolicy warmup,
                              const ArrivalSchedule& arrivals) {
    PcuSpec spec;
    spec.config = PcnnaConfig::paper_defaults();
    spec.warmup = warmup;
    BatchRunner fleet({spec}, s.net, s.weights,
                      options(/*pcus=*/1, /*simulate_values=*/false));
    return fleet.simulate_open_loop(arrivals);
  };

  PcuSpec probe;
  probe.config = PcnnaConfig::paper_defaults();
  BatchRunner probe_fleet({probe}, s.net, s.weights,
                          options(/*pcus=*/1, /*simulate_values=*/false));
  const double warmup = probe_fleet.pool().pcu(0).warmup_time();
  ASSERT_GT(warmup, 0.0);

  // Back-to-back closed batch of 6: one fill for recharge-after-idle and
  // pinned-after-first, six for always-cold.
  const ArrivalSchedule batch = runtime::closed_batch_arrivals(6);
  EXPECT_DOUBLE_EQ(
      warmup,
      report_for(WarmupPolicy::kRechargeAfterIdle, batch).per_pcu[0]
          .warmup_time);
  EXPECT_DOUBLE_EQ(
      warmup,
      report_for(WarmupPolicy::kPinnedAfterFirst, batch).per_pcu[0]
          .warmup_time);
  EXPECT_DOUBLE_EQ(
      6.0 * warmup,
      report_for(WarmupPolicy::kAlwaysCold, batch).per_pcu[0].warmup_time);

  // Sparse arrivals (idle gap before every request): recharge-after-idle
  // and always-cold pay every time, pinned-after-first only once.
  const double interval =
      probe_fleet.pool().pcu(0).request_interval_overlapped();
  ArrivalSchedule sparse;
  for (std::size_t i = 0; i < 5; ++i)
    sparse.push_back(static_cast<double>(i) * 50.0 * (interval + warmup));
  EXPECT_DOUBLE_EQ(
      5.0 * warmup,
      report_for(WarmupPolicy::kRechargeAfterIdle, sparse).per_pcu[0]
          .warmup_time);
  EXPECT_DOUBLE_EQ(
      warmup,
      report_for(WarmupPolicy::kPinnedAfterFirst, sparse).per_pcu[0]
          .warmup_time);
  EXPECT_DOUBLE_EQ(
      5.0 * warmup,
      report_for(WarmupPolicy::kAlwaysCold, sparse).per_pcu[0].warmup_time);

  // The serial schedule has no pipeline to fill: every layer pays its
  // recalibration inline, so no policy charges a warmup.
  PcuSpec cold;
  cold.config = PcnnaConfig::paper_defaults();
  cold.warmup = WarmupPolicy::kAlwaysCold;
  BatchRunnerOptions serial = options(/*pcus=*/1, /*simulate_values=*/false);
  serial.double_buffer = false;
  BatchRunner serial_fleet({cold}, s.net, s.weights, serial);
  EXPECT_DOUBLE_EQ(
      0.0, serial_fleet.simulate_open_loop(batch).per_pcu[0].warmup_time);
}

// Per-PCU breakdowns are consistent with the fleet totals and carry tags.
TEST(HeteroFleet, PerPcuBreakdownsAreConsistentWithTotals) {
  const Served s = make_served(0);
  BatchRunnerOptions o = options(/*pcus=*/4, /*simulate_values=*/false);
  o.dispatch = DispatchPolicy::kLeastLoaded;
  BatchRunner fleet(mixed_specs(), s.net, s.weights, o);
  const ArrivalSchedule arrivals = runtime::poisson_arrivals(
      800, 0.7 * fleet.simulate_open_loop({}).fleet_capacity_rps, 21);
  const OpenLoopReport r = fleet.simulate_open_loop(arrivals);

  ASSERT_EQ(4u, r.per_pcu.size());
  std::size_t total_requests = 0;
  for (std::size_t p = 0; p < r.per_pcu.size(); ++p) {
    total_requests += r.per_pcu[p].requests;
    EXPECT_EQ(r.per_pcu[p].requests, r.virtual_requests_per_pcu[p]);
    EXPECT_EQ(r.per_pcu[p].utilization, r.utilization_per_pcu[p]);
    EXPECT_LE(r.per_pcu[p].warmup_time, r.per_pcu[p].busy_time);
    EXPECT_NEAR(r.per_pcu[p].busy_time, r.per_pcu[p].utilization * r.makespan,
                1e-12 * r.makespan);
  }
  EXPECT_EQ(r.requests, total_requests);
  EXPECT_EQ("big", r.per_pcu[0].tag);
  EXPECT_EQ("small", r.per_pcu[3].tag);
}

// Functional serving on a heterogeneous fleet follows the deterministic
// virtual-time assignment: which PCU produced each output is reproducible,
// and so are the output bits.
TEST(HeteroFleet, FunctionalServingFollowsTheVirtualSchedule) {
  const Served s = make_served(10);
  BatchRunnerOptions o = options(/*pcus=*/4);
  o.dispatch = DispatchPolicy::kLeastLoaded;

  BatchRunner a(mixed_specs(), s.net, s.weights, o);
  OpenLoopReport ra;
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(s.inputs.size(), 1500.0, 7);
  const std::vector<RequestResult> out_a =
      a.run_open_loop(s.inputs, arrivals, &ra);

  BatchRunner b(mixed_specs(), s.net, s.weights, o);
  OpenLoopReport rb;
  const std::vector<RequestResult> out_b =
      b.run_open_loop(s.inputs, arrivals, &rb);

  // Physical assignment matches the virtual schedule's per-PCU counts.
  std::vector<std::size_t> physical(4, 0);
  for (const RequestResult& result : out_a) physical[result.pcu_index] += 1;
  EXPECT_EQ(ra.virtual_requests_per_pcu, physical);

  // Identical runs reproduce both the assignment and every output bit.
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t id = 0; id < out_a.size(); ++id) {
    EXPECT_EQ(out_a[id].pcu_index, out_b[id].pcu_index);
    EXPECT_EQ(out_a[id].output, out_b[id].output);
  }
}

// Dynamic sharding is refused on a heterogeneous pool: it would make the
// output bits depend on host thread timing.
TEST(HeteroFleet, DynamicShardingRejectedOnHeterogeneousPool) {
  const Served s = make_served(2);
  BatchRunner fleet(mixed_specs(), s.net, s.weights, options(/*pcus=*/4));
  runtime::RequestQueue queue;
  queue.close();
  EXPECT_THROW(fleet.pool().serve_all(queue, 0, false), Error);
}

// The printed report surfaces the new fleet columns.
TEST(HeteroFleet, ReportPrintsTagsAndDispatchPolicy) {
  const Served s = make_served(0);
  BatchRunnerOptions o = options(/*pcus=*/4, /*simulate_values=*/false);
  o.dispatch = DispatchPolicy::kCapabilityAware;
  BatchRunner fleet(mixed_specs(), s.net, s.weights, o);
  const OpenLoopReport r = fleet.simulate_open_loop(
      runtime::poisson_arrivals(100, 1000.0, 3));

  std::ostringstream os;
  BatchRunner::print_report(r, os, "hetero unit test");
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("capability-aware"));
  EXPECT_NE(std::string::npos, text.find("big"));
  EXPECT_NE(std::string::npos, text.find("small"));
  EXPECT_NE(std::string::npos, text.find("warmup time"));
}

} // namespace
