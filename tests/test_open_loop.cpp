// Open-loop serving: the closed batch as a degenerate arrival process,
// bit-identity of outputs under any arrival schedule, deterministic
// reports, and the queueing behavior of the admission loop across load.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::FleetReport;
using runtime::OpenLoopReport;
using runtime::RequestResult;

struct Served {
  nn::Network net;
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Served make_served(std::size_t batch, std::uint64_t seed = 21) {
  Rng rng(seed);
  Served s{nn::tiny_cnn(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  s.inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    s.inputs.push_back(nn::make_network_input(s.net, rng));
  return s;
}

BatchRunnerOptions options(std::size_t pcus, bool simulate_values = true) {
  BatchRunnerOptions o;
  o.num_pcus = pcus;
  o.simulate_values = simulate_values;
  o.seed = 99;
  return o;
}

// The regression the tentpole promises: a zero-inter-arrival open-loop run
// is the closed batch — same outputs bit for bit, same virtual schedule.
TEST(OpenLoop, ClosedBatchIsDegenerateArrivalProcess) {
  const Served s = make_served(9);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner closed(config, s.net, s.weights, options(/*pcus=*/3));
  FleetReport fleet;
  const std::vector<RequestResult> closed_out = closed.run(s.inputs, &fleet);

  BatchRunner open(config, s.net, s.weights, options(/*pcus=*/3));
  OpenLoopReport report;
  const std::vector<RequestResult> open_out = open.run_open_loop(
      s.inputs, runtime::closed_batch_arrivals(s.inputs.size()), &report);

  ASSERT_EQ(closed_out.size(), open_out.size());
  for (std::size_t id = 0; id < closed_out.size(); ++id)
    EXPECT_EQ(closed_out[id].output, open_out[id].output)
        << "request " << id << " differs between closed and open-loop runs";

  // Same admission loop -> bitwise-identical schedule numbers.
  EXPECT_EQ(fleet.makespan, report.makespan);
  EXPECT_EQ(fleet.max_latency, report.latency.max);
  EXPECT_DOUBLE_EQ(fleet.mean_latency, report.latency.mean);
  EXPECT_EQ(fleet.virtual_requests_per_pcu, report.virtual_requests_per_pcu);
  EXPECT_TRUE(std::isinf(report.offered_rps));
  EXPECT_EQ(0.0, report.queue_wait.min)
      << "the first request on each PCU starts at its arrival";
}

// Arrival times shape the schedule only: under any arrival process the
// outputs stay bit-identical to serving each request alone.
TEST(OpenLoop, OutputsBitIdenticalToSequentialUnderPoissonArrivals) {
  const Served s = make_served(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner fleet(config, s.net, s.weights, options(/*pcus=*/2));
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(s.inputs.size(), 1000.0, 5);
  const std::vector<RequestResult> open_out =
      fleet.run_open_loop(s.inputs, arrivals);

  BatchRunner single(config, s.net, s.weights, options(/*pcus=*/1));
  for (std::size_t id = 0; id < s.inputs.size(); ++id) {
    const RequestResult alone = single.run_one(s.inputs[id], id);
    EXPECT_EQ(alone.output, open_out[id].output)
        << "request " << id << " differs from the sequential reference";
  }
}

TEST(OpenLoop, SimulatedReportIsDeterministic) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/4, /*simulate_values=*/false));

  const ArrivalSchedule arrivals = runtime::poisson_arrivals(
      2000, 0.5 * runner.simulate_open_loop({}).fleet_capacity_rps, 11);
  const OpenLoopReport a = runner.simulate_open_loop(arrivals);
  const OpenLoopReport b = runner.simulate_open_loop(arrivals);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.p999, b.latency.p999);
  EXPECT_EQ(a.queue_wait.mean, b.queue_wait.mean);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.achieved_rps, b.achieved_rps);
  EXPECT_EQ(a.utilization_per_pcu, b.utilization_per_pcu);
  EXPECT_EQ(a.virtual_requests_per_pcu, b.virtual_requests_per_pcu);
}

// Sparse arrivals: every request lands on an idle fleet, so it pays the
// cold pipeline fill (warmup + interval) and never queues.
TEST(OpenLoop, SparseArrivalsNeverQueueAndPayWarmup) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/2, /*simulate_values=*/false));

  const double capacity = runner.simulate_open_loop({}).fleet_capacity_rps;
  const OpenLoopReport r = runner.simulate_open_loop(
      runtime::uniform_arrivals(50, 0.01 * capacity));

  EXPECT_EQ(0.0, r.queue_wait.max) << "an idle fleet must not queue";
  EXPECT_EQ(0.0, r.mean_queue_depth);
  // Cold service on every request: the latency distribution is a point
  // mass at warmup + interval (up to roundoff against large arrival
  // timestamps).
  EXPECT_NEAR(r.latency.min, r.latency.max, 1e-9 * r.latency.max);
  EXPECT_GT(r.latency.min, 0.0);
  // Far below saturation the fleet keeps up with the offered load.
  EXPECT_NEAR(r.offered_rps, r.achieved_rps, 0.05 * r.offered_rps);
}

// The hockey stick: tail latency is flat under light load and explodes
// past saturation, where throughput pins at fleet capacity.
TEST(OpenLoop, TailLatencyGrowsWithLoadAndThroughputSaturates) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/4, /*simulate_values=*/false));
  const double capacity = runner.simulate_open_loop({}).fleet_capacity_rps;

  constexpr std::size_t kRequests = 4000;
  const OpenLoopReport light = runner.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 0.3 * capacity, 3));
  const OpenLoopReport heavy = runner.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 0.9 * capacity, 3));
  const OpenLoopReport overload = runner.simulate_open_loop(
      runtime::poisson_arrivals(kRequests, 1.5 * capacity, 3));

  EXPECT_LT(light.latency.p99, heavy.latency.p99);
  EXPECT_LT(heavy.latency.p99, overload.latency.p99);
  EXPECT_LT(light.mean_queue_depth, overload.mean_queue_depth);

  // Below saturation the fleet tracks the offered load...
  EXPECT_NEAR(light.offered_rps, light.achieved_rps,
              0.1 * light.offered_rps);
  // ...past saturation it pins at capacity (within the warmup overhead
  // idle gaps occasionally re-charge).
  EXPECT_LT(overload.achieved_rps, 1.01 * capacity);
  EXPECT_GT(overload.achieved_rps, 0.85 * capacity);

  // Utilization: bounded by 1, and saturated PCUs are busier.
  for (double u : overload.utilization_per_pcu) {
    EXPECT_GT(u, 0.9);
    EXPECT_LE(u, 1.0 + 1e-12);
  }
  for (std::size_t p = 0; p < light.utilization_per_pcu.size(); ++p)
    EXPECT_LT(light.utilization_per_pcu[p],
              overload.utilization_per_pcu[p]);
}

TEST(OpenLoop, RejectsMismatchedOrInvalidSchedules) {
  const Served s = make_served(3);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/1));
  EXPECT_THROW(runner.run_open_loop(s.inputs, {0.0, 1.0}), Error);
  EXPECT_THROW(runner.run_open_loop(s.inputs, {0.0, 2.0, 1.0}), Error);
  EXPECT_THROW(runner.simulate_open_loop({0.0, -1.0, 2.0}), Error);
}

TEST(OpenLoop, ReportPrintsThroughCommonReport) {
  const Served s = make_served(0);
  BatchRunner runner(PcnnaConfig::paper_defaults(), s.net, s.weights,
                     options(/*pcus=*/2, /*simulate_values=*/false));
  const double capacity = runner.simulate_open_loop({}).fleet_capacity_rps;
  const OpenLoopReport report = runner.simulate_open_loop(
      runtime::poisson_arrivals(200, 0.7 * capacity, 17));

  std::ostringstream os;
  BatchRunner::print_report(report, os, "unit test open loop");
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("unit test open loop"));
  EXPECT_NE(std::string::npos, text.find("latency p99.9"));
  EXPECT_NE(std::string::npos, text.find("mean queue depth"));
  EXPECT_NE(std::string::npos, text.find("per-PCU schedule"));
}

} // namespace
