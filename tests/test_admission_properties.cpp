// Property tests over the admission loop itself.
//
// The load-bearing guarantees pinned here:
//  * simulate_admission is a pure function of (requests, options): two
//    runs with identical inputs produce bitwise-identical schedules, shed
//    decisions, and autoscaler stats — even on the fully event-driven
//    path (affinity + shedding + autoscaler + multiple models);
//  * engine_threads is a host-parallelism knob: no virtual-time quantity
//    may depend on it, so schedules are bit-identical across settings;
//  * adversarial EDF tie-breaks: requests tied on (class, deadline,
//    arrival) are ordered by id and nothing else — push order, model ids
//    and PCU history must not leak into the order;
//  * randomized property sweep: for every dispatch policy x seed x fault
//    schedule, admission conserves requests (offered == served + shed +
//    lost), virtual time is monotone on the event-driven path, and no two
//    services — including pipeline stage spans — overlap on one PCU.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/pcu_pool.hpp"
#include "runtime/arrival.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using core::TimingFidelity;
using runtime::AdmissionOptions;
using runtime::AdmissionResult;
using runtime::ArrivalSchedule;
using runtime::DispatchPolicy;
using runtime::InferenceRequest;
using runtime::PcuPool;
using runtime::PcuSpec;
using runtime::PriorityClass;
using runtime::RequestQueue;
using runtime::ScheduledService;

struct TwoModels {
  nn::Network net;
  nn::NetWeights weights_a;
  nn::NetWeights weights_b;
};

TwoModels make_two_models(std::uint64_t seed = 31) {
  Rng rng(seed);
  TwoModels t{nn::tiny_cnn(), {}, {}};
  t.weights_a = nn::make_network_weights(t.net, rng);
  t.weights_b = nn::make_network_weights(t.net, rng);
  return t;
}

AdmissionResult admit(PcuPool& pool, std::vector<InferenceRequest> requests,
                      const AdmissionOptions& admission) {
  RequestQueue queue;
  for (InferenceRequest& r : requests) queue.push(std::move(r));
  queue.close();
  return pool.simulate_admission(queue, admission);
}

/// Bitwise equality over every ScheduledService field — doubles compared
/// exactly, because determinism means identical bits, not "close".
void expect_bit_identical(const AdmissionResult& a, const AdmissionResult& b) {
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    const ScheduledService& x = a.schedule[i];
    const ScheduledService& y = b.schedule[i];
    EXPECT_EQ(x.id, y.id) << "entry " << i;
    EXPECT_EQ(x.pcu, y.pcu) << "entry " << i;
    EXPECT_EQ(x.arrival, y.arrival) << "entry " << i;
    EXPECT_EQ(x.start, y.start) << "entry " << i;
    EXPECT_EQ(x.completion, y.completion) << "entry " << i;
    EXPECT_EQ(x.warmup, y.warmup) << "entry " << i;
    EXPECT_EQ(x.tenant, y.tenant) << "entry " << i;
    EXPECT_EQ(x.priority, y.priority) << "entry " << i;
    EXPECT_EQ(x.deadline, y.deadline) << "entry " << i;
    EXPECT_EQ(x.model, y.model) << "entry " << i;
    EXPECT_EQ(x.swap, y.swap) << "entry " << i;
    EXPECT_EQ(x.swapped, y.swapped) << "entry " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "entry " << i;
    ASSERT_EQ(x.stages.size(), y.stages.size()) << "entry " << i;
    for (std::size_t j = 0; j < x.stages.size(); ++j) {
      EXPECT_EQ(x.stages[j].stage, y.stages[j].stage) << i << "/" << j;
      EXPECT_EQ(x.stages[j].pcu, y.stages[j].pcu) << i << "/" << j;
      EXPECT_EQ(x.stages[j].op_begin, y.stages[j].op_begin) << i << "/" << j;
      EXPECT_EQ(x.stages[j].op_end, y.stages[j].op_end) << i << "/" << j;
      EXPECT_EQ(x.stages[j].start, y.stages[j].start) << i << "/" << j;
      EXPECT_EQ(x.stages[j].completion, y.stages[j].completion)
          << i << "/" << j;
      EXPECT_EQ(x.stages[j].pin, y.stages[j].pin) << i << "/" << j;
      EXPECT_EQ(x.stages[j].handoff, y.stages[j].handoff) << i << "/" << j;
    }
  }
  EXPECT_EQ(a.pipeline.groups, b.pipeline.groups);
  EXPECT_EQ(a.pipeline.pipelined_requests, b.pipeline.pipelined_requests);
  EXPECT_EQ(a.pipeline.stage_spans, b.pipeline.stage_spans);
  EXPECT_EQ(a.pipeline.replacements, b.pipeline.replacements);
  EXPECT_EQ(a.pipeline.pin_time, b.pipeline.pin_time);
  EXPECT_EQ(a.pipeline.handoff_time, b.pipeline.handoff_time);
  ASSERT_EQ(a.shed.shed, b.shed.shed);
  ASSERT_EQ(a.shed.decisions.size(), b.shed.decisions.size());
  for (std::size_t i = 0; i < a.shed.decisions.size(); ++i) {
    EXPECT_EQ(a.shed.decisions[i].id, b.shed.decisions[i].id);
    EXPECT_EQ(a.shed.decisions[i].decision_time,
              b.shed.decisions[i].decision_time);
  }
  EXPECT_EQ(a.autoscaler.scale_ups, b.autoscaler.scale_ups);
  EXPECT_EQ(a.autoscaler.scale_downs, b.autoscaler.scale_downs);
  EXPECT_EQ(a.autoscaler.mean_active, b.autoscaler.mean_active);
}

/// The nastiest stream we can build deterministically: two models, three
/// tenant classes, finite deadlines, overload — exercising affinity
/// deferral, swap fallback, shedding and the autoscaler in one run.
std::vector<InferenceRequest> adversarial_stream(const PcuPool& pool,
                                                 std::size_t count) {
  const double interval = pool.pcu(0).request_interval_overlapped(0);
  const double warmup = pool.pcu(0).warmup_time(0);
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(count, 2.2 / interval, 13);
  Rng rng(99);
  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < count; ++id) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = arrivals[id];
    r.model_id = static_cast<std::uint32_t>(rng.next_u64() % 2);
    const std::uint64_t cls = rng.next_u64() % 3;
    r.priority = cls == 0 ? PriorityClass::kInteractive
                          : (cls == 1 ? PriorityClass::kStandard
                                      : PriorityClass::kBestEffort);
    r.tenant = static_cast<std::uint32_t>(cls);
    r.deadline = arrivals[id] + warmup +
                 (2.0 + static_cast<double>(rng.next_u64() % 8)) * interval;
    requests.push_back(r);
  }
  return requests;
}

// --- Determinism across repeated runs (satellite) ---

TEST(AdmissionDeterminism, EventDrivenScheduleBitIdenticalAcrossRuns) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  const double interval = pool.pcu(0).request_interval_overlapped(0);

  AdmissionOptions o;
  o.policy = DispatchPolicy::kModelAffinity;
  o.shed_expired = true;
  o.autoscaler.enabled = true;
  o.autoscaler.min_active = 1;
  o.autoscaler.backlog_per_pcu = 1.5;
  o.autoscaler.shrink_after_idle = 3.0 * interval;

  const AdmissionResult a = admit(pool, adversarial_stream(pool, 400), o);
  const AdmissionResult b = admit(pool, adversarial_stream(pool, 400), o);
  ASSERT_GT(a.schedule.size(), 0u);
  expect_bit_identical(a, b);
}

TEST(AdmissionDeterminism, EagerScheduleBitIdenticalAcrossRuns) {
  const TwoModels t = make_two_models();
  PcuPool pool(2, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  const AdmissionResult a =
      admit(pool, adversarial_stream(pool, 300), {});
  const AdmissionResult b =
      admit(pool, adversarial_stream(pool, 300), {});
  expect_bit_identical(a, b);
}

// --- Determinism across engine_threads (satellite) ---

TEST(AdmissionDeterminism, EngineThreadsNeverPerturbsTheSchedule) {
  const TwoModels t = make_two_models();

  const auto build = [&](std::size_t threads) {
    PcuSpec spec;
    spec.config = PcnnaConfig::paper_defaults();
    spec.engine_threads = threads;
    return PcuPool(std::vector<PcuSpec>(3, spec), TimingFidelity::kFull,
                   t.net, t.weights_a);
  };
  PcuPool one = build(1);
  PcuPool many = build(8);
  one.register_model(t.net, t.weights_b);
  many.register_model(t.net, t.weights_b);
  const double interval = one.pcu(0).request_interval_overlapped(0);

  AdmissionOptions o;
  o.policy = DispatchPolicy::kModelAffinity;
  o.shed_expired = true;
  o.autoscaler.enabled = true;
  o.autoscaler.min_active = 1;
  o.autoscaler.backlog_per_pcu = 1.5;
  o.autoscaler.shrink_after_idle = 3.0 * interval;

  // Virtual-time accounting must be a function of the device models only:
  // the host thread count may change who computes, never what is computed
  // or when the schedule says it happens.
  const AdmissionResult a = admit(one, adversarial_stream(one, 400), o);
  const AdmissionResult b = admit(many, adversarial_stream(many, 400), o);
  expect_bit_identical(a, b);

  AdmissionOptions edf;
  edf.policy = DispatchPolicy::kEdf;
  const AdmissionResult c = admit(one, adversarial_stream(one, 200), edf);
  const AdmissionResult d = admit(many, adversarial_stream(many, 200), edf);
  expect_bit_identical(c, d);
}

// --- Fault machinery off means OFF: the bit-identity contract ---

// An empty FaultSchedule must bypass every fault code path: for every
// dispatch policy, a run with default-constructed FaultOptions (plus
// arbitrary knob settings behind the empty schedule) reproduces the
// schedule of a run that never heard of faults, bit for bit — and reports
// no fault activity at all.
TEST(AdmissionDeterminism, EmptyFaultScheduleIsBitIdenticalForEveryPolicy) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);

  for (DispatchPolicy policy : runtime::kAllDispatchPolicies) {
    AdmissionOptions plain;
    plain.policy = policy;
    plain.shed_expired = true;

    AdmissionOptions with_knobs = plain;
    // Every fault knob armed — but the schedule is empty, so none of it
    // may run. The non-schedule knobs alone must not flip the loop into
    // its event-driven mode or perturb a single double.
    with_knobs.faults.detection_latency = 1.0;
    with_knobs.faults.retry.max_retries = 7;
    with_knobs.faults.retry.backoff_base = 0.5;
    with_knobs.faults.repair_time = 2.0;

    const AdmissionResult a =
        admit(pool, adversarial_stream(pool, 300), plain);
    const AdmissionResult b =
        admit(pool, adversarial_stream(pool, 300), with_knobs);
    ASSERT_GT(a.schedule.size(), 0u)
        << runtime::dispatch_policy_name(policy);
    expect_bit_identical(a, b);
    EXPECT_EQ(0u, b.fault.injections);
    EXPECT_TRUE(b.fault.per_pcu.empty());
    EXPECT_TRUE(b.fault.losses.empty());
    for (const ScheduledService& s : b.schedule) EXPECT_EQ(1u, s.attempts);
  }
}

// With a non-empty schedule the whole fault pipeline must itself be a pure
// function of its inputs: two identical runs agree on every FaultReport
// field, bit for bit.
TEST(AdmissionDeterminism, FaultReportBitIdenticalAcrossRuns) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  const double interval = pool.pcu(0).request_interval_overlapped(0);

  runtime::FaultModel hazard;
  hazard.mtbf = 60.0 * interval;
  hazard.horizon = 250.0 * interval;
  hazard.mean_time_to_repair = 20.0 * interval;

  AdmissionOptions o;
  o.policy = DispatchPolicy::kModelAffinity;
  o.shed_expired = true;
  o.faults.schedule = runtime::poisson_faults(3, hazard, 41);
  o.faults.detection_latency = 0.5 * interval;
  o.faults.retry.backoff_base = 0.25 * interval;
  o.faults.repair_time = 2.0 * interval;
  ASSERT_FALSE(o.faults.schedule.empty());

  const AdmissionResult a = admit(pool, adversarial_stream(pool, 400), o);
  const AdmissionResult b = admit(pool, adversarial_stream(pool, 400), o);
  expect_bit_identical(a, b);
  EXPECT_GT(a.fault.injections, 0u);
  EXPECT_EQ(a.fault.injections, b.fault.injections);
  EXPECT_EQ(a.fault.retries, b.fault.retries);
  EXPECT_EQ(a.fault.lost_requests, b.fault.lost_requests);
  ASSERT_EQ(a.fault.attempts.size(), b.fault.attempts.size());
  for (std::size_t i = 0; i < a.fault.attempts.size(); ++i) {
    EXPECT_EQ(a.fault.attempts[i].id, b.fault.attempts[i].id);
    EXPECT_EQ(a.fault.attempts[i].pcu, b.fault.attempts[i].pcu);
    EXPECT_EQ(a.fault.attempts[i].start, b.fault.attempts[i].start);
    EXPECT_EQ(a.fault.attempts[i].end, b.fault.attempts[i].end);
  }
  ASSERT_EQ(a.fault.per_pcu.size(), b.fault.per_pcu.size());
  for (std::size_t p = 0; p < a.fault.per_pcu.size(); ++p) {
    EXPECT_EQ(a.fault.per_pcu[p].availability,
              b.fault.per_pcu[p].availability);
    EXPECT_EQ(a.fault.per_pcu[p].healthy_time,
              b.fault.per_pcu[p].healthy_time);
    EXPECT_EQ(a.fault.per_pcu[p].failed_time, b.fault.per_pcu[p].failed_time);
  }
}

// --- Adversarial EDF tie-breaks (satellite) ---

TEST(EdfTieBreak, FullTiesAreBrokenOnlyById) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  const double interval = pool.pcu(0).request_interval_overlapped();

  // Four requests tied on (class, deadline, arrival), pushed in scrambled
  // id order: the dispatch order must come out ascending by id — push
  // order must not leak through the pending set.
  const double deadline = 100.0 * interval;
  std::vector<InferenceRequest> requests;
  for (const std::uint64_t id : {3u, 1u, 2u, 0u}) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = 0.0;
    r.priority = PriorityClass::kStandard;
    r.deadline = deadline;
    requests.push_back(r);
  }
  AdmissionOptions edf;
  edf.policy = DispatchPolicy::kEdf;
  const AdmissionResult r = admit(pool, std::move(requests), edf);
  ASSERT_EQ(4u, r.schedule.size());
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(i, r.schedule[i].id) << "position " << i;
}

TEST(EdfTieBreak, ArrivalBreaksDeadlineTiesBeforeId) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  const double interval = pool.pcu(0).request_interval_overlapped();

  // Request 9 arrives before request 1, same class and deadline; both are
  // queued behind request 5 when the PCU frees. The earlier *arrival*
  // must win even though its id is larger.
  const double deadline = 100.0 * interval;
  std::vector<InferenceRequest> requests;
  InferenceRequest head;
  head.id = 5;
  head.arrival_time = 0.0;
  head.deadline = deadline;
  requests.push_back(head);
  InferenceRequest nine;
  nine.id = 9;
  nine.arrival_time = 0.2 * interval;
  nine.deadline = deadline;
  requests.push_back(nine);
  InferenceRequest one;
  one.id = 1;
  one.arrival_time = 0.3 * interval;
  one.deadline = deadline;
  requests.push_back(one);

  AdmissionOptions edf;
  edf.policy = DispatchPolicy::kEdf;
  const AdmissionResult r = admit(pool, std::move(requests), edf);
  ASSERT_EQ(3u, r.schedule.size());
  EXPECT_EQ(5u, r.schedule[0].id);
  EXPECT_EQ(9u, r.schedule[1].id) << "earlier arrival beats smaller id";
  EXPECT_EQ(1u, r.schedule[2].id);
}

TEST(EdfTieBreak, ClassOutranksDeadlineAndIdUnderFullAdversity) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  const double interval = pool.pcu(0).request_interval_overlapped();

  // Interactive with the LATEST deadline and LARGEST id still goes first;
  // best-effort with the tightest deadline and smallest id still goes
  // last.
  std::vector<InferenceRequest> requests;
  InferenceRequest be;
  be.id = 0;
  be.arrival_time = 0.0;
  be.priority = PriorityClass::kBestEffort;
  be.deadline = 1.0 * interval;
  requests.push_back(be);
  InferenceRequest std_r;
  std_r.id = 1;
  std_r.arrival_time = 0.0;
  std_r.priority = PriorityClass::kStandard;
  std_r.deadline = 2.0 * interval;
  requests.push_back(std_r);
  InferenceRequest inter;
  inter.id = 2;
  inter.arrival_time = 0.0;
  inter.priority = PriorityClass::kInteractive;
  inter.deadline = 500.0 * interval;
  requests.push_back(inter);

  AdmissionOptions edf;
  edf.policy = DispatchPolicy::kEdf;
  const AdmissionResult r = admit(pool, std::move(requests), edf);
  ASSERT_EQ(3u, r.schedule.size());
  EXPECT_EQ(2u, r.schedule[0].id);
  EXPECT_EQ(1u, r.schedule[1].id);
  EXPECT_EQ(0u, r.schedule[2].id);
}

TEST(EdfTieBreak, ModelAffinityUsesTheSameUrgencyOrderOnTies) {
  const TwoModels t = make_two_models();
  PcuPool pool(1, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  const double interval = pool.pcu(0).request_interval_overlapped(0);

  // Full ties again, but under kModelAffinity with mixed models on one
  // PCU: urgency (id) decides who runs next, and the swap pattern follows
  // from that order — never the other way around.
  const double deadline = 200.0 * interval;
  std::vector<InferenceRequest> requests;
  for (const std::uint64_t id : {2u, 0u, 3u, 1u}) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = 0.0;
    r.deadline = deadline;
    r.model_id = static_cast<std::uint32_t>(id % 2);
    requests.push_back(r);
  }
  AdmissionOptions affinity;
  affinity.policy = DispatchPolicy::kModelAffinity;
  const AdmissionResult r = admit(pool, std::move(requests), affinity);
  ASSERT_EQ(4u, r.schedule.size());
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(i, r.schedule[i].id) << "position " << i;
  // Ids alternate models, so the single PCU swaps on every dispatch after
  // the first.
  EXPECT_FALSE(r.schedule[0].swapped);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_TRUE(r.schedule[i].swapped);
}

// --- Randomized property sweep (satellite) ---
//
// Structural invariants every admission run must satisfy, no matter the
// policy, seed, or fault schedule:
//  1. conservation — every offered request is served, shed, or lost,
//     exactly once: offered == schedule + shed + fault losses;
//  2. monotone virtual time — on the event-driven path every dispatch
//     commits at the loop's current `now`, so schedule entries (stable
//     under fault compaction) carry nondecreasing start times;
//  3. no double-booking — the service intervals charged to one PCU never
//     overlap, counting pipeline stage spans on their stage PCUs.

/// Like adversarial_stream, but fully re-seedable so the sweep can draw
/// many independent streams. ~1.5x overload on a 4-PCU pool.
std::vector<InferenceRequest> seeded_stream(const PcuPool& pool,
                                            std::size_t count,
                                            std::uint64_t seed) {
  const double interval = pool.pcu(0).request_interval_overlapped(0);
  const double warmup = pool.pcu(0).warmup_time(0);
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(count, 6.0 / interval, seed);
  Rng rng(seed * 7919 + 1);
  std::vector<InferenceRequest> requests;
  for (std::size_t id = 0; id < count; ++id) {
    InferenceRequest r;
    r.id = id;
    r.arrival_time = arrivals[id];
    r.model_id = static_cast<std::uint32_t>(rng.next_u64() % 2);
    const std::uint64_t cls = rng.next_u64() % 3;
    r.priority = cls == 0 ? PriorityClass::kInteractive
                          : (cls == 1 ? PriorityClass::kStandard
                                      : PriorityClass::kBestEffort);
    r.tenant = static_cast<std::uint32_t>(cls);
    r.deadline = arrivals[id] + warmup +
                 (2.0 + static_cast<double>(rng.next_u64() % 8)) * interval;
    requests.push_back(r);
  }
  return requests;
}

void check_admission_invariants(const AdmissionResult& r, std::size_t offered,
                                std::size_t num_pcus, bool event_driven) {
  // 1. Conservation.
  EXPECT_EQ(offered,
            r.schedule.size() + r.shed.shed + r.fault.lost_requests);
  EXPECT_EQ(r.fault.lost_requests, r.fault.losses.size());

  std::vector<std::vector<std::pair<double, double>>> busy(num_pcus);
  double prev_start = -std::numeric_limits<double>::infinity();
  for (const ScheduledService& s : r.schedule) {
    EXPECT_LE(s.arrival, s.start) << "request " << s.id;
    EXPECT_LT(s.start, s.completion) << "request " << s.id;
    // 2. Monotone virtual time (event-driven dispatches commit at `now`;
    // fault compaction is stable, so the order survives retries).
    if (event_driven) {
      EXPECT_GE(s.start, prev_start) << "request " << s.id;
      prev_start = s.start;
    }
    if (s.stages.empty()) {
      ASSERT_LT(s.pcu, num_pcus);
      busy[s.pcu].push_back({s.start, s.completion});
    } else {
      // Pipelined entry: spans chain forward through the group and the
      // head entry brackets the chain exactly.
      EXPECT_EQ(s.stages.front().start, s.start) << "request " << s.id;
      EXPECT_EQ(s.stages.back().completion, s.completion)
          << "request " << s.id;
      for (std::size_t j = 0; j < s.stages.size(); ++j) {
        const runtime::StageService& st = s.stages[j];
        EXPECT_EQ(j, st.stage) << "request " << s.id;
        ASSERT_LT(st.pcu, num_pcus);
        EXPECT_LT(st.start, st.completion) << "request " << s.id;
        if (j > 0) {
          EXPECT_GE(st.start, s.stages[j - 1].completion + st.handoff)
              << "request " << s.id << " stage " << j;
        }
        busy[st.pcu].push_back({st.start, st.completion});
      }
    }
  }
  // 3. No double-booking per PCU.
  for (std::size_t p = 0; p < num_pcus; ++p) {
    std::sort(busy[p].begin(), busy[p].end());
    for (std::size_t i = 1; i < busy[p].size(); ++i) {
      EXPECT_GE(busy[p][i].first, busy[p][i - 1].second)
          << "PCU " << p << " double-booked: [" << busy[p][i - 1].first
          << ", " << busy[p][i - 1].second << ") overlaps ["
          << busy[p][i].first << ", " << busy[p][i].second << ")";
    }
  }
}

TEST(AdmissionInvariants, HoldForEveryPolicySeedAndFaultSchedule) {
  const TwoModels t = make_two_models();
  PcuPool pool(4, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  // Model 1 pinned across a 2-stage chain (tiny_cnn has 2 conv ops);
  // non-pipeline policies ignore the group, kPipeline routes model 1
  // through it and model 0 to the unreserved remainder.
  pool.build_pipeline(/*model=*/1, {0, 1});
  const double interval = pool.pcu(0).request_interval_overlapped(0);
  constexpr std::size_t kCount = 300;

  runtime::FaultModel hazard;
  hazard.mtbf = 50.0 * interval;
  hazard.horizon = 200.0 * interval;
  hazard.mean_time_to_repair = 15.0 * interval;
  hazard.crash_weight = 3.0;

  for (const DispatchPolicy policy : runtime::kAllDispatchPolicies) {
    for (const std::uint64_t seed : {7u, 21u, 63u}) {
      for (const int fault_mode : {0, 1, 2}) {
        AdmissionOptions o;
        o.policy = policy;
        o.shed_expired = true; // forces the event-driven path everywhere
        if (fault_mode > 0) {
          o.faults.schedule =
              runtime::poisson_faults(4, hazard, 100 + seed);
          o.faults.health_aware = fault_mode == 2;
          o.faults.detection_latency = 0.5 * interval;
          o.faults.retry.backoff_base = 0.25 * interval;
          o.faults.repair_time = 2.0 * interval;
        }
        SCOPED_TRACE(std::string(runtime::dispatch_policy_name(policy)) +
                     " seed " + std::to_string(seed) + " faults " +
                     std::to_string(fault_mode));
        const AdmissionResult a =
            admit(pool, seeded_stream(pool, kCount, seed), o);
        ASSERT_GT(a.schedule.size(), 0u);
        check_admission_invariants(a, kCount, 4, /*event_driven=*/true);
        // Purity: the same inputs reproduce the same schedule, bit for
        // bit — across policies, seeds and fault schedules alike.
        const AdmissionResult b =
            admit(pool, seeded_stream(pool, kCount, seed), o);
        expect_bit_identical(a, b);
      }
    }
  }
}

TEST(AdmissionInvariants, ConservationHoldsOnTheEagerPath) {
  const TwoModels t = make_two_models();
  PcuPool pool(3, PcnnaConfig::paper_defaults(), TimingFidelity::kFull,
               t.net, t.weights_a);
  pool.register_model(t.net, t.weights_b);
  // Eager FIFO (no shed, no deferral): start times follow per-PCU queues,
  // not a global clock, so only conservation and non-overlap apply.
  for (const DispatchPolicy policy :
       {DispatchPolicy::kEarliestFree, DispatchPolicy::kLeastLoaded,
        DispatchPolicy::kCapabilityAware}) {
    AdmissionOptions o;
    o.policy = policy;
    SCOPED_TRACE(runtime::dispatch_policy_name(policy));
    const AdmissionResult r =
        admit(pool, seeded_stream(pool, 200, 5), o);
    check_admission_invariants(r, 200, 3, /*event_driven=*/false);
  }
}

TEST(AdmissionInvariants, PipelineScheduleBitIdenticalAcrossEngineThreads) {
  const TwoModels t = make_two_models();
  const auto build = [&](std::size_t threads) {
    PcuSpec spec;
    spec.config = PcnnaConfig::paper_defaults();
    spec.engine_threads = threads;
    return PcuPool(std::vector<PcuSpec>(4, spec), TimingFidelity::kFull,
                   t.net, t.weights_a);
  };
  PcuPool one = build(1);
  PcuPool many = build(8);
  for (PcuPool* pool : {&one, &many}) {
    pool->register_model(t.net, t.weights_b);
    pool->build_pipeline(/*model=*/1, {0, 1});
  }
  const double interval = one.pcu(0).request_interval_overlapped(0);

  AdmissionOptions o;
  o.policy = DispatchPolicy::kPipeline;
  o.shed_expired = true;
  o.autoscaler.enabled = true;
  o.autoscaler.min_active = 1;
  o.autoscaler.backlog_per_pcu = 1.5;
  o.autoscaler.shrink_after_idle = 3.0 * interval;

  const AdmissionResult a = admit(one, seeded_stream(one, 400, 17), o);
  const AdmissionResult b = admit(many, seeded_stream(many, 400, 17), o);
  ASSERT_GT(a.pipeline.pipelined_requests, 0u);
  expect_bit_identical(a, b);
  check_admission_invariants(a, 400, 4, /*event_driven=*/true);
}

} // namespace
