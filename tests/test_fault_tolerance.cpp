// Fault-tolerant serving: the deterministic fault generator and trace
// format, health-aware dispatch, retry with backoff (bit-identical
// re-execution), quarantine/repair with plan-cache epoch bumps, and the
// fault-blind baseline that motivates all of it.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/planner.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/fault_plan.hpp"

namespace {

using namespace pcnna;
using core::PcnnaConfig;
using runtime::ArrivalSchedule;
using runtime::BatchRunner;
using runtime::BatchRunnerOptions;
using runtime::FaultEvent;
using runtime::FaultKind;
using runtime::FaultModel;
using runtime::FaultSchedule;
using runtime::OpenLoopReport;
using runtime::RequestResult;

struct Served {
  nn::Network net;
  nn::NetWeights weights;
  std::vector<nn::Tensor> inputs;
};

Served make_served(std::size_t batch, std::uint64_t seed = 21) {
  Rng rng(seed);
  Served s{nn::tiny_cnn(), {}, {}};
  s.weights = nn::make_network_weights(s.net, rng);
  s.inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    s.inputs.push_back(nn::make_network_input(s.net, rng));
  return s;
}

BatchRunnerOptions options(std::size_t pcus, bool simulate_values = false) {
  BatchRunnerOptions o;
  o.num_pcus = pcus;
  o.simulate_values = simulate_values;
  o.seed = 99;
  return o;
}

FaultModel crashy_model(double horizon) {
  FaultModel m;
  m.mtbf = horizon / 4.0;
  m.horizon = horizon;
  m.mean_time_to_repair = horizon / 16.0;
  return m;
}

// --- The generator: deterministic, seed-sensitive, resize-stable. ---

TEST(PoissonFaults, DeterministicInArgumentsAlone) {
  const FaultModel m = crashy_model(100.0);
  const FaultSchedule a = runtime::poisson_faults(4, m, 7);
  const FaultSchedule b = runtime::poisson_faults(4, m, 7);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  runtime::validate_fault_schedule(a);

  const FaultSchedule c = runtime::poisson_faults(4, m, 8);
  EXPECT_NE(a, c);
}

// Per-PCU streams are keyed by (seed, pcu), so growing the fleet never
// rewrites the timeline of the PCUs that were already there.
TEST(PoissonFaults, PerPcuStreamsSurviveFleetResize) {
  const FaultModel m = crashy_model(200.0);
  const FaultSchedule small = runtime::poisson_faults(2, m, 7);
  const FaultSchedule big = runtime::poisson_faults(4, m, 7);

  FaultSchedule big_first_two;
  for (const FaultEvent& e : big)
    if (e.pcu < 2) big_first_two.push_back(e);
  EXPECT_EQ(small, big_first_two);
}

TEST(PoissonFaults, EveryCrashGetsAPairedRecover) {
  FaultModel m = crashy_model(300.0);
  m.transient_weight = 0.0;
  m.degrade_weight = 0.0;
  const FaultSchedule faults = runtime::poisson_faults(3, m, 11);
  ASSERT_FALSE(faults.empty());
  std::size_t crashes = 0;
  std::size_t recovers = 0;
  for (const FaultEvent& e : faults) {
    if (e.kind == FaultKind::kCrash) ++crashes;
    if (e.kind == FaultKind::kRecover) ++recovers;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(crashes, recovers);
}

TEST(PoissonFaults, DegenerateAndInvalidModels) {
  EXPECT_TRUE(runtime::poisson_faults(0, crashy_model(100.0), 1).empty());
  EXPECT_TRUE(runtime::poisson_faults(4, FaultModel{}, 1).empty()); // inf mtbf
  FaultModel no_horizon = crashy_model(100.0);
  no_horizon.horizon = 0.0;
  EXPECT_TRUE(runtime::poisson_faults(4, no_horizon, 1).empty());

  FaultModel bad_weights = crashy_model(100.0);
  bad_weights.transient_weight = -1.0;
  EXPECT_THROW(runtime::poisson_faults(4, bad_weights, 1), Error);

  FaultModel no_repair = crashy_model(100.0);
  no_repair.mean_time_to_repair = 0.0;
  EXPECT_THROW(runtime::poisson_faults(4, no_repair, 1), Error);

  FaultModel bad_severity = crashy_model(100.0);
  bad_severity.degrade_severity = 0.5;
  EXPECT_THROW(runtime::poisson_faults(4, bad_severity, 1), Error);
}

// --- The trace format: round trip and line-numbered rejection. ---

TEST(FaultTrace, RoundTripsThroughTheTraceFormat) {
  const FaultSchedule original =
      runtime::poisson_faults(3, crashy_model(150.0), 5);
  ASSERT_FALSE(original.empty());
  std::ostringstream out;
  runtime::write_fault_trace(out, original);
  std::istringstream in(out.str());
  EXPECT_EQ(original, runtime::parse_fault_trace(in));
}

TEST(FaultTrace, SkipsCommentsAndDefaultsSeverity) {
  std::istringstream in(
      "# a header comment\n"
      "\n"
      "0.5 0 transient\n"
      "  1.5 1 degrade 2.25  \n"
      "2.5 0 crash\r\n"
      "3.5 0 recover\n");
  const FaultSchedule faults = runtime::parse_fault_trace(in);
  ASSERT_EQ(4u, faults.size());
  EXPECT_EQ(FaultKind::kTransient, faults[0].kind);
  EXPECT_DOUBLE_EQ(1.0, faults[0].severity);
  EXPECT_EQ(FaultKind::kDegrade, faults[1].kind);
  EXPECT_DOUBLE_EQ(2.25, faults[1].severity);
  EXPECT_EQ(1u, faults[1].pcu);
  EXPECT_EQ(FaultKind::kCrash, faults[2].kind);
  EXPECT_EQ(FaultKind::kRecover, faults[3].kind);
}

// Errors must name the offending 1-based *line*, comments included — a
// post-hoc index would drift away from what the user sees in the editor.
TEST(FaultTrace, ErrorsNameTheOffendingLine) {
  const auto line_named_error = [](const std::string& text,
                                   const std::string& needle) {
    std::istringstream in(text);
    try {
      runtime::parse_fault_trace(in);
      return std::string("no error thrown");
    } catch (const Error& e) {
      return std::string(e.what()).find(needle) != std::string::npos
                 ? std::string()
                 : std::string(e.what());
    }
  };
  EXPECT_EQ("", line_named_error("# header\n0.5 0 transient\nbogus\n",
                                 "line 3"));
  EXPECT_EQ("", line_named_error("0.5 0 meltdown\n", "line 1"));
  EXPECT_EQ("", line_named_error("0.5 0 transient\n0.25 0 crash\n",
                                 "line 2"));
  EXPECT_EQ("", line_named_error("0.5 0 degrade 0.25\n", "severity"));
  EXPECT_EQ("", line_named_error("0.5 0 transient extra junk\n", "line 1"));
}

TEST(FaultTrace, ValidateRejectsBadSchedules) {
  EXPECT_THROW(
      runtime::validate_fault_schedule({{std::nan(""), 0,
                                         FaultKind::kCrash, 1.0}}),
      Error);
  EXPECT_THROW(runtime::validate_fault_schedule(
                   {{1.0, 0, FaultKind::kCrash, 1.0},
                    {0.5, 0, FaultKind::kRecover, 1.0}}),
               Error);
  EXPECT_THROW(runtime::validate_fault_schedule(
                   {{1.0, 0, FaultKind::kDegrade, 0.5}}),
               Error);
  runtime::validate_fault_schedule({}); // empty is fine
}

// --- Crash, retry, and bit-identical re-execution. ---

TEST(FaultTolerance, CrashVictimRetriesAndServesBitIdentically) {
  const Served s = make_served(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner reference(config, s.net, s.weights, options(1, true));
  const double interval =
      reference.pool().pcu(0).request_interval_overlapped();
  const double warmup = reference.pool().pcu(0).warmup_time();

  BatchRunnerOptions copts = options(1, true);
  copts.faults.schedule = {
      {warmup + 1.5 * interval, 0, FaultKind::kCrash, 1.0},
      {warmup + 3.5 * interval, 0, FaultKind::kRecover, 1.0},
  };
  BatchRunner crashy(config, s.net, s.weights, copts);

  OpenLoopReport report;
  const std::vector<RequestResult> results = crashy.run_open_loop(
      s.inputs, ArrivalSchedule(s.inputs.size(), 0.0), &report);

  EXPECT_GE(report.fault.crash_losses, 1u);
  EXPECT_GE(report.fault.retries, 1u);
  EXPECT_GE(report.fault.recovered_requests, 1u);
  EXPECT_EQ(0u, report.failed_requests);
  EXPECT_EQ(s.inputs.size(), report.served_requests);
  EXPECT_EQ(report.requests,
            report.served_requests + report.shed_requests +
                report.failed_requests);
  // The retried request re-executes from the same per-request seed, so
  // every output — including the crash victim's — matches the sequential
  // reference bit for bit.
  ASSERT_EQ(s.inputs.size(), results.size());
  for (std::size_t id = 0; id < results.size(); ++id) {
    EXPECT_FALSE(results[id].failed);
    EXPECT_EQ(reference.run_one(s.inputs[id], id).output, results[id].output)
        << "request " << id;
  }
  // The recovered request's sojourn is the retry-latency tail.
  EXPECT_GT(report.retry_latency.max, 0.0);
}

TEST(FaultTolerance, FleetDeathFailsRemainingRequests) {
  const Served s = make_served(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner probe(config, s.net, s.weights, options(1));
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();

  // The lone PCU dies mid-run and never recovers: requests completed
  // before the crash are served, everything else is permanently lost.
  BatchRunnerOptions dead = options(1, true);
  dead.faults.schedule = {
      {warmup + 2.5 * interval, 0, FaultKind::kCrash, 1.0},
  };
  BatchRunner runner(config, s.net, s.weights, dead);

  OpenLoopReport report;
  const std::vector<RequestResult> results = runner.run_open_loop(
      s.inputs, ArrivalSchedule(s.inputs.size(), 0.0), &report);

  EXPECT_GT(report.failed_requests, 0u);
  EXPECT_GT(report.served_requests, 0u);
  EXPECT_EQ(s.inputs.size(),
            report.served_requests + report.failed_requests);
  EXPECT_EQ(report.failed_requests, report.fault.losses.size());
  EXPECT_EQ(report.failed_requests, report.fault.lost_requests);
  std::size_t failed = 0;
  for (const RequestResult& r : results) {
    if (!r.failed) continue;
    ++failed;
    EXPECT_TRUE(r.output.empty());
  }
  EXPECT_EQ(report.failed_requests, failed);
}

TEST(FaultTolerance, RetryBudgetExhaustionLosesTheRequest) {
  const Served s = make_served(4);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner probe(config, s.net, s.weights, options(1));
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();

  // Zero retry budget: the crash victim is lost on its first destroyed
  // attempt even though the PCU comes right back.
  BatchRunnerOptions no_budget = options(1);
  no_budget.faults.retry.max_retries = 0;
  no_budget.faults.schedule = {
      {warmup + 1.5 * interval, 0, FaultKind::kCrash, 1.0},
      {warmup + 2.0 * interval, 0, FaultKind::kRecover, 1.0},
  };
  BatchRunner runner(config, s.net, s.weights, no_budget);
  const OpenLoopReport report = runner.simulate_open_loop(
      ArrivalSchedule(s.inputs.size(), 0.0));

  EXPECT_EQ(1u, report.failed_requests);
  EXPECT_EQ(0u, report.fault.retries);
  EXPECT_EQ(s.inputs.size() - 1, report.served_requests);
  ASSERT_EQ(1u, report.fault.losses.size());
  EXPECT_EQ(1u, report.fault.losses[0].attempts);
}

// --- The fault-blind baseline the tolerance stack is measured against. ---

TEST(FaultTolerance, BlindDispatchLosesWhatHealthAwareRecovers) {
  const Served s = make_served(2);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  const std::size_t kRequests = 400;

  BatchRunner probe(config, s.net, s.weights, options(3));
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 0.6 * capacity, 17);

  FaultModel hazard = crashy_model(arrivals.back());
  hazard.transient_weight = 0.0;
  hazard.degrade_weight = 0.0;
  const FaultSchedule faults = runtime::poisson_faults(3, hazard, 23);
  ASSERT_FALSE(faults.empty());

  BatchRunnerOptions blind_options = options(3);
  blind_options.faults.schedule = faults;
  blind_options.faults.health_aware = false;
  BatchRunner blind(config, s.net, s.weights, blind_options);
  const OpenLoopReport blind_report = blind.simulate_open_loop(arrivals);

  BatchRunnerOptions aware_options = options(3);
  aware_options.faults.schedule = faults;
  BatchRunner aware(config, s.net, s.weights, aware_options);
  const OpenLoopReport aware_report = aware.simulate_open_loop(arrivals);

  // Blind dispatch keeps feeding dead PCUs: every touched request is a
  // permanent loss. Health-aware dispatch retries them elsewhere.
  EXPECT_GT(blind_report.failed_requests, 0u);
  EXPECT_EQ(0u, blind_report.fault.retries);
  EXPECT_GT(aware_report.served_requests, blind_report.served_requests);
  EXPECT_GE(static_cast<double>(aware_report.served_requests),
            0.95 * static_cast<double>(kRequests));
  EXPECT_EQ(blind_report.requests, aware_report.requests);
}

// --- Degrade, quarantine, repair, and the plan-cache epoch. ---

TEST(FaultTolerance, QuarantineRepairsDriftAndBumpsThePlanEpoch) {
  const Served s = make_served(2);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  const std::size_t kRequests = 200;

  BatchRunner probe(config, s.net, s.weights, options(2));
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 0.5 * capacity, 31);

  core::PlanCache cache;
  const std::uint64_t key = core::plan_config_key(
      probe.pool().pcu(1).config(), probe.pool().pcu(1).fidelity());
  const std::uint64_t epoch_before = cache.epoch(key);

  BatchRunnerOptions dopts = options(2);
  dopts.faults.schedule = {
      {10.0 * interval, 1, FaultKind::kDegrade, 2.0},
  };
  dopts.faults.detection_latency = interval;
  dopts.faults.repair_time = 3.0 * interval;
  dopts.faults.plan_cache = &cache;
  BatchRunner runner(config, s.net, s.weights, dopts);
  const OpenLoopReport report = runner.simulate_open_loop(arrivals);

  EXPECT_EQ(1u, report.fault.quarantines);
  EXPECT_EQ(1u, report.fault.repairs);
  EXPECT_GE(report.fault.repair_time, dopts.faults.repair_time);
  EXPECT_EQ(1u, report.fault.plan_epoch_bumps);
  EXPECT_EQ(epoch_before + 1, cache.epoch(key));

  ASSERT_EQ(2u, report.fault.per_pcu.size());
  const runtime::PcuHealthStats& h = report.fault.per_pcu[1];
  EXPECT_EQ(1u, h.degrades);
  EXPECT_EQ(1u, h.quarantines);
  EXPECT_EQ(1u, h.repairs);
  EXPECT_GT(h.degraded_time, 0.0);
  EXPECT_GT(h.quarantined_time, 0.0);
  EXPECT_LT(h.availability, 1.0);
  EXPECT_GT(h.availability, 0.0);
  // The untouched PCU stays fully available.
  EXPECT_DOUBLE_EQ(1.0, report.fault.per_pcu[0].availability);
  // Nothing was permanently lost: drift slows, it does not destroy.
  EXPECT_EQ(0u, report.failed_requests);
  EXPECT_EQ(kRequests, report.served_requests);
}

// An undetected degrade (blind mode) inflates service times for the rest
// of the run — the makespan must stretch relative to the fault-free run.
TEST(FaultTolerance, UndetectedDegradeInflatesServiceTimes) {
  const Served s = make_served(2);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  const ArrivalSchedule arrivals(64, 0.0);

  BatchRunner clean(config, s.net, s.weights, options(1));
  const OpenLoopReport clean_report = clean.simulate_open_loop(arrivals);

  BatchRunnerOptions dopts = options(1);
  dopts.faults.health_aware = false;
  dopts.faults.schedule = {{0.0, 0, FaultKind::kDegrade, 2.0}};
  BatchRunner degraded(config, s.net, s.weights, dopts);
  const OpenLoopReport degraded_report = degraded.simulate_open_loop(arrivals);

  EXPECT_GT(degraded_report.makespan, 1.5 * clean_report.makespan);
  EXPECT_EQ(clean_report.served_requests, degraded_report.served_requests);
}

// --- Transient corruption: detected at completion, retried. ---

TEST(FaultTolerance, TransientCorruptionIsRetried) {
  const Served s = make_served(4);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner probe(config, s.net, s.weights, options(1));
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();

  BatchRunnerOptions topts = options(1);
  topts.faults.schedule = {
      {warmup + 1.5 * interval, 0, FaultKind::kTransient, 1.0},
  };
  BatchRunner runner(config, s.net, s.weights, topts);
  const OpenLoopReport report = runner.simulate_open_loop(
      ArrivalSchedule(s.inputs.size(), 0.0));

  EXPECT_EQ(1u, report.fault.transient_corruptions);
  EXPECT_EQ(0u, report.fault.crash_losses);
  EXPECT_EQ(1u, report.fault.retries);
  EXPECT_EQ(1u, report.fault.recovered_requests);
  EXPECT_EQ(0u, report.failed_requests);
  EXPECT_EQ(s.inputs.size(), report.served_requests);
  // The corrupt attempt burned real PCU time that is not in the schedule.
  ASSERT_EQ(1u, report.per_pcu.size());
  EXPECT_EQ(1u, report.per_pcu[0].lost_attempts);
  EXPECT_GT(report.per_pcu[0].lost_time, 0.0);
}

// --- Determinism of the whole fault pipeline. ---

TEST(FaultTolerance, ReportsAreDeterministicAcrossRunsAndEngineThreads) {
  const Served s = make_served(2);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();
  const std::size_t kRequests = 300;

  BatchRunner probe(config, s.net, s.weights, options(3));
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 0.8 * capacity, 13);

  FaultModel hazard = crashy_model(arrivals.back());
  hazard.degrade_severity = 1.75;
  const FaultSchedule faults = runtime::poisson_faults(3, hazard, 29);

  const auto run = [&](std::size_t engine_threads) {
    BatchRunnerOptions o = options(3);
    o.engine_threads = engine_threads;
    o.faults.schedule = faults;
    o.faults.detection_latency = 1e-6;
    o.faults.retry.backoff_base = 1e-6;
    o.faults.repair_time = 1e-5;
    BatchRunner runner(config, s.net, s.weights, o);
    return runner.simulate_open_loop(arrivals);
  };

  const OpenLoopReport a = run(0);
  const OpenLoopReport b = run(0);
  const OpenLoopReport c = run(2);

  for (const OpenLoopReport* other : {&b, &c}) {
    EXPECT_EQ(a.fault.injections, other->fault.injections);
    EXPECT_EQ(a.fault.crash_losses, other->fault.crash_losses);
    EXPECT_EQ(a.fault.transient_corruptions,
              other->fault.transient_corruptions);
    EXPECT_EQ(a.fault.retries, other->fault.retries);
    EXPECT_EQ(a.fault.recovered_requests, other->fault.recovered_requests);
    EXPECT_EQ(a.fault.lost_requests, other->fault.lost_requests);
    EXPECT_EQ(a.fault.quarantines, other->fault.quarantines);
    EXPECT_EQ(a.fault.repairs, other->fault.repairs);
    EXPECT_EQ(a.served_requests, other->served_requests);
    EXPECT_EQ(a.failed_requests, other->failed_requests);
    // Bitwise, not approximate: the virtual clock never touches host time.
    EXPECT_EQ(a.makespan, other->makespan);
    EXPECT_EQ(a.latency.p99, other->latency.p99);
    EXPECT_EQ(a.retry_latency.p99, other->retry_latency.p99);
    ASSERT_EQ(a.fault.per_pcu.size(), other->fault.per_pcu.size());
    for (std::size_t p = 0; p < a.fault.per_pcu.size(); ++p) {
      EXPECT_EQ(a.fault.per_pcu[p].availability,
                other->fault.per_pcu[p].availability);
      EXPECT_EQ(a.fault.per_pcu[p].lost_time,
                other->fault.per_pcu[p].lost_time);
    }
    ASSERT_EQ(a.fault.losses.size(), other->fault.losses.size());
    for (std::size_t i = 0; i < a.fault.losses.size(); ++i) {
      EXPECT_EQ(a.fault.losses[i].id, other->fault.losses[i].id);
      EXPECT_EQ(a.fault.losses[i].time, other->fault.losses[i].time);
    }
  }
}

// Retry composes with load shedding: a retry that can no longer meet its
// deadline flows into the ordinary shed_expired path instead of burning a
// doomed service slot.
TEST(FaultTolerance, HopelessRetriesFlowIntoTheShedPath) {
  const Served s = make_served(6);
  const PcnnaConfig config = PcnnaConfig::paper_defaults();

  BatchRunner probe(config, s.net, s.weights, options(1));
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const double warmup = probe.pool().pcu(0).warmup_time();

  BatchRunnerOptions sopts = options(1);
  sopts.shed_expired = true;
  sopts.faults.schedule = {
      {warmup + 1.5 * interval, 0, FaultKind::kCrash, 1.0},
      {warmup + 3.5 * interval, 0, FaultKind::kRecover, 1.0},
  };
  BatchRunner runner(config, s.net, s.weights, sopts);

  // Deadlines sized so everything fits fault-free, but the crash victim's
  // retry (plus the downtime) cannot: it must be shed, not failed.
  runtime::SloSchedule slos;
  for (std::size_t i = 0; i < s.inputs.size(); ++i)
    slos.push_back({/*tenant=*/0, runtime::PriorityClass::kStandard,
                    warmup + 2.2 * interval + static_cast<double>(i) *
                                                  interval});
  const OpenLoopReport report = runner.simulate_open_loop(
      ArrivalSchedule(s.inputs.size(), 0.0), slos);

  EXPECT_GE(report.fault.crash_losses, 1u);
  EXPECT_GT(report.shed_requests, 0u);
  EXPECT_EQ(report.requests,
            report.served_requests + report.shed_requests +
                report.failed_requests);
}

} // namespace
