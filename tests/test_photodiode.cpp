// Photodiode and balanced detection: responsivity, shot/thermal noise.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/photodiode.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Photodiode, IdealCurrentIsResponsivityTimesPower) {
  phot::PhotodiodeConfig cfg;
  cfg.responsivity = 0.8;
  cfg.dark_current = 0.0;
  phot::Photodiode pd(cfg);
  EXPECT_NEAR(0.8e-3, pd.ideal_current(1e-3), 1e-15);
}

TEST(Photodiode, DarkCurrentAdds) {
  phot::PhotodiodeConfig cfg;
  cfg.dark_current = 5e-9;
  phot::Photodiode pd(cfg);
  EXPECT_NEAR(5e-9, pd.ideal_current(0.0), 1e-18);
}

TEST(Photodiode, ZeroBandwidthDeterministic) {
  phot::Photodiode pd{phot::PhotodiodeConfig{}};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(pd.ideal_current(1e-3), pd.detect(1e-3, 0.0, rng));
}

TEST(Photodiode, ShotNoiseScalesWithSqrtCurrent) {
  phot::PhotodiodeConfig cfg;
  cfg.enable_thermal_noise = false;
  cfg.dark_current = 0.0;
  phot::Photodiode pd(cfg);
  const double bw = 5.0 * u::GHz;
  const double i1 = pd.noise_sigma(1e-3, bw);
  const double i4 = pd.noise_sigma(4e-3, bw);
  EXPECT_NEAR(2.0, i4 / i1, 1e-9);
  // Absolute value: sqrt(2 q I B).
  EXPECT_NEAR(std::sqrt(2.0 * u::q_e * 1e-3 * bw), i1, 1e-12);
}

TEST(Photodiode, ThermalNoiseIndependentOfCurrent) {
  phot::PhotodiodeConfig cfg;
  cfg.enable_shot_noise = false;
  phot::Photodiode pd(cfg);
  const double bw = 5.0 * u::GHz;
  EXPECT_DOUBLE_EQ(pd.noise_sigma(1e-3, bw), pd.noise_sigma(9e-3, bw));
  EXPECT_NEAR(std::sqrt(4.0 * u::k_B * cfg.temperature * bw / cfg.load_resistance),
              pd.noise_sigma(1e-3, bw), 1e-12);
}

TEST(Photodiode, MeasuredNoiseMatchesSigma) {
  phot::Photodiode pd{phot::PhotodiodeConfig{}};
  Rng rng(3);
  const double bw = 5.0 * u::GHz;
  const double power = 1e-3;
  std::vector<double> samples(20'000);
  for (double& s : samples) s = pd.detect(power, bw, rng);
  const double expect_mean = pd.ideal_current(power);
  const double expect_sigma = pd.noise_sigma(expect_mean, bw);
  EXPECT_NEAR(expect_mean, mean(samples), 5e-2 * expect_mean);
  EXPECT_NEAR(expect_sigma, stddev(samples), 0.05 * expect_sigma);
}

TEST(Balanced, SubtractsBranches) {
  phot::PhotodiodeConfig cfg;
  cfg.dark_current = 7e-9; // must cancel
  phot::BalancedPhotodiode pd(cfg);
  EXPECT_NEAR(cfg.responsivity * (2e-3 - 0.5e-3), pd.ideal_current(2e-3, 0.5e-3),
              1e-15);
}

TEST(Balanced, SignedOutput) {
  phot::BalancedPhotodiode pd{phot::PhotodiodeConfig{}};
  EXPECT_LT(pd.ideal_current(0.0, 1e-3), 0.0);
  EXPECT_GT(pd.ideal_current(1e-3, 0.0), 0.0);
}

TEST(Balanced, NoiseAccumulatesFromBothBranches) {
  phot::PhotodiodeConfig cfg;
  cfg.enable_shot_noise = false; // thermal only: each branch equal sigma
  phot::BalancedPhotodiode pd(cfg);
  Rng rng(5);
  const double bw = 5.0 * u::GHz;
  std::vector<double> samples(20'000);
  for (double& s : samples) s = pd.detect(1e-3, 1e-3, bw, rng);
  const double one_branch = pd.plus_branch().noise_sigma(0.0, bw);
  EXPECT_NEAR(std::sqrt(2.0) * one_branch, stddev(samples), 0.05 * one_branch);
}

TEST(Photodiode, NegativePowerThrows) {
  phot::Photodiode pd{phot::PhotodiodeConfig{}};
  Rng rng(1);
  EXPECT_THROW(pd.detect(-1e-3, 0.0, rng), Error);
}

} // namespace
