// Functional optical convolution engine vs the golden CPU reference.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::EngineStats;
using core::OpticalConvEngine;
using core::PcnnaConfig;
using nn::Shape4;
using nn::Tensor;

struct LayerData {
  Tensor input, weights, bias;
  nn::ConvLayerParams params;
};

LayerData make_layer(nn::ConvLayerParams params, std::uint64_t seed = 7) {
  Rng rng(seed);
  LayerData d;
  d.params = params;
  d.input = nn::make_input(params, rng);
  d.weights = nn::make_conv_weights(params, rng);
  d.bias = nn::make_conv_bias(params, rng);
  return d;
}

TEST(Engine, IdealConfigMatchesGoldenToMachinePrecision) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-7);
}

TEST(Engine, IdealConfigHandlesStrideAndPadding) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  const auto d = make_layer({"t", 9, 5, 2, 2, 3, 2});
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 2, 2);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 2, 2);
  EXPECT_EQ(ref.shape(), out.shape());
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-7);
}

TEST(Engine, WdmSegmentationPreservesResult) {
  // Force multiple bank passes per location: Nkernel = 2*3*3 = 18 > 5.
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.max_wavelengths = 5;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 3});
  EngineStats stats;
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1, &stats);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-7);
  EXPECT_EQ(5u, stats.wavelengths_used);
  // ceil(18/5) = 4 passes per location, 64 locations.
  EXPECT_EQ(4u * 64u, stats.optical_passes);
}

TEST(Engine, PerChannelAllocationMatchesGoldenUnderIdealConfig) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.allocation = core::RingAllocation::kPerChannel;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 6, 3, 1, 1, 3, 2});
  EngineStats stats;
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1, &stats);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  EXPECT_LT(nn::max_abs_diff(out, ref), 1e-6);
  EXPECT_EQ(3u, stats.recalibrations);
  EXPECT_EQ(2u * 9u, stats.rings_used); // K * m * m
}

TEST(Engine, PaperDefaultsStayWithinAnalogErrorBudget) {
  OpticalConvEngine engine(PcnnaConfig::paper_defaults());
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  // 8-bit ADC + 5 GHz detection noise: relative to the output swing the
  // error stays in the few-percent band.
  const double swing = ref.abs_max();
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.15 * swing);
  EXPECT_GT(nn::max_abs_diff(out, ref), 0.0); // noise actually applied
}

TEST(Engine, NoiseFreeQuantizedConfigErrorBoundedByAdc) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  EngineStats stats;
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1, &stats);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  // Deterministic: dominated by ADC LSB (fs = headroom*sqrt(18)) plus
  // calibration residuals.
  const double n_kernel = 18.0;
  const double adc_fs = cfg.adc_headroom * std::sqrt(n_kernel);
  const double adc_lsb = 2.0 * adc_fs / 255.0;
  const double scale = d.weights.abs_max() * d.input.abs_max();
  EXPECT_LT(nn::max_abs_diff(out, ref),
            (adc_lsb + 0.05) * scale * 3.0);
}

TEST(Engine, DeterministicForSameSeed) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.seed = 99;
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  OpticalConvEngine a(cfg), b(cfg);
  const Tensor out_a = a.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor out_b = b.conv2d(d.input, d.weights, d.bias, 1, 1);
  EXPECT_EQ(out_a, out_b);
}

TEST(Engine, ResetRngReproducesRun) {
  OpticalConvEngine engine(PcnnaConfig::paper_defaults());
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  const Tensor first = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  engine.reset_rng();
  const Tensor second = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  EXPECT_EQ(first, second);
}

TEST(Engine, RejectsNegativeInputs) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  d.input[0] = -0.5;
  EXPECT_THROW(engine.conv2d(d.input, d.weights, d.bias, 1, 1), Error);
}

TEST(Engine, RejectsNonSquareInput) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  Tensor input(Shape4{1, 1, 4, 5});
  Tensor weights(Shape4{1, 1, 3, 3});
  EXPECT_THROW(engine.conv2d(input, weights, {}, 1, 0), Error);
}

TEST(Engine, ZeroWeightsYieldBiasOnly) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  auto d = make_layer({"t", 6, 3, 0, 1, 1, 2});
  d.weights.fill(0.0);
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 0);
  for (std::size_t k = 0; k < 2; ++k)
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_DOUBLE_EQ(d.bias.at(0, k, 0, 0), out[k * 16 + i]);
}

TEST(Engine, ZeroInputsYieldBiasOnly) {
  OpticalConvEngine engine(PcnnaConfig::ideal());
  auto d = make_layer({"t", 6, 3, 0, 1, 1, 2});
  d.input.fill(0.0);
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 0);
  for (std::size_t k = 0; k < 2; ++k)
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_DOUBLE_EQ(d.bias.at(0, k, 0, 0), out[k * 16 + i]);
}

TEST(Engine, StatsMatchThePlan) {
  PcnnaConfig cfg = PcnnaConfig::ideal();
  cfg.max_wavelengths = 6;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  EngineStats stats;
  engine.conv2d(d.input, d.weights, d.bias, 1, 1, &stats);
  EXPECT_EQ(64u, stats.locations);
  EXPECT_EQ(4u * 18u, stats.rings_used); // K * Nkernel
  EXPECT_EQ(d.params.weight_count(), stats.weight_dac_conversions);
  EXPECT_EQ(64u * 4u, stats.adc_conversions); // locations * K
  EXPECT_EQ(4u * 3u, stats.banks_built);      // K banks x ceil(18/6) groups
  EXPECT_GT(stats.total_ring_area, 0.0);
  EXPECT_LT(stats.mean_calibration_error, 1e-6);
}

TEST(Engine, CrosstalkOnStillTracksGolden) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.bank.model_crosstalk = true;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  const double swing = ref.abs_max();
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.05 * swing);
}

TEST(Engine, FabricationDisorderIsCalibratedOut) {
  PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.bank.ring.fab_sigma = 0.05e-9;
  OpticalConvEngine engine(cfg);
  const auto d = make_layer({"t", 8, 3, 1, 1, 2, 4});
  const Tensor out = engine.conv2d(d.input, d.weights, d.bias, 1, 1);
  const Tensor ref = nn::conv2d_direct(d.input, d.weights, d.bias, 1, 1);
  const double swing = ref.abs_max();
  EXPECT_LT(nn::max_abs_diff(out, ref), 0.06 * swing);
}

} // namespace
