// Synthetic data generators.
#include <gtest/gtest.h>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using nn::Shape4;
using nn::Tensor;

TEST(Synth, GaussianFillStatistics) {
  Rng rng(1);
  Tensor t(Shape4{1, 1, 100, 100});
  nn::fill_gaussian(t, rng, 1.5, 0.5);
  EXPECT_NEAR(1.5, mean(t.data()), 0.02);
  EXPECT_NEAR(0.5, stddev(t.data()), 0.02);
}

TEST(Synth, UniformFillBounds) {
  Rng rng(2);
  Tensor t(Shape4{1, 1, 50, 50});
  nn::fill_uniform(t, rng, -2.0, 3.0);
  EXPECT_GE(t.min(), -2.0);
  EXPECT_LT(t.max(), 3.0);
  EXPECT_NEAR(0.5, mean(t.data()), 0.1);
}

TEST(Synth, SparseGaussianZeroFraction) {
  Rng rng(3);
  Tensor t(Shape4{1, 1, 100, 100});
  nn::fill_sparse_gaussian(t, rng, 1.0, 0.7);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < t.size(); ++i)
    if (t[i] == 0.0) ++zeros;
  EXPECT_NEAR(0.7, static_cast<double>(zeros) / t.size(), 0.03);
}

TEST(Synth, ConvWeightsUseHeScaling) {
  Rng rng(4);
  nn::ConvLayerParams layer{"t", 16, 3, 1, 1, 8, 32};
  const Tensor w = nn::make_conv_weights(layer, rng);
  EXPECT_EQ((Shape4{32, 8, 3, 3}), w.shape());
  const double expected = std::sqrt(2.0 / static_cast<double>(layer.kernel_size()));
  EXPECT_NEAR(expected, stddev(w.data()), expected * 0.1);
  EXPECT_NEAR(0.0, mean(w.data()), expected * 0.1);
}

TEST(Synth, InputIsNonNegativeUnitRange) {
  Rng rng(5);
  nn::ConvLayerParams layer{"t", 16, 3, 1, 1, 8, 32};
  const Tensor x = nn::make_input(layer, rng);
  EXPECT_EQ((Shape4{1, 8, 16, 16}), x.shape());
  EXPECT_GE(x.min(), 0.0);
  EXPECT_LT(x.max(), 1.0);
}

TEST(Synth, NetworkWeightsCoverEveryParameterizedOp) {
  Rng rng(6);
  const nn::Network net = nn::tiny_cnn();
  const auto w = nn::make_network_weights(net, rng);
  ASSERT_EQ(net.ops().size(), w.weight.size());
  ASSERT_EQ(net.ops().size(), w.bias.size());
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    const bool parameterized =
        net.ops()[i].kind == nn::OpKind::kConv ||
        net.ops()[i].kind == nn::OpKind::kFullyConnected;
    EXPECT_EQ(parameterized, !w.weight[i].empty()) << "op " << i;
  }
}

TEST(Synth, FcWeightShapeFollowsFlattenedInput) {
  Rng rng(7);
  nn::Network net("t", Shape4{1, 2, 4, 4});
  net.add_conv({"c", 4, 3, 1, 1, 2, 3}); // -> [1, 3, 4, 4] = 48 values
  net.add_fc(5);
  const auto w = nn::make_network_weights(net, rng);
  EXPECT_EQ((Shape4{5, 48, 1, 1}), w.weight[1].shape());
}

TEST(Synth, DeterministicForSameSeed) {
  Rng a(42), b(42);
  nn::ConvLayerParams layer{"t", 8, 3, 1, 1, 2, 2};
  EXPECT_EQ(nn::make_conv_weights(layer, a), nn::make_conv_weights(layer, b));
}

} // namespace
