// Energy model: component breakdown and scaling behaviour.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/energy_model.hpp"
#include "nn/models.hpp"

namespace {

using namespace pcnna;
namespace u = units;
using core::EnergyModel;
using core::EnergyReport;
using core::PcnnaConfig;
using core::Scheduler;
using core::TimingFidelity;
using core::TimingModel;

nn::ConvLayerParams alexnet_layer(std::size_t i) {
  return nn::alexnet_conv_layers().at(i);
}

EnergyReport layer_report(std::size_t i,
                          PcnnaConfig cfg = PcnnaConfig::paper_defaults()) {
  const Scheduler sched(cfg);
  const TimingModel timing(cfg, TimingFidelity::kPaper);
  const EnergyModel energy(cfg);
  return energy.layer_energy(sched.plan(alexnet_layer(i)),
                             timing.layer_time(alexnet_layer(i)));
}

TEST(Energy, AllComponentsPositive) {
  const EnergyReport e = layer_report(2);
  EXPECT_GT(e.laser, 0.0);
  EXPECT_GT(e.heater, 0.0);
  EXPECT_GT(e.input_dac, 0.0);
  EXPECT_GT(e.weight_dac, 0.0);
  EXPECT_GT(e.adc, 0.0);
  EXPECT_GT(e.sram, 0.0);
  EXPECT_GT(e.dram, 0.0);
}

TEST(Energy, TotalIsSumOfComponents) {
  const EnergyReport e = layer_report(1);
  EXPECT_NEAR(e.laser + e.heater + e.input_dac + e.weight_dac + e.adc + e.sram +
                  e.dram,
              e.total(), 1e-18);
}

TEST(Energy, PerMacIsTotalOverMacs) {
  const EnergyReport e = layer_report(3);
  const auto macs = alexnet_layer(3).macs();
  EXPECT_NEAR(e.total() / static_cast<double>(macs), e.per_mac(macs), 1e-24);
  EXPECT_DOUBLE_EQ(0.0, e.per_mac(0));
}

TEST(Energy, DacEnergyMatchesConversionCount) {
  const PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  const Scheduler sched(cfg);
  const auto plan = sched.plan(alexnet_layer(3));
  const EnergyReport e = layer_report(3);
  const double expected = cfg.input_dac.power *
                          static_cast<double>(plan.input_dac_conversions) /
                          cfg.input_dac.sample_rate;
  EXPECT_NEAR(expected, e.input_dac, expected * 1e-12);
}

TEST(Energy, DramEnergyMatchesTraffic) {
  const PcnnaConfig cfg = PcnnaConfig::paper_defaults();
  const Scheduler sched(cfg);
  const auto plan = sched.plan(alexnet_layer(0));
  const EnergyReport e = layer_report(0);
  const double bytes =
      static_cast<double>((plan.dram_read_words + plan.dram_write_words) * 2);
  EXPECT_NEAR(bytes * cfg.dram.energy_per_byte, e.dram, 1e-15);
}

TEST(Energy, NetworkEnergyCoversAllLayers) {
  const EnergyModel model(PcnnaConfig::paper_defaults());
  const auto reports =
      model.network_energy(nn::alexnet_conv_layers(), TimingFidelity::kPaper);
  ASSERT_EQ(5u, reports.size());
  for (const auto& e : reports) EXPECT_GT(e.total(), 0.0) << e.layer_name;
}

TEST(Energy, PerChannelAllocationCostsMoreAdcAndDram) {
  PcnnaConfig pc = PcnnaConfig::paper_defaults();
  pc.allocation = core::RingAllocation::kPerChannel;
  const EnergyReport full = layer_report(3);
  const EnergyReport per_channel = layer_report(3, pc);
  EXPECT_GT(per_channel.adc, full.adc);
  EXPECT_GT(per_channel.dram, full.dram);
}

TEST(Energy, PerMacIsInPlausibleAnalogAcceleratorBand) {
  // Sanity: between 0.01 pJ and 100 nJ per MAC for every AlexNet layer.
  for (std::size_t i = 0; i < 5; ++i) {
    const EnergyReport e = layer_report(i);
    const double per_mac = e.per_mac(alexnet_layer(i).macs());
    EXPECT_GT(per_mac, 0.01 * u::pJ) << i;
    EXPECT_LT(per_mac, 100.0 * u::nJ) << i;
  }
}

} // namespace
