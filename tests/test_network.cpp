// Network graph: shape inference, validation, reference forward pass.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/conv_ref.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using nn::Network;
using nn::Shape4;
using nn::Tensor;

TEST(Network, TracksShapesThroughOps) {
  Network net("t", Shape4{1, 3, 16, 16});
  net.add_conv({"c1", 16, 3, 1, 1, 3, 8});
  EXPECT_EQ((Shape4{1, 8, 16, 16}), net.output_shape());
  net.add_relu();
  EXPECT_EQ((Shape4{1, 8, 16, 16}), net.output_shape());
  net.add_maxpool(2, 2);
  EXPECT_EQ((Shape4{1, 8, 8, 8}), net.output_shape());
  net.add_fc(10);
  EXPECT_EQ((Shape4{1, 10, 1, 1}), net.output_shape());
}

TEST(Network, RejectsChannelMismatch) {
  Network net("t", Shape4{1, 3, 16, 16});
  EXPECT_THROW(net.add_conv({"bad", 16, 3, 1, 1, 4, 8}), Error);
}

TEST(Network, RejectsSpatialMismatch) {
  Network net("t", Shape4{1, 3, 16, 16});
  EXPECT_THROW(net.add_conv({"bad", 15, 3, 1, 1, 3, 8}), Error);
}

TEST(Network, RejectsBatchedInput) {
  EXPECT_THROW(Network("t", Shape4{2, 3, 8, 8}), Error);
}

TEST(Network, ConvLayersExtractsInOrder) {
  const Network net = nn::alexnet();
  const auto convs = net.conv_layers();
  ASSERT_EQ(5u, convs.size());
  EXPECT_EQ("conv1", convs[0].name);
  EXPECT_EQ("conv5", convs[4].name);
}

TEST(Network, ConvMacsMatchesSumOfLayers) {
  const Network net = nn::alexnet();
  std::uint64_t sum = 0;
  for (const auto& layer : net.conv_layers()) sum += layer.macs();
  EXPECT_EQ(sum, net.conv_macs());
  // Single-tower AlexNet conv stack is ~1.08G MACs (the grouped 2-GPU
  // variant would be ~666M; the paper uses the single-tower shapes).
  EXPECT_GT(net.conv_macs(), 1'000'000'000u);
  EXPECT_LT(net.conv_macs(), 1'150'000'000u);
}

TEST(Network, ForwardReferenceRunsTinyCnn) {
  const Network net = nn::tiny_cnn();
  Rng rng(3);
  const auto weights = nn::make_network_weights(net, rng);
  const Tensor input = nn::make_network_input(net, rng);
  const Tensor out = nn::forward_reference(net, weights, input);
  EXPECT_EQ(net.output_shape(), out.shape());
  // Softmax output sums to 1.
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) sum += out[i];
  EXPECT_NEAR(1.0, sum, 1e-9);
}

TEST(Network, ForwardReferenceMatchesManualChain) {
  Network net("manual", Shape4{1, 1, 4, 4});
  net.add_conv({"c", 4, 3, 1, 1, 1, 2}).add_relu().add_maxpool(2, 2);
  Rng rng(4);
  const auto weights = nn::make_network_weights(net, rng);
  const Tensor input = nn::make_network_input(net, rng);

  const Tensor manual = nn::maxpool2d(
      nn::relu(nn::conv2d_direct(input, weights.weight[0], weights.bias[0], 1, 1)),
      2, 2);
  const Tensor chained = nn::forward_reference(net, weights, input);
  EXPECT_LT(nn::max_abs_diff(manual, chained), 1e-15);
}

TEST(Network, ForwardRejectsWrongInputShape) {
  const Network net = nn::tiny_cnn();
  Rng rng(5);
  const auto weights = nn::make_network_weights(net, rng);
  Tensor bad(Shape4{1, 2, 9, 9});
  EXPECT_THROW(nn::forward_reference(net, weights, bad), Error);
}

TEST(Network, OpKindNames) {
  EXPECT_STREQ("conv", nn::op_kind_name(nn::OpKind::kConv));
  EXPECT_STREQ("softmax", nn::op_kind_name(nn::OpKind::kSoftmax));
}

TEST(Network, WeightCountIncludesFc) {
  Network net("t", Shape4{1, 1, 4, 4});
  net.add_conv({"c", 4, 3, 0, 1, 1, 2}); // 2*1*3*3 = 18 weights, out 2x2x2
  net.add_fc(5);                          // 5 * 8 = 40 weights
  EXPECT_EQ(58u, net.weight_count());
}

} // namespace
