// Waveguide propagation and broadcast losses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/units.hpp"
#include "photonics/waveguide.hpp"

namespace {

using namespace pcnna;
namespace u = units;

TEST(Waveguide, PropagationLossPerCm) {
  phot::WaveguideConfig cfg;
  cfg.propagation_loss_db_per_cm = 2.0;
  phot::Waveguide wg(cfg);
  EXPECT_NEAR(from_db(-2.0), wg.propagation_factor(1e-2), 1e-12);
  EXPECT_NEAR(from_db(-4.0), wg.propagation_factor(2e-2), 1e-12);
  EXPECT_DOUBLE_EQ(1.0, wg.propagation_factor(0.0));
}

TEST(Waveguide, BroadcastSplitsPowerEvenly) {
  phot::WaveguideConfig cfg;
  cfg.splitter_excess_loss_db = 0.0;
  phot::Waveguide wg(cfg);
  EXPECT_DOUBLE_EQ(1.0, wg.broadcast_factor(1));
  EXPECT_NEAR(0.5, wg.broadcast_factor(2), 1e-12);
  EXPECT_NEAR(0.25, wg.broadcast_factor(4), 1e-12);
  EXPECT_NEAR(1.0 / 96.0, wg.broadcast_factor(96), 1e-12);
}

TEST(Waveguide, BroadcastExcessLossPerStage) {
  phot::WaveguideConfig cfg;
  cfg.splitter_excess_loss_db = 0.1;
  phot::Waveguide wg(cfg);
  // 8-way = 3 stages -> 0.3 dB excess on top of the 1/8 split.
  EXPECT_NEAR(from_db(-0.3) / 8.0, wg.broadcast_factor(8), 1e-12);
  // Non-power-of-two rounds stages up: 5-way -> ceil(log2 5) = 3 stages.
  EXPECT_NEAR(from_db(-0.3) / 5.0, wg.broadcast_factor(5), 1e-12);
}

TEST(Waveguide, EnergyConservation) {
  // Total delivered power across outputs never exceeds the input.
  phot::Waveguide wg{phot::WaveguideConfig{}};
  for (std::size_t fanout : {1u, 2u, 3u, 16u, 96u, 384u}) {
    EXPECT_LE(wg.broadcast_factor(fanout) * static_cast<double>(fanout),
              1.0 + 1e-12)
        << fanout;
  }
}

TEST(Waveguide, RejectsBadArgs) {
  phot::Waveguide wg{phot::WaveguideConfig{}};
  EXPECT_THROW(wg.propagation_factor(-1.0), Error);
  EXPECT_THROW(wg.broadcast_factor(0), Error);
}

} // namespace
