// Kernel value-sparsity analysis.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sparsity.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using core::SparsityAnalyzer;
using core::SparsityStats;
using nn::Shape4;
using nn::Tensor;

TEST(Sparsity, DenseTensorHasZeroSparsity) {
  Tensor w(Shape4{2, 2, 3, 3});
  w.fill(0.5);
  const SparsityStats stats = SparsityAnalyzer().analyze(w);
  EXPECT_EQ(36u, stats.total_weights);
  EXPECT_EQ(36u, stats.nonzero_weights);
  EXPECT_DOUBLE_EQ(0.0, stats.sparsity);
  EXPECT_EQ(36u, stats.pruned_rings);
  EXPECT_EQ(18u, stats.max_nonzero_per_kernel * 1u); // 18 per kernel
}

TEST(Sparsity, AllZeroTensorIsFullySparse) {
  Tensor w(Shape4{2, 1, 2, 2});
  const SparsityStats stats = SparsityAnalyzer().analyze(w);
  EXPECT_DOUBLE_EQ(1.0, stats.sparsity);
  EXPECT_EQ(0u, stats.pruned_rings);
  EXPECT_EQ(0u, stats.pruned_rings_uniform);
}

TEST(Sparsity, CountsExactZerosPerKernel) {
  Tensor w(Shape4{2, 1, 2, 2}, {1.0, 0.0, 2.0, 0.0, /* kernel 1 */
                                0.0, 0.0, 0.0, 3.0 /* kernel 2 */});
  const SparsityStats stats = SparsityAnalyzer().analyze(w);
  EXPECT_EQ(3u, stats.nonzero_weights);
  EXPECT_EQ(2u, stats.max_nonzero_per_kernel);
  EXPECT_NEAR(5.0 / 8.0, stats.sparsity, 1e-12);
  // Uniform layout provisions the densest kernel for both: 2 * 2.
  EXPECT_EQ(4u, stats.pruned_rings_uniform);
  EXPECT_EQ(3u, stats.pruned_rings);
}

TEST(Sparsity, ThresholdPrunesSmallWeights) {
  Tensor w(Shape4{1, 1, 2, 2}, {0.05, -0.2, 0.009, 0.5});
  EXPECT_EQ(4u, SparsityAnalyzer(0.0).analyze(w).nonzero_weights);
  EXPECT_EQ(3u, SparsityAnalyzer(0.01).analyze(w).nonzero_weights);
  EXPECT_EQ(2u, SparsityAnalyzer(0.1).analyze(w).nonzero_weights);
  EXPECT_EQ(0u, SparsityAnalyzer(1.0).analyze(w).nonzero_weights);
}

TEST(Sparsity, SyntheticSparseGeneratorRoundTrips) {
  Rng rng(8);
  Tensor w(Shape4{8, 4, 3, 3});
  nn::fill_sparse_gaussian(w, rng, 1.0, 0.6);
  const SparsityStats stats = SparsityAnalyzer().analyze(w);
  EXPECT_NEAR(0.6, stats.sparsity, 0.1);
  EXPECT_LE(stats.pruned_rings, stats.pruned_rings_uniform);
  EXPECT_LE(stats.pruned_rings_uniform, stats.total_weights);
}

TEST(Sparsity, HeaterPowerSavedScalesWithPrunedRings) {
  const core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
  Tensor w(Shape4{1, 1, 2, 2}, {1.0, 0.0, 0.0, 0.0});
  const SparsityAnalyzer analyzer;
  const SparsityStats stats = analyzer.analyze(w);
  const double per_ring =
      0.5 * cfg.bank.ring.max_detuning / cfg.bank.ring.thermal_efficiency;
  EXPECT_NEAR(3.0 * per_ring, analyzer.heater_power_saved(cfg, stats), 1e-12);
}

TEST(Sparsity, EmptyTensorThrows) {
  EXPECT_THROW(SparsityAnalyzer().analyze(Tensor{}), Error);
  EXPECT_THROW(SparsityAnalyzer(-0.1), Error);
}

} // namespace
