// Golden CNN operators: hand-computed fixtures and cross-implementation
// agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

namespace {

using namespace pcnna;
using nn::Shape4;
using nn::Tensor;

Tensor identity_kernel_3x3() {
  // Single 3x3 kernel that picks the center pixel.
  Tensor w(Shape4{1, 1, 3, 3});
  w.at(0, 0, 1, 1) = 1.0;
  return w;
}

TEST(ConvRef, IdentityKernelReproducesInput) {
  Tensor x(Shape4{1, 1, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const Tensor y = nn::conv2d_direct(x, identity_kernel_3x3(), {}, 1, 1);
  ASSERT_EQ(x.shape(), y.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST(ConvRef, HandComputed2x2SumKernel) {
  // 3x3 input, 2x2 all-ones kernel, stride 1, no pad: each output is the sum
  // of its 2x2 window.
  Tensor x(Shape4{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w(Shape4{1, 1, 2, 2});
  w.fill(1.0);
  const Tensor y = nn::conv2d_direct(x, w, {}, 1, 0);
  ASSERT_EQ((Shape4{1, 1, 2, 2}), y.shape());
  EXPECT_DOUBLE_EQ(12.0, y.at(0, 0, 0, 0)); // 1+2+4+5
  EXPECT_DOUBLE_EQ(16.0, y.at(0, 0, 0, 1)); // 2+3+5+6
  EXPECT_DOUBLE_EQ(24.0, y.at(0, 0, 1, 0)); // 4+5+7+8
  EXPECT_DOUBLE_EQ(28.0, y.at(0, 0, 1, 1)); // 5+6+8+9
}

TEST(ConvRef, MultiChannelAccumulatesAcrossChannels) {
  Tensor x(Shape4{1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
  Tensor w(Shape4{1, 2, 1, 1}, {10.0, 100.0});
  const Tensor y = nn::conv2d_direct(x, w, {}, 1, 0);
  // 1*10 + 2*100 = 210 everywhere.
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(210.0, y[i]);
}

TEST(ConvRef, BiasIsAddedPerKernel) {
  Tensor x(Shape4{1, 1, 2, 2});
  x.fill(1.0);
  Tensor w(Shape4{2, 1, 1, 1}, {1.0, 2.0});
  Tensor b(Shape4{1, 2, 1, 1}, {0.5, -0.5});
  const Tensor y = nn::conv2d_direct(x, w, b, 1, 0);
  EXPECT_DOUBLE_EQ(1.5, y.at(0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(1.5, y.at(0, 1, 0, 0));
}

TEST(ConvRef, StrideSkipsLocations) {
  Tensor x(Shape4{1, 1, 5, 5});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const Tensor y = nn::conv2d_direct(x, identity_kernel_3x3(), {}, 2, 0);
  ASSERT_EQ((Shape4{1, 1, 2, 2}), y.shape());
  EXPECT_DOUBLE_EQ(x.at(0, 0, 1, 1), y.at(0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(x.at(0, 0, 1, 3), y.at(0, 0, 0, 1));
  EXPECT_DOUBLE_EQ(x.at(0, 0, 3, 3), y.at(0, 0, 1, 1));
}

TEST(ConvRef, PaddingReadsZeros) {
  Tensor x(Shape4{1, 1, 2, 2});
  x.fill(1.0);
  Tensor w(Shape4{1, 1, 3, 3});
  w.fill(1.0);
  const Tensor y = nn::conv2d_direct(x, w, {}, 1, 1);
  ASSERT_EQ((Shape4{1, 1, 2, 2}), y.shape());
  // Each output sees all four ones (corners of the padded window).
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(4.0, y[i]);
}

TEST(ConvRef, DirectAndIm2colAgreeOnRandomLayers) {
  Rng rng(5);
  const nn::ConvLayerParams cases[] = {
      {"a", 8, 3, 1, 1, 2, 4},
      {"b", 9, 5, 2, 2, 3, 2},
      {"c", 12, 1, 0, 1, 4, 8},
      {"d", 7, 7, 3, 3, 1, 1},
  };
  for (const auto& layer : cases) {
    const Tensor x = nn::make_input(layer, rng);
    const Tensor w = nn::make_conv_weights(layer, rng);
    const Tensor b = nn::make_conv_bias(layer, rng);
    const Tensor direct = nn::conv2d_direct(x, w, b, layer.s, layer.p);
    const Tensor gemm = nn::conv2d_im2col(x, w, b, layer.s, layer.p);
    EXPECT_LT(nn::max_abs_diff(direct, gemm), 1e-12) << layer.name;
  }
}

TEST(ConvRef, Im2colMatrixShape) {
  Tensor x(Shape4{1, 2, 4, 4});
  const Tensor cols = nn::im2col(x, 3, 1, 0);
  EXPECT_EQ((Shape4{1, 1, 2 * 3 * 3, 2 * 2}), cols.shape());
}

TEST(ConvRef, ReceptiveFieldMatchesIm2colColumn) {
  Rng rng(9);
  nn::ConvLayerParams layer{"rf", 6, 3, 1, 2, 2, 1};
  const Tensor x = nn::make_input(layer, rng);
  const Tensor cols = nn::im2col(x, layer.m, layer.s, layer.p);
  const std::size_t side = layer.output_side();
  for (std::size_t oy = 0; oy < side; ++oy) {
    for (std::size_t ox = 0; ox < side; ++ox) {
      const auto field = nn::receptive_field(x, layer.m, layer.s, layer.p, oy, ox);
      ASSERT_EQ(layer.kernel_size(), field.size());
      for (std::size_t r = 0; r < field.size(); ++r) {
        EXPECT_DOUBLE_EQ(cols.at(0, 0, r, oy * side + ox), field[r]);
      }
    }
  }
}

TEST(ConvRef, ReluClampsNegatives) {
  Tensor x(Shape4{1, 1, 1, 4}, {-1.0, 0.0, 2.0, -3.5});
  const Tensor y = nn::relu(x);
  EXPECT_DOUBLE_EQ(0.0, y[0]);
  EXPECT_DOUBLE_EQ(0.0, y[1]);
  EXPECT_DOUBLE_EQ(2.0, y[2]);
  EXPECT_DOUBLE_EQ(0.0, y[3]);
}

TEST(ConvRef, MaxPoolPicksWindowMax) {
  Tensor x(Shape4{1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<double>(i);
  const Tensor y = nn::maxpool2d(x, 2, 2);
  ASSERT_EQ((Shape4{1, 1, 2, 2}), y.shape());
  EXPECT_DOUBLE_EQ(5.0, y.at(0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(7.0, y.at(0, 0, 0, 1));
  EXPECT_DOUBLE_EQ(13.0, y.at(0, 0, 1, 0));
  EXPECT_DOUBLE_EQ(15.0, y.at(0, 0, 1, 1));
}

TEST(ConvRef, OverlappingMaxPoolAlexNetStyle) {
  // AlexNet pools 3x3 windows with stride 2: 55 -> 27.
  Tensor x(Shape4{1, 1, 55, 55});
  const Tensor y = nn::maxpool2d(x, 3, 2);
  EXPECT_EQ(27u, y.shape().h);
}

TEST(ConvRef, AvgPoolAverages) {
  Tensor x(Shape4{1, 1, 2, 2}, {1.0, 2.0, 3.0, 4.0});
  const Tensor y = nn::avgpool2d(x, 2, 2);
  EXPECT_DOUBLE_EQ(2.5, y.at(0, 0, 0, 0));
}

TEST(ConvRef, LrnNormalizesByNeighborEnergy) {
  Tensor x(Shape4{1, 3, 1, 1}, {1.0, 1.0, 1.0});
  const Tensor y = nn::lrn(x, 3, 1.0, 1.0, 0.0);
  // denom per channel: (0 + (1/3) * sum a^2)^1: edge channels see 2 ones,
  // middle sees 3.
  EXPECT_NEAR(1.0 / (2.0 / 3.0), y.at(0, 0, 0, 0), 1e-12);
  EXPECT_NEAR(1.0 / (3.0 / 3.0), y.at(0, 1, 0, 0), 1e-12);
  EXPECT_NEAR(1.0 / (2.0 / 3.0), y.at(0, 2, 0, 0), 1e-12);
}

TEST(ConvRef, LrnDefaultsLeaveValuesRoughlyIntact) {
  // With AlexNet constants (k=2) small activations barely change.
  Tensor x(Shape4{1, 4, 1, 1}, {0.1, 0.2, 0.3, 0.4});
  const Tensor y = nn::lrn(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(y[i], 0.0);
    EXPECT_LT(y[i], x[i]); // divides by > 1
    EXPECT_NEAR(x[i] / std::pow(2.0, 0.75), y[i], 0.05);
  }
}

TEST(ConvRef, FullyConnectedMatVec) {
  Tensor x(Shape4{1, 3, 1, 1}, {1.0, 2.0, 3.0});
  Tensor w(Shape4{2, 3, 1, 1}, {1, 0, 0, 0, 0, 1});
  Tensor b(Shape4{1, 2, 1, 1}, {10.0, 20.0});
  const Tensor y = nn::fully_connected(x, w, b);
  EXPECT_DOUBLE_EQ(11.0, y[0]);
  EXPECT_DOUBLE_EQ(23.0, y[1]);
}

TEST(ConvRef, SoftmaxSumsToOneAndOrders) {
  Tensor x(Shape4{1, 3, 1, 1}, {1.0, 2.0, 3.0});
  const Tensor y = nn::softmax(x);
  double sum = 0.0;
  for (std::size_t i = 0; i < 3; ++i) sum += y[i];
  EXPECT_NEAR(1.0, sum, 1e-12);
  EXPECT_LT(y[0], y[1]);
  EXPECT_LT(y[1], y[2]);
}

TEST(ConvRef, SoftmaxIsShiftInvariantAndStable) {
  Tensor a(Shape4{1, 2, 1, 1}, {1000.0, 1001.0});
  const Tensor y = nn::softmax(a);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_NEAR(1.0, y[0] + y[1], 1e-12);
}

TEST(ConvRef, ShapeMismatchesThrow) {
  Tensor x(Shape4{1, 2, 4, 4});
  Tensor w_bad_c(Shape4{1, 3, 3, 3});
  EXPECT_THROW(nn::conv2d_direct(x, w_bad_c, {}, 1, 0), pcnna::Error);
  Tensor w(Shape4{1, 2, 3, 3});
  Tensor b_bad(Shape4{1, 2, 1, 1});
  EXPECT_THROW(nn::conv2d_direct(x, w, b_bad, 1, 0), pcnna::Error);
  EXPECT_THROW(nn::max_abs_diff(x, Tensor(Shape4{1, 1, 4, 4})), pcnna::Error);
}

} // namespace
