// Math helpers.
#include <gtest/gtest.h>

#include <vector>

#include "common/mathutil.hpp"

namespace {

using namespace pcnna;

TEST(MathUtil, DbRoundTrip) {
  EXPECT_NEAR(3.0, to_db(from_db(3.0)), 1e-12);
  EXPECT_NEAR(0.5, from_db(to_db(0.5)), 1e-12);
  EXPECT_NEAR(10.0, from_db(10.0), 1e-12);
  EXPECT_NEAR(-3.0103, to_db(0.5), 1e-4);
}

TEST(MathUtil, DbmConversions) {
  EXPECT_NEAR(0.0, watts_to_dbm(1e-3), 1e-12);   // 1 mW = 0 dBm
  EXPECT_NEAR(10.0, watts_to_dbm(10e-3), 1e-12); // 10 mW = 10 dBm
  EXPECT_NEAR(1e-3, dbm_to_watts(0.0), 1e-15);
  EXPECT_NEAR(2e-3, dbm_to_watts(watts_to_dbm(2e-3)), 1e-15);
}

TEST(MathUtil, Clamp) {
  EXPECT_DOUBLE_EQ(1.0, clamp(5.0, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(0.0, clamp(-5.0, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(0.5, clamp(0.5, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(2.0, clamp(7.0, 2.0, 2.0));
}

TEST(MathUtil, Lerp) {
  EXPECT_DOUBLE_EQ(0.0, lerp(0.0, 10.0, 0.0));
  EXPECT_DOUBLE_EQ(10.0, lerp(0.0, 10.0, 1.0));
  EXPECT_DOUBLE_EQ(5.0, lerp(0.0, 10.0, 0.5));
}

TEST(MathUtil, RelativeError) {
  EXPECT_DOUBLE_EQ(0.0, relative_error(3.0, 3.0));
  EXPECT_NEAR(0.1, relative_error(9.0, 10.0), 1e-12);
  // Symmetric.
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), relative_error(10.0, 9.0));
  // Safe at zero.
  EXPECT_GE(relative_error(0.0, 0.0), 0.0);
}

TEST(MathUtil, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 0.01));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
}

TEST(MathUtil, MeanStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(2.5, mean(xs));
  EXPECT_NEAR(1.1180339887, stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(0.0, mean(std::vector<double>{}));
  EXPECT_DOUBLE_EQ(0.0, stddev(std::vector<double>{5.0}));
}

TEST(MathUtil, Rmse) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(0.0, rmse(a, b));
  const std::vector<double> c = {2.0, 3.0, 4.0};
  EXPECT_NEAR(1.0, rmse(a, c), 1e-12);
  const std::vector<double> d = {1.0, 2.0};
  EXPECT_THROW(rmse(a, d), pcnna::Error);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(0u, ceil_div(0, 10));
  EXPECT_EQ(1u, ceil_div(1, 10));
  EXPECT_EQ(1u, ceil_div(10, 10));
  EXPECT_EQ(2u, ceil_div(11, 10));
  EXPECT_EQ(116u, ceil_div(1152, 10)); // Eq. (8) worked example, ceiled
}

} // namespace
