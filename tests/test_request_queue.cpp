// RequestQueue: FIFO order, shutdown semantics, concurrent draining, and
// per-request seed derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "runtime/request_queue.hpp"

namespace {

using namespace pcnna;
using runtime::derive_request_seed;
using runtime::InferenceRequest;
using runtime::RequestQueue;

InferenceRequest make_request(std::uint64_t id) {
  InferenceRequest r;
  r.id = id;
  r.seed = derive_request_seed(7, id);
  return r;
}

TEST(RequestQueue, PopsInFifoOrder) {
  RequestQueue q;
  for (std::uint64_t id = 0; id < 5; ++id) q.push(make_request(id));
  EXPECT_EQ(5u, q.size());

  InferenceRequest out;
  for (std::uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(id, out.id);
  }
  EXPECT_EQ(0u, q.size());
}

TEST(RequestQueue, CloseDrainsThenExhausts) {
  RequestQueue q;
  q.push(make_request(0));
  q.push(make_request(1));
  q.close();
  EXPECT_TRUE(q.closed());

  InferenceRequest out;
  EXPECT_TRUE(q.pop(out));
  EXPECT_TRUE(q.pop(out));
  EXPECT_FALSE(q.pop(out)) << "closed and empty must report exhaustion";
}

TEST(RequestQueue, PushAfterCloseThrows) {
  RequestQueue q;
  q.close();
  EXPECT_THROW(q.push(make_request(0)), Error);
}

TEST(RequestQueue, TryPopDoesNotBlock) {
  RequestQueue q;
  InferenceRequest out;
  EXPECT_FALSE(q.try_pop(out));
  q.push(make_request(3));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(3u, out.id);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  RequestQueue q;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    InferenceRequest out;
    EXPECT_FALSE(q.pop(out));
    returned = true;
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(RequestQueue, ConcurrentConsumersPartitionTheStream) {
  constexpr std::uint64_t kRequests = 200;
  constexpr int kConsumers = 4;

  RequestQueue q;
  for (std::uint64_t id = 0; id < kRequests; ++id) q.push(make_request(id));
  q.close();

  std::vector<std::vector<std::uint64_t>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      InferenceRequest out;
      while (q.pop(out)) seen[c].push_back(out.id);
    });
  }
  for (std::thread& t : threads) t.join();

  // Every id consumed exactly once across all consumers.
  std::set<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& ids : seen) {
    total += ids.size();
    all.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(kRequests, total);
  EXPECT_EQ(kRequests, all.size());
}

TEST(RequestQueue, PopArrivedHonorsVirtualTime) {
  RequestQueue q;
  for (std::uint64_t id = 0; id < 3; ++id) {
    InferenceRequest r = make_request(id);
    r.arrival_time = static_cast<double>(id) * 1e-3; // 0, 1 ms, 2 ms
    q.push(std::move(r));
  }
  q.close();

  InferenceRequest out;
  double when = -1.0;
  ASSERT_TRUE(q.next_arrival(when));
  EXPECT_EQ(0.0, when);

  // At t = 1 ms exactly two requests have arrived (boundary inclusive).
  EXPECT_TRUE(q.pop_arrived(1e-3, out));
  EXPECT_EQ(0u, out.id);
  EXPECT_TRUE(q.pop_arrived(1e-3, out));
  EXPECT_EQ(1u, out.id);
  EXPECT_FALSE(q.pop_arrived(1e-3, out))
      << "request 2 is still in the virtual future at t = 1 ms";

  ASSERT_TRUE(q.next_arrival(when));
  EXPECT_EQ(2e-3, when);
  EXPECT_TRUE(q.pop_arrived(5e-3, out));
  EXPECT_EQ(2u, out.id);
  EXPECT_FALSE(q.next_arrival(when)) << "drained queue has no next arrival";
  EXPECT_FALSE(q.pop_arrived(1.0, out));
}

TEST(RequestQueue, RejectsOutOfOrderArrivals) {
  // The virtual-time interface peeks the FIFO front as the earliest
  // pending arrival, so an unsorted trace must be rejected at push() —
  // not silently corrupt admission.
  RequestQueue q;
  InferenceRequest r = make_request(0);
  r.arrival_time = 2e-3;
  q.push(std::move(r));

  InferenceRequest late = make_request(1);
  late.arrival_time = 1e-3; // earlier than the request already pushed
  EXPECT_THROW(q.push(std::move(late)), Error);

  // Equal timestamps are fine (nondecreasing, not strictly increasing).
  InferenceRequest tie = make_request(2);
  tie.arrival_time = 2e-3;
  EXPECT_NO_THROW(q.push(std::move(tie)));
}

TEST(RequestQueue, ShuffledTraceIsRejectedNotReordered) {
  // Regression: replaying a shuffled trace used to slip through and feed
  // the admission loop out-of-order timestamps.
  const std::vector<double> shuffled = {0.0, 3e-3, 1e-3, 2e-3};
  RequestQueue q;
  std::uint64_t id = 0;
  bool threw = false;
  try {
    for (double t : shuffled) {
      InferenceRequest r = make_request(id++);
      r.arrival_time = t;
      q.push(std::move(r));
    }
  } catch (const Error& e) {
    threw = true;
    EXPECT_NE(std::string::npos, std::string(e.what()).find("out-of-order"));
  }
  EXPECT_TRUE(threw);
  // The queue keeps only the prefix pushed before the violation.
  EXPECT_EQ(2u, q.size());
}

TEST(RequestQueue, OrderingPersistsAcrossPops) {
  // last-arrival tracking must survive the queue being drained: a push
  // that precedes an already-*popped* arrival is still out of order.
  RequestQueue q;
  InferenceRequest r = make_request(0);
  r.arrival_time = 5e-3;
  q.push(std::move(r));
  InferenceRequest out;
  ASSERT_TRUE(q.try_pop(out));

  InferenceRequest late = make_request(1);
  late.arrival_time = 1e-3;
  EXPECT_THROW(q.push(std::move(late)), Error);
}

TEST(PriorityClass, NamesAreExhaustive) {
  using runtime::PriorityClass;
  EXPECT_STREQ("interactive",
               runtime::priority_class_name(PriorityClass::kInteractive));
  EXPECT_STREQ("standard",
               runtime::priority_class_name(PriorityClass::kStandard));
  EXPECT_STREQ("best-effort",
               runtime::priority_class_name(PriorityClass::kBestEffort));
  EXPECT_THROW(runtime::priority_class_name(static_cast<PriorityClass>(99)),
               Error);
}

TEST(RequestSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(derive_request_seed(42, 0), derive_request_seed(42, 0));
  // Adjacent ids and adjacent base seeds map to distinct streams.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 100; ++id)
    seeds.insert(derive_request_seed(42, id));
  EXPECT_EQ(100u, seeds.size());
  EXPECT_NE(derive_request_seed(42, 5), derive_request_seed(43, 5));
}

} // namespace
