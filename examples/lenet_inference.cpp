// LeNet-5 inference entirely through the photonic functional simulator.
//
// Unlike alexnet_pipeline (which uses the analytical timing path), this
// example pushes every convolution MAC through the full photonic chain —
// DAC -> MZM -> microring banks -> balanced photodiodes -> ADC — under the
// paper-default impairments, and checks the classification against the
// golden CPU reference. Demonstrates that the analog error budget leaves a
// small CNN usable.
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

int main() {
  const nn::Network net = nn::lenet5();
  std::cout << "LeNet-5 through the photonic core (functional simulation)\n"
            << "  conv MACs: "
            << format_count(static_cast<double>(net.conv_macs())) << "\n\n";

  int agree = 0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + trial);
    const nn::NetWeights weights = nn::make_network_weights(net, rng);
    const nn::Tensor image = nn::make_network_input(net, rng);

    core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
    cfg.seed = 77 + trial;
    core::Accelerator acc(cfg);
    const auto report = acc.run(net, weights, image,
                                /*simulate_values=*/true,
                                /*compare_reference=*/true);

    std::size_t argmax = 0;
    for (std::size_t i = 1; i < report.output.size(); ++i)
      if (report.output[i] > report.output[argmax]) argmax = i;

    std::cout << "trial " << trial << ": predicted class " << argmax
              << ", output RMSE vs reference "
              << format_sci(report.output_rmse) << ", argmax "
              << (report.argmax_match ? "MATCHES" : "DIFFERS") << '\n';
    for (const auto& layer : report.conv_layers) {
      std::cout << "    " << layer.layer_name << ": rings "
                << layer.engine.rings_used << ", cal err "
                << format_sci(layer.engine.mean_calibration_error)
                << ", conv RMSE " << format_sci(layer.rmse_vs_reference)
                << '\n';
    }
    if (report.argmax_match) ++agree;
  }
  std::cout << "\nClassification agreement with the CPU reference: " << agree
            << "/" << kTrials << " trials\n";
  return agree == kTrials ? 0 : 1;
}
