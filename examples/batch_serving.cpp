// Batch serving demo: shard a stream of inference requests across a fleet
// of replicated photonic conv units.
//
// Walks the three layers of the runtime API:
//   1. build a model + a batch of inputs,
//   2. stand up a BatchRunner (N PCUs, double-buffered weight-bank
//      recalibration, per-request seeds derived from one base seed),
//   3. serve the batch, verify the fleet output against a single-PCU
//      sequential run bit for bit, and print the fleet report.
#include <iostream>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

int main() {
  // --- 1. A model and a small request stream. ---
  constexpr std::size_t kBatch = 8;
  const nn::Network net = nn::tiny_cnn();
  Rng rng(42);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  std::vector<nn::Tensor> inputs;
  for (std::size_t i = 0; i < kBatch; ++i)
    inputs.push_back(nn::make_network_input(net, rng));

  // --- 2. A fleet of 4 PCUs at paper-default hardware settings. ---
  runtime::BatchRunnerOptions options;
  options.num_pcus = 4;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = true; // full photonic functional simulation
  options.seed = 1;

  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();
  runtime::BatchRunner fleet(config, net, weights, options);

  // --- 3. Serve, cross-check against sequential, report. ---
  runtime::FleetReport report;
  const auto results = fleet.run(inputs, &report);

  runtime::BatchRunnerOptions solo = options;
  solo.num_pcus = 1;
  runtime::BatchRunner single(config, net, weights, solo);
  std::size_t identical = 0;
  for (std::size_t id = 0; id < results.size(); ++id)
    if (single.run_one(inputs[id], id).output == results[id].output)
      ++identical;

  runtime::BatchRunner::print_report(report, std::cout,
                                     "batch serving demo - " + net.name());
  std::cout << "\nbit-identical to sequential: " << identical << "/" << kBatch
            << " requests\n";
  return identical == kBatch ? 0 : 1;
}
