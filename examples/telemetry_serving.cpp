// Fleet telemetry demo: observe a multi-tenant SLO run without touching it.
//
// Attaches a runtime::Telemetry to a small EDF fleet serving an overloaded
// two-tenant stream, then:
//   1. runs the same stream with telemetry OFF and ON and checks the
//      schedules and functional outputs are bit-identical — the telemetry
//      layer observes, it never perturbs;
//   2. writes the Chrome trace-event JSON (pcnna_fleet_trace.json — open
//      it in Perfetto or chrome://tracing; validate and reconcile it with
//      scripts/trace_summary.py);
//   3. prints the head of the Prometheus text snapshot, including the
//      engine-phase counters (patches streamed, weight-bank passes,
//      DAC/ADC conversions) summed from the functional run.
//
// Exits nonzero if telemetry changed anything or recorded nothing.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/telemetry.hpp"

using namespace pcnna;

int main() {
  bool ok = true;
  constexpr std::size_t kPcus = 2;
  constexpr std::size_t kRequests = 48;

  const nn::Network net = nn::tiny_cnn();
  Rng rng(42);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = kPcus;
  options.fidelity = core::TimingFidelity::kFull;
  options.dispatch = runtime::DispatchPolicy::kEdf;
  options.shed_expired = true;
  options.seed = 7;

  // An overloaded two-tenant stream: interactive traffic with tight
  // deadlines over best-effort filler, so the trace shows queueing, EDF
  // reordering, and a few shed instants.
  std::vector<nn::Tensor> inputs;
  Rng in_rng(5);
  for (std::size_t i = 0; i < kRequests; ++i)
    inputs.push_back(nn::make_network_input(net, in_rng));

  double interval = 0.0, warmup = 0.0;
  {
    runtime::BatchRunner probe(config, net, weights, options);
    interval = probe.pool().pcu(0).request_interval_overlapped(0);
    warmup = probe.pool().pcu(0).warmup_time(0);
  }
  const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
      kRequests, 1.4 * static_cast<double>(kPcus) / interval, 2026);
  runtime::SloSchedule slos(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const bool interactive = i % 3 == 0;
    slos[i].tenant = interactive ? 0u : 1u;
    slos[i].priority = interactive ? runtime::PriorityClass::kInteractive
                                   : runtime::PriorityClass::kBestEffort;
    slos[i].deadline =
        arrivals[i] + warmup + (interactive ? 4.0 : 12.0) * interval;
  }

  const auto serve = [&](runtime::Telemetry* telemetry,
                         runtime::OpenLoopReport* report) {
    runtime::BatchRunnerOptions o = options;
    o.telemetry = telemetry;
    runtime::BatchRunner runner(config, net, weights, o);
    return runner.run_open_loop(inputs, arrivals, slos, report);
  };

  // --- 1. Observation, not perturbation. ---
  runtime::Telemetry telemetry;
  runtime::OpenLoopReport off_report, on_report;
  const auto off = serve(nullptr, &off_report);
  const auto on = serve(&telemetry, &on_report);
  for (std::size_t i = 0; i < off.size(); ++i) {
    if (!(off[i].output == on[i].output) || off[i].shed != on[i].shed) {
      std::cout << "FAIL: telemetry perturbed request " << i << "\n";
      ok = false;
    }
  }
  if (off_report.makespan != on_report.makespan ||
      off_report.shed_requests != on_report.shed_requests) {
    std::cout << "FAIL: telemetry perturbed the report\n";
    ok = false;
  }
  std::cout << "bit-identity: telemetry on/off outputs and report "
            << (ok ? "match" : "DO NOT match") << "\n\n";

  runtime::BatchRunner::print_report(on_report, std::cout,
                                     "telemetry serving demo");

  // --- 2. Chrome trace. ---
  const char* trace_path = "pcnna_fleet_trace.json";
  {
    std::ofstream out(trace_path);
    telemetry.write_chrome_trace(out);
  }
  std::cout << "\nwrote " << trace_path << " (" << telemetry.spans().size()
            << " spans; open in Perfetto, or run "
               "scripts/trace_summary.py on it)\n";
  if (telemetry.spans().empty()) {
    std::cout << "FAIL: no spans recorded\n";
    ok = false;
  }

  // --- 3. Prometheus snapshot head. ---
  std::ostringstream prom;
  telemetry.write_prometheus(prom);
  const std::string text = prom.str();
  std::cout << "\nPrometheus snapshot (first lines):\n";
  std::istringstream lines(text);
  std::string line;
  for (int shown = 0; shown < 12 && std::getline(lines, line); ++shown)
    std::cout << "  " << line << "\n";
  // The functional run must have recorded engine-phase work.
  if (text.find("pcnna_engine_bank_passes_total 0\n") != std::string::npos ||
      text.find("pcnna_engine_bank_passes_total") == std::string::npos) {
    std::cout << "FAIL: engine-phase counters missing or zero\n";
    ok = false;
  }

  std::cout << "\ntelemetry serving demo: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
