// Layer trace: event-by-event timeline of one AlexNet layer on PCNNA.
//
//   layer_trace [conv1|conv2|conv3|conv4|conv5] [--per-channel]
//               [--chrome-out PATH]
//
// Prints the event-driven schedule (weight programming, per-location DAC /
// optical / ADC / SRAM stages, concurrent DRAM streams) plus a busy-time
// summary per resource — the microscope view behind the Fig. 6 numbers.
// --chrome-out additionally writes the trace as Chrome trace-event JSON
// (one track per device resource) for Perfetto / chrome://tracing.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/format.hpp"
#include "common/report.hpp"
#include "core/trace.hpp"
#include "nn/models.hpp"

using namespace pcnna;

int main(int argc, char** argv) {
  std::string which = "conv3";
  std::string chrome_out;
  core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--per-channel") == 0) {
      cfg.allocation = core::RingAllocation::kPerChannel;
    } else if (std::strcmp(argv[i], "--chrome-out") == 0 && i + 1 < argc) {
      chrome_out = argv[++i];
    } else {
      which = argv[i];
    }
  }

  const auto layers = nn::alexnet_conv_layers();
  const nn::ConvLayerParams* layer = nullptr;
  for (const auto& candidate : layers) {
    if (candidate.name == which) layer = &candidate;
  }
  if (!layer) {
    std::cerr << "unknown layer '" << which
              << "' (expected conv1..conv5)\n";
    return 2;
  }

  const core::TraceSimulator sim(cfg);
  const core::LayerTrace trace = sim.trace_layer(*layer);

  std::cout << "PCNNA event trace - " << layer->name << " ("
            << core::ring_allocation_name(cfg.allocation)
            << " allocation)\n\n";
  trace.print(std::cout, 24);

  TextTable summary({"resource", "events", "busy time", "share of total"});
  using K = core::TraceEventKind;
  for (K kind : {K::kWeightLoad, K::kRingSettle, K::kDramRead, K::kInputDac,
                 K::kOpticalPass, K::kAdcSample, K::kSramStage,
                 K::kDramWrite}) {
    summary.add_row({core::trace_event_name(kind),
                     std::to_string(trace.count(kind)),
                     format_time(trace.busy(kind)),
                     format_fixed(100.0 * trace.busy(kind) / trace.total_time,
                                  1) +
                         " %"});
  }
  summary.print(std::cout, "\nBusy-time summary");
  std::cout << "\nTotal layer time: " << format_time(trace.total_time)
            << "  (weights programmed by "
            << format_time(trace.weight_load_end) << ", compute done by "
            << format_time(trace.compute_end) << ")\n";

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    core::write_chrome_trace(trace, out);
    std::cout << "\nwrote " << chrome_out
              << " (open in Perfetto or chrome://tracing; validate with "
                 "scripts/trace_summary.py)\n";
  }
  return 0;
}
