// AlexNet on PCNNA: the paper's evaluation workload, end to end.
//
// Runs the full AlexNet graph (conv stack + pools + LRN + FC + softmax)
// through the Accelerator. Conv layers are planned/timed/priced on the
// photonic core exactly as in SS IV-V: sequential layers, virtual core
// reuse, feature maps round-tripping through DRAM. Values are computed on
// the golden path here (simulate_values=false) so the example runs in
// seconds; flip the flag to push every MAC through the photonic models.
#include <iostream>

#include "common/format.hpp"
#include "common/report.hpp"
#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

int main() {
  Rng rng(1);
  const nn::Network net = nn::alexnet();
  std::cout << "Building synthetic AlexNet ("
            << format_count(static_cast<double>(net.weight_count()))
            << " parameters, "
            << format_count(static_cast<double>(net.conv_macs()))
            << " conv MACs)...\n";
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const nn::Tensor image = nn::make_network_input(net, rng);

  core::Accelerator acc(core::PcnnaConfig::paper_defaults(),
                        core::TimingFidelity::kPaper);
  const auto report = acc.run(net, weights, image,
                              /*simulate_values=*/false,
                              /*compare_reference=*/false);

  TextTable table({"layer", "locations", "PCNNA(O)", "PCNNA(O+E)",
                   "bottleneck", "energy", "energy/MAC"});
  const auto conv_layers = net.conv_layers();
  for (std::size_t i = 0; i < report.conv_layers.size(); ++i) {
    const auto& layer = report.conv_layers[i];
    table.add_row({layer.layer_name, std::to_string(layer.timing.locations),
                   format_time(layer.timing.optical_core_time),
                   format_time(layer.timing.full_system_time),
                   layer.timing.bottleneck,
                   format_energy(layer.energy.total()),
                   format_energy(layer.energy.per_mac(conv_layers[i].macs()))});
  }
  table.print(std::cout, "\nAlexNet conv stack on PCNNA (paper timing model)");

  std::cout << "\nTotals:\n"
            << "  optical core : " << format_time(report.total_optical_core_time)
            << "\n  full system  : " << format_time(report.total_full_system_time)
            << "\n  conv energy  : " << format_energy(report.total_energy)
            << "\n\nTop-5 class probabilities (synthetic weights, so arbitrary):\n";

  // Tiny top-k report over the softmax output.
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t i = 0; i < report.output.size(); ++i)
    scored.push_back({report.output[i], i});
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    [](auto a, auto b) { return a.first > b.first; });
  for (int i = 0; i < 5; ++i) {
    std::cout << "  class " << scored[i].second << " : "
              << format_fixed(scored[i].first * 100.0, 3) << " %\n";
  }
  return 0;
}
