// Design explorer: what-if analysis over the PCNNA hardware parameters.
//
// A small CLI for architects: pick the DAC count, fast-clock frequency, WDM
// channel budget, ring allocation and timing fidelity, and see the predicted
// per-layer execution time and energy for AlexNet (or VGG-16 / LeNet-5).
//
//   design_explorer [--network alexnet|vgg16|lenet5] [--ndac N]
//                   [--clock-ghz F] [--max-wavelengths N]
//                   [--allocation full|per-channel] [--fidelity paper|full]
//                   [--json]
//
// --json emits the same report as a machine-readable JSON document instead
// of tables (for sweeping this binary from scripts).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/format.hpp"
#include "common/json.hpp"
#include "common/report.hpp"
#include "common/units.hpp"
#include "core/energy_model.hpp"
#include "core/ring_count.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

using namespace pcnna;
namespace u = units;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--network alexnet|vgg16|lenet5] [--ndac N] [--clock-ghz F]"
               " [--max-wavelengths N] [--allocation full|per-channel]"
               " [--fidelity paper|full]\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  std::string network = "alexnet";
  core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
  core::TimingFidelity fidelity = core::TimingFidelity::kPaper;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      continue;
    }
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--network") {
      network = next();
    } else if (arg == "--ndac") {
      cfg.num_input_dacs = std::stoul(next());
    } else if (arg == "--clock-ghz") {
      cfg.fast_clock = std::stod(next()) * u::GHz;
    } else if (arg == "--max-wavelengths") {
      cfg.max_wavelengths = std::stoul(next());
    } else if (arg == "--allocation") {
      const std::string v = next();
      if (v == "full") {
        cfg.allocation = core::RingAllocation::kFullKernel;
      } else if (v == "per-channel") {
        cfg.allocation = core::RingAllocation::kPerChannel;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--fidelity") {
      const std::string v = next();
      if (v == "paper") {
        fidelity = core::TimingFidelity::kPaper;
      } else if (v == "full") {
        fidelity = core::TimingFidelity::kFull;
      } else {
        usage(argv[0]);
      }
    } else {
      usage(argv[0]);
    }
  }

  std::vector<nn::ConvLayerParams> layers;
  if (network == "alexnet") {
    layers = nn::alexnet_conv_layers();
  } else if (network == "vgg16") {
    layers = nn::vgg16_conv_layers();
  } else if (network == "lenet5") {
    layers = nn::lenet5_conv_layers();
  } else {
    usage(argv[0]);
  }

  cfg.validate();
  const core::TimingModel timing(cfg, fidelity);
  const core::RingCountModel rings;
  const core::Scheduler scheduler(cfg);
  const core::EnergyModel energy(cfg);

  if (json) {
    JsonWriter w(std::cout);
    w.begin_object();
    w.key("design_point").begin_object();
    w.kv("network", network)
        .kv("ndac", static_cast<std::uint64_t>(cfg.num_input_dacs))
        .kv("dac_rate_hz", cfg.input_dac.sample_rate)
        .kv("fast_clock_hz", cfg.fast_clock)
        .kv("max_wavelengths",
            static_cast<std::uint64_t>(cfg.max_wavelengths))
        .kv("allocation", core::ring_allocation_name(cfg.allocation))
        .kv("fidelity", core::timing_fidelity_name(fidelity));
    w.end_object();
    w.key("layers").begin_array();
    std::uint64_t max_rings_json = 0;
    for (const auto& layer : layers) {
      const auto plan = scheduler.plan(layer);
      const auto t = timing.layer_time(layer);
      const auto e = energy.layer_energy(plan, t);
      max_rings_json = std::max(max_rings_json, plan.rings_total);
      w.begin_object();
      w.kv("name", layer.name)
          .kv("rings", plan.rings_total)
          .kv("area_m2", rings.area(plan.rings_total))
          .kv("optical_core_s", t.optical_core_time)
          .kv("full_system_s", t.full_system_time)
          .kv("bottleneck", t.bottleneck)
          .kv("energy_j", e.total());
      w.end_object();
    }
    w.end_array();
    w.key("shared_core").begin_object();
    w.kv("rings", max_rings_json).kv("area_m2", rings.area(max_rings_json));
    w.end_object();
    w.end_object();
    w.finish();
    std::cout << '\n';
    return 0;
  }

  std::cout << "PCNNA design point: " << network << ", "
            << cfg.num_input_dacs << " input DACs @ "
            << format_freq(cfg.input_dac.sample_rate) << ", fast clock "
            << format_freq(cfg.fast_clock) << ", "
            << cfg.max_wavelengths << " WDM channels, "
            << core::ring_allocation_name(cfg.allocation) << " allocation, "
            << core::timing_fidelity_name(fidelity) << " timing model\n\n";

  TextTable table({"layer", "rings", "area", "PCNNA(O)", "PCNNA(O+E)",
                   "bottleneck", "energy"});
  double total_o = 0.0, total_oe = 0.0, total_e = 0.0;
  std::uint64_t max_rings = 0;
  for (const auto& layer : layers) {
    const auto plan = scheduler.plan(layer);
    const auto t = timing.layer_time(layer);
    const auto e = energy.layer_energy(plan, t);
    total_o += t.optical_core_time;
    total_oe += t.full_system_time;
    total_e += e.total();
    max_rings = std::max(max_rings, plan.rings_total);
    table.add_row({layer.name,
                   format_count(static_cast<double>(plan.rings_total)),
                   format_area(rings.area(plan.rings_total)),
                   format_time(t.optical_core_time),
                   format_time(t.full_system_time), t.bottleneck,
                   format_energy(e.total())});
  }
  table.print(std::cout);

  std::cout << "\nShared-core sizing (paper SS IV: one physical layer, "
               "virtually reused):\n"
            << "  rings needed : " << format_count(static_cast<double>(max_rings))
            << "  (" << format_area(rings.area(max_rings)) << ")\n"
            << "Totals: optical " << format_time(total_o) << ", full system "
            << format_time(total_oe) << ", energy " << format_energy(total_e)
            << '\n';
  return 0;
}
