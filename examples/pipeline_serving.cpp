// Pipeline-parallel serving demo: pin a model across a chain of PCUs.
//
// PCNNA's serving cost is dominated by weight-bank reprogramming, so a
// fleet that keeps swapping models between requests wastes most of its
// time retuning microrings. Pipeline groups remove the swap entirely:
// StagePartitioner splits the network into contiguous layer ranges, each
// stage PCU pins its range's banks once, and images stream through the
// chain — stage n of image i overlapping stage n-1 of image i+1.
//
// The demo:
//   1. builds two recalibration-heavy models on a 6-PCU fleet — a regime
//      where one PCU's banks hold one model at a time, so data-parallel
//      serving of the pair must reprogram constantly,
//   2. serves the same overloaded two-model stream three ways in virtual
//      time: least-loaded (swap-thrashing data parallelism), model
//      affinity (per-model home PCUs), and kPipeline with each model
//      pinned across its own 3-stage group,
//   3. prints the three OpenLoopReports — pipeline matches affinity's
//      zero-swap throughput and reports its stage spans / pin / hand-off
//      accounting,
//   4. runs a small functional batch through the pipeline and checks each
//      output is bit-identical to the sequential single-PCU reference
//      (stage hand-off carries the engine RNG state, so splitting layers
//      across chips never changes a single bit).
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

namespace {

/// Small feature maps (little ADC/DAC work) with many channels (big weight
/// banks): recalibration dominates, the regime pipelining targets.
nn::Network make_recal_heavy(const std::string& name) {
  nn::Network net(name, nn::Shape4{1, 64, 8, 8});
  net.add_conv({name + "_c1", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                /*nc=*/64, /*K=*/64})
      .add_relu();
  net.add_conv({name + "_c2", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                /*nc=*/64, /*K=*/64})
      .add_relu();
  net.add_conv({name + "_c3", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                /*nc=*/64, /*K=*/64});
  return net;
}

} // namespace

int main() {
  bool ok = true;
  constexpr std::size_t kPcus = 6;
  constexpr std::size_t kRequests = 3000;

  // --- 1. Two recal-heavy models and a work-balanced overload stream. ---
  const nn::Network model_a = make_recal_heavy("pipe_a");
  const nn::Network model_b = make_recal_heavy("pipe_b");
  Rng rng(42);
  const nn::NetWeights weights_a = nn::make_network_weights(model_a, rng);
  const nn::NetWeights weights_b = nn::make_network_weights(model_b, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = kPcus;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = false; // timing-only for the sweeps
  options.seed = 1;

  // Offered load: 1.3x what six swap-free PCUs could absorb.
  double interval = 0.0;
  {
    runtime::BatchRunner probe(config, model_a, weights_a, options);
    interval = probe.pool().pcu(0).request_interval_overlapped(0);
  }
  const double offered = 1.3 * static_cast<double>(kPcus) / interval;
  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, offered, 7);
  runtime::ModelSchedule models(kRequests, 0);
  Rng pick(11);
  for (std::size_t id = 0; id < kRequests; ++id)
    models[id] = pick.uniform() < 0.5 ? 0u : 1u;

  // --- 2. + 3. Serve the stream under the three policies. ---
  double ll_rps = 0.0, pipe_rps = 0.0;
  std::size_t ll_swaps = 0, pipe_swaps = 0;
  for (const runtime::DispatchPolicy policy :
       {runtime::DispatchPolicy::kLeastLoaded,
        runtime::DispatchPolicy::kModelAffinity,
        runtime::DispatchPolicy::kPipeline}) {
    runtime::BatchRunnerOptions popts = options;
    popts.dispatch = policy;
    runtime::BatchRunner runner(config, model_a, weights_a, popts);
    runner.register_model(model_b, weights_b);
    if (policy == runtime::DispatchPolicy::kPipeline) {
      // Each model pinned across its own 3-PCU chain. The partitioner
      // balances stages by channel_split_passes; here the three conv
      // layers are identical, so each stage pins exactly one.
      runner.build_pipeline(/*model=*/0, {0, 1, 2});
      runner.build_pipeline(/*model=*/1, {3, 4, 5});
    }
    const runtime::OpenLoopReport r =
        runner.simulate_open_loop(arrivals, {}, models);
    if (policy == runtime::DispatchPolicy::kLeastLoaded) {
      ll_rps = r.achieved_rps;
      ll_swaps = r.model_swaps;
    }
    if (policy == runtime::DispatchPolicy::kPipeline) {
      pipe_rps = r.achieved_rps;
      pipe_swaps = r.model_swaps;
    }
    runtime::BatchRunner::print_report(
        r, std::cout,
        std::string("pipeline serving demo - ") +
            runtime::dispatch_policy_name(policy));
    std::cout << "\n";
  }

  if (!(pipe_rps > ll_rps)) {
    std::cout << "FAIL: pipeline throughput (" << format_count(pipe_rps)
              << " req/s) does not beat swap-thrashing least-loaded ("
              << format_count(ll_rps) << " req/s)\n";
    ok = false;
  }
  if (pipe_swaps != 0 || ll_swaps == 0) {
    std::cout << "FAIL: swap counts off (pipeline " << pipe_swaps
              << ", least-loaded " << ll_swaps << ")\n";
    ok = false;
  }

  // --- 4. Functional bit-identity through the pipeline. ---
  {
    Rng in_rng(5);
    std::vector<nn::Tensor> inputs;
    for (std::size_t i = 0; i < 6; ++i)
      inputs.push_back(nn::make_network_input(model_a, in_rng));

    runtime::BatchRunnerOptions fopts = options;
    fopts.num_pcus = 3;
    fopts.simulate_values = true;
    fopts.dispatch = runtime::DispatchPolicy::kPipeline;
    runtime::BatchRunner piped(config, model_a, weights_a, fopts);
    piped.build_pipeline(/*model=*/0, {0, 1, 2});
    const auto results = piped.run_open_loop(
        inputs, runtime::ArrivalSchedule(inputs.size(), 0.0));

    runtime::BatchRunnerOptions sopts = options;
    sopts.num_pcus = 1;
    sopts.simulate_values = true;
    runtime::BatchRunner single(config, model_a, weights_a, sopts);
    for (std::size_t id = 0; id < inputs.size(); ++id) {
      if (!(single.run_one(inputs[id], id).output == results[id].output)) {
        std::cout << "FAIL: pipelined request " << id
                  << " differs from the sequential reference\n";
        ok = false;
      }
    }
    std::cout << "bit-identity: pipelined outputs "
              << (ok ? "match" : "DO NOT match")
              << " the sequential single-PCU reference\n";
  }

  std::cout << "\npipeline serving demo: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
