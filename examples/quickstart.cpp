// Quickstart: run one convolution layer on the PCNNA optical core.
//
// Shows the three layers of the public API on a small example:
//   1. describe the layer (nn::ConvLayerParams) and make synthetic data,
//   2. ask the analytical models what the hardware costs (rings, area,
//      execution time),
//   3. push actual values through the functional photonic simulator and
//      compare against the golden CPU convolution.
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/ring_count.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

int main() {
  // --- 1. A small conv layer: 16x16x4 input, eight 3x3 kernels. ---
  const nn::ConvLayerParams layer{"demo", /*n=*/16, /*m=*/3, /*p=*/1,
                                  /*s=*/1, /*nc=*/4, /*K=*/8};
  Rng rng(2024);
  const nn::Tensor input = nn::make_input(layer, rng);
  const nn::Tensor weights = nn::make_conv_weights(layer, rng);
  const nn::Tensor bias = nn::make_conv_bias(layer, rng);

  std::cout << "PCNNA quickstart - layer '" << layer.name << "': "
            << layer.n << "x" << layer.n << "x" << layer.nc << " input, "
            << layer.K << " kernels of " << layer.m << "x" << layer.m << "x"
            << layer.nc << "\n\n";

  // --- 2. Analytical hardware cost (paper Eqs. 4-8). ---
  const core::RingCountModel rings;
  std::cout << "Microrings (Eq. 4, no filtering) : "
            << format_count(static_cast<double>(rings.unfiltered(layer))) << '\n'
            << "Microrings (Eq. 5, filtered)     : "
            << format_count(static_cast<double>(rings.filtered(layer)))
            << "  (saving " << format_count(rings.savings_factor(layer))
            << " x)\n"
            << "Ring area at 25 um pitch         : "
            << format_area(rings.area(rings.filtered(layer))) << "\n";

  const core::TimingModel timing(core::PcnnaConfig::paper_defaults(),
                                 core::TimingFidelity::kPaper);
  const auto t = timing.layer_time(layer);
  std::cout << "Optical-core time (Eq. 7)        : "
            << format_time(t.optical_core_time) << "  (" << t.locations
            << " kernel locations at 5 GHz)\n"
            << "Full-system time (Eq. 8 bound)   : "
            << format_time(t.full_system_time) << "  (bottleneck: "
            << t.bottleneck << ")\n\n";

  // --- 3. Functional photonic simulation vs the golden CPU conv. ---
  core::OpticalConvEngine ideal(core::PcnnaConfig::ideal());
  core::OpticalConvEngine noisy(core::PcnnaConfig::paper_defaults());
  core::EngineStats stats;

  const nn::Tensor golden =
      nn::conv2d_direct(input, weights, bias, layer.s, layer.p);
  const nn::Tensor out_ideal =
      ideal.conv2d(input, weights, bias, layer.s, layer.p);
  const nn::Tensor out_noisy =
      noisy.conv2d(input, weights, bias, layer.s, layer.p, &stats);

  std::cout << "Functional simulation vs golden convolution:\n"
            << "  ideal optics  max |err| : "
            << format_sci(nn::max_abs_diff(out_ideal, golden)) << '\n'
            << "  paper optics  max |err| : "
            << format_sci(nn::max_abs_diff(out_noisy, golden))
            << "  (RIN + shot/thermal noise + 8b ADC)\n"
            << "  banks built             : " << stats.banks_built << '\n'
            << "  rings in mapping        : " << stats.rings_used << '\n'
            << "  mean calibration error  : "
            << format_sci(stats.mean_calibration_error) << '\n';

  std::cout << "\nDone. See examples/alexnet_pipeline.cpp for the paper's "
               "full workload.\n";
  return 0;
}
