// Heterogeneous fleet demo: mixed PCU specs and dispatch policies.
//
// Builds a skewed fleet — two paper-default "big" PCUs and two
// small_core() "small" ones (per-channel ring allocation, quarter WDM
// budget, 4 DACs) — and serves the same Poisson stream under every
// dispatch policy:
//   1. construct the fleet from a PcuSpec vector (per-PCU config, warmup
//      policy, capability tag),
//   2. sweep the three dispatch policies over one timing-only open loop
//      and print each OpenLoopReport with its per-PCU breakdown,
//   3. show the capability bar (channel split passes per PCU) that
//      capability-aware dispatch enforces,
//   4. run a small *functional* heterogeneous batch twice and verify the
//      PCU assignment and every output bit reproduce (exit code reflects
//      this and the p99 ordering earliest-free > capability-aware).
#include <iostream>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

int main() {
  // --- 1. A skewed fleet: 2 big + 2 small PCUs serving LeNet-5. ---
  const nn::Network net = nn::lenet5();
  Rng rng(2026);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);

  runtime::PcuSpec big;
  big.config = core::PcnnaConfig::paper_defaults();
  big.tag = "big";
  runtime::PcuSpec small;
  small.config = core::PcnnaConfig::small_core();
  small.warmup = runtime::WarmupPolicy::kPinnedAfterFirst; // keep-alive
  small.tag = "small";
  const std::vector<runtime::PcuSpec> specs = {big, big, small, small};

  runtime::BatchRunnerOptions options;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = false; // timing-only sweep
  options.seed = 1;

  // --- 3. The capability bar capability-aware dispatch enforces. ---
  bool ok = true;
  {
    runtime::BatchRunner probe(specs, net, weights, options);
    std::cout << "capability metric (channel split passes), fleet minimum "
              << probe.pool().min_split_passes() << ":\n";
    for (std::size_t p = 0; p < probe.pool().size(); ++p) {
      const runtime::Pcu& pcu = probe.pool().pcu(p);
      std::cout << "  PCU " << p << " [" << pcu.tag() << "]: "
                << pcu.channel_split_passes() << " passes, interval "
                << format_time(pcu.request_interval_overlapped()) << ", "
                << runtime::warmup_policy_name(pcu.warmup_policy()) << "\n";
    }
    std::cout << "\n";
  }

  // --- 2. One Poisson stream, three dispatch policies. ---
  double ef_p99 = 0.0, cap_p99 = 0.0;
  for (const runtime::DispatchPolicy policy : runtime::kAllDispatchPolicies) {
    runtime::BatchRunnerOptions popts = options;
    popts.dispatch = policy;
    runtime::BatchRunner fleet(specs, net, weights, popts);
    const double big_capacity =
        2.0 / fleet.pool().pcu(0).request_interval_overlapped();
    const runtime::OpenLoopReport report = fleet.simulate_open_loop(
        runtime::poisson_arrivals(2000, 0.4 * big_capacity, /*seed=*/7));
    runtime::BatchRunner::print_report(
        report, std::cout,
        std::string("mixed fleet - ") +
            runtime::dispatch_policy_name(policy));
    if (policy == runtime::DispatchPolicy::kEarliestFree)
      ef_p99 = report.latency.p99;
    if (policy == runtime::DispatchPolicy::kCapabilityAware)
      cap_p99 = report.latency.p99;
  }
  std::cout << "\ncapability-aware p99 " << format_time(cap_p99)
            << " vs earliest-free p99 " << format_time(ef_p99) << ": "
            << (cap_p99 < ef_p99 ? "skew routed around" : "NO IMPROVEMENT")
            << "\n";
  ok = ok && cap_p99 < ef_p99;

  // --- 4. Functional heterogeneous serving is deterministic. ---
  const nn::Network tiny = nn::tiny_cnn();
  Rng trng(11);
  const nn::NetWeights tweights = nn::make_network_weights(tiny, trng);
  std::vector<nn::Tensor> inputs;
  for (std::size_t i = 0; i < 8; ++i)
    inputs.push_back(nn::make_network_input(tiny, trng));

  runtime::PcuSpec tbig;
  tbig.config = core::PcnnaConfig::paper_defaults();
  tbig.tag = "big";
  runtime::PcuSpec tsmall;
  tsmall.config = core::PcnnaConfig::small_core();
  tsmall.tag = "small";

  runtime::BatchRunnerOptions fopts;
  fopts.simulate_values = true;
  fopts.dispatch = runtime::DispatchPolicy::kLeastLoaded;
  fopts.seed = 5;
  runtime::BatchRunner fleet_a({tbig, tsmall}, tiny, tweights, fopts);
  runtime::BatchRunner fleet_b({tbig, tsmall}, tiny, tweights, fopts);
  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(inputs.size(), 2000.0, 3);
  const auto out_a = fleet_a.run_open_loop(inputs, arrivals);
  const auto out_b = fleet_b.run_open_loop(inputs, arrivals);

  std::size_t reproduced = 0;
  for (std::size_t id = 0; id < out_a.size(); ++id)
    if (out_a[id].pcu_index == out_b[id].pcu_index &&
        out_a[id].output == out_b[id].output)
      ++reproduced;
  std::cout << "heterogeneous functional serving reproduced "
            << reproduced << "/" << out_a.size()
            << " (PCU assignment + output bits)\n";
  ok = ok && reproduced == out_a.size();

  return ok ? 0 : 1;
}
