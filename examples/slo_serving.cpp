// SLO-aware serving demo: a multi-tenant front door under overload.
//
// Walks the SLO-aware open-loop API end to end:
//   1. build a model and a two-tenant traffic mix — 20 % interactive with
//      a tight latency budget, 80 % best-effort with a loose one — and a
//      Poisson arrival stream at 1.3x of fleet capacity (deliberately past
//      saturation),
//   2. serve it twice in virtual time: once FIFO (earliest-free, no
//      shedding), once with the SLO-aware front door (class-partitioned
//      EDF admission + load shedding of requests that cannot meet their
//      deadline),
//   3. print both OpenLoopReports — the per-tenant table shows FIFO
//      dragging every tenant past its budget while EDF + shedding holds
//      the interactive tenant's SLO by sacrificing expired best-effort
//      work,
//   4. run a small functional batch with shedding enabled and show shed
//      requests coming back as id-only placeholders
//      (RequestResult::shed) while served outputs stay bit-identical to
//      the sequential reference,
//   5. re-run the overload with the elastic autoscaler enabled and report
//      the mean active fleet (exit code checks the SLO split and the
//      bit-identity).
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

namespace {

runtime::TenantBreakdown tenant_slice(const runtime::OpenLoopReport& report,
                                      std::uint32_t tenant) {
  for (const runtime::TenantBreakdown& t : report.per_tenant)
    if (t.tenant == tenant) return t;
  return {};
}

} // namespace

int main() {
  bool ok = true;

  // --- 1. Model, fleet, and a two-tenant overload stream. ---
  constexpr std::size_t kRequests = 4000;
  const nn::Network net = nn::lenet5();
  Rng rng(42);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = 4;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = false; // timing-only for the sweep
  options.seed = 1;

  runtime::BatchRunner fifo(config, net, weights, options);
  const double capacity = fifo.simulate_open_loop({}).fleet_capacity_rps;
  const double interval =
      fifo.pool().pcu(0).request_interval_overlapped();
  const double budget = fifo.pool().pcu(0).warmup_time() + 6.0 * interval;

  std::vector<runtime::TenantClass> mix(2);
  mix[0].tenant = 0;
  mix[0].priority = runtime::PriorityClass::kInteractive;
  mix[0].weight = 0.2;
  mix[0].slo_budget = budget;
  mix[1].tenant = 1;
  mix[1].priority = runtime::PriorityClass::kBestEffort;
  mix[1].weight = 0.8;
  mix[1].slo_budget = budget + 54.0 * interval;

  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 1.3 * capacity, /*seed=*/2718);
  const runtime::SloSchedule slos =
      runtime::assign_tenants(arrivals, mix, /*seed=*/99);

  std::cout << "fleet capacity " << format_count(capacity)
            << " req/s; offering 1.3 x as a two-tenant Poisson stream\n"
            << "interactive budget " << format_time(budget)
            << ", best-effort budget "
            << format_time(mix[1].slo_budget) << "\n\n";

  // --- 2./3. FIFO vs the SLO-aware front door, same stream. ---
  const runtime::OpenLoopReport fifo_report =
      fifo.simulate_open_loop(arrivals, slos);
  runtime::BatchRunner::print_report(
      fifo_report, std::cout, "FIFO earliest-free (no shedding) - overload");

  runtime::BatchRunnerOptions slo_options = options;
  slo_options.dispatch = runtime::DispatchPolicy::kEdf;
  slo_options.shed_expired = true;
  runtime::BatchRunner front_door(config, net, weights, slo_options);
  const runtime::OpenLoopReport slo_report =
      front_door.simulate_open_loop(arrivals, slos);
  std::cout << "\n";
  runtime::BatchRunner::print_report(
      slo_report, std::cout, "EDF + load shedding - same overload");

  const runtime::TenantBreakdown fifo_int = tenant_slice(fifo_report, 0);
  const runtime::TenantBreakdown slo_int = tenant_slice(slo_report, 0);
  std::cout << "\ninteractive p99: FIFO "
            << format_time(fifo_int.latency.p99) << " vs front door "
            << format_time(slo_int.latency.p99) << " (budget "
            << format_time(budget) << ")\n";
  if (!(slo_int.latency.p99 <= budget && slo_int.slo_attainment >= 0.95 &&
        fifo_int.latency.p99 > budget)) {
    std::cout << "UNEXPECTED: the front door did not hold the interactive "
                 "SLO where FIFO failed it\n";
    ok = false;
  }

  // --- 4. Functional shedding: placeholders + bit-identical survivors. ---
  {
    const nn::Network small = nn::tiny_cnn();
    Rng srng(7);
    const nn::NetWeights sweights = nn::make_network_weights(small, srng);
    std::vector<nn::Tensor> inputs;
    for (std::size_t i = 0; i < 8; ++i)
      inputs.push_back(nn::make_network_input(small, srng));

    runtime::BatchRunnerOptions fopts;
    fopts.num_pcus = 1;
    fopts.simulate_values = true;
    fopts.shed_expired = true;
    fopts.dispatch = runtime::DispatchPolicy::kEdf;
    fopts.seed = 5;
    runtime::BatchRunner shedder(config, small, sweights, fopts);

    // All 8 requests arrive at once with a budget only ~3 can meet on one
    // PCU, so the tail of the queue is shed at admission time.
    const double sinterval =
        shedder.pool().pcu(0).request_interval_overlapped();
    const double sbudget =
        shedder.pool().pcu(0).warmup_time() + 3.5 * sinterval;
    runtime::ArrivalSchedule burst(inputs.size(), 0.0);
    runtime::SloSchedule burst_slos;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      burst_slos.push_back({/*tenant=*/3,
                            runtime::PriorityClass::kStandard, sbudget});

    runtime::OpenLoopReport burst_report;
    const auto results =
        shedder.run_open_loop(inputs, burst, burst_slos, &burst_report);

    runtime::BatchRunnerOptions ref_opts = fopts;
    ref_opts.shed_expired = false;
    ref_opts.dispatch = runtime::DispatchPolicy::kEarliestFree;
    runtime::BatchRunner reference(config, small, sweights, ref_opts);
    std::size_t identical = 0;
    for (std::size_t id = 0; id < results.size(); ++id) {
      if (results[id].shed) continue;
      if (reference.run_one(inputs[id], id).output == results[id].output)
        ++identical;
    }
    std::cout << "functional burst: " << burst_report.served_requests
              << " served / " << burst_report.shed_requests
              << " shed; served outputs bit-identical to the sequential "
                 "reference: "
              << identical << "/" << burst_report.served_requests << "\n";
    if (burst_report.shed_requests == 0 ||
        identical != burst_report.served_requests)
      ok = false;
    for (const auto& r : results)
      if (r.shed && !r.output.empty()) ok = false;
  }

  // --- 5. Elastic sizing under the same overload. ---
  runtime::BatchRunnerOptions elastic_options = slo_options;
  elastic_options.autoscaler.enabled = true;
  elastic_options.autoscaler.min_active = 1;
  elastic_options.autoscaler.max_active = options.num_pcus;
  elastic_options.autoscaler.backlog_per_pcu = 2.0;
  elastic_options.autoscaler.shrink_after_idle = 16.0 * interval;
  runtime::BatchRunner elastic(config, net, weights, elastic_options);
  const runtime::OpenLoopReport elastic_report =
      elastic.simulate_open_loop(arrivals, slos);
  std::cout << "with the autoscaler on: mean active fleet "
            << format_fixed(elastic_report.autoscaler.mean_active, 2) << "/"
            << options.num_pcus << " PCUs ("
            << elastic_report.autoscaler.scale_ups << " scale-ups, "
            << elastic_report.autoscaler.scale_downs << " scale-downs)\n";

  std::cout << "\nchecks: " << (ok ? "PASS" : "FAIL")
            << " (SLO split under overload, shed placeholders, "
               "bit-identity)\n";
  return ok ? 0 : 1;
}
