// Fault-tolerant serving demo: a fleet that survives crashes and drift.
//
// Walks the fault-injection API end to end:
//   1. build a 4-PCU fleet and a Poisson arrival stream, then a seeded
//      crash-heavy Poisson fault timeline over the same horizon
//      (runtime::poisson_faults — deterministic in (fleet, model, seed)),
//   2. serve the stream twice in virtual time: once fault-blind (faults
//      strike but the dispatcher keeps routing to dead PCUs and nothing is
//      retried — every request a crash touches is permanently lost), once
//      with the full tolerance stack (health-aware dispatch, retry with
//      backoff, quarantine/repair),
//   3. print both OpenLoopReports — the fault tables show the blind run
//      bleeding requests while the tolerant run recovers nearly all of
//      them at a bounded retry-latency tail,
//   4. run a small functional batch against a hand-written crash trace and
//      show the crash victim re-executing bit-identically to the
//      sequential reference (same per-request seed), with permanently lost
//      requests coming back as placeholders (RequestResult::failed),
//   5. inject calibration drift with a shared core::PlanCache and show the
//      quarantine/repair cycle bumping the PCU configuration's
//      recalibration epoch (exit code checks all of the above).
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/planner.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/fault_plan.hpp"

using namespace pcnna;

int main() {
  bool ok = true;

  // --- 1. Fleet, arrival stream, and a crash-heavy fault timeline. ---
  constexpr std::size_t kRequests = 3000;
  const nn::Network net = nn::lenet5();
  Rng rng(42);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = 4;
  options.simulate_values = false; // timing-only for the sweep
  options.seed = 1;

  runtime::BatchRunner probe(config, net, weights, options);
  const double capacity = probe.simulate_open_loop({}).fleet_capacity_rps;
  const double interval = probe.pool().pcu(0).request_interval_overlapped();
  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kRequests, 0.7 * capacity, /*seed=*/2718);

  runtime::FaultModel hazard;
  hazard.mtbf = arrivals.back() / 4.0; // ~4 faults per PCU over the run
  hazard.horizon = arrivals.back();
  hazard.transient_weight = 1.0;
  hazard.degrade_weight = 1.0;
  hazard.crash_weight = 2.0;
  hazard.degrade_severity = 1.5;
  hazard.mean_time_to_repair = arrivals.back() / 20.0;
  const runtime::FaultSchedule faults =
      runtime::poisson_faults(options.num_pcus, hazard, /*seed=*/7);

  std::cout << "fleet capacity " << format_count(capacity)
            << " req/s; offering 0.7 x under " << faults.size()
            << " injected fault events (MTBF " << format_time(hazard.mtbf)
            << " per PCU)\n\n";

  // --- 2./3. Fault-blind vs the full tolerance stack, same timeline. ---
  runtime::BatchRunnerOptions blind_options = options;
  blind_options.faults.schedule = faults;
  blind_options.faults.health_aware = false;
  runtime::BatchRunner blind(config, net, weights, blind_options);
  const runtime::OpenLoopReport blind_report =
      blind.simulate_open_loop(arrivals);
  runtime::BatchRunner::print_report(blind_report, std::cout,
                                     "fault-blind serving");

  runtime::BatchRunnerOptions tolerant_options = options;
  tolerant_options.faults.schedule = faults;
  tolerant_options.faults.detection_latency = interval;
  tolerant_options.faults.retry.max_retries = 3;
  tolerant_options.faults.retry.backoff_base = 0.5 * interval;
  tolerant_options.faults.repair_time = 4.0 * interval;
  runtime::BatchRunner tolerant(config, net, weights, tolerant_options);
  const runtime::OpenLoopReport tolerant_report =
      tolerant.simulate_open_loop(arrivals);
  std::cout << "\n";
  runtime::BatchRunner::print_report(tolerant_report, std::cout,
                                     "health-aware + retry + quarantine");

  const double blind_served =
      static_cast<double>(blind_report.served_requests) /
      static_cast<double>(kRequests);
  const double tolerant_served =
      static_cast<double>(tolerant_report.served_requests) /
      static_cast<double>(kRequests);
  std::cout << "\nserved fraction: blind "
            << format_fixed(100.0 * blind_served, 2) << " % vs tolerant "
            << format_fixed(100.0 * tolerant_served, 2) << " % ("
            << tolerant_report.fault.recovered_requests
            << " requests recovered by retry)\n";
  if (!(blind_report.failed_requests > 0 && tolerant_served > blind_served &&
        tolerant_served >= 0.95)) {
    std::cout << "UNEXPECTED: the tolerance stack did not out-serve the "
                 "fault-blind baseline\n";
    ok = false;
  }

  // --- 4. Functional crash + retry: bit-identical re-execution. ---
  {
    const nn::Network small = nn::tiny_cnn();
    Rng srng(7);
    const nn::NetWeights sweights = nn::make_network_weights(small, srng);
    std::vector<nn::Tensor> inputs;
    for (std::size_t i = 0; i < 6; ++i)
      inputs.push_back(nn::make_network_input(small, srng));

    runtime::BatchRunnerOptions fopts;
    fopts.num_pcus = 1;
    fopts.simulate_values = true;
    fopts.seed = 5;
    runtime::BatchRunner reference(config, small, sweights, fopts);
    const double sinterval =
        reference.pool().pcu(0).request_interval_overlapped();
    const double warmup = reference.pool().pcu(0).warmup_time();

    // Crash the lone PCU mid-way through request 1's service; it recovers
    // two intervals later, so the victim retries and every request still
    // completes.
    runtime::BatchRunnerOptions copts = fopts;
    copts.faults.schedule = {
        {warmup + 1.5 * sinterval, 0, runtime::FaultKind::kCrash, 1.0},
        {warmup + 3.5 * sinterval, 0, runtime::FaultKind::kRecover, 1.0},
    };
    runtime::BatchRunner crashy(config, small, sweights, copts);

    runtime::OpenLoopReport crash_report;
    const auto results = crashy.run_open_loop(
        inputs, runtime::ArrivalSchedule(inputs.size(), 0.0), &crash_report);
    std::size_t identical = 0;
    for (std::size_t id = 0; id < results.size(); ++id) {
      if (results[id].failed) continue;
      if (reference.run_one(inputs[id], id).output == results[id].output)
        ++identical;
    }
    std::cout << "functional crash: " << crash_report.fault.crash_losses
              << " attempt(s) lost, " << crash_report.fault.recovered_requests
              << " request(s) recovered; served outputs bit-identical to "
                 "the sequential reference: "
              << identical << "/" << crash_report.served_requests << "\n";
    if (crash_report.fault.crash_losses == 0 ||
        crash_report.fault.recovered_requests == 0 ||
        identical != crash_report.served_requests)
      ok = false;
    for (const auto& r : results)
      if (r.failed && !r.output.empty()) ok = false;
  }

  // --- 5. Drift, quarantine, repair — and the plan cache epoch. ---
  {
    core::PlanCache cache;
    runtime::BatchRunnerOptions dopts = options;
    dopts.faults.schedule = {
        {10.0 * interval, 2, runtime::FaultKind::kDegrade, 2.0},
    };
    dopts.faults.detection_latency = interval;
    dopts.faults.repair_time = 4.0 * interval;
    dopts.faults.plan_cache = &cache;
    runtime::BatchRunner drifting(config, net, weights, dopts);
    const runtime::OpenLoopReport drift_report =
        drifting.simulate_open_loop(arrivals);
    const runtime::PcuHealthStats& h = drift_report.fault.per_pcu[2];
    std::cout << "drift on PCU 2: " << h.quarantines << " quarantine, "
              << h.repairs << " repair ("
              << format_time(drift_report.fault.repair_time)
              << " repair time), " << drift_report.fault.plan_epoch_bumps
              << " plan-cache epoch bump(s), availability "
              << format_fixed(100.0 * h.availability, 2) << " %\n";
    if (h.quarantines != 1 || h.repairs != 1 ||
        drift_report.fault.plan_epoch_bumps != 1 || h.availability >= 1.0)
      ok = false;
  }

  std::cout << "\nchecks: " << (ok ? "PASS" : "FAIL")
            << " (blind vs tolerant served fraction, bit-identical retry, "
               "quarantine/repair epoch bump)\n";
  return ok ? 0 : 1;
}
