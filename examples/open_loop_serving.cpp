// Open-loop serving demo: Poisson arrivals against a PCU fleet, with
// queueing delay charged in virtual time and the latency distribution
// reported.
//
// Walks the open-loop runtime API end to end:
//   1. build a model, a request batch, and a seeded Poisson arrival
//      schedule at 0.7x of fleet capacity,
//   2. serve it with BatchRunner::run_open_loop (full photonic functional
//      simulation; arrival times shape only the virtual-time schedule),
//   3. print the OpenLoopReport (p50/p99/p99.9 latency, queue depth,
//      per-PCU utilization, offered vs achieved throughput),
//   4. round-trip the schedule through the trace-file format and verify
//      the replay reproduces the report bitwise,
//   5. verify the fleet outputs are bit-identical to the sequential
//      single-PCU reference (exit code reflects both checks).
#include <iostream>
#include <sstream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

int main() {
  // --- 1. Model, inputs, and a Poisson arrival schedule. ---
  constexpr std::size_t kBatch = 24;
  const nn::Network net = nn::tiny_cnn();
  Rng rng(42);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  std::vector<nn::Tensor> inputs;
  for (std::size_t i = 0; i < kBatch; ++i)
    inputs.push_back(nn::make_network_input(net, rng));

  runtime::BatchRunnerOptions options;
  options.num_pcus = 4;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = true; // full photonic functional simulation
  options.seed = 1;

  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();
  runtime::BatchRunner fleet(config, net, weights, options);

  const double capacity = fleet.simulate_open_loop({}).fleet_capacity_rps;
  const runtime::ArrivalSchedule arrivals =
      runtime::poisson_arrivals(kBatch, 0.7 * capacity, /*seed=*/2718);
  std::cout << "fleet capacity " << format_count(capacity)
            << " req/s; offering 0.7 x as a Poisson stream\n\n";

  // --- 2./3. Serve the open-loop stream and report. ---
  runtime::OpenLoopReport report;
  const auto results = fleet.run_open_loop(inputs, arrivals, &report);
  runtime::BatchRunner::print_report(report, std::cout,
                                     "open-loop serving demo - " + net.name());

  // --- 4. Trace round trip: write, re-parse, re-simulate, compare. ---
  std::stringstream trace;
  runtime::write_arrival_trace(trace, arrivals);
  const runtime::ArrivalSchedule replay = runtime::parse_arrival_trace(trace);
  const runtime::OpenLoopReport replayed = fleet.simulate_open_loop(replay);
  const bool trace_ok = replay == arrivals &&
                        replayed.makespan == report.makespan &&
                        replayed.latency.p99 == report.latency.p99;
  std::cout << "\ntrace round trip reproduces the schedule: "
            << (trace_ok ? "yes" : "NO") << "\n";

  // --- 5. Bit-identity against the sequential single-PCU reference. ---
  runtime::BatchRunnerOptions solo = options;
  solo.num_pcus = 1;
  runtime::BatchRunner single(config, net, weights, solo);
  std::size_t identical = 0;
  for (std::size_t id = 0; id < results.size(); ++id)
    if (single.run_one(inputs[id], id).output == results[id].output)
      ++identical;
  std::cout << "bit-identical to sequential: " << identical << "/" << kBatch
            << " requests\n";

  return (identical == kBatch && trace_ok) ? 0 : 1;
}
