#include "nn/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace pcnna::nn {
namespace {

constexpr char kMagic[4] = {'P', 'C', 'N', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ofstream& out, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), 8);
}

std::uint64_t read_u64(std::ifstream& in) {
  unsigned char bytes[8];
  in.read(reinterpret_cast<char*>(bytes), 8);
  PCNNA_CHECK_MSG(in.good(), "tensor file truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

} // namespace

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("save_tensor: cannot open '" + path + "'");
  out.write(kMagic, 4);
  write_u64(out, kVersion);
  const Shape4& s = t.shape();
  write_u64(out, s.n);
  write_u64(out, s.c);
  write_u64(out, s.h);
  write_u64(out, s.w);
  for (double v : t.data()) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write_u64(out, bits);
  }
  if (!out) throw Error("save_tensor: write to '" + path + "' failed");
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_tensor: cannot open '" + path + "'");
  char magic[4];
  in.read(magic, 4);
  PCNNA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                  "'" << path << "' is not a PCNT tensor file");
  const std::uint64_t version = read_u64(in);
  PCNNA_CHECK_MSG(version == kVersion,
                  "'" << path << "': unsupported version " << version);
  Shape4 shape;
  shape.n = read_u64(in);
  shape.c = read_u64(in);
  shape.h = read_u64(in);
  shape.w = read_u64(in);
  PCNNA_CHECK_MSG(shape.elements() > 0 && shape.elements() < (1ull << 34),
                  "'" << path << "': implausible shape");
  std::vector<double> data(shape.elements());
  for (double& v : data) {
    const std::uint64_t bits = read_u64(in);
    std::memcpy(&v, &bits, 8);
  }
  return Tensor(shape, std::move(data));
}

void save_network_weights(const std::string& directory,
                          const std::string& prefix,
                          const NetWeights& weights) {
  for (std::size_t i = 0; i < weights.weight.size(); ++i) {
    if (weights.weight[i].empty()) continue;
    const std::string base = directory + "/" + prefix + "_";
    save_tensor(base + "w" + std::to_string(i) + ".pcnt", weights.weight[i]);
    if (!weights.bias[i].empty())
      save_tensor(base + "b" + std::to_string(i) + ".pcnt", weights.bias[i]);
  }
}

NetWeights load_network_weights(const std::string& directory,
                                const std::string& prefix,
                                const Network& net) {
  NetWeights weights;
  weights.weight.resize(net.ops().size());
  weights.bias.resize(net.ops().size());
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    const OpKind kind = net.ops()[i].kind;
    if (kind != OpKind::kConv && kind != OpKind::kFullyConnected) continue;
    const std::string base = directory + "/" + prefix + "_";
    weights.weight[i] = load_tensor(base + "w" + std::to_string(i) + ".pcnt");
    weights.bias[i] = load_tensor(base + "b" + std::to_string(i) + ".pcnt");
  }
  return weights;
}

} // namespace pcnna::nn
