#include "nn/network.hpp"

#include "nn/conv_ref.hpp"

namespace pcnna::nn {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kReLU: return "relu";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kAvgPool: return "avgpool";
    case OpKind::kLRN: return "lrn";
    case OpKind::kFullyConnected: return "fc";
    case OpKind::kSoftmax: return "softmax";
  }
  return "?";
}

Network::Network(std::string name, Shape4 input)
    : name_(std::move(name)), input_(input), current_(input) {
  PCNNA_CHECK_MSG(input.n == 1, "network input must have batch 1");
  PCNNA_CHECK(input.elements() > 0);
}

Network& Network::add_conv(ConvLayerParams params) {
  params.validate();
  PCNNA_CHECK_MSG(current_.h == current_.w,
                  "conv '" << params.name << "': running shape not square ("
                           << current_.h << "x" << current_.w << ")");
  PCNNA_CHECK_MSG(params.n == current_.h,
                  "conv '" << params.name << "': n=" << params.n
                           << " but running side is " << current_.h);
  PCNNA_CHECK_MSG(params.nc == current_.c,
                  "conv '" << params.name << "': nc=" << params.nc
                           << " but running channels are " << current_.c);
  const std::size_t side = params.output_side();
  current_ = Shape4{1, params.K, side, side};
  ops_.push_back(LayerOp{OpKind::kConv, std::move(params), {}, {}, {}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_relu() {
  ops_.push_back(LayerOp{OpKind::kReLU, {}, {}, {}, {}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_maxpool(std::size_t window, std::size_t stride) {
  PCNNA_CHECK(window > 0 && stride > 0);
  PCNNA_CHECK_MSG(current_.h >= window && current_.w >= window,
                  "maxpool window larger than running shape");
  current_.h = (current_.h - window) / stride + 1;
  current_.w = (current_.w - window) / stride + 1;
  ops_.push_back(LayerOp{OpKind::kMaxPool, {}, PoolOp{window, stride}, {}, {}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_avgpool(std::size_t window, std::size_t stride) {
  PCNNA_CHECK(window > 0 && stride > 0);
  PCNNA_CHECK_MSG(current_.h >= window && current_.w >= window,
                  "avgpool window larger than running shape");
  current_.h = (current_.h - window) / stride + 1;
  current_.w = (current_.w - window) / stride + 1;
  ops_.push_back(LayerOp{OpKind::kAvgPool, {}, PoolOp{window, stride}, {}, {}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_lrn(LrnOp op) {
  PCNNA_CHECK(op.size > 0);
  ops_.push_back(LayerOp{OpKind::kLRN, {}, {}, op, {}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_fc(std::size_t out) {
  PCNNA_CHECK(out > 0);
  current_ = Shape4{1, out, 1, 1};
  ops_.push_back(LayerOp{OpKind::kFullyConnected, {}, {}, {}, FcOp{out}});
  shapes_.push_back(current_);
  return *this;
}

Network& Network::add_softmax() {
  ops_.push_back(LayerOp{OpKind::kSoftmax, {}, {}, {}, {}});
  shapes_.push_back(current_);
  return *this;
}

Shape4 Network::shape_before(std::size_t op) const {
  PCNNA_CHECK_MSG(op <= ops_.size(), "op index " << op << " out of range");
  return op == 0 ? input_ : shapes_[op - 1];
}

Shape4 Network::shape_after(std::size_t op) const {
  PCNNA_CHECK_MSG(op < ops_.size(), "op index " << op << " out of range");
  return shapes_[op];
}

std::vector<ConvLayerParams> Network::conv_layers() const {
  std::vector<ConvLayerParams> layers;
  for (const LayerOp& op : ops_)
    if (op.kind == OpKind::kConv) layers.push_back(op.conv);
  return layers;
}

std::uint64_t Network::conv_macs() const {
  std::uint64_t total = 0;
  for (const LayerOp& op : ops_)
    if (op.kind == OpKind::kConv) total += op.conv.macs();
  return total;
}

std::uint64_t Network::weight_count() const {
  std::uint64_t total = 0;
  Shape4 shape = input_;
  for (const LayerOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kConv:
        total += op.conv.weight_count();
        shape = Shape4{1, op.conv.K, op.conv.output_side(), op.conv.output_side()};
        break;
      case OpKind::kMaxPool:
      case OpKind::kAvgPool:
        shape.h = (shape.h - op.pool.window) / op.pool.stride + 1;
        shape.w = (shape.w - op.pool.window) / op.pool.stride + 1;
        break;
      case OpKind::kFullyConnected:
        total += op.fc.out * shape.elements();
        shape = Shape4{1, op.fc.out, 1, 1};
        break;
      default:
        break;
    }
  }
  return total;
}

Tensor forward_reference(const Network& net, const NetWeights& weights,
                         const Tensor& input) {
  PCNNA_CHECK_MSG(input.shape() == net.input_shape(),
                  "input shape does not match network '" << net.name() << "'");
  PCNNA_CHECK(weights.weight.size() == net.ops().size());
  PCNNA_CHECK(weights.bias.size() == net.ops().size());

  Tensor x = input;
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    const LayerOp& op = net.ops()[i];
    switch (op.kind) {
      case OpKind::kConv:
        x = conv2d_direct(x, weights.weight[i], weights.bias[i], op.conv.s,
                          op.conv.p);
        break;
      case OpKind::kReLU:
        x = relu(x);
        break;
      case OpKind::kMaxPool:
        x = maxpool2d(x, op.pool.window, op.pool.stride);
        break;
      case OpKind::kAvgPool:
        x = avgpool2d(x, op.pool.window, op.pool.stride);
        break;
      case OpKind::kLRN:
        x = lrn(x, op.lrn.size, op.lrn.alpha, op.lrn.beta, op.lrn.k);
        break;
      case OpKind::kFullyConnected:
        x = fully_connected(x, weights.weight[i], weights.bias[i]);
        break;
      case OpKind::kSoftmax:
        x = softmax(x);
        break;
    }
  }
  return x;
}

} // namespace pcnna::nn
