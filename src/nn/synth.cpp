#include "nn/synth.hpp"

#include <cmath>

namespace pcnna::nn {

void fill_gaussian(Tensor& t, Rng& rng, double mean, double stddev) {
  for (double& v : t.data()) v = rng.normal(mean, stddev);
}

void fill_uniform(Tensor& t, Rng& rng, double lo, double hi) {
  for (double& v : t.data()) v = rng.uniform(lo, hi);
}

void fill_sparse_gaussian(Tensor& t, Rng& rng, double stddev, double sparsity) {
  PCNNA_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  for (double& v : t.data())
    v = rng.uniform() < sparsity ? 0.0 : rng.normal(0.0, stddev);
}

Tensor make_conv_weights(const ConvLayerParams& params, Rng& rng) {
  params.validate();
  Tensor w(Shape4{params.K, params.nc, params.m, params.m});
  const double stddev = std::sqrt(2.0 / static_cast<double>(params.kernel_size()));
  fill_gaussian(w, rng, 0.0, stddev);
  return w;
}

Tensor make_conv_bias(const ConvLayerParams& params, Rng& rng) {
  Tensor b(Shape4{1, params.K, 1, 1});
  fill_uniform(b, rng, -0.05, 0.05);
  return b;
}

Tensor make_input(const ConvLayerParams& params, Rng& rng) {
  params.validate();
  Tensor x(Shape4{1, params.nc, params.n, params.n});
  fill_uniform(x, rng, 0.0, 1.0);
  return x;
}

NetWeights make_network_weights(const Network& net, Rng& rng) {
  NetWeights w;
  w.weight.resize(net.ops().size());
  w.bias.resize(net.ops().size());

  Shape4 shape = net.input_shape();
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    const LayerOp& op = net.ops()[i];
    switch (op.kind) {
      case OpKind::kConv: {
        w.weight[i] = make_conv_weights(op.conv, rng);
        w.bias[i] = make_conv_bias(op.conv, rng);
        const std::size_t side = op.conv.output_side();
        shape = Shape4{1, op.conv.K, side, side};
        break;
      }
      case OpKind::kMaxPool:
      case OpKind::kAvgPool:
        shape.h = (shape.h - op.pool.window) / op.pool.stride + 1;
        shape.w = (shape.w - op.pool.window) / op.pool.stride + 1;
        break;
      case OpKind::kFullyConnected: {
        const std::size_t in = shape.elements();
        Tensor weight(Shape4{op.fc.out, in, 1, 1});
        const double stddev = std::sqrt(2.0 / static_cast<double>(in));
        fill_gaussian(weight, rng, 0.0, stddev);
        w.weight[i] = std::move(weight);
        Tensor bias(Shape4{1, op.fc.out, 1, 1});
        fill_uniform(bias, rng, -0.05, 0.05);
        w.bias[i] = std::move(bias);
        shape = Shape4{1, op.fc.out, 1, 1};
        break;
      }
      default:
        break;
    }
  }
  return w;
}

Tensor make_network_input(const Network& net, Rng& rng) {
  Tensor x(net.input_shape());
  fill_uniform(x, rng, 0.0, 1.0);
  return x;
}

} // namespace pcnna::nn
