// Tensor (de)serialization.
//
// A small binary container so experiments can persist synthetic weights and
// inputs and reload them bit-exactly across runs/machines:
//   magic "PCNT" | u32 version | 4 x u64 dims (n,c,h,w) | payload doubles
// All integers and doubles little-endian.
#pragma once

#include <string>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace pcnna::nn {

/// Write `t` to `path`; throws pcnna::Error on I/O failure.
void save_tensor(const std::string& path, const Tensor& t);

/// Read a tensor written by save_tensor; throws on missing file, bad magic,
/// version mismatch, or truncation.
Tensor load_tensor(const std::string& path);

/// Persist a network's weights as one file per parameterized op under
/// `directory` (created by the caller): <prefix>_w<i>.pcnt / _b<i>.pcnt.
void save_network_weights(const std::string& directory,
                          const std::string& prefix, const NetWeights& weights);

/// Reload weights written by save_network_weights for `net`.
NetWeights load_network_weights(const std::string& directory,
                                const std::string& prefix, const Network& net);

} // namespace pcnna::nn
