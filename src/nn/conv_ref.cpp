#include "nn/conv_ref.hpp"

#include <algorithm>
#include <cmath>

namespace pcnna::nn {
namespace {

std::size_t out_side(std::size_t in, std::size_t m, std::size_t stride,
                     std::size_t pad) {
  PCNNA_CHECK_MSG(in + 2 * pad >= m, "kernel larger than padded input");
  return (in + 2 * pad - m) / stride + 1;
}

void check_conv_args(const Tensor& input, const Tensor& weights,
                     const Tensor& bias, std::size_t stride) {
  PCNNA_CHECK_MSG(input.shape().n == 1, "batched inputs not supported");
  PCNNA_CHECK_MSG(weights.shape().c == input.shape().c,
                  "weight channels " << weights.shape().c
                                     << " != input channels " << input.shape().c);
  PCNNA_CHECK_MSG(weights.shape().h == weights.shape().w,
                  "only square kernels supported");
  PCNNA_CHECK(stride > 0);
  if (!bias.empty()) {
    PCNNA_CHECK_MSG(bias.shape().c == weights.shape().n &&
                        bias.shape().n == 1 && bias.shape().h == 1 &&
                        bias.shape().w == 1,
                    "bias must have shape [1, K, 1, 1]");
  }
}

} // namespace

Tensor conv2d_direct(const Tensor& input, const Tensor& weights,
                     const Tensor& bias, std::size_t stride, std::size_t pad) {
  check_conv_args(input, weights, bias, stride);
  const std::size_t C = input.shape().c;
  const std::size_t H = input.shape().h;
  const std::size_t W = input.shape().w;
  const std::size_t K = weights.shape().n;
  const std::size_t m = weights.shape().h;
  const std::size_t Ho = out_side(H, m, stride, pad);
  const std::size_t Wo = out_side(W, m, stride, pad);

  Tensor out(Shape4{1, K, Ho, Wo});
  for (std::size_t k = 0; k < K; ++k) {
    const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
    for (std::size_t oy = 0; oy < Ho; ++oy) {
      for (std::size_t ox = 0; ox < Wo; ++ox) {
        double acc = b;
        for (std::size_t c = 0; c < C; ++c) {
          for (std::size_t ky = 0; ky < m; ++ky) {
            // Signed arithmetic for the padded coordinate.
            const long long iy = static_cast<long long>(oy * stride + ky) -
                                 static_cast<long long>(pad);
            if (iy < 0 || iy >= static_cast<long long>(H)) continue;
            for (std::size_t kx = 0; kx < m; ++kx) {
              const long long ix = static_cast<long long>(ox * stride + kx) -
                                   static_cast<long long>(pad);
              if (ix < 0 || ix >= static_cast<long long>(W)) continue;
              acc += input.at(0, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix)) *
                     weights.at(k, c, ky, kx);
            }
          }
        }
        out.at(0, k, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor im2col(const Tensor& input, std::size_t m, std::size_t stride,
              std::size_t pad) {
  PCNNA_CHECK(input.shape().n == 1);
  const std::size_t C = input.shape().c;
  const std::size_t H = input.shape().h;
  const std::size_t W = input.shape().w;
  const std::size_t Ho = out_side(H, m, stride, pad);
  const std::size_t Wo = out_side(W, m, stride, pad);
  const std::size_t rows = C * m * m;
  const std::size_t cols = Ho * Wo;

  Tensor cols_t(Shape4{1, 1, rows, cols});
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t ky = 0; ky < m; ++ky) {
      for (std::size_t kx = 0; kx < m; ++kx) {
        const std::size_t r = (c * m + ky) * m + kx;
        for (std::size_t oy = 0; oy < Ho; ++oy) {
          const long long iy = static_cast<long long>(oy * stride + ky) -
                               static_cast<long long>(pad);
          for (std::size_t ox = 0; ox < Wo; ++ox) {
            const long long ix = static_cast<long long>(ox * stride + kx) -
                                 static_cast<long long>(pad);
            double v = 0.0;
            if (iy >= 0 && iy < static_cast<long long>(H) && ix >= 0 &&
                ix < static_cast<long long>(W)) {
              v = input.at(0, c, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix));
            }
            cols_t.at(0, 0, r, oy * Wo + ox) = v;
          }
        }
      }
    }
  }
  return cols_t;
}

Tensor conv2d_im2col(const Tensor& input, const Tensor& weights,
                     const Tensor& bias, std::size_t stride, std::size_t pad) {
  check_conv_args(input, weights, bias, stride);
  const std::size_t K = weights.shape().n;
  const std::size_t m = weights.shape().h;
  const std::size_t Ho = out_side(input.shape().h, m, stride, pad);
  const std::size_t Wo = out_side(input.shape().w, m, stride, pad);

  const Tensor cols = im2col(input, m, stride, pad);
  const std::size_t rows = cols.shape().h; // C*m*m
  const std::size_t locs = cols.shape().w; // Ho*Wo

  Tensor out(Shape4{1, K, Ho, Wo});
  for (std::size_t k = 0; k < K; ++k) {
    const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
    for (std::size_t l = 0; l < locs; ++l) {
      double acc = b;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += weights[k * rows + r] * cols.at(0, 0, r, l);
      }
      out[k * locs + l] = acc;
    }
  }
  return out;
}

std::vector<double> receptive_field(const Tensor& input, std::size_t m,
                                    std::size_t stride, std::size_t pad,
                                    std::size_t oy, std::size_t ox) {
  PCNNA_CHECK(input.shape().n == 1);
  const std::size_t C = input.shape().c;
  const std::size_t H = input.shape().h;
  const std::size_t W = input.shape().w;
  PCNNA_CHECK(oy < out_side(H, m, stride, pad));
  PCNNA_CHECK(ox < out_side(W, m, stride, pad));

  std::vector<double> field;
  field.reserve(C * m * m);
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t ky = 0; ky < m; ++ky) {
      const long long iy = static_cast<long long>(oy * stride + ky) -
                           static_cast<long long>(pad);
      for (std::size_t kx = 0; kx < m; ++kx) {
        const long long ix = static_cast<long long>(ox * stride + kx) -
                             static_cast<long long>(pad);
        double v = 0.0;
        if (iy >= 0 && iy < static_cast<long long>(H) && ix >= 0 &&
            ix < static_cast<long long>(W)) {
          v = input.at(0, c, static_cast<std::size_t>(iy),
                       static_cast<std::size_t>(ix));
        }
        field.push_back(v);
      }
    }
  }
  return field;
}

Tensor relu(const Tensor& input) {
  Tensor out = input;
  for (double& v : out.data()) v = std::max(0.0, v);
  return out;
}

namespace {

template <typename Reduce>
Tensor pool2d(const Tensor& input, std::size_t window, std::size_t stride,
              double init, Reduce reduce, bool average) {
  PCNNA_CHECK(input.shape().n == 1);
  PCNNA_CHECK(window > 0 && stride > 0);
  const std::size_t C = input.shape().c;
  const std::size_t H = input.shape().h;
  const std::size_t W = input.shape().w;
  PCNNA_CHECK(H >= window && W >= window);
  const std::size_t Ho = (H - window) / stride + 1;
  const std::size_t Wo = (W - window) / stride + 1;

  Tensor out(Shape4{1, C, Ho, Wo});
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t oy = 0; oy < Ho; ++oy) {
      for (std::size_t ox = 0; ox < Wo; ++ox) {
        double acc = init;
        for (std::size_t ky = 0; ky < window; ++ky) {
          for (std::size_t kx = 0; kx < window; ++kx) {
            acc = reduce(acc, input.at(0, c, oy * stride + ky, ox * stride + kx));
          }
        }
        if (average) acc /= static_cast<double>(window * window);
        out.at(0, c, oy, ox) = acc;
      }
    }
  }
  return out;
}

} // namespace

Tensor maxpool2d(const Tensor& input, std::size_t window, std::size_t stride) {
  return pool2d(
      input, window, stride, -std::numeric_limits<double>::infinity(),
      [](double a, double b) { return std::max(a, b); }, /*average=*/false);
}

Tensor avgpool2d(const Tensor& input, std::size_t window, std::size_t stride) {
  return pool2d(
      input, window, stride, 0.0, [](double a, double b) { return a + b; },
      /*average=*/true);
}

Tensor lrn(const Tensor& input, std::size_t size, double alpha, double beta,
           double k) {
  PCNNA_CHECK(input.shape().n == 1 && size > 0);
  const std::size_t C = input.shape().c;
  const std::size_t H = input.shape().h;
  const std::size_t W = input.shape().w;
  const long long half = static_cast<long long>(size / 2);

  Tensor out(input.shape());
  for (std::size_t c = 0; c < C; ++c) {
    const long long lo = std::max<long long>(0, static_cast<long long>(c) - half);
    const long long hi =
        std::min<long long>(static_cast<long long>(C) - 1,
                            static_cast<long long>(c) + half);
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t x = 0; x < W; ++x) {
        double sumsq = 0.0;
        for (long long j = lo; j <= hi; ++j) {
          const double a = input.at(0, static_cast<std::size_t>(j), y, x);
          sumsq += a * a;
        }
        const double denom =
            std::pow(k + alpha / static_cast<double>(size) * sumsq, beta);
        out.at(0, c, y, x) = input.at(0, c, y, x) / denom;
      }
    }
  }
  return out;
}

Tensor fully_connected(const Tensor& input, const Tensor& weights,
                       const Tensor& bias) {
  const std::size_t in = input.size();
  const std::size_t out_n = weights.shape().n;
  PCNNA_CHECK_MSG(weights.shape().c == in && weights.shape().h == 1 &&
                      weights.shape().w == 1,
                  "FC weights must be [out, in, 1, 1] with in == input size");
  if (!bias.empty()) PCNNA_CHECK(bias.size() == out_n);

  Tensor out(Shape4{1, out_n, 1, 1});
  for (std::size_t o = 0; o < out_n; ++o) {
    double acc = bias.empty() ? 0.0 : bias[o];
    for (std::size_t i = 0; i < in; ++i) acc += weights[o * in + i] * input[i];
    out[o] = acc;
  }
  return out;
}

Tensor softmax(const Tensor& input) {
  PCNNA_CHECK(!input.empty());
  Tensor out = input;
  const double mx = input.max();
  double sum = 0.0;
  for (double& v : out.data()) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : out.data()) v /= sum;
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  PCNNA_CHECK(a.shape() == b.shape());
  double mx = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    mx = std::max(mx, std::abs(a[i] - b[i]));
  return mx;
}

} // namespace pcnna::nn
