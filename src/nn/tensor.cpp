#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace pcnna::nn {

double Tensor::min() const {
  PCNNA_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Tensor::max() const {
  PCNNA_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::abs_max() const {
  PCNNA_CHECK(!data_.empty());
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

} // namespace pcnna::nn
