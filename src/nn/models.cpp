#include "nn/models.hpp"

namespace pcnna::nn {

std::vector<ConvLayerParams> alexnet_conv_layers() {
  // Single-tower AlexNet on a 224x224x3 input, matching the paper's worked
  // numbers (conv1: 96 kernels of 11x11x3; conv4 holds the most weights).
  return {
      {"conv1", /*n=*/224, /*m=*/11, /*p=*/2, /*s=*/4, /*nc=*/3, /*K=*/96},
      {"conv2", /*n=*/27, /*m=*/5, /*p=*/2, /*s=*/1, /*nc=*/96, /*K=*/256},
      {"conv3", /*n=*/13, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/256, /*K=*/384},
      {"conv4", /*n=*/13, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/384, /*K=*/384},
      {"conv5", /*n=*/13, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/384, /*K=*/256},
  };
}

Network alexnet() {
  const auto conv = alexnet_conv_layers();
  Network net("alexnet", Shape4{1, 3, 224, 224});
  net.add_conv(conv[0]).add_relu().add_lrn().add_maxpool(3, 2);
  net.add_conv(conv[1]).add_relu().add_lrn().add_maxpool(3, 2);
  net.add_conv(conv[2]).add_relu();
  net.add_conv(conv[3]).add_relu();
  net.add_conv(conv[4]).add_relu().add_maxpool(3, 2);
  net.add_fc(4096).add_relu();
  net.add_fc(4096).add_relu();
  net.add_fc(1000).add_softmax();
  return net;
}

std::vector<ConvLayerParams> lenet5_conv_layers() {
  return {
      {"c1", /*n=*/32, /*m=*/5, /*p=*/0, /*s=*/1, /*nc=*/1, /*K=*/6},
      {"c3", /*n=*/14, /*m=*/5, /*p=*/0, /*s=*/1, /*nc=*/6, /*K=*/16},
      {"c5", /*n=*/5, /*m=*/5, /*p=*/0, /*s=*/1, /*nc=*/16, /*K=*/120},
  };
}

Network lenet5() {
  const auto conv = lenet5_conv_layers();
  Network net("lenet5", Shape4{1, 1, 32, 32});
  net.add_conv(conv[0]).add_relu().add_avgpool(2, 2);
  net.add_conv(conv[1]).add_relu().add_avgpool(2, 2);
  net.add_conv(conv[2]).add_relu();
  net.add_fc(84).add_relu();
  net.add_fc(10).add_softmax();
  return net;
}

std::vector<ConvLayerParams> vgg16_conv_layers() {
  return {
      {"conv1_1", 224, 3, 1, 1, 3, 64},    {"conv1_2", 224, 3, 1, 1, 64, 64},
      {"conv2_1", 112, 3, 1, 1, 64, 128},  {"conv2_2", 112, 3, 1, 1, 128, 128},
      {"conv3_1", 56, 3, 1, 1, 128, 256},  {"conv3_2", 56, 3, 1, 1, 256, 256},
      {"conv3_3", 56, 3, 1, 1, 256, 256},  {"conv4_1", 28, 3, 1, 1, 256, 512},
      {"conv4_2", 28, 3, 1, 1, 512, 512},  {"conv4_3", 28, 3, 1, 1, 512, 512},
      {"conv5_1", 14, 3, 1, 1, 512, 512},  {"conv5_2", 14, 3, 1, 1, 512, 512},
      {"conv5_3", 14, 3, 1, 1, 512, 512},
  };
}

Network vgg16() {
  const auto conv = vgg16_conv_layers();
  Network net("vgg16", Shape4{1, 3, 224, 224});
  net.add_conv(conv[0]).add_relu();
  net.add_conv(conv[1]).add_relu().add_maxpool(2, 2);
  net.add_conv(conv[2]).add_relu();
  net.add_conv(conv[3]).add_relu().add_maxpool(2, 2);
  net.add_conv(conv[4]).add_relu();
  net.add_conv(conv[5]).add_relu();
  net.add_conv(conv[6]).add_relu().add_maxpool(2, 2);
  net.add_conv(conv[7]).add_relu();
  net.add_conv(conv[8]).add_relu();
  net.add_conv(conv[9]).add_relu().add_maxpool(2, 2);
  net.add_conv(conv[10]).add_relu();
  net.add_conv(conv[11]).add_relu();
  net.add_conv(conv[12]).add_relu().add_maxpool(2, 2);
  net.add_fc(4096).add_relu();
  net.add_fc(4096).add_relu();
  net.add_fc(1000).add_softmax();
  return net;
}

std::vector<ConvLayerParams> resnet18_conv_layers() {
  std::vector<ConvLayerParams> layers;
  layers.push_back({"conv1", 224, 7, 3, 2, 3, 64}); // stem -> 112, pool -> 56
  // Stage 1: two basic blocks at 56x56x64.
  for (int i = 0; i < 4; ++i)
    layers.push_back({"l1_b" + std::to_string(i / 2) + "_c" +
                          std::to_string(i % 2 + 1),
                      56, 3, 1, 1, 64, 64});
  // Stages 2-4: first block strides down and doubles channels, with a 1x1
  // projection on the shortcut; second block is plain.
  struct Stage {
    const char* name;
    std::uint64_t in_side, in_ch, out_ch;
  };
  const Stage stages[] = {{"l2", 56, 64, 128},
                          {"l3", 28, 128, 256},
                          {"l4", 14, 256, 512}};
  for (const Stage& s : stages) {
    const std::string p(s.name);
    const std::uint64_t out_side = s.in_side / 2;
    layers.push_back({p + "_b0_c1", s.in_side, 3, 1, 2, s.in_ch, s.out_ch});
    layers.push_back({p + "_b0_c2", out_side, 3, 1, 1, s.out_ch, s.out_ch});
    layers.push_back({p + "_b0_ds", s.in_side, 1, 0, 2, s.in_ch, s.out_ch});
    layers.push_back({p + "_b1_c1", out_side, 3, 1, 1, s.out_ch, s.out_ch});
    layers.push_back({p + "_b1_c2", out_side, 3, 1, 1, s.out_ch, s.out_ch});
  }
  return layers;
}

Network tiny_cnn() {
  Network net("tiny_cnn", Shape4{1, 2, 8, 8});
  net.add_conv({"t1", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/2, /*K=*/4})
      .add_relu()
      .add_maxpool(2, 2);
  net.add_conv({"t2", /*n=*/4, /*m=*/3, /*p=*/0, /*s=*/1, /*nc=*/4, /*K=*/8})
      .add_relu();
  net.add_fc(10).add_softmax();
  return net;
}

} // namespace pcnna::nn
