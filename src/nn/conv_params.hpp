// Convolution-layer parameter algebra — Table I and Eqs. (1)-(3), (6) of the
// PCNNA paper.
//
// The paper works with square-face volumes: an input feature map of shape
// n x n x nc convolved with K kernels of shape m x m x nc, padding p and
// stride s. All the paper's analytical results (ring counts, execution
// times) are derived from these few quantities, so this struct is the single
// source of truth for them throughout the library.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace pcnna::nn {

/// Parameters of one square convolution layer (paper Table I).
struct ConvLayerParams {
  std::string name;     ///< e.g. "conv1"
  std::uint64_t n = 0;  ///< input feature map height and width
  std::uint64_t m = 0;  ///< kernel height and width
  std::uint64_t p = 0;  ///< padding size
  std::uint64_t s = 1;  ///< stride step size
  std::uint64_t nc = 0; ///< input feature map number of channels
  std::uint64_t K = 0;  ///< number of kernels (output channels)

  /// Throws pcnna::Error if the shape is degenerate (zero dims, kernel
  /// larger than the padded input, zero stride).
  void validate() const {
    PCNNA_CHECK_MSG(n > 0 && m > 0 && nc > 0 && K > 0 && s > 0,
                    "layer '" << name << "': all of n,m,nc,K,s must be > 0");
    PCNNA_CHECK_MSG(n + 2 * p >= m, "layer '" << name
                                              << "': kernel larger than padded input");
  }

  /// Eq. (1): Ninput = n * n * nc.
  std::uint64_t input_size() const { return n * n * nc; }

  /// Eq. (2): Nkernel = m * m * nc.
  std::uint64_t kernel_size() const { return m * m * nc; }

  /// Output feature-map side length: floor((n + 2p - m) / s) + 1.
  std::uint64_t output_side() const {
    validate();
    return (n + 2 * p - m) / s + 1;
  }

  /// Eq. (3): Noutput = output_side()^2 * K.
  std::uint64_t output_size() const { return output_side() * output_side() * K; }

  /// Eq. (6): Nlocs = Noutput / K = output_side()^2 — the number of distinct
  /// kernel locations over the input feature map.
  std::uint64_t num_locations() const { return output_side() * output_side(); }

  /// Total learned weights in the layer: K * Nkernel.
  std::uint64_t weight_count() const { return K * kernel_size(); }

  /// Multiply-accumulate operations for a full forward pass of the layer:
  /// one MAC per weight per kernel location.
  std::uint64_t macs() const { return num_locations() * weight_count(); }

  /// Fresh input values that must reach the optical core per kernel location
  /// after the first (paper SS V-B): nc * m * s per step of the sliding
  /// window; the remaining values are already buffered.
  std::uint64_t updated_inputs_per_location() const { return nc * m * s; }

  bool operator==(const ConvLayerParams&) const = default;
};

} // namespace pcnna::nn
