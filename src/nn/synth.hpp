// Synthetic weight and input generation.
//
// The paper evaluates timing/area analytically, not accuracy, so there is no
// pretrained-weight dependency; our functional simulation instead verifies
// MAC fidelity against the golden CPU path using seeded synthetic data
// (DESIGN.md substitution table).
#pragma once

#include "common/rng.hpp"
#include "nn/conv_params.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace pcnna::nn {

/// Fill with N(mean, stddev) samples.
void fill_gaussian(Tensor& t, Rng& rng, double mean, double stddev);

/// Fill with U[lo, hi) samples.
void fill_uniform(Tensor& t, Rng& rng, double lo, double hi);

/// Fill with N(0, stddev) samples, then zero each element independently with
/// probability `sparsity` (models pruned/sparse kernels).
void fill_sparse_gaussian(Tensor& t, Rng& rng, double stddev, double sparsity);

/// Random conv kernel bank [K, nc, m, m] with He-style scaling
/// stddev = sqrt(2 / Nkernel) — keeps activations O(1) through deep stacks.
Tensor make_conv_weights(const ConvLayerParams& params, Rng& rng);

/// Random bias [1, K, 1, 1], small uniform values.
Tensor make_conv_bias(const ConvLayerParams& params, Rng& rng);

/// Random input feature map [1, nc, n, n] with values in [0, 1) — the
/// post-ReLU, normalized regime the photonic input modulators expect.
Tensor make_input(const ConvLayerParams& params, Rng& rng);

/// Random weights/biases for every parameterized op of a network.
NetWeights make_network_weights(const Network& net, Rng& rng);

/// Random input for a network, values in [0, 1).
Tensor make_network_input(const Network& net, Rng& rng);

} // namespace pcnna::nn
