// Golden CPU reference implementations of the CNN operators.
//
// Two independent convolution implementations (direct sliding-window and
// im2col + matmul) cross-check each other in tests and serve as the
// numerical ground truth for the photonic MAC path.
#pragma once

#include <cstddef>

#include "nn/conv_params.hpp"
#include "nn/tensor.hpp"

namespace pcnna::nn {

/// Direct sliding-window 2-D convolution (cross-correlation, as in all deep
/// learning frameworks).
///
/// `input` has shape [1, C, H, W]; `weights` has shape [K, C, m, m];
/// `bias` (optional, may be empty) has shape [1, K, 1, 1].
/// Returns [1, K, Ho, Wo] with Ho = (H + 2p - m)/s + 1 (floor).
Tensor conv2d_direct(const Tensor& input, const Tensor& weights,
                     const Tensor& bias, std::size_t stride, std::size_t pad);

/// im2col + matrix-multiply convolution; same contract as conv2d_direct.
Tensor conv2d_im2col(const Tensor& input, const Tensor& weights,
                     const Tensor& bias, std::size_t stride, std::size_t pad);

/// Lower `input` [1, C, H, W] to a column matrix [C*m*m, Ho*Wo] stored as a
/// tensor of shape [1, 1, C*m*m, Ho*Wo]. Out-of-bounds (padding) reads are 0.
Tensor im2col(const Tensor& input, std::size_t m, std::size_t stride,
              std::size_t pad);

/// Extract the receptive field of `input` [1, C, H, W] at output location
/// (oy, ox): the C*m*m values (channel-major, then ky, then kx) the kernel
/// sees at that location. This is exactly the value vector PCNNA loads into
/// its input cache per kernel location.
std::vector<double> receptive_field(const Tensor& input, std::size_t m,
                                    std::size_t stride, std::size_t pad,
                                    std::size_t oy, std::size_t ox);

/// Elementwise max(0, x).
Tensor relu(const Tensor& input);

/// 2-D max pooling with square window `window` and stride `stride`.
Tensor maxpool2d(const Tensor& input, std::size_t window, std::size_t stride);

/// 2-D average pooling with square window `window` and stride `stride`.
Tensor avgpool2d(const Tensor& input, std::size_t window, std::size_t stride);

/// Local response normalization across channels (AlexNet Sec. 3.3):
/// b = a / (k + alpha/size * sum_{j in window} a_j^2)^beta.
Tensor lrn(const Tensor& input, std::size_t size = 5, double alpha = 1e-4,
           double beta = 0.75, double k = 2.0);

/// Fully connected layer: `weights` [out, in, 1, 1], `bias` [1, out, 1, 1]
/// (optional, may be empty), input flattened. Returns [1, out, 1, 1].
Tensor fully_connected(const Tensor& input, const Tensor& weights,
                       const Tensor& bias);

/// Numerically stable softmax over the flattened input.
Tensor softmax(const Tensor& input);

/// Maximum absolute elementwise difference; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);

} // namespace pcnna::nn
