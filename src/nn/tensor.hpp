// A minimal dense 4-D tensor (NCHW) for the golden CNN reference path and
// for feeding the PCNNA functional simulator.
//
// The simulator's numerical checks compare optical MAC results against this
// tensor math, so storage is `double` end to end.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace pcnna::nn {

/// Shape of a 4-D tensor in NCHW order. FC weights use {out, in, 1, 1};
/// single feature maps use n == 1.
struct Shape4 {
  std::size_t n = 1; ///< batch
  std::size_t c = 1; ///< channels
  std::size_t h = 1; ///< height
  std::size_t w = 1; ///< width

  std::size_t elements() const { return n * c * h * w; }
  bool operator==(const Shape4&) const = default;
};

/// Dense row-major NCHW tensor of doubles.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape4 shape)
      : shape_(shape), data_(shape.elements(), 0.0) {
    PCNNA_CHECK(shape.elements() > 0);
  }

  /// Tensor initialized from existing data (must match shape.elements()).
  Tensor(Shape4 shape, std::vector<double> data)
      : shape_(shape), data_(std::move(data)) {
    PCNNA_CHECK_MSG(data_.size() == shape_.elements(),
                    "data size " << data_.size() << " != shape elements "
                                 << shape_.elements());
  }

  const Shape4& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Flat element access (row-major NCHW).
  double& operator[](std::size_t i) {
    PCNNA_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    PCNNA_DCHECK(i < data_.size());
    return data_[i];
  }

  /// 4-D element access.
  double& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[index(n, c, h, w)];
  }
  double at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[index(n, c, h, w)];
  }

  /// Flat index of (n, c, h, w); bounds-checked in debug builds.
  std::size_t index(std::size_t n, std::size_t c, std::size_t h,
                    std::size_t w) const {
    PCNNA_DCHECK(n < shape_.n && c < shape_.c && h < shape_.h && w < shape_.w);
    return ((n * shape_.c + c) * shape_.h + h) * shape_.w + w;
  }

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// Fill every element with `v`.
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Min/max element values (tensor must be non-empty).
  double min() const;
  double max() const;
  /// Largest absolute element value.
  double abs_max() const;

  bool operator==(const Tensor&) const = default;

 private:
  Shape4 shape_{};
  std::vector<double> data_;
};

} // namespace pcnna::nn
