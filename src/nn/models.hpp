// Catalog of CNN models used by the paper's evaluation and our extensions.
//
// AlexNet is the paper's evaluation workload (SS V). LeNet-5 and VGG-16 are
// used by the extension benches to show how the ring-count and timing models
// generalize across network scales.
#pragma once

#include <vector>

#include "nn/conv_params.hpp"
#include "nn/network.hpp"

namespace pcnna::nn {

/// The five AlexNet convolution layers exactly as the paper uses them
/// (224x224x3 input, 96 kernels of 11x11x3 in conv1, ...). conv1 reproduces
/// the paper's worked numbers: Ninput = 150 528, Nkernel = 363.
std::vector<ConvLayerParams> alexnet_conv_layers();

/// Full AlexNet graph: conv/relu/lrn/pool stack + 3 FC layers + softmax
/// (single-tower formulation).
Network alexnet();

/// LeNet-5 conv layers (32x32x1 input).
std::vector<ConvLayerParams> lenet5_conv_layers();

/// Full LeNet-5 graph (conv/avgpool stack + FC + softmax).
Network lenet5();

/// The 13 VGG-16 convolution layers (all 3x3, pad 1, stride 1).
std::vector<ConvLayerParams> vgg16_conv_layers();

/// Full VGG-16 graph.
Network vgg16();

/// The 20 ResNet-18 convolution layers (stem + 4 stages of basic blocks +
/// the three 1x1 downsample projections). The paper's introduction cites
/// ResNet [1] as the motivating modern CNN; residual adds are electronic,
/// so only the conv list (the optical workload) is cataloged — there is no
/// sequential Network graph for it.
std::vector<ConvLayerParams> resnet18_conv_layers();

/// A deliberately small network (8x8 input, two tiny conv layers) used by
/// integration tests and the quickstart example where full AlexNet would be
/// needlessly slow to simulate functionally.
Network tiny_cnn();

} // namespace pcnna::nn
