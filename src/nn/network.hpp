// Sequential network description with shape inference.
//
// A Network is an ordered list of ops (conv / relu / pool / lrn / fc /
// softmax). Shapes are checked as ops are appended, so a mis-chained
// catalog model fails at construction, not at run time. The PCNNA
// accelerator executes the conv ops on the optical core and everything else
// electronically (paper SS IV: layers processed sequentially, feature maps
// round-tripping through DRAM).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/conv_params.hpp"
#include "nn/tensor.hpp"

namespace pcnna::nn {

enum class OpKind {
  kConv,
  kReLU,
  kMaxPool,
  kAvgPool,
  kLRN,
  kFullyConnected,
  kSoftmax,
};

/// Printable op name, e.g. "conv", "maxpool".
const char* op_kind_name(OpKind kind);

struct PoolOp {
  std::size_t window = 0;
  std::size_t stride = 0;
};

struct LrnOp {
  std::size_t size = 5;
  double alpha = 1e-4;
  double beta = 0.75;
  double k = 2.0;
};

struct FcOp {
  std::size_t out = 0;
};

/// One layer in the sequence; only the member matching `kind` is meaningful.
struct LayerOp {
  OpKind kind = OpKind::kReLU;
  ConvLayerParams conv; ///< kConv
  PoolOp pool;          ///< kMaxPool / kAvgPool
  LrnOp lrn;            ///< kLRN
  FcOp fc;              ///< kFullyConnected
};

/// Sequential CNN with construction-time shape checking.
class Network {
 public:
  /// `input` is the expected input feature-map shape (n must be 1).
  Network(std::string name, Shape4 input);

  const std::string& name() const { return name_; }
  Shape4 input_shape() const { return input_; }
  /// Shape after the last appended op.
  Shape4 output_shape() const { return current_; }

  /// Append a convolution. Throws if the params disagree with the running
  /// shape (nc vs channels, n vs height/width, non-square input).
  Network& add_conv(ConvLayerParams params);
  Network& add_relu();
  Network& add_maxpool(std::size_t window, std::size_t stride);
  Network& add_avgpool(std::size_t window, std::size_t stride);
  Network& add_lrn(LrnOp op = {});
  Network& add_fc(std::size_t out);
  Network& add_softmax();

  const std::vector<LayerOp>& ops() const { return ops_; }

  /// Shape of the feature map *entering* op i (i == 0 is the network
  /// input). Lets a pipeline stage starting mid-network validate its
  /// incoming activation without replaying the prefix.
  Shape4 shape_before(std::size_t op) const;

  /// Shape of the feature map *after* op i.
  Shape4 shape_after(std::size_t op) const;

  /// All convolution layers in order (the workload PCNNA accelerates).
  std::vector<ConvLayerParams> conv_layers() const;

  /// Total MACs across conv layers (conv dominates CNNs; paper SS I cites
  /// ~90% of all operations).
  std::uint64_t conv_macs() const;

  /// Total learned parameters (conv + fc weights, no biases).
  std::uint64_t weight_count() const;

 private:
  std::string name_;
  Shape4 input_{};
  Shape4 current_{};
  std::vector<LayerOp> ops_;
  /// shapes_[i] is the shape after op i (parallel to ops_).
  std::vector<Shape4> shapes_;
};

/// Per-op weights for a Network: `weight[i]`/`bias[i]` are used when op i is
/// a conv ([K, nc, m, m] / [1, K, 1, 1]) or fc ([out, in, 1, 1] / [1, out,
/// 1, 1]); they are empty tensors for parameterless ops.
struct NetWeights {
  std::vector<Tensor> weight;
  std::vector<Tensor> bias;
};

/// Run the network end to end with the golden CPU operators.
Tensor forward_reference(const Network& net, const NetWeights& weights,
                         const Tensor& input);

} // namespace pcnna::nn
