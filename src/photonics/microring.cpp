#include "photonics/microring.hpp"

#include <cstdint>
#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::phot {

MicroringResonator::MicroringResonator(MicroringConfig config, Rng& rng)
    : config_(config), loss_factor_(from_db(-config.insertion_loss_db)) {
  PCNNA_CHECK(config.design_wavelength > 0.0);
  PCNNA_CHECK(config.q_factor > 1.0);
  PCNNA_CHECK(config.max_drop > 0.0 && config.max_drop <= 1.0);
  PCNNA_CHECK(config.insertion_loss_db >= 0.0);
  PCNNA_CHECK(config.max_detuning > 0.0);
  PCNNA_CHECK(config.tuning_bits >= 1 && config.tuning_bits <= 48);
  PCNNA_CHECK(config.thermal_efficiency > 0.0);
  PCNNA_CHECK(config.fab_sigma >= 0.0);
  PCNNA_CHECK(config.footprint_side > 0.0);

  const double offset =
      config.fab_sigma > 0.0 ? rng.normal(0.0, config.fab_sigma) : 0.0;
  natural_resonance_ = config.design_wavelength + offset;
}

double MicroringResonator::set_thermal_shift(double shift) {
  if (stuck_) return applied_shift_;
  // Heaters only shift the resonance one way (red); allow enough headroom to
  // compensate worst-case fabrication offsets (the bank blue-biases designs
  // by 4 sigma and the draw itself can add another 4 sigma) on top of the
  // weight detuning.
  const double max_shift = config_.max_detuning + 8.0 * config_.fab_sigma;
  const double clamped = clamp(shift, 0.0, max_shift);
  const double levels =
      static_cast<double>((std::uint64_t{1} << config_.tuning_bits) - 1u);
  const double step = max_shift / levels;
  applied_shift_ = std::round(clamped / step) * step;
  return applied_shift_;
}

double MicroringResonator::drop_fraction(double wavelength) const {
  const double half_width = 0.5 * linewidth();
  const double delta = wavelength - resonance();
  const double lorentz =
      (half_width * half_width) / (delta * delta + half_width * half_width);
  return config_.max_drop * lorentz;
}

double MicroringResonator::through_fraction(double wavelength) const {
  return loss_factor_ * (1.0 - drop_fraction(wavelength));
}

} // namespace pcnna::phot
