#include "photonics/weight_bank.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::phot {

WeightBank::WeightBank(const WdmGrid& grid, WeightBankConfig config, Rng& rng)
    : grid_(grid),
      config_(config),
      pd_(config.photodiode),
      through_loss_factor_(from_db(-config.ring.insertion_loss_db)) {
  PCNNA_CHECK(config.calibration_iterations >= 0);
  rings_.reserve(grid.channels());
  for (std::size_t i = 0; i < grid.channels(); ++i) {
    MicroringConfig ring_cfg = config.ring;
    // Bias the design resonance blue of the channel so that the one-sided
    // (red) thermal tuning can always reach the channel even with worst-case
    // fabrication offsets.
    ring_cfg.design_wavelength =
        grid.wavelength(i) - 4.0 * config.ring.fab_sigma;
    rings_.emplace_back(ring_cfg, rng);
  }
  targets_.assign(grid.channels(), 0.0);
  drop_targets_.assign(grid.channels(), 0.0);
  // Park every ring at weight zero.
  const double zero_drop = through_loss_factor_ / (1.0 + through_loss_factor_);
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    drop_targets_[i] = zero_drop;
    apply_drop_target(i, zero_drop);
  }
}

double WeightBank::max_weight() const {
  const double t = through_loss_factor_;
  return config_.ring.max_drop * (1.0 + t) - t;
}

double WeightBank::min_weight() const {
  const double h = 0.5 * config_.ring.design_wavelength / config_.ring.q_factor;
  const double d = config_.ring.max_detuning;
  const double lorentz_far = (h * h) / (d * d + h * h);
  const double d_far = config_.ring.max_drop * lorentz_far;
  const double t = through_loss_factor_;
  return d_far * (1.0 + t) - t;
}

void WeightBank::apply_drop_target(std::size_t i, double drop_target) {
  MicroringResonator& ring = rings_[i];
  const double d_max = config_.ring.max_drop;
  // Keep strictly inside (0, d_max] so the Lorentzian inversion is finite.
  const double d = clamp(drop_target, 1e-9, d_max * (1.0 - 1e-12));
  const double h = 0.5 * ring.linewidth();
  double detuning = h * std::sqrt(d_max / d - 1.0);
  detuning = clamp(detuning, 0.0, config_.ring.max_detuning);
  // Park the resonance `detuning` red of the channel; the heater must also
  // make up the (blue-biased) natural-resonance offset.
  const double desired_resonance = grid_.wavelength(i) + detuning;
  const double shift = desired_resonance - ring.natural_resonance();
  ring.set_thermal_shift(shift);
}

std::vector<double> WeightBank::calibrate(std::span<const double> weights) {
  PCNNA_CHECK_MSG(weights.size() == rings_.size(),
                  "got " << weights.size() << " weights for " << rings_.size()
                         << " rings");
  const double w_lo = min_weight();
  const double w_hi = max_weight();
  const double t = through_loss_factor_;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    PCNNA_CHECK_MSG(std::abs(weights[i]) <= 1.0 + 1e-9,
                    "weight " << weights[i] << " outside [-1, 1]");
    targets_[i] = clamp(weights[i], w_lo, w_hi);
    drop_targets_[i] = (targets_[i] + t) / (1.0 + t);
    apply_drop_target(i, drop_targets_[i]);
  }
  if (config_.model_crosstalk) {
    // Fixed-point refinement: nudge each ring's drop target by the measured
    // weight error. Crosstalk tails are small, so this converges quickly.
    for (int iter = 0; iter < config_.calibration_iterations; ++iter) {
      for (std::size_t i = 0; i < rings_.size(); ++i) {
        const double err = targets_[i] - effective_weight(i);
        drop_targets_[i] =
            clamp(drop_targets_[i] + err / (1.0 + t), 1e-9, config_.ring.max_drop);
        apply_drop_target(i, drop_targets_[i]);
      }
    }
  }
  return effective_weights();
}

double WeightBank::effective_weight(std::size_t ch) const {
  PCNNA_CHECK(ch < rings_.size());
  WdmSignal probe(rings_.size());
  probe[ch] = 1.0;
  double drop = 0.0, thru = 0.0;
  propagate(probe, drop, thru);
  return drop - thru;
}

std::vector<double> WeightBank::effective_weights() const {
  std::vector<double> out(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) out[i] = effective_weight(i);
  return out;
}

std::vector<WeightBank::ChannelSplit> WeightBank::channel_splits() const {
  std::vector<ChannelSplit> splits(rings_.size());
  channel_splits_into(splits);
  return splits;
}

void WeightBank::channel_splits_into(std::span<ChannelSplit> out) const {
  PCNNA_CHECK_MSG(out.size() == rings_.size(),
                  "split buffer has " << out.size() << " entries, bank has "
                                      << rings_.size());
  WdmSignal probe(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    probe[i] = 1.0;
    double drop = 0.0, thru = 0.0;
    propagate(probe, drop, thru);
    out[i] = ChannelSplit{drop, thru};
    probe[i] = 0.0;
  }
}

void WeightBank::propagate(const WdmSignal& in, double& drop_total,
                           double& through_total) const {
  PCNNA_CHECK_MSG(in.channels() == rings_.size(),
                  "signal has " << in.channels() << " channels, bank has "
                                << rings_.size());
  drop_total = 0.0;
  through_total = 0.0;
  for (std::size_t c = 0; c < in.channels(); ++c) {
    double p = in[c];
    if (p <= 0.0) continue;
    const double lambda = grid_.wavelength(c);
    if (config_.model_crosstalk) {
      // The channel traverses every ring on the bus in order.
      for (const MicroringResonator& ring : rings_) {
        const double d = ring.drop_fraction(lambda);
        drop_total += p * d;
        p *= through_loss_factor_ * (1.0 - d);
      }
    } else {
      // Idealized: only the channel's own ring interacts with it.
      const double d = rings_[c].drop_fraction(lambda);
      drop_total += p * d;
      p *= through_loss_factor_ * (1.0 - d);
    }
    through_total += p;
  }
}

double WeightBank::ideal_weighted_power(const WdmSignal& in) const {
  double drop = 0.0, thru = 0.0;
  propagate(in, drop, thru);
  return drop - thru;
}

double WeightBank::detect(const WdmSignal& in, double bandwidth,
                          Rng& rng) const {
  double drop = 0.0, thru = 0.0;
  propagate(in, drop, thru);
  return pd_.detect(drop, thru, bandwidth, rng);
}

void WeightBank::fail_ring(std::size_t i, bool stuck) {
  PCNNA_CHECK(i < rings_.size());
  rings_[i].set_stuck(stuck);
}

std::size_t WeightBank::stuck_rings() const {
  std::size_t count = 0;
  for (const MicroringResonator& ring : rings_)
    if (ring.stuck()) ++count;
  return count;
}

double WeightBank::total_heater_power() const {
  double acc = 0.0;
  for (const MicroringResonator& ring : rings_) acc += ring.heater_power();
  return acc;
}

double WeightBank::total_area() const {
  double acc = 0.0;
  for (const MicroringResonator& ring : rings_) acc += ring.area();
  return acc;
}

} // namespace pcnna::phot
