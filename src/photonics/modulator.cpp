#include "photonics/modulator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::phot {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

MachZehnderModulator::MachZehnderModulator(MzmConfig config)
    : config_(config),
      loss_factor_(from_db(-config.insertion_loss_db)),
      floor_(from_db(-config.extinction_ratio_db)) {
  PCNNA_CHECK(config.v_pi > 0.0);
  PCNNA_CHECK(config.insertion_loss_db >= 0.0);
  PCNNA_CHECK(config.extinction_ratio_db > 0.0);
  PCNNA_CHECK(config.bandwidth > 0.0);
}

double MachZehnderModulator::raw_transfer(double volts) const {
  const double t = std::sin(kPi / 2.0 * volts / config_.v_pi);
  return t * t;
}

double MachZehnderModulator::transmit_fraction(double x) const {
  PCNNA_CHECK_MSG(x >= 0.0 && x <= 1.0,
                  "MZM input value " << x << " outside [0, 1]");
  double t;
  if (config_.predistort) {
    // Drive v = (2 Vpi / pi) * asin(sqrt(x)) makes T linear in x.
    t = x;
  } else {
    // Uncompensated linear voltage ramp: v = x * Vpi.
    t = raw_transfer(x * config_.v_pi);
  }
  // Finite extinction: transmission floor at x = 0.
  t = floor_ + (1.0 - floor_) * t;
  return loss_factor_ * t;
}

} // namespace pcnna::phot
