#include "photonics/laser.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::phot {

LaserDiode::LaserDiode(LaserConfig config) : config_(config) {
  PCNNA_CHECK(config.power > 0.0);
  PCNNA_CHECK(config.rin_db_per_hz < 0.0);
  PCNNA_CHECK(config.wall_plug_efficiency > 0.0 &&
              config.wall_plug_efficiency <= 1.0);
}

double LaserDiode::emit(double bandwidth, Rng& rng) const {
  PCNNA_CHECK(bandwidth >= 0.0);
  if (bandwidth == 0.0) return config_.power;
  const double rin_linear = from_db(config_.rin_db_per_hz);
  const double sigma = config_.power * std::sqrt(rin_linear * bandwidth);
  // Power cannot go negative even in a noisy draw.
  return std::max(0.0, rng.normal(config_.power, sigma));
}

} // namespace pcnna::phot
