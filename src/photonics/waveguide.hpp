// Waveguide propagation and splitting losses.
//
// Broadcast-and-weight places all wavelengths on one bus waveguide and
// broadcasts it to every weight bank; the broadcast split and propagation
// loss set the optical power budget at each photodiode.
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/units.hpp"

namespace pcnna::phot {

struct WaveguideConfig {
  double propagation_loss_db_per_cm = 2.0; ///< silicon strip waveguide
  double splitter_excess_loss_db = 0.1;    ///< per 1x2 split stage

  friend bool operator==(const WaveguideConfig&,
                         const WaveguideConfig&) = default;
};

/// Stateless loss calculator for bus waveguides and broadcast trees.
class Waveguide {
 public:
  explicit Waveguide(WaveguideConfig config) : config_(config) {
    PCNNA_CHECK(config.propagation_loss_db_per_cm >= 0.0);
    PCNNA_CHECK(config.splitter_excess_loss_db >= 0.0);
  }

  const WaveguideConfig& config() const { return config_; }

  /// Linear transmission factor after propagating `length` meters.
  double propagation_factor(double length) const {
    PCNNA_CHECK(length >= 0.0);
    const double loss_db = config_.propagation_loss_db_per_cm * (length / 1e-2);
    return from_db(-loss_db);
  }

  /// Linear per-output factor of a 1-to-`fanout` broadcast tree built from
  /// 1x2 splitters: ideal 1/fanout split plus excess loss per stage.
  double broadcast_factor(std::size_t fanout) const {
    PCNNA_CHECK(fanout >= 1);
    if (fanout == 1) return 1.0;
    const double stages = std::ceil(std::log2(static_cast<double>(fanout)));
    const double excess = from_db(-config_.splitter_excess_loss_db * stages);
    return excess / static_cast<double>(fanout);
  }

 private:
  WaveguideConfig config_;
};

} // namespace pcnna::phot
