// Add-drop microring resonator (MRR).
//
// The multiply in the photonic MAC: a ring tuned in or out of resonance with
// its laser wavelength routes a controllable fraction of that channel's
// power to the drop port (paper SS III: "Multiplication is carried out by
// tuning rings in and out of resonance to a respective laser wavelength").
//
// The drop-port power response around resonance is Lorentzian:
//   D(lambda) = d_max * (G/2)^2 / ((lambda - lambda_res)^2 + (G/2)^2),
// with linewidth G = lambda0 / Q. Thermal tuning shifts lambda_res; the
// tuning drive is quantized by the weight-DAC resolution. Fabrication
// disorder offsets the as-built resonance from its design target.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace pcnna::phot {

struct MicroringConfig {
  double design_wavelength = 1550.0 * units::nm; ///< target resonance [m]
  double q_factor = 20'000.0;          ///< loaded quality factor
  double max_drop = 0.98;              ///< drop fraction on resonance
  double insertion_loss_db = 0.01;     ///< per-ring through-path loss
  double max_detuning = 0.4 * units::nm; ///< tuning range to one side [m]
  int tuning_bits = 12;                ///< DAC resolution of the heater drive
  double thermal_efficiency = 0.25 * units::nm / units::mW; ///< shift per heater watt
  double fab_sigma = 0.0;              ///< std-dev of as-built resonance offset [m]
  /// Ring footprint (paper SS V-A cites 25 um x 25 um per ring [10]).
  double footprint_side = 25.0 * units::um;

  friend bool operator==(const MicroringConfig&,
                         const MicroringConfig&) = default;
};

class MicroringResonator {
 public:
  /// `rng` supplies the fabrication-disorder draw when fab_sigma > 0.
  MicroringResonator(MicroringConfig config, Rng& rng);

  const MicroringConfig& config() const { return config_; }

  /// Lorentzian full width at half maximum [m].
  double linewidth() const { return config_.design_wavelength / config_.q_factor; }

  /// As-built (disordered) natural resonance wavelength [m].
  double natural_resonance() const { return natural_resonance_; }

  /// Current (tuned) resonance wavelength [m].
  double resonance() const { return natural_resonance_ + applied_shift_; }

  /// Command a thermal shift relative to the natural resonance. The shift is
  /// clamped to [0, max_detuning + |fab offset allowance|] and quantized to
  /// `tuning_bits` levels over that range. Returns the shift actually applied.
  /// A stuck ring (see set_stuck) ignores the command and keeps its current
  /// shift.
  double set_thermal_shift(double shift);

  /// Failure injection: freeze the heater at its current drive. Subsequent
  /// set_thermal_shift calls are ignored until the ring is un-stuck —
  /// models a dead heater driver or an open heater trace.
  void set_stuck(bool stuck) { stuck_ = stuck; }
  bool stuck() const { return stuck_; }

  /// Heater shift currently applied [m].
  double thermal_shift() const { return applied_shift_; }

  /// Heater electrical power for the current shift [W].
  double heater_power() const { return applied_shift_ / config_.thermal_efficiency; }

  /// Drop-port power fraction at `wavelength` (Lorentzian).
  double drop_fraction(double wavelength) const;

  /// Through-port power fraction at `wavelength`:
  /// (1 - insertion loss) * (1 - drop_fraction).
  double through_fraction(double wavelength) const;

  /// Ring footprint area [m^2].
  double area() const { return config_.footprint_side * config_.footprint_side; }

 private:
  MicroringConfig config_;
  double natural_resonance_;
  double applied_shift_ = 0.0;
  double loss_factor_;
  bool stuck_ = false;
};

} // namespace pcnna::phot
