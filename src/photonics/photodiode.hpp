// Photodiode and balanced photodetector models.
//
// The accumulate in the photonic MAC: "a photodiode sums up all the incoming
// wavelengths into an aggregate photo-current" (paper SS III). A balanced
// pair subtracts the through-port bus from the drop-port bus, which is what
// turns a 0..1 drop fraction into a signed -1..+1 weight.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace pcnna::phot {

struct PhotodiodeConfig {
  double responsivity = 1.0;          ///< [A/W]
  double dark_current = 10e-9;        ///< [A]
  double temperature = 300.0;         ///< [K] for Johnson noise
  /// Effective input impedance of the transimpedance receiver [ohm]; sets
  /// the input-referred Johnson noise floor (a raw 50-ohm termination would
  /// be ~4.5x noisier than this TIA-class value).
  double load_resistance = 1000.0;
  bool enable_shot_noise = true;
  bool enable_thermal_noise = true;

  friend bool operator==(const PhotodiodeConfig&,
                         const PhotodiodeConfig&) = default;
};

/// Single photodiode: optical power in, current out, with shot and thermal
/// noise integrated over the detection bandwidth.
class Photodiode {
 public:
  explicit Photodiode(PhotodiodeConfig config);

  const PhotodiodeConfig& config() const { return config_; }

  /// Noiseless photocurrent for incident power [W] -> [A].
  double ideal_current(double power) const {
    return config_.responsivity * power + config_.dark_current;
  }

  /// RMS noise current for a mean current `current` over `bandwidth` [A].
  double noise_sigma(double current, double bandwidth) const;

  /// One noisy detection sample: current for `power` integrated over
  /// `bandwidth`. bandwidth == 0 -> deterministic.
  double detect(double power, double bandwidth, Rng& rng) const;

 private:
  PhotodiodeConfig config_;
};

/// Balanced photodetector: I = detect(P_plus) - detect(P_minus).
class BalancedPhotodiode {
 public:
  explicit BalancedPhotodiode(PhotodiodeConfig config)
      : plus_(config), minus_(config) {}

  /// Signed differential current [A]; both branches draw independent noise.
  double detect(double p_plus, double p_minus, double bandwidth,
                Rng& rng) const {
    return plus_.detect(p_plus, bandwidth, rng) -
           minus_.detect(p_minus, bandwidth, rng);
  }

  /// Noiseless differential current [A]; dark currents cancel.
  double ideal_current(double p_plus, double p_minus) const {
    return plus_.ideal_current(p_plus) - minus_.ideal_current(p_minus);
  }

  const Photodiode& plus_branch() const { return plus_; }
  const Photodiode& minus_branch() const { return minus_; }

 private:
  Photodiode plus_;
  Photodiode minus_;
};

} // namespace pcnna::phot
