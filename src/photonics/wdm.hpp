// Wavelength-division-multiplexing grid.
//
// In the broadcast-and-weight protocol every input value of a receptive
// field rides on its own wavelength. The grid models a C-band comb with
// uniform channel spacing; microrings address channels by their wavelength.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pcnna::phot {

/// Uniform WDM wavelength comb.
class WdmGrid {
 public:
  /// `base_wavelength` is channel 0 (e.g. 1550 nm); `spacing` is the
  /// channel pitch (e.g. 0.8 nm ~ 100 GHz at 1550 nm).
  WdmGrid(std::size_t channels, double base_wavelength = 1550.0 * units::nm,
          double spacing = 0.8 * units::nm)
      : channels_(channels), base_(base_wavelength), spacing_(spacing) {
    PCNNA_CHECK(channels > 0);
    PCNNA_CHECK(base_wavelength > 0.0 && spacing > 0.0);
  }

  std::size_t channels() const { return channels_; }
  double spacing() const { return spacing_; }

  /// Wavelength of channel i [m].
  double wavelength(std::size_t i) const {
    PCNNA_DCHECK(i < channels_);
    return base_ + static_cast<double>(i) * spacing_;
  }

  /// Optical frequency of channel i [Hz].
  double frequency(std::size_t i) const { return units::c0 / wavelength(i); }

  /// Total spectral width occupied by the comb [m].
  double span() const { return static_cast<double>(channels_ - 1) * spacing_; }

  /// All channel wavelengths in order.
  std::vector<double> wavelengths() const {
    std::vector<double> out(channels_);
    for (std::size_t i = 0; i < channels_; ++i) out[i] = wavelength(i);
    return out;
  }

 private:
  std::size_t channels_;
  double base_;
  double spacing_;
};

} // namespace pcnna::phot
