// Mach-Zehnder modulator (MZM).
//
// The analog input voltage from the DAC drives an MZM that imprints the
// input value onto the laser beam's amplitude (paper SS V-B: "analog input
// values from DAC modulate the laser beams with Mach Zehnder Modulators").
//
// The raw MZM power transfer is the interferometer response
//   T(v) = sin^2(pi/2 * v / Vpi),
// which is nonlinear in the drive voltage. For analog computing the drive
// is pre-distorted (arcsine predistortion) so transmitted power is linear in
// the intended value x in [0, 1]; residual nonidealities are the finite
// extinction ratio (light leaks through at x = 0) and excess insertion loss.
#pragma once

#include "common/units.hpp"

namespace pcnna::phot {

struct MzmConfig {
  double v_pi = 1.5;                ///< half-wave voltage [V]
  double insertion_loss_db = 3.0;   ///< excess loss through the device
  double extinction_ratio_db = 25.0;///< on/off power ratio
  bool predistort = true;           ///< apply arcsine predistortion
  double bandwidth = 20.0 * units::GHz; ///< 3 dB modulation bandwidth

  friend bool operator==(const MzmConfig&, const MzmConfig&) = default;
};

class MachZehnderModulator {
 public:
  explicit MachZehnderModulator(MzmConfig config);

  const MzmConfig& config() const { return config_; }

  /// Raw interferometer power transfer for a drive voltage [0, Vpi] -> [0, 1]
  /// (before insertion loss and extinction-ratio floor).
  double raw_transfer(double volts) const;

  /// Transmit fraction for a normalized input value x in [0, 1]:
  /// with predistortion the response is linear in x up to the insertion loss
  /// and extinction floor; without it, the raw sin^2 response is used
  /// (models an uncompensated drive chain).
  double transmit_fraction(double x) const;

  /// Transmitted power for input power `p_in` and value x.
  double modulate(double p_in, double x) const {
    return p_in * transmit_fraction(x);
  }

 private:
  MzmConfig config_;
  double loss_factor_;  ///< linear insertion-loss factor
  double floor_;        ///< linear extinction floor (T at x = 0)
};

} // namespace pcnna::phot
