// Microring weight bank — the photonic MAC unit.
//
// One bank implements the dot product between the broadcast WDM input bundle
// and one kernel's weight vector (paper SS III / Fig. 1): every channel's
// power is split between a drop bus and the surviving through bus by its
// ring, and a balanced photodiode computes
//   I = R * (P_drop_total - P_through_total)
//     = R * sum_i P_i * w_i,      w_i in [-1, +1].
//
// Programming a weight means thermally detuning the ring so the Lorentzian
// drop fraction hits d_i = (w_i + t) / (1 + t) (t = through-path loss
// factor); calibrate() inverts the Lorentzian, applies the quantized heater
// drive, and optionally iterates to cancel inter-channel crosstalk.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "photonics/microring.hpp"
#include "photonics/optical_signal.hpp"
#include "photonics/photodiode.hpp"
#include "photonics/wdm.hpp"

namespace pcnna::phot {

struct WeightBankConfig {
  MicroringConfig ring;           ///< per-ring template (resonance set per channel)
  PhotodiodeConfig photodiode;
  bool model_crosstalk = true;    ///< rings also act on neighboring channels
  int calibration_iterations = 4; ///< fixed-point crosstalk-cancel passes

  friend bool operator==(const WeightBankConfig&,
                         const WeightBankConfig&) = default;
};

class WeightBank {
 public:
  /// Build one ring per grid channel. `rng` drives fabrication disorder.
  WeightBank(const WdmGrid& grid, WeightBankConfig config, Rng& rng);

  std::size_t channels() const { return rings_.size(); }
  const WeightBankConfig& config() const { return config_; }
  const MicroringResonator& ring(std::size_t i) const { return rings_.at(i); }

  /// Largest weight the bank can represent (< 1 for max_drop < 1).
  double max_weight() const;
  /// Most negative weight the bank can represent (> -1 for finite detuning).
  double min_weight() const;

  /// Program the bank. `weights` must have one entry per channel, each in
  /// [min_weight(), max_weight()] — out-of-range targets are clamped.
  /// Returns the achieved effective weights (measured through the physical
  /// model, including tuning quantization and residual crosstalk).
  std::vector<double> calibrate(std::span<const double> weights);

  /// Weight targets from the last calibrate() call (after clamping).
  std::span<const double> target_weights() const { return targets_; }

  /// Measured effective weight of channel `ch` (unit-power probe).
  double effective_weight(std::size_t ch) const;

  /// Measured effective weights of all channels.
  std::vector<double> effective_weights() const;

  /// Per-channel linear response: fraction of a channel's input power that
  /// reaches the drop bus and the through bus (crosstalk included). The bank
  /// is linear in the input powers, so
  ///   P_drop  = sum_i in[i] * split[i].drop,
  ///   P_thru  = sum_i in[i] * split[i].thru.
  /// Callers on hot paths cache this after calibrate() instead of invoking
  /// the O(channels^2) propagate() per sample.
  struct ChannelSplit {
    double drop = 0.0;
    double thru = 0.0;
  };
  std::vector<ChannelSplit> channel_splits() const;

  /// Allocation-free variant for hot paths that snapshot bank responses
  /// after every recalibration (e.g. the engine's per-channel allocation,
  /// which retunes nc times per layer): writes the splits of all channels
  /// into `out`, which must have channels() entries. Identical values to
  /// channel_splits().
  void channel_splits_into(std::span<ChannelSplit> out) const;

  /// Split an input bundle into total drop-bus and through-bus power [W].
  /// With crosstalk modeling the bundle passes the rings sequentially.
  void propagate(const WdmSignal& in, double& drop_total,
                 double& through_total) const;

  /// Noiseless weighted power: sum_i P_i * w_eff_i [W-equivalent, signed].
  double ideal_weighted_power(const WdmSignal& in) const;

  /// Balanced-photodiode output for an input bundle: signed current [A],
  /// noise integrated over `bandwidth` (0 -> deterministic).
  double detect(const WdmSignal& in, double bandwidth, Rng& rng) const;

  /// Failure injection: freeze ring `i`'s heater at its current drive (see
  /// MicroringResonator::set_stuck). Subsequent calibrations cannot move it;
  /// the fixed-point refinement will still adjust the *other* rings around
  /// the fault.
  void fail_ring(std::size_t i, bool stuck = true);

  /// Number of rings currently stuck.
  std::size_t stuck_rings() const;

  /// Sum of heater powers across rings [W].
  double total_heater_power() const;

  /// Total ring footprint [m^2].
  double total_area() const;

 private:
  /// Solve drop fraction -> detuning and apply it to ring `i`.
  void apply_drop_target(std::size_t i, double drop_target);

  WdmGrid grid_;
  WeightBankConfig config_;
  std::vector<MicroringResonator> rings_;
  std::vector<double> targets_;
  std::vector<double> drop_targets_;
  BalancedPhotodiode pd_;
  double through_loss_factor_; ///< per-ring through-path transmission
};

} // namespace pcnna::phot
