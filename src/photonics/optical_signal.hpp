// A bundle of per-channel optical powers traveling on one waveguide.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::phot {

/// Per-wavelength optical power [W] on a single bus waveguide. Index i is
/// WDM channel i of the grid the signal was produced on.
class WdmSignal {
 public:
  WdmSignal() = default;
  explicit WdmSignal(std::size_t channels) : power_(channels, 0.0) {}
  explicit WdmSignal(std::vector<double> power) : power_(std::move(power)) {
    for (double p : power_) PCNNA_CHECK_MSG(p >= 0.0, "negative optical power");
  }

  std::size_t channels() const { return power_.size(); }

  double& operator[](std::size_t i) {
    PCNNA_DCHECK(i < power_.size());
    return power_[i];
  }
  double operator[](std::size_t i) const {
    PCNNA_DCHECK(i < power_.size());
    return power_[i];
  }

  std::span<const double> powers() const { return power_; }

  /// Sum of all channel powers [W] — what an ideal broadband photodiode sees.
  double total_power() const {
    double acc = 0.0;
    for (double p : power_) acc += p;
    return acc;
  }

  /// Apply a flat (wavelength-independent) loss in dB to every channel.
  void attenuate_db(double loss_db) {
    PCNNA_CHECK(loss_db >= 0.0);
    const double factor = from_db(-loss_db);
    for (double& p : power_) p *= factor;
  }

  /// Scale every channel by a linear factor in [0, 1].
  void scale(double factor) {
    PCNNA_CHECK(factor >= 0.0);
    for (double& p : power_) p *= factor;
  }

 private:
  std::vector<double> power_;
};

} // namespace pcnna::phot
