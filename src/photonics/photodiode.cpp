#include "photonics/photodiode.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pcnna::phot {

Photodiode::Photodiode(PhotodiodeConfig config) : config_(config) {
  PCNNA_CHECK(config.responsivity > 0.0);
  PCNNA_CHECK(config.dark_current >= 0.0);
  PCNNA_CHECK(config.temperature > 0.0);
  PCNNA_CHECK(config.load_resistance > 0.0);
}

double Photodiode::noise_sigma(double current, double bandwidth) const {
  if (bandwidth <= 0.0) return 0.0;
  double variance = 0.0;
  if (config_.enable_shot_noise) {
    variance += 2.0 * units::q_e * std::abs(current) * bandwidth;
  }
  if (config_.enable_thermal_noise) {
    variance += 4.0 * units::k_B * config_.temperature * bandwidth /
                config_.load_resistance;
  }
  return std::sqrt(variance);
}

double Photodiode::detect(double power, double bandwidth, Rng& rng) const {
  PCNNA_CHECK(power >= 0.0);
  const double mean = ideal_current(power);
  const double sigma = noise_sigma(mean, bandwidth);
  if (sigma == 0.0) return mean;
  return rng.normal(mean, sigma);
}

} // namespace pcnna::phot
