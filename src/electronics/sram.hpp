// On-chip SRAM cache model.
//
// Paper SS V-B: "Buffered inputs are cached in the SRAM memory [15], which
// has a 128kb capacity that can store 8 thousand 16bit values. The access
// time for the memory is 7ns and it has a footprint of 0.443mm2."
//
// The model tracks occupancy in 16-bit words and tallies accesses and
// access time/energy; the accelerator uses it to hold the live receptive
// field between kernel locations.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pcnna::elec {

struct SramConfig {
  double capacity_bits = 128.0 * units::kb; ///< 128 kb (paper [15])
  int word_bits = 16;                       ///< one CNN value per word
  double access_time = 7.0 * units::ns;     ///< per-word access (paper [15])
  double area = 0.443 * units::mm2;         ///< footprint (paper [15])
  double access_energy = 2.0 * units::pJ;   ///< per-word access energy
  double retention_power = 25.0 * units::uW;///< static draw (paper [15] class)

  friend bool operator==(const SramConfig&, const SramConfig&) = default;
};

/// Word-granular scratchpad with occupancy tracking and access statistics.
class Sram {
 public:
  explicit Sram(SramConfig config);

  const SramConfig& config() const { return config_; }

  /// Total capacity in words (paper: ~8000 for the 128 kb / 16 b config).
  std::uint64_t capacity_words() const;

  std::uint64_t used_words() const { return used_words_; }
  std::uint64_t free_words() const { return capacity_words() - used_words_; }

  /// Reserve `words`; throws if the working set exceeds capacity (the
  /// scheduler must tile so this never happens in a valid plan).
  void allocate(std::uint64_t words);

  /// Release `words` (must not exceed current occupancy).
  void release(std::uint64_t words);

  /// Record `words` read accesses and return the time they take [s].
  double read(std::uint64_t words);

  /// Record `words` write accesses and return the time they take [s].
  double write(std::uint64_t words);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  /// Dynamic access energy consumed so far [J].
  double access_energy() const {
    return static_cast<double>(reads_ + writes_) * config_.access_energy;
  }

  /// Reset access statistics (occupancy is kept).
  void reset_stats() { reads_ = writes_ = 0; }

 private:
  SramConfig config_;
  std::uint64_t used_words_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

} // namespace pcnna::elec
