#include "electronics/adc.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::elec {

Adc::Adc(AdcConfig config) : config_(config) {
  PCNNA_CHECK(config.bits >= 1 && config.bits <= 24);
  PCNNA_CHECK(config.sample_rate > 0.0);
  PCNNA_CHECK(config.area >= 0.0 && config.power >= 0.0);
  PCNNA_CHECK(config.full_scale > 0.0);
}

double Adc::convert(double analog) const {
  const double fs = config_.full_scale;
  const double x = clamp(analog, -fs, fs);
  const double steps = static_cast<double>(levels() - 1);
  // Map [-fs, fs] -> [0, steps], quantize, map back.
  const double code = std::round((x + fs) / (2.0 * fs) * steps);
  return code / steps * 2.0 * fs - fs;
}

} // namespace pcnna::elec
