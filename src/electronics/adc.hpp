// Analog-to-digital converter model.
//
// The paper's back end digitizes the photodiode outputs with a 2.8 GSa/s
// time-interleaved ADC ([17]: 44.6 mW, 50.9 dB SNDR ~ 8.2 ENOB).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace pcnna::elec {

struct AdcConfig {
  int bits = 8;                          ///< effective resolution (ENOB ~ 8)
  double sample_rate = 2.8 * units::GSa; ///< conversions per second
  double area = 0.58 * units::mm2;       ///< die area (paper [17], 65 nm)
  double power = 44.6 * units::mW;       ///< active power draw (paper [17])
  double full_scale = 1.0;               ///< input range is [-fs, +fs]

  friend bool operator==(const AdcConfig&, const AdcConfig&) = default;
};

/// A single ADC channel; input is a signed analog value in [-fs, +fs].
class Adc {
 public:
  explicit Adc(AdcConfig config);

  const AdcConfig& config() const { return config_; }

  std::uint64_t levels() const { return std::uint64_t{1} << config_.bits; }

  /// Quantize a signed analog value to the ADC grid; clips outside range.
  double convert(double analog) const;

  /// Quantization step in input units.
  double lsb() const {
    return 2.0 * config_.full_scale / static_cast<double>(levels() - 1);
  }

  /// Time to digitize `samples` sequential values [s].
  double conversion_time(std::uint64_t samples) const {
    return static_cast<double>(samples) / config_.sample_rate;
  }

  /// Energy for `samples` conversions [J].
  double conversion_energy(std::uint64_t samples) const {
    return config_.power * conversion_time(samples);
  }

 private:
  AdcConfig config_;
};

} // namespace pcnna::elec
