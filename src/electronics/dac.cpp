#include "electronics/dac.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::elec {

Dac::Dac(DacConfig config) : config_(config) {
  PCNNA_CHECK(config.bits >= 1 && config.bits <= 24);
  PCNNA_CHECK(config.sample_rate > 0.0);
  PCNNA_CHECK(config.area >= 0.0 && config.power >= 0.0);
  PCNNA_CHECK(config.full_scale > 0.0);
}

double Dac::convert(double normalized) const {
  const double x = clamp(normalized, 0.0, 1.0);
  const double steps = static_cast<double>(levels() - 1);
  return std::round(x * steps) / steps * config_.full_scale;
}

} // namespace pcnna::elec
