// FIFO buffer between clock domains.
//
// Paper Fig. 4: "Buffers isolate the fast optical core from the outside slow
// clock environment." The kernel-weight buffer, input buffer and output
// buffer are instances of this bounded word FIFO; the accelerator uses the
// occupancy high-water mark to size them.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace pcnna::elec {

/// Bounded FIFO counted in words; tracks a high-water mark. The simulator
/// moves data in bulk, so only occupancy (not element values) is modeled.
class FifoBuffer {
 public:
  FifoBuffer(std::string name, std::uint64_t capacity_words)
      : name_(std::move(name)), capacity_(capacity_words) {
    PCNNA_CHECK(capacity_words > 0);
  }

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t free_space() const { return capacity_ - size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Largest occupancy ever observed (for buffer sizing).
  std::uint64_t high_water_mark() const { return high_water_; }

  /// Push `words`; throws on overflow (a correct schedule never overflows).
  void push(std::uint64_t words) {
    PCNNA_CHECK_MSG(size_ + words <= capacity_,
                    "FIFO '" << name_ << "' overflow: " << size_ + words
                             << " > " << capacity_);
    size_ += words;
    if (size_ > high_water_) high_water_ = size_;
    total_pushed_ += words;
  }

  /// Pop `words`; throws on underflow.
  void pop(std::uint64_t words) {
    PCNNA_CHECK_MSG(words <= size_,
                    "FIFO '" << name_ << "' underflow: pop " << words
                             << " of " << size_);
    size_ -= words;
  }

  /// Total words ever pushed (throughput accounting).
  std::uint64_t total_pushed() const { return total_pushed_; }

  void clear() { size_ = 0; }

 private:
  std::string name_;
  std::uint64_t capacity_;
  std::uint64_t size_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t total_pushed_ = 0;
};

} // namespace pcnna::elec
