// Clock domains.
//
// Paper SS IV: "PCNNA runs on two clock domains, a fast clock domain (5GHz),
// which runs the optical sub-systems and their immediate electronic
// circuitry, and a main slower clock domain to interface with the external
// environment."
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pcnna::elec {

/// A named clock domain; converts between cycle counts and wall time.
class ClockDomain {
 public:
  ClockDomain(std::string name, double frequency)
      : name_(std::move(name)), frequency_(frequency) {
    PCNNA_CHECK(frequency > 0.0);
  }

  const std::string& name() const { return name_; }
  double frequency() const { return frequency_; }
  double period() const { return 1.0 / frequency_; }

  /// Wall time of `cycles` cycles [s].
  double time_for(std::uint64_t cycles) const {
    return static_cast<double>(cycles) * period();
  }

  /// Cycles needed to cover `seconds` of wall time (rounded up, with a
  /// relative epsilon so exact multiples survive floating-point round-off).
  std::uint64_t cycles_for(double seconds) const {
    PCNNA_CHECK(seconds >= 0.0);
    const double c = seconds * frequency_;
    const double rounded = std::round(c);
    if (std::abs(c - rounded) < 1e-9 * std::max(1.0, c))
      return static_cast<std::uint64_t>(rounded);
    return static_cast<std::uint64_t>(std::ceil(c));
  }

 private:
  std::string name_;
  double frequency_;
};

/// The paper's two-domain arrangement.
struct ClockPair {
  ClockDomain fast{"optical", 5.0 * units::GHz};
  ClockDomain main{"io", 500.0 * units::MHz};
};

} // namespace pcnna::elec
