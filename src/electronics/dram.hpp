// Off-chip DRAM channel model.
//
// Paper SS IV: kernel weights and feature maps live in off-chip DRAM;
// convolution results are stored back per layer. A bandwidth + first-access
// latency model is enough for the execution-time analysis; the model also
// tallies traffic for the energy accounting.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pcnna::elec {

struct DramConfig {
  double bandwidth = 12.8e9;               ///< bytes/s (DDR3-1600 x64 class)
  double first_access_latency = 50.0 * units::ns; ///< row activate + CAS
  double energy_per_byte = 20.0 * units::pJ; ///< access energy

  friend bool operator==(const DramConfig&, const DramConfig&) = default;
};

/// Bandwidth/latency model of one DRAM channel with traffic statistics.
class Dram {
 public:
  explicit Dram(DramConfig config);

  const DramConfig& config() const { return config_; }

  /// Time to read `bytes` as one burst [s]; tallies traffic.
  double read(std::uint64_t bytes);

  /// Time to write `bytes` as one burst [s]; tallies traffic.
  double write(std::uint64_t bytes);

  /// Pure timing query without statistics side effects.
  double transfer_time(std::uint64_t bytes) const {
    if (bytes == 0) return 0.0;
    return config_.first_access_latency +
           static_cast<double>(bytes) / config_.bandwidth;
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t transactions() const { return transactions_; }

  /// Total access energy so far [J].
  double access_energy() const {
    return static_cast<double>(bytes_read_ + bytes_written_) *
           config_.energy_per_byte;
  }

  void reset_stats() { bytes_read_ = bytes_written_ = transactions_ = 0; }

 private:
  DramConfig config_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t transactions_ = 0;
};

} // namespace pcnna::elec
