#include "electronics/sram.hpp"

namespace pcnna::elec {

Sram::Sram(SramConfig config) : config_(config) {
  PCNNA_CHECK(config.capacity_bits > 0.0);
  PCNNA_CHECK(config.word_bits >= 1);
  PCNNA_CHECK(config.access_time > 0.0);
  PCNNA_CHECK(config.access_energy >= 0.0);
}

std::uint64_t Sram::capacity_words() const {
  return static_cast<std::uint64_t>(config_.capacity_bits) /
         static_cast<std::uint64_t>(config_.word_bits);
}

void Sram::allocate(std::uint64_t words) {
  PCNNA_CHECK_MSG(used_words_ + words <= capacity_words(),
                  "SRAM overflow: " << used_words_ + words << " words > "
                                    << capacity_words() << " capacity");
  used_words_ += words;
}

void Sram::release(std::uint64_t words) {
  PCNNA_CHECK(words <= used_words_);
  used_words_ -= words;
}

double Sram::read(std::uint64_t words) {
  reads_ += words;
  return static_cast<double>(words) * config_.access_time;
}

double Sram::write(std::uint64_t words) {
  writes_ += words;
  return static_cast<double>(words) * config_.access_time;
}

} // namespace pcnna::elec
