// Digital-to-analog converter model.
//
// The paper's front end uses one kernel-weight DAC and 10 input DACs at
// 6 GSa/s (16 b, [16]); the input DACs are the full-system bottleneck
// (SS V-B, Eq. 8). The model covers both the value path (quantization to
// `bits`) and the rate path (conversion time per sample), plus area/power
// for the footprint and energy accounting.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace pcnna::elec {

struct DacConfig {
  int bits = 16;                        ///< resolution
  double sample_rate = 6.0 * units::GSa;///< conversions per second
  double area = 0.52 * units::mm2;      ///< die area per DAC (paper [16])
  double power = 350.0 * units::mW;     ///< active power draw
  double full_scale = 1.0;              ///< output range is [0, full_scale]

  friend bool operator==(const DacConfig&, const DacConfig&) = default;
};

/// A single DAC channel.
class Dac {
 public:
  explicit Dac(DacConfig config);

  const DacConfig& config() const { return config_; }

  /// Number of representable levels (2^bits).
  std::uint64_t levels() const { return std::uint64_t{1} << config_.bits; }

  /// Quantize a normalized value in [0, 1] to the DAC grid and scale to the
  /// full-scale output. Values outside [0, 1] are clipped.
  double convert(double normalized) const;

  /// Quantization step in output units.
  double lsb() const {
    return config_.full_scale / static_cast<double>(levels() - 1);
  }

  /// Time to convert `samples` sequential values [s].
  double conversion_time(std::uint64_t samples) const {
    return static_cast<double>(samples) / config_.sample_rate;
  }

  /// Energy for `samples` conversions [J] (power * busy time).
  double conversion_energy(std::uint64_t samples) const {
    return config_.power * conversion_time(samples);
  }

 private:
  DacConfig config_;
};

} // namespace pcnna::elec
