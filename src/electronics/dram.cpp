#include "electronics/dram.hpp"

namespace pcnna::elec {

Dram::Dram(DramConfig config) : config_(config) {
  PCNNA_CHECK(config.bandwidth > 0.0);
  PCNNA_CHECK(config.first_access_latency >= 0.0);
  PCNNA_CHECK(config.energy_per_byte >= 0.0);
}

double Dram::read(std::uint64_t bytes) {
  bytes_read_ += bytes;
  ++transactions_;
  return transfer_time(bytes);
}

double Dram::write(std::uint64_t bytes) {
  bytes_written_ += bytes;
  ++transactions_;
  return transfer_time(bytes);
}

} // namespace pcnna::elec
