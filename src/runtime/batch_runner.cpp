#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/report.hpp"

namespace pcnna::runtime {

namespace {

/// Homogeneous-fleet recipe: options.num_pcus copies of one spec.
std::vector<PcuSpec> replicate_spec(core::PcnnaConfig config,
                                    const BatchRunnerOptions& options) {
  PcuSpec spec;
  spec.config = std::move(config);
  return std::vector<PcuSpec>(options.num_pcus, spec);
}

/// BatchRunnerOptions::engine_threads > 0 overrides the intra-image engine
/// parallelism of every PCU in the fleet (per-spec overrides included).
std::vector<PcuSpec> apply_fleet_engine_threads(
    std::vector<PcuSpec> specs, const BatchRunnerOptions& options) {
  if (options.engine_threads > 0)
    for (PcuSpec& spec : specs) spec.engine_threads = options.engine_threads;
  return specs;
}

} // namespace

BatchRunner::BatchRunner(core::PcnnaConfig config, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : BatchRunner(replicate_spec(std::move(config), options), std::move(net),
                  std::move(weights), options) {}

BatchRunner::BatchRunner(std::vector<PcuSpec> specs, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      pool_(apply_fleet_engine_threads(std::move(specs), options),
            options.fidelity, net_, weights_) {
  options_.num_pcus = pool_.size();
}

std::vector<InferenceRequest> BatchRunner::make_requests(
    const std::vector<nn::Tensor>& inputs,
    const ArrivalSchedule& arrivals) const {
  std::vector<InferenceRequest> requests;
  requests.reserve(inputs.size());
  for (std::size_t id = 0; id < inputs.size(); ++id) {
    InferenceRequest request;
    request.id = id;
    request.seed = derive_request_seed(options_.seed, id);
    request.arrival_time = arrivals.empty() ? 0.0 : arrivals[id];
    request.input = inputs[id];
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<RequestResult> BatchRunner::serve(
    std::vector<InferenceRequest> requests,
    const std::vector<ScheduledService>& schedule, bool simulate_values) {
  if (pool_.homogeneous()) {
    // Dynamic sharding: any PCU computes the same bits for a request, so
    // the fastest host thread simply grabs the next one.
    const std::size_t batch = requests.size();
    RequestQueue queue;
    for (InferenceRequest& request : requests) queue.push(std::move(request));
    queue.close();
    return pool_.serve_all(queue, batch, simulate_values);
  }
  // Heterogeneous: the scheduled PCU's device model must produce each
  // output, so the physical assignment follows the virtual-time schedule.
  return pool_.serve_scheduled(std::move(requests), schedule, simulate_values);
}

std::vector<RequestResult> BatchRunner::run(
    const std::vector<nn::Tensor>& inputs, FleetReport* report) {
  const std::size_t batch = inputs.size();

  // Deterministic virtual-time schedule: the closed batch is the
  // degenerate all-at-t=0 arrival process, so the same admission loop
  // that prices open-loop serving prices it. A homogeneous fleet without a
  // report skips it (dynamic sharding needs no assignment).
  std::vector<ScheduledService> schedule;
  if (!pool_.homogeneous() || report)
    schedule = simulate_schedule(closed_batch_arrivals(batch));

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results =
      serve(make_requests(inputs, {}), schedule, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();

  if (report) {
    const Pcu& reference = pool_.pcu(0);
    FleetReport r;
    r.pcus = pool_.size();
    r.requests = batch;
    r.fidelity = options_.fidelity;
    r.double_buffer = options_.double_buffer;
    r.dispatch = options_.dispatch;
    r.request_time_serial = reference.request_time_serial();
    r.request_interval = options_.double_buffer
                             ? reference.request_interval_overlapped()
                             : reference.request_time_serial();
    r.overlap_speedup = r.request_interval > 0.0
                            ? r.request_time_serial / r.request_interval
                            : 1.0;
    r.sequential_rps = r.request_time_serial > 0.0
                           ? 1.0 / r.request_time_serial
                           : 0.0;
    double latency_sum = 0.0;
    for (const ScheduledService& s : schedule) {
      latency_sum += s.completion;
      r.max_latency = std::max(r.max_latency, s.completion);
    }
    r.makespan = fill_breakdowns(schedule, r.per_pcu);
    r.virtual_requests_per_pcu.resize(r.pcus);
    for (std::size_t p = 0; p < r.pcus; ++p)
      r.virtual_requests_per_pcu[p] = r.per_pcu[p].requests;
    r.makespan_sequential =
        static_cast<double>(batch) * r.request_time_serial;
    r.throughput_rps =
        r.makespan > 0.0 ? static_cast<double>(batch) / r.makespan : 0.0;
    r.speedup_vs_sequential =
        r.makespan > 0.0 ? r.makespan_sequential / r.makespan : 1.0;
    r.scaling_efficiency =
        r.speedup_vs_sequential / static_cast<double>(r.pcus);
    r.mean_latency = batch == 0 ? 0.0 : latency_sum / static_cast<double>(batch);

    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

std::vector<RequestResult> BatchRunner::run_open_loop(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    OpenLoopReport* report) {
  PCNNA_CHECK_MSG(arrivals.size() == inputs.size(),
                  "open loop needs one arrival per input: "
                      << arrivals.size() << " arrivals for " << inputs.size()
                      << " inputs");
  validate_arrival_schedule(arrivals);

  // On a homogeneous fleet physical serving is identical to the closed
  // batch: arrival times shape only the virtual-time schedule, never the
  // per-request seeds, so the outputs stay bit-identical to
  // run()/run_one(). A heterogeneous fleet additionally follows the
  // schedule's PCU assignment, so outputs are still deterministic.
  std::vector<ScheduledService> schedule;
  if (!pool_.homogeneous() || report) schedule = simulate_schedule(arrivals);

  const std::size_t batch = inputs.size();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results = serve(
      make_requests(inputs, arrivals), schedule, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();

  if (report) {
    OpenLoopReport r = summarize_schedule(schedule, arrivals);
    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

OpenLoopReport BatchRunner::simulate_open_loop(const ArrivalSchedule& arrivals) {
  validate_arrival_schedule(arrivals);
  const std::vector<ScheduledService> schedule = simulate_schedule(arrivals);
  OpenLoopReport r = summarize_schedule(schedule, arrivals);
  // Timing-only energy: the per-request analytical total of the PCU each
  // request was dispatched to, which the functional path reproduces
  // (values never change layer energy).
  for (const ScheduledService& s : schedule)
    r.total_energy += pool_.pcu(s.pcu).request_energy();
  r.energy_per_request = r.requests == 0
                             ? 0.0
                             : r.total_energy /
                                   static_cast<double>(r.requests);
  return r;
}

std::vector<ScheduledService> BatchRunner::simulate_schedule(
    const ArrivalSchedule& arrivals) {
  // Lightweight replay stream: the admission loop needs only ids and
  // arrival timestamps, so the tensors stay behind.
  RequestQueue queue;
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    InferenceRequest request;
    request.id = id;
    request.arrival_time = arrivals[id];
    queue.push(std::move(request));
  }
  queue.close();
  return pool_.simulate_admission(queue, options_.double_buffer,
                                  options_.dispatch);
}

double BatchRunner::fill_breakdowns(
    const std::vector<ScheduledService>& schedule,
    std::vector<PcuBreakdown>& out) const {
  out.assign(pool_.size(), PcuBreakdown{});
  for (std::size_t p = 0; p < pool_.size(); ++p)
    out[p].tag = pool_.pcu(p).tag();
  double makespan = 0.0;
  for (const ScheduledService& s : schedule) {
    PcuBreakdown& b = out[s.pcu];
    b.requests += 1;
    b.busy_time += s.completion - s.start;
    b.warmup_time += s.warmup;
    makespan = std::max(makespan, s.completion);
  }
  if (makespan > 0.0)
    for (PcuBreakdown& b : out) b.utilization = b.busy_time / makespan;
  return makespan;
}

OpenLoopReport BatchRunner::summarize_schedule(
    const std::vector<ScheduledService>& schedule,
    const ArrivalSchedule& arrivals) const {
  OpenLoopReport r;
  r.pcus = pool_.size();
  r.requests = schedule.size();
  r.fidelity = options_.fidelity;
  r.double_buffer = options_.double_buffer;
  r.dispatch = options_.dispatch;
  r.offered_rps = offered_rate(arrivals);

  for (std::size_t p = 0; p < r.pcus; ++p) {
    const Pcu& pcu = pool_.pcu(p);
    const double interval = options_.double_buffer
                                ? pcu.request_interval_overlapped()
                                : pcu.request_time_serial();
    if (interval > 0.0) r.fleet_capacity_rps += 1.0 / interval;
  }
  r.load_factor = std::isinf(r.offered_rps) || r.fleet_capacity_rps <= 0.0
                      ? 0.0
                      : r.offered_rps / r.fleet_capacity_rps;

  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(schedule.size());
  waits.reserve(schedule.size());
  double wait_sum = 0.0;
  for (const ScheduledService& s : schedule) {
    latencies.push_back(s.completion - s.arrival);
    waits.push_back(s.start - s.arrival);
    wait_sum += s.start - s.arrival;
  }
  r.latency = summarize_distribution(std::move(latencies));
  r.queue_wait = summarize_distribution(std::move(waits));

  r.makespan = fill_breakdowns(schedule, r.per_pcu);
  r.virtual_requests_per_pcu.resize(r.pcus);
  r.utilization_per_pcu.resize(r.pcus);
  for (std::size_t p = 0; p < r.pcus; ++p) {
    r.virtual_requests_per_pcu[p] = r.per_pcu[p].requests;
    r.utilization_per_pcu[p] = r.per_pcu[p].utilization;
  }

  if (r.makespan > 0.0) {
    r.achieved_rps = static_cast<double>(r.requests) / r.makespan;
    // Little's law on the wait room: time-averaged queue depth equals
    // total waiting time over the observation window.
    r.mean_queue_depth = wait_sum / r.makespan;
  }
  // Energy is filled by the caller: run_open_loop sums the functional
  // RequestResults, simulate_open_loop the analytical per-request totals.
  return r;
}

RequestResult BatchRunner::run_one(const nn::Tensor& input, std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  request.seed = derive_request_seed(options_.seed, id);
  request.input = input;
  return pool_.pcu(0).serve(request, options_.simulate_values);
}

namespace {

/// Shared per-PCU schedule table: index, tag, requests, utilization, and
/// time spent re-filling the double-buffer pipeline.
void print_breakdowns(const std::vector<PcuBreakdown>& per_pcu,
                      std::ostream& os) {
  TextTable pcus({"virtual PCU", "tag", "requests", "utilization",
                  "warmup time"});
  for (std::size_t p = 0; p < per_pcu.size(); ++p) {
    const PcuBreakdown& b = per_pcu[p];
    pcus.add_row({std::to_string(p), b.tag.empty() ? "-" : b.tag,
                  std::to_string(b.requests),
                  format_fixed(100.0 * b.utilization, 1) + " %",
                  format_time(b.warmup_time)});
  }
  pcus.print(os, "per-PCU schedule");
}

} // namespace

void BatchRunner::print_report(const FleetReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity",
                 core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_row({"dispatch policy",
                 dispatch_policy_name(report.dispatch)});
  table.add_separator();
  table.add_row({"request time (serial)",
                 format_time(report.request_time_serial)});
  table.add_row({"request interval (overlapped)",
                 format_time(report.request_interval)});
  table.add_row({"overlap speedup",
                 format_fixed(report.overlap_speedup, 3) + "x"});
  table.add_row({"serial rate (1 PCU)",
                 format_count(report.sequential_rps) + " req/s"});
  table.add_separator();
  table.add_row({"makespan (1 PCU, serial)",
                 format_time(report.makespan_sequential)});
  table.add_row({"makespan (fleet)", format_time(report.makespan)});
  table.add_row({"throughput",
                 format_count(report.throughput_rps) + " req/s"});
  table.add_row({"speedup vs sequential",
                 format_fixed(report.speedup_vs_sequential, 3) + "x"});
  table.add_row({"scaling efficiency",
                 format_fixed(100.0 * report.scaling_efficiency, 1) + " %"});
  table.add_row({"mean latency", format_time(report.mean_latency)});
  table.add_row({"max latency", format_time(report.max_latency)});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time",
                 format_time(report.wall_seconds)});
  table.print(os, title);

  print_breakdowns(report.per_pcu, os);
}

void BatchRunner::print_report(const OpenLoopReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity", core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_row({"dispatch policy",
                 dispatch_policy_name(report.dispatch)});
  table.add_separator();
  table.add_row({"offered load",
                 std::isinf(report.offered_rps)
                     ? "inf (closed batch)"
                     : format_count(report.offered_rps) + " req/s"});
  table.add_row({"achieved throughput",
                 format_count(report.achieved_rps) + " req/s"});
  table.add_row({"fleet capacity",
                 format_count(report.fleet_capacity_rps) + " req/s"});
  table.add_row({"load factor (rho)",
                 format_fixed(report.load_factor, 3)});
  table.add_row({"makespan", format_time(report.makespan)});
  table.add_separator();
  table.add_row({"latency p50", format_time(report.latency.p50)});
  table.add_row({"latency p90", format_time(report.latency.p90)});
  table.add_row({"latency p99", format_time(report.latency.p99)});
  table.add_row({"latency p99.9", format_time(report.latency.p999)});
  table.add_row({"latency mean", format_time(report.latency.mean)});
  table.add_row({"latency max", format_time(report.latency.max)});
  table.add_row({"queue wait mean", format_time(report.queue_wait.mean)});
  table.add_row({"queue wait p99", format_time(report.queue_wait.p99)});
  table.add_row({"mean queue depth",
                 format_fixed(report.mean_queue_depth, 2) + " req"});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time", format_time(report.wall_seconds)});
  table.print(os, title);

  print_breakdowns(report.per_pcu, os);
}

} // namespace pcnna::runtime
