#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/report.hpp"

namespace pcnna::runtime {

namespace {

/// BatchRunnerOptions::engine_threads > 0 overrides the config's
/// intra-image engine parallelism for every PCU of the fleet.
core::PcnnaConfig apply_engine_threads(core::PcnnaConfig config,
                                       const BatchRunnerOptions& options) {
  if (options.engine_threads > 0)
    config.engine_threads = options.engine_threads;
  return config;
}

} // namespace

BatchRunner::BatchRunner(core::PcnnaConfig config, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : config_(apply_engine_threads(std::move(config), options)),
      net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      pool_(options.num_pcus, config_, options.fidelity, net_, weights_) {}

std::vector<RequestResult> BatchRunner::run(
    const std::vector<nn::Tensor>& inputs, FleetReport* report) {
  const std::size_t batch = inputs.size();

  RequestQueue queue;
  for (std::size_t id = 0; id < batch; ++id) {
    InferenceRequest request;
    request.id = id;
    request.seed = derive_request_seed(options_.seed, id);
    request.input = inputs[id];
    queue.push(std::move(request));
  }
  queue.close();

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results =
      pool_.serve_all(queue, batch, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();

  if (report) {
    const Pcu& reference = pool_.pcu(0);
    FleetReport r;
    r.pcus = pool_.size();
    r.requests = batch;
    r.fidelity = options_.fidelity;
    r.double_buffer = options_.double_buffer;
    r.request_time_serial = reference.request_time_serial();
    r.request_interval = options_.double_buffer
                             ? reference.request_interval_overlapped()
                             : reference.request_time_serial();
    r.overlap_speedup = r.request_interval > 0.0
                            ? r.request_time_serial / r.request_interval
                            : 1.0;
    // Deterministic virtual-time schedule: the closed batch is the
    // degenerate all-at-t=0 arrival process, so the same admission loop
    // that prices open-loop serving prices it (requests in id order onto
    // the earliest-free virtual PCU, ties -> lowest index).
    const std::vector<ScheduledService> schedule =
        simulate_schedule(closed_batch_arrivals(batch));
    r.virtual_requests_per_pcu.assign(r.pcus, 0);
    double latency_sum = 0.0;
    for (const ScheduledService& s : schedule) {
      r.virtual_requests_per_pcu[s.pcu] += 1;
      latency_sum += s.completion;
      r.max_latency = std::max(r.max_latency, s.completion);
      r.makespan = std::max(r.makespan, s.completion);
    }
    r.makespan_sequential =
        static_cast<double>(batch) * r.request_time_serial;
    r.throughput_rps =
        r.makespan > 0.0 ? static_cast<double>(batch) / r.makespan : 0.0;
    r.speedup_vs_sequential =
        r.makespan > 0.0 ? r.makespan_sequential / r.makespan : 1.0;
    r.scaling_efficiency =
        r.speedup_vs_sequential / static_cast<double>(r.pcus);
    r.mean_latency = batch == 0 ? 0.0 : latency_sum / static_cast<double>(batch);

    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

std::vector<RequestResult> BatchRunner::run_open_loop(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    OpenLoopReport* report) {
  PCNNA_CHECK_MSG(arrivals.size() == inputs.size(),
                  "open loop needs one arrival per input: "
                      << arrivals.size() << " arrivals for " << inputs.size()
                      << " inputs");
  validate_arrival_schedule(arrivals);

  // Physical serving is identical to the closed batch: arrival times shape
  // only the virtual-time schedule, never the per-request seeds, so the
  // outputs stay bit-identical to run()/run_one().
  const std::size_t batch = inputs.size();
  RequestQueue queue;
  for (std::size_t id = 0; id < batch; ++id) {
    InferenceRequest request;
    request.id = id;
    request.seed = derive_request_seed(options_.seed, id);
    request.arrival_time = arrivals[id];
    request.input = inputs[id];
    queue.push(std::move(request));
  }
  queue.close();

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results =
      pool_.serve_all(queue, batch, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();

  if (report) {
    OpenLoopReport r = summarize_schedule(simulate_schedule(arrivals),
                                          arrivals);
    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

OpenLoopReport BatchRunner::simulate_open_loop(const ArrivalSchedule& arrivals) {
  validate_arrival_schedule(arrivals);
  const std::vector<ScheduledService> schedule = simulate_schedule(arrivals);
  OpenLoopReport r = summarize_schedule(schedule, arrivals);
  // Timing-only energy: the per-request analytical total, which the
  // functional path reproduces (values never change layer energy).
  for (const ScheduledService& s : schedule)
    r.total_energy += pool_.pcu(s.pcu).request_energy();
  r.energy_per_request = r.requests == 0
                             ? 0.0
                             : r.total_energy /
                                   static_cast<double>(r.requests);
  return r;
}

std::vector<ScheduledService> BatchRunner::simulate_schedule(
    const ArrivalSchedule& arrivals) {
  // Lightweight replay stream: the admission loop needs only ids and
  // arrival timestamps, so the tensors stay behind.
  RequestQueue queue;
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    InferenceRequest request;
    request.id = id;
    request.arrival_time = arrivals[id];
    queue.push(std::move(request));
  }
  queue.close();
  return pool_.simulate_admission(queue, options_.double_buffer);
}

OpenLoopReport BatchRunner::summarize_schedule(
    const std::vector<ScheduledService>& schedule,
    const ArrivalSchedule& arrivals) const {
  OpenLoopReport r;
  r.pcus = pool_.size();
  r.requests = schedule.size();
  r.fidelity = options_.fidelity;
  r.double_buffer = options_.double_buffer;
  r.offered_rps = offered_rate(arrivals);

  for (std::size_t p = 0; p < r.pcus; ++p) {
    const Pcu& pcu = pool_.pcu(p);
    const double interval = options_.double_buffer
                                ? pcu.request_interval_overlapped()
                                : pcu.request_time_serial();
    if (interval > 0.0) r.fleet_capacity_rps += 1.0 / interval;
  }
  r.load_factor = std::isinf(r.offered_rps) || r.fleet_capacity_rps <= 0.0
                      ? 0.0
                      : r.offered_rps / r.fleet_capacity_rps;

  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(schedule.size());
  waits.reserve(schedule.size());
  std::vector<double> busy(r.pcus, 0.0);
  r.virtual_requests_per_pcu.assign(r.pcus, 0);
  double wait_sum = 0.0;
  for (const ScheduledService& s : schedule) {
    latencies.push_back(s.completion - s.arrival);
    waits.push_back(s.start - s.arrival);
    wait_sum += s.start - s.arrival;
    busy[s.pcu] += s.completion - s.start;
    r.virtual_requests_per_pcu[s.pcu] += 1;
    r.makespan = std::max(r.makespan, s.completion);
  }
  r.latency = summarize_distribution(std::move(latencies));
  r.queue_wait = summarize_distribution(std::move(waits));

  if (r.makespan > 0.0) {
    r.achieved_rps = static_cast<double>(r.requests) / r.makespan;
    // Little's law on the wait room: time-averaged queue depth equals
    // total waiting time over the observation window.
    r.mean_queue_depth = wait_sum / r.makespan;
    r.utilization_per_pcu.resize(r.pcus);
    for (std::size_t p = 0; p < r.pcus; ++p)
      r.utilization_per_pcu[p] = busy[p] / r.makespan;
  } else {
    r.utilization_per_pcu.assign(r.pcus, 0.0);
  }
  // Energy is filled by the caller: run_open_loop sums the functional
  // RequestResults, simulate_open_loop the analytical per-request totals.
  return r;
}

RequestResult BatchRunner::run_one(const nn::Tensor& input, std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  request.seed = derive_request_seed(options_.seed, id);
  request.input = input;
  return pool_.pcu(0).serve(request, options_.simulate_values);
}

void BatchRunner::print_report(const FleetReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity",
                 core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_separator();
  table.add_row({"request time (serial)",
                 format_time(report.request_time_serial)});
  table.add_row({"request interval (overlapped)",
                 format_time(report.request_interval)});
  table.add_row({"overlap speedup",
                 format_fixed(report.overlap_speedup, 3) + "x"});
  table.add_separator();
  table.add_row({"makespan (1 PCU, serial)",
                 format_time(report.makespan_sequential)});
  table.add_row({"makespan (fleet)", format_time(report.makespan)});
  table.add_row({"throughput",
                 format_count(report.throughput_rps) + " req/s"});
  table.add_row({"speedup vs sequential",
                 format_fixed(report.speedup_vs_sequential, 3) + "x"});
  table.add_row({"scaling efficiency",
                 format_fixed(100.0 * report.scaling_efficiency, 1) + " %"});
  table.add_row({"mean latency", format_time(report.mean_latency)});
  table.add_row({"max latency", format_time(report.max_latency)});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time",
                 format_time(report.wall_seconds)});
  table.print(os, title);

  TextTable shards({"virtual PCU", "requests"});
  for (std::size_t p = 0; p < report.virtual_requests_per_pcu.size(); ++p)
    shards.add_row({std::to_string(p),
                    std::to_string(report.virtual_requests_per_pcu[p])});
  shards.print(os, "virtual shard assignment");
}

void BatchRunner::print_report(const OpenLoopReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity", core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_separator();
  table.add_row({"offered load",
                 std::isinf(report.offered_rps)
                     ? "inf (closed batch)"
                     : format_count(report.offered_rps) + " req/s"});
  table.add_row({"achieved throughput",
                 format_count(report.achieved_rps) + " req/s"});
  table.add_row({"fleet capacity",
                 format_count(report.fleet_capacity_rps) + " req/s"});
  table.add_row({"load factor (rho)",
                 format_fixed(report.load_factor, 3)});
  table.add_row({"makespan", format_time(report.makespan)});
  table.add_separator();
  table.add_row({"latency p50", format_time(report.latency.p50)});
  table.add_row({"latency p90", format_time(report.latency.p90)});
  table.add_row({"latency p99", format_time(report.latency.p99)});
  table.add_row({"latency p99.9", format_time(report.latency.p999)});
  table.add_row({"latency mean", format_time(report.latency.mean)});
  table.add_row({"latency max", format_time(report.latency.max)});
  table.add_row({"queue wait mean", format_time(report.queue_wait.mean)});
  table.add_row({"queue wait p99", format_time(report.queue_wait.p99)});
  table.add_row({"mean queue depth",
                 format_fixed(report.mean_queue_depth, 2) + " req"});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time", format_time(report.wall_seconds)});
  table.print(os, title);

  TextTable pcus({"virtual PCU", "requests", "utilization"});
  for (std::size_t p = 0; p < report.virtual_requests_per_pcu.size(); ++p) {
    const double util = p < report.utilization_per_pcu.size()
                            ? report.utilization_per_pcu[p]
                            : 0.0;
    pcus.add_row({std::to_string(p),
                  std::to_string(report.virtual_requests_per_pcu[p]),
                  format_fixed(100.0 * util, 1) + " %"});
  }
  pcus.print(os, "per-PCU schedule");
}

} // namespace pcnna::runtime
