#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/report.hpp"
#include "runtime/telemetry.hpp"

namespace pcnna::runtime {

namespace {

/// Homogeneous-fleet recipe: options.num_pcus copies of one spec.
std::vector<PcuSpec> replicate_spec(core::PcnnaConfig config,
                                    const BatchRunnerOptions& options) {
  PcuSpec spec;
  spec.config = std::move(config);
  return std::vector<PcuSpec>(options.num_pcus, spec);
}

/// BatchRunnerOptions::engine_threads > 0 overrides the intra-image engine
/// parallelism of every PCU in the fleet (per-spec overrides included).
std::vector<PcuSpec> apply_fleet_engine_threads(
    std::vector<PcuSpec> specs, const BatchRunnerOptions& options) {
  if (options.engine_threads > 0)
    for (PcuSpec& spec : specs) spec.engine_threads = options.engine_threads;
  return specs;
}

} // namespace

BatchRunner::BatchRunner(core::PcnnaConfig config, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : BatchRunner(replicate_spec(std::move(config), options), std::move(net),
                  std::move(weights), options) {}

BatchRunner::BatchRunner(std::vector<PcuSpec> specs, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      pool_(apply_fleet_engine_threads(std::move(specs), options),
            options.fidelity, net_, weights_) {
  options_.num_pcus = pool_.size();
}

std::vector<InferenceRequest> BatchRunner::make_requests(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    const SloSchedule& slos, const ModelSchedule& models) const {
  std::vector<InferenceRequest> requests;
  requests.reserve(inputs.size());
  for (std::size_t id = 0; id < inputs.size(); ++id) {
    InferenceRequest request;
    request.id = id;
    request.seed = derive_request_seed(options_.seed, id);
    request.arrival_time = arrivals.empty() ? 0.0 : arrivals[id];
    if (!slos.empty()) {
      request.tenant = slos[id].tenant;
      request.priority = slos[id].priority;
      request.deadline = slos[id].deadline;
    }
    if (!models.empty()) request.model_id = models[id];
    request.input = inputs[id];
    requests.push_back(std::move(request));
  }
  return requests;
}

std::uint32_t BatchRunner::register_model(nn::Network net,
                                          nn::NetWeights weights) {
  extra_models_.emplace_back(std::move(net), std::move(weights));
  auto& [stored_net, stored_weights] = extra_models_.back();
  return pool_.register_model(stored_net, stored_weights);
}

std::vector<RequestResult> BatchRunner::serve(
    std::vector<InferenceRequest> requests,
    const std::vector<ScheduledService>& schedule, bool simulate_values) {
  if (options_.dispatch == DispatchPolicy::kPipeline) {
    // Pipelined service splits requests into per-stage runs chained across
    // PCUs by the schedule's StageService spans (requests the schedule
    // placed off any group run whole, as usual).
    return pool_.serve_pipelined(std::move(requests), schedule,
                                 simulate_values);
  }
  if (pool_.homogeneous() && !options_.shed_expired &&
      !options_.faults.enabled()) {
    // Dynamic sharding: any PCU computes the same bits for a request, so
    // the fastest host thread simply grabs the next one.
    const std::size_t batch = requests.size();
    RequestQueue queue;
    for (InferenceRequest& request : requests) queue.push(std::move(request));
    queue.close();
    return pool_.serve_all(queue, batch, simulate_values);
  }
  // Heterogeneous: the scheduled PCU's device model must produce each
  // output, so the physical assignment follows the virtual-time schedule.
  // With shedding or fault injection the schedule also decides *which*
  // requests run at all, so a homogeneous pool follows it too (shed and
  // fault-lost ids stay placeholders).
  return pool_.serve_scheduled(std::move(requests), schedule, simulate_values);
}

std::vector<RequestResult> BatchRunner::run(
    const std::vector<nn::Tensor>& inputs, FleetReport* report) {
  const std::size_t batch = inputs.size();

  // Deterministic virtual-time schedule: the closed batch is the
  // degenerate all-at-t=0 arrival process, so the same admission loop
  // that prices open-loop serving prices it. A homogeneous fleet without a
  // report skips it (dynamic sharding needs no assignment).
  AdmissionResult admission;
  if (!pool_.homogeneous() || report || options_.shed_expired ||
      options_.faults.enabled() ||
      options_.dispatch == DispatchPolicy::kPipeline)
    admission = simulate_admission_result(closed_batch_arrivals(batch), {}, {});
  const std::vector<ScheduledService>& schedule = admission.schedule;

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results = serve(
      make_requests(inputs, {}, {}, {}), schedule, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();
  for (const RequestLoss& l : admission.fault.losses)
    results[static_cast<std::size_t>(l.id)].failed = true;

  if (report) {
    const Pcu& reference = pool_.pcu(0);
    FleetReport r;
    r.pcus = pool_.size();
    r.requests = batch;
    r.fidelity = options_.fidelity;
    r.double_buffer = options_.double_buffer;
    r.dispatch = options_.dispatch;
    r.request_time_serial = reference.request_time_serial();
    r.request_interval = options_.double_buffer
                             ? reference.request_interval_overlapped()
                             : reference.request_time_serial();
    r.overlap_speedup = r.request_interval > 0.0
                            ? r.request_time_serial / r.request_interval
                            : 1.0;
    r.sequential_rps = r.request_time_serial > 0.0
                           ? 1.0 / r.request_time_serial
                           : 0.0;
    double latency_sum = 0.0;
    for (const ScheduledService& s : schedule) {
      latency_sum += s.completion;
      r.max_latency = std::max(r.max_latency, s.completion);
    }
    r.makespan = fill_breakdowns(schedule, r.per_pcu);
    r.virtual_requests_per_pcu.resize(r.pcus);
    for (std::size_t p = 0; p < r.pcus; ++p)
      r.virtual_requests_per_pcu[p] = r.per_pcu[p].requests;
    r.makespan_sequential =
        static_cast<double>(batch) * r.request_time_serial;
    r.throughput_rps =
        r.makespan > 0.0 ? static_cast<double>(batch) / r.makespan : 0.0;
    r.speedup_vs_sequential =
        r.makespan > 0.0 ? r.makespan_sequential / r.makespan : 1.0;
    r.scaling_efficiency =
        r.speedup_vs_sequential / static_cast<double>(r.pcus);
    r.mean_latency = batch == 0 ? 0.0 : latency_sum / static_cast<double>(batch);

    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

std::vector<RequestResult> BatchRunner::run_open_loop(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    OpenLoopReport* report) {
  return run_open_loop(inputs, arrivals, SloSchedule{}, report);
}

std::vector<RequestResult> BatchRunner::run_open_loop(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    const SloSchedule& slos, OpenLoopReport* report) {
  return run_open_loop(inputs, arrivals, slos, ModelSchedule{}, report);
}

std::vector<RequestResult> BatchRunner::run_open_loop(
    const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
    const SloSchedule& slos, const ModelSchedule& models,
    OpenLoopReport* report) {
  PCNNA_CHECK_MSG(arrivals.size() == inputs.size(),
                  "open loop needs one arrival per input: "
                      << arrivals.size() << " arrivals for " << inputs.size()
                      << " inputs");
  PCNNA_CHECK_MSG(slos.empty() || slos.size() == arrivals.size(),
                  "SLO schedule covers " << slos.size() << " requests but "
                                         << arrivals.size() << " arrive");
  PCNNA_CHECK_MSG(models.empty() || models.size() == arrivals.size(),
                  "model schedule covers " << models.size() << " requests but "
                                           << arrivals.size() << " arrive");
  validate_arrival_schedule(arrivals);

  // On a homogeneous fleet physical serving is identical to the closed
  // batch: arrival times shape only the virtual-time schedule, never the
  // per-request seeds, so the outputs stay bit-identical to
  // run()/run_one(). A heterogeneous fleet additionally follows the
  // schedule's PCU assignment, so outputs are still deterministic. With
  // shedding the schedule is always needed: it decides which requests run.
  AdmissionResult admission;
  if (!pool_.homogeneous() || report || options_.telemetry ||
      options_.shed_expired || options_.faults.enabled() ||
      options_.dispatch == DispatchPolicy::kPipeline)
    admission = simulate_admission_result(arrivals, slos, models);

  const std::size_t batch = inputs.size();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results =
      serve(make_requests(inputs, arrivals, slos, models), admission.schedule,
            options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();
  for (const ShedDecision& d : admission.shed.decisions)
    results[static_cast<std::size_t>(d.id)].shed = true;
  for (const RequestLoss& l : admission.fault.losses)
    results[static_cast<std::size_t>(l.id)].failed = true;

  if (report || options_.telemetry) {
    OpenLoopReport r = summarize_schedule(admission, arrivals);
    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    if (options_.telemetry) {
      options_.telemetry->record_results(results);
      options_.telemetry->record_report(r);
    }
    if (report) *report = std::move(r);
  }
  return results;
}

OpenLoopReport BatchRunner::simulate_open_loop(const ArrivalSchedule& arrivals) {
  return simulate_open_loop(arrivals, SloSchedule{}, ModelSchedule{});
}

OpenLoopReport BatchRunner::simulate_open_loop(const ArrivalSchedule& arrivals,
                                               const SloSchedule& slos) {
  return simulate_open_loop(arrivals, slos, ModelSchedule{});
}

OpenLoopReport BatchRunner::simulate_open_loop(const ArrivalSchedule& arrivals,
                                               const SloSchedule& slos,
                                               const ModelSchedule& models) {
  PCNNA_CHECK_MSG(slos.empty() || slos.size() == arrivals.size(),
                  "SLO schedule covers " << slos.size() << " requests but "
                                         << arrivals.size() << " arrive");
  PCNNA_CHECK_MSG(models.empty() || models.size() == arrivals.size(),
                  "model schedule covers " << models.size() << " requests but "
                                           << arrivals.size() << " arrive");
  validate_arrival_schedule(arrivals);
  const AdmissionResult admission =
      simulate_admission_result(arrivals, slos, models);
  OpenLoopReport r = summarize_schedule(admission, arrivals);
  // Timing-only energy: the per-request analytical total of the PCU each
  // request was dispatched to, which the functional path reproduces
  // (values never change layer energy). Shed requests burn no energy.
  for (const ScheduledService& s : admission.schedule)
    r.total_energy += pool_.pcu(s.pcu).request_energy(s.model);
  r.energy_per_request = r.requests == 0
                             ? 0.0
                             : r.total_energy /
                                   static_cast<double>(r.requests);
  if (options_.telemetry) options_.telemetry->record_report(r);
  return r;
}

AdmissionResult BatchRunner::simulate_admission_result(
    const ArrivalSchedule& arrivals, const SloSchedule& slos,
    const ModelSchedule& models) {
  // Lightweight replay stream: the admission loop needs only ids, arrival
  // timestamps, and SLO/model metadata, so the tensors stay behind.
  RequestQueue queue;
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    InferenceRequest request;
    request.id = id;
    request.arrival_time = arrivals[id];
    if (!slos.empty()) {
      request.tenant = slos[id].tenant;
      request.priority = slos[id].priority;
      request.deadline = slos[id].deadline;
    }
    if (!models.empty()) request.model_id = models[id];
    queue.push(std::move(request));
  }
  queue.close();
  AdmissionOptions admission;
  admission.double_buffer = options_.double_buffer;
  admission.policy = options_.dispatch;
  admission.shed_expired = options_.shed_expired;
  admission.autoscaler = options_.autoscaler;
  admission.faults = options_.faults;
  admission.telemetry = options_.telemetry;
  return pool_.simulate_admission(queue, admission);
}

double BatchRunner::fill_breakdowns(
    const std::vector<ScheduledService>& schedule,
    std::vector<PcuBreakdown>& out) const {
  out.assign(pool_.size(), PcuBreakdown{});
  for (std::size_t p = 0; p < pool_.size(); ++p)
    out[p].tag = pool_.pcu(p).tag();
  double makespan = 0.0;
  for (const ScheduledService& s : schedule) {
    if (!s.stages.empty()) {
      // Pipelined request: the request count goes to the head PCU, but
      // each stage span is busy time on the PCU that actually ran it (the
      // whole-chain completion - start would overcount the head, which is
      // busy only for its own stage). Stage pins land as warmup on their
      // own PCU; pipelined service never swaps.
      out[s.pcu].requests += 1;
      for (const StageService& st : s.stages) {
        out[st.pcu].busy_time += st.completion - st.start;
        out[st.pcu].warmup_time += st.pin;
      }
      makespan = std::max(makespan, s.completion);
      continue;
    }
    PcuBreakdown& b = out[s.pcu];
    b.requests += 1;
    b.busy_time += s.completion - s.start;
    b.warmup_time += s.warmup;
    if (s.swapped) b.swaps += 1;
    b.swap_time += s.swap;
    makespan = std::max(makespan, s.completion);
  }
  if (makespan > 0.0)
    for (PcuBreakdown& b : out) b.utilization = b.busy_time / makespan;
  return makespan;
}

OpenLoopReport BatchRunner::summarize_schedule(
    const AdmissionResult& admission, const ArrivalSchedule& arrivals) const {
  const std::vector<ScheduledService>& schedule = admission.schedule;
  OpenLoopReport r;
  r.pcus = pool_.size();
  r.served_requests = schedule.size();
  r.shed_requests = admission.shed.shed;
  r.failed_requests = admission.fault.losses.size();
  r.fault = admission.fault;
  r.requests =
      r.served_requests + r.shed_requests + r.failed_requests; // offered
  r.shed_rate = r.requests == 0
                    ? 0.0
                    : static_cast<double>(r.shed_requests) /
                          static_cast<double>(r.requests);
  r.autoscaler = admission.autoscaler;
  r.pipeline = admission.pipeline;
  r.fidelity = options_.fidelity;
  r.double_buffer = options_.double_buffer;
  r.dispatch = options_.dispatch;
  r.offered_rps = offered_rate(arrivals);

  // Saturation throughput. Under kPipeline each group admits one image per
  // bottleneck-stage interval (the slowest stage gates the stream), and
  // the PCUs it reserves contribute through the group, not individually;
  // the unreserved rest of the fleet adds its usual per-PCU rates.
  std::vector<unsigned char> reserved(pool_.size(), 0);
  if (options_.dispatch == DispatchPolicy::kPipeline) {
    for (std::size_t g = 0; g < pool_.num_pipelines(); ++g) {
      const PipelineGroup& group = pool_.pipeline(g);
      for (std::size_t p : group.members) reserved[p] = 1;
      double bottleneck = 0.0;
      for (const PipelineStage& st : group.stages)
        bottleneck = std::max(bottleneck, st.timings.interval);
      if (bottleneck > 0.0) r.fleet_capacity_rps += 1.0 / bottleneck;
    }
  }
  for (std::size_t p = 0; p < r.pcus; ++p) {
    if (reserved[p]) continue;
    const Pcu& pcu = pool_.pcu(p);
    const double interval = options_.double_buffer
                                ? pcu.request_interval_overlapped()
                                : pcu.request_time_serial();
    if (interval > 0.0) r.fleet_capacity_rps += 1.0 / interval;
  }
  r.load_factor = std::isinf(r.offered_rps) || r.fleet_capacity_rps <= 0.0
                      ? 0.0
                      : r.offered_rps / r.fleet_capacity_rps;

  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<double> retry_latencies;
  latencies.reserve(schedule.size());
  waits.reserve(schedule.size());
  double wait_sum = 0.0;
  for (const ScheduledService& s : schedule) {
    latencies.push_back(s.completion - s.arrival);
    waits.push_back(s.start - s.arrival);
    wait_sum += s.start - s.arrival;
    // A served request that needed retries carries its original arrival,
    // so its sojourn includes every destroyed attempt and backoff delay —
    // the latency tail fault tolerance adds.
    if (s.attempts > 1) retry_latencies.push_back(s.completion - s.arrival);
  }
  // Shed requests sat in the queue from arrival to the shed decision;
  // that residency is real queue occupancy even though they were never
  // served, so it counts toward the time-averaged depth (but not toward
  // the served-latency distributions).
  for (const ShedDecision& d : admission.shed.decisions)
    wait_sum += d.decision_time - d.arrival;
  r.latency = summarize_distribution(std::move(latencies));
  r.queue_wait = summarize_distribution(std::move(waits));
  r.retry_latency = summarize_distribution(std::move(retry_latencies));

  r.makespan = fill_breakdowns(schedule, r.per_pcu);
  for (std::size_t p = 0;
       p < r.per_pcu.size() && p < admission.fault.per_pcu.size(); ++p) {
    r.per_pcu[p].lost_attempts = admission.fault.per_pcu[p].lost_attempts;
    r.per_pcu[p].lost_time = admission.fault.per_pcu[p].lost_time;
  }
  r.virtual_requests_per_pcu.resize(r.pcus);
  r.utilization_per_pcu.resize(r.pcus);
  for (std::size_t p = 0; p < r.pcus; ++p) {
    r.virtual_requests_per_pcu[p] = r.per_pcu[p].requests;
    r.utilization_per_pcu[p] = r.per_pcu[p].utilization;
    r.model_swaps += r.per_pcu[p].swaps;
    r.model_swap_time += r.per_pcu[p].swap_time;
  }

  if (r.makespan > 0.0) {
    r.achieved_rps = static_cast<double>(r.served_requests) / r.makespan;
    // Little's law on the wait room: time-averaged queue depth equals
    // total waiting time over the observation window.
    r.mean_queue_depth = wait_sum / r.makespan;
  }

  // Per-tenant SLO slices, only for runs that actually carried SLO
  // metadata — legacy reports keep their trivial defaults.
  bool slo_aware = admission.shed.shed > 0;
  for (const ScheduledService& s : schedule) {
    if (s.tenant != 0 || s.priority != PriorityClass::kStandard ||
        std::isfinite(s.deadline)) {
      slo_aware = true;
      break;
    }
  }
  if (slo_aware) {
    std::map<std::uint32_t, TenantBreakdown> tenants;
    std::map<std::uint32_t, std::vector<double>> tenant_latencies;
    for (const ScheduledService& s : schedule) {
      TenantBreakdown& t = tenants[s.tenant];
      t.tenant = s.tenant;
      t.requests += 1;
      t.served += 1;
      if (s.completion > s.deadline) t.slo_misses += 1;
      tenant_latencies[s.tenant].push_back(s.completion - s.arrival);
    }
    for (const ShedDecision& d : admission.shed.decisions) {
      TenantBreakdown& t = tenants[d.tenant];
      t.tenant = d.tenant;
      t.requests += 1;
      t.shed += 1;
      t.slo_misses += 1; // a shed request never meets its SLO
    }
    for (const RequestLoss& l : admission.fault.losses) {
      TenantBreakdown& t = tenants[l.tenant];
      t.tenant = l.tenant;
      t.requests += 1;
      t.failed += 1;
      t.slo_misses += 1; // a destroyed request never meets its SLO
    }
    std::size_t misses = 0;
    for (auto& [tenant, t] : tenants) {
      misses += t.slo_misses;
      t.slo_attainment =
          t.requests == 0
              ? 1.0
              : static_cast<double>(t.requests - t.slo_misses) /
                    static_cast<double>(t.requests);
      t.latency = summarize_distribution(std::move(tenant_latencies[tenant]));
      r.per_tenant.push_back(std::move(t));
    }
    r.slo_attainment = r.requests == 0
                           ? 1.0
                           : static_cast<double>(r.requests - misses) /
                                 static_cast<double>(r.requests);
  }
  // Energy is filled by the caller: run_open_loop sums the functional
  // RequestResults, simulate_open_loop the analytical per-request totals.
  return r;
}

RequestResult BatchRunner::run_one(const nn::Tensor& input, std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  request.seed = derive_request_seed(options_.seed, id);
  request.input = input;
  return pool_.pcu(0).serve(request, options_.simulate_values);
}

namespace {

/// Shared per-PCU schedule table: index, tag, requests, utilization, time
/// spent re-filling the double-buffer pipeline, and weight-bank swaps paid
/// to switch models.
void print_breakdowns(const std::vector<PcuBreakdown>& per_pcu,
                      std::ostream& os) {
  TextTable pcus({"virtual PCU", "tag", "requests", "utilization",
                  "warmup time", "swaps", "swap time"});
  for (std::size_t p = 0; p < per_pcu.size(); ++p) {
    const PcuBreakdown& b = per_pcu[p];
    pcus.add_row({std::to_string(p), b.tag.empty() ? "-" : b.tag,
                  std::to_string(b.requests),
                  format_fixed(100.0 * b.utilization, 1) + " %",
                  format_time(b.warmup_time), std::to_string(b.swaps),
                  format_time(b.swap_time)});
  }
  pcus.print(os, "per-PCU schedule");
}

} // namespace

void BatchRunner::print_report(const FleetReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity",
                 core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_row({"dispatch policy",
                 dispatch_policy_name(report.dispatch)});
  table.add_separator();
  table.add_row({"request time (serial)",
                 format_time(report.request_time_serial)});
  table.add_row({"request interval (overlapped)",
                 format_time(report.request_interval)});
  table.add_row({"overlap speedup",
                 format_fixed(report.overlap_speedup, 3) + "x"});
  table.add_row({"serial rate (1 PCU)",
                 format_count(report.sequential_rps) + " req/s"});
  table.add_separator();
  table.add_row({"makespan (1 PCU, serial)",
                 format_time(report.makespan_sequential)});
  table.add_row({"makespan (fleet)", format_time(report.makespan)});
  table.add_row({"throughput",
                 format_count(report.throughput_rps) + " req/s"});
  table.add_row({"speedup vs sequential",
                 format_fixed(report.speedup_vs_sequential, 3) + "x"});
  table.add_row({"scaling efficiency",
                 format_fixed(100.0 * report.scaling_efficiency, 1) + " %"});
  table.add_row({"mean latency", format_time(report.mean_latency)});
  table.add_row({"max latency", format_time(report.max_latency)});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time",
                 format_time(report.wall_seconds)});
  table.print(os, title);

  print_breakdowns(report.per_pcu, os);
}

void BatchRunner::print_report(const OpenLoopReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity", core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_row({"dispatch policy",
                 dispatch_policy_name(report.dispatch)});
  table.add_separator();
  table.add_row({"offered load",
                 std::isinf(report.offered_rps)
                     ? "inf (closed batch)"
                     : format_count(report.offered_rps) + " req/s"});
  table.add_row({"achieved throughput",
                 format_count(report.achieved_rps) + " req/s"});
  table.add_row({"fleet capacity",
                 format_count(report.fleet_capacity_rps) + " req/s"});
  table.add_row({"load factor (rho)",
                 format_fixed(report.load_factor, 3)});
  table.add_row({"makespan", format_time(report.makespan)});
  table.add_separator();
  table.add_row({"latency p50", format_time(report.latency.p50)});
  table.add_row({"latency p90", format_time(report.latency.p90)});
  table.add_row({"latency p99", format_time(report.latency.p99)});
  table.add_row({"latency p99.9", format_time(report.latency.p999)});
  table.add_row({"latency mean", format_time(report.latency.mean)});
  table.add_row({"latency max", format_time(report.latency.max)});
  table.add_row({"queue wait mean", format_time(report.queue_wait.mean)});
  table.add_row({"queue wait p99", format_time(report.queue_wait.p99)});
  table.add_row({"mean queue depth",
                 format_fixed(report.mean_queue_depth, 2) + " req"});
  table.add_separator();
  if (!report.per_tenant.empty()) {
    table.add_row({"served requests",
                   std::to_string(report.served_requests)});
    table.add_row({"shed requests",
                   std::to_string(report.shed_requests) + " (" +
                       format_fixed(100.0 * report.shed_rate, 1) + " %)"});
    table.add_row({"SLO attainment",
                   format_fixed(100.0 * report.slo_attainment, 2) + " %"});
  }
  if (report.model_swaps > 0) {
    table.add_row({"model swaps",
                   std::to_string(report.model_swaps) + " (" +
                       format_time(report.model_swap_time) + ")"});
  }
  if (report.pipeline.pipelined_requests > 0) {
    table.add_separator();
    table.add_row({"pipeline groups",
                   std::to_string(report.pipeline.groups)});
    table.add_row({"pipelined requests",
                   std::to_string(report.pipeline.pipelined_requests)});
    table.add_row({"stage spans",
                   std::to_string(report.pipeline.stage_spans)});
    table.add_row({"stage re-placements",
                   std::to_string(report.pipeline.replacements)});
    table.add_row({"stage pin time",
                   format_time(report.pipeline.pin_time)});
    table.add_row({"stage hand-off time",
                   format_time(report.pipeline.handoff_time)});
  }
  if (report.fault.injections > 0) {
    table.add_separator();
    table.add_row({"fault injections",
                   std::to_string(report.fault.injections)});
    table.add_row({"crash losses",
                   std::to_string(report.fault.crash_losses)});
    table.add_row({"transient corruptions",
                   std::to_string(report.fault.transient_corruptions)});
    // Retry / quarantine rows only when the machinery actually acted:
    // a fault-blind run (health_aware == false) injects faults but never
    // retries, quarantines, or repairs — printing those all-zero rows
    // suggests the feature ran when it was structurally disabled.
    if (report.fault.retries > 0) {
      table.add_row({"retries", std::to_string(report.fault.retries)});
      table.add_row({"recovered requests",
                     std::to_string(report.fault.recovered_requests)});
    }
    table.add_row({"failed requests",
                   std::to_string(report.failed_requests)});
    if (report.fault.quarantines + report.fault.repairs +
            report.fault.plan_epoch_bumps >
        0) {
      table.add_row({"quarantines",
                     std::to_string(report.fault.quarantines)});
      table.add_row({"repairs",
                     std::to_string(report.fault.repairs) + " (" +
                         format_time(report.fault.repair_time) + ")"});
      table.add_row({"plan epoch bumps",
                     std::to_string(report.fault.plan_epoch_bumps)});
    }
    if (report.retry_latency.count > 0) {
      table.add_row({"retry latency p99",
                     format_time(report.retry_latency.p99)});
    }
  }
  if (report.autoscaler.scale_ups > 0 || report.autoscaler.scale_downs > 0 ||
      (report.autoscaler.mean_active > 0.0 &&
       report.autoscaler.mean_active !=
           static_cast<double>(report.pcus))) {
    table.add_separator();
    table.add_row({"autoscaler mean active",
                   format_fixed(report.autoscaler.mean_active, 2) + " PCU"});
    table.add_row({"autoscaler scale-ups",
                   std::to_string(report.autoscaler.scale_ups)});
    table.add_row({"autoscaler scale-downs",
                   std::to_string(report.autoscaler.scale_downs)});
  }
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time", format_time(report.wall_seconds)});
  table.print(os, title);

  if (!report.per_tenant.empty()) {
    TextTable tenants({"tenant", "requests", "served", "shed", "failed",
                       "SLO attainment", "latency p99"});
    for (const TenantBreakdown& t : report.per_tenant)
      tenants.add_row({std::to_string(t.tenant), std::to_string(t.requests),
                       std::to_string(t.served), std::to_string(t.shed),
                       std::to_string(t.failed),
                       format_fixed(100.0 * t.slo_attainment, 2) + " %",
                       format_time(t.latency.p99)});
    tenants.print(os, "per-tenant SLO");
  }

  print_breakdowns(report.per_pcu, os);

  if (report.fault.injections > 0 && !report.fault.per_pcu.empty()) {
    TextTable health({"virtual PCU", "transients", "degrades", "crashes",
                      "quarantines", "repairs", "lost attempts",
                      "availability"});
    for (std::size_t p = 0; p < report.fault.per_pcu.size(); ++p) {
      const PcuHealthStats& h = report.fault.per_pcu[p];
      health.add_row({std::to_string(p), std::to_string(h.transients),
                      std::to_string(h.degrades), std::to_string(h.crashes),
                      std::to_string(h.quarantines), std::to_string(h.repairs),
                      std::to_string(h.lost_attempts),
                      format_fixed(100.0 * h.availability, 2) + " %"});
    }
    health.print(os, "per-PCU health");
  }
}

} // namespace pcnna::runtime
