#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/format.hpp"
#include "common/report.hpp"

namespace pcnna::runtime {

BatchRunner::BatchRunner(core::PcnnaConfig config, nn::Network net,
                         nn::NetWeights weights, BatchRunnerOptions options)
    : config_(std::move(config)),
      net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      pool_(options.num_pcus, config_, options.fidelity, net_, weights_) {}

std::vector<RequestResult> BatchRunner::run(
    const std::vector<nn::Tensor>& inputs, FleetReport* report) {
  const std::size_t batch = inputs.size();

  RequestQueue queue;
  for (std::size_t id = 0; id < batch; ++id) {
    InferenceRequest request;
    request.id = id;
    request.seed = derive_request_seed(options_.seed, id);
    request.input = inputs[id];
    queue.push(std::move(request));
  }
  queue.close();

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RequestResult> results =
      pool_.serve_all(queue, batch, options_.simulate_values);
  const auto wall_end = std::chrono::steady_clock::now();

  if (report) {
    const Pcu& reference = pool_.pcu(0);
    FleetReport r;
    r.pcus = pool_.size();
    r.requests = batch;
    r.fidelity = options_.fidelity;
    r.double_buffer = options_.double_buffer;
    r.request_time_serial = reference.request_time_serial();
    r.request_interval = options_.double_buffer
                             ? reference.request_interval_overlapped()
                             : reference.request_time_serial();
    r.overlap_speedup = r.request_interval > 0.0
                            ? r.request_time_serial / r.request_interval
                            : 1.0;
    const double warmup = options_.double_buffer ? reference.warmup_time() : 0.0;

    // Deterministic virtual-time schedule: requests in id order onto the
    // least-loaded virtual PCU (ties -> lowest index). With a homogeneous
    // pool this is round-robin, but the loop stays correct for future
    // heterogeneous fleets.
    std::vector<double> load(r.pcus, 0.0);
    r.virtual_requests_per_pcu.assign(r.pcus, 0);
    double latency_sum = 0.0;
    for (std::size_t id = 0; id < batch; ++id) {
      const std::size_t p = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      load[p] += r.request_interval;
      r.virtual_requests_per_pcu[p] += 1;
      const double completion = warmup + load[p];
      latency_sum += completion;
      r.max_latency = std::max(r.max_latency, completion);
    }
    r.makespan_sequential =
        static_cast<double>(batch) * r.request_time_serial;
    r.makespan = batch == 0
                     ? 0.0
                     : warmup + *std::max_element(load.begin(), load.end());
    r.throughput_rps =
        r.makespan > 0.0 ? static_cast<double>(batch) / r.makespan : 0.0;
    r.speedup_vs_sequential =
        r.makespan > 0.0 ? r.makespan_sequential / r.makespan : 1.0;
    r.scaling_efficiency =
        r.speedup_vs_sequential / static_cast<double>(r.pcus);
    r.mean_latency = batch == 0 ? 0.0 : latency_sum / static_cast<double>(batch);

    for (const RequestResult& result : results) r.total_energy += result.energy;
    r.energy_per_request =
        batch == 0 ? 0.0 : r.total_energy / static_cast<double>(batch);
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    *report = std::move(r);
  }
  return results;
}

RequestResult BatchRunner::run_one(const nn::Tensor& input, std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  request.seed = derive_request_seed(options_.seed, id);
  request.input = input;
  return pool_.pcu(0).serve(request, options_.simulate_values);
}

void BatchRunner::print_report(const FleetReport& report, std::ostream& os,
                               const std::string& title) {
  TextTable table({"metric", "value"});
  table.add_row({"PCUs", std::to_string(report.pcus)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"fidelity",
                 core::timing_fidelity_name(report.fidelity)});
  table.add_row({"double-buffered recal",
                 report.double_buffer ? "yes" : "no"});
  table.add_separator();
  table.add_row({"request time (serial)",
                 format_time(report.request_time_serial)});
  table.add_row({"request interval (overlapped)",
                 format_time(report.request_interval)});
  table.add_row({"overlap speedup",
                 format_fixed(report.overlap_speedup, 3) + "x"});
  table.add_separator();
  table.add_row({"makespan (1 PCU, serial)",
                 format_time(report.makespan_sequential)});
  table.add_row({"makespan (fleet)", format_time(report.makespan)});
  table.add_row({"throughput",
                 format_count(report.throughput_rps) + " req/s"});
  table.add_row({"speedup vs sequential",
                 format_fixed(report.speedup_vs_sequential, 3) + "x"});
  table.add_row({"scaling efficiency",
                 format_fixed(100.0 * report.scaling_efficiency, 1) + " %"});
  table.add_row({"mean latency", format_time(report.mean_latency)});
  table.add_row({"max latency", format_time(report.max_latency)});
  table.add_separator();
  table.add_row({"energy / request", format_energy(report.energy_per_request)});
  table.add_row({"fleet energy", format_energy(report.total_energy)});
  table.add_row({"host wall time",
                 format_time(report.wall_seconds)});
  table.print(os, title);

  TextTable shards({"virtual PCU", "requests"});
  for (std::size_t p = 0; p < report.virtual_requests_per_pcu.size(); ++p)
    shards.add_row({std::to_string(p),
                    std::to_string(report.virtual_requests_per_pcu[p])});
  shards.print(os, "virtual shard assignment");
}

} // namespace pcnna::runtime
