// Fleet of PCUs draining a shared RequestQueue — homogeneous or
// heterogeneous.
//
// A PcuPool is built from a vector of PcuSpec (one per PCU: its own
// PcnnaConfig, engine-thread override, warmup policy, capability tag), or
// from the legacy (count, config) form that replicates one spec N times.
// PCNNA's throughput is set by per-device budgets — ring counts per weight
// bank, DAC counts, WDM channel limits — so a realistic fleet mixes
// big-budget PCUs for wide layers with small cheap ones.
//
// Two jobs, deliberately separated:
//
//  * Physical simulation (serve_all / serve_scheduled): worker threads do
//    the functional inference work on the host. Each Pcu is owned by
//    exactly one worker thread for the duration of a call — workers never
//    share a Pcu, so Pcu::serve needs no locking; distinct Pcus serve
//    concurrently. In the homogeneous serve_all mode, workers pull
//    requests off the queue dynamically (a slow host thread simply grabs
//    fewer) — safe because every request carries its own engine seed, so
//    sharding changes only *who* computes a result, never the result. In
//    the heterogeneous serve_scheduled mode the physical assignment must
//    follow the deterministic virtual-time schedule instead, because PCUs
//    with different device models produce different (all valid) outputs.
//
//  * Timing accounting (simulate_admission): a single-threaded,
//    deterministic virtual-time loop that replays the request stream
//    against its arrival timestamps, charges each request its queueing
//    delay, and dispatches by a pluggable DispatchPolicy. All reported
//    latency/throughput numbers come from this schedule, never from host
//    thread interleaving.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "nn/network.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/pcu.hpp"
#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

class Telemetry;

/// Construction recipe for one PCU of a (possibly heterogeneous) fleet.
struct PcuSpec {
  /// This PCU's hardware model: ring/WDM budgets, DAC/ADC counts,
  /// fidelity-limiting impairments — everything core::PcnnaConfig holds.
  core::PcnnaConfig config;
  /// Intra-image engine threads for this PCU; > 0 overrides
  /// config.engine_threads (same semantics, bit-identical outputs for any
  /// value). 0 keeps the config's own setting.
  std::size_t engine_threads = 0;
  /// Pipeline-fill accounting for this PCU on the double-buffered schedule.
  WarmupPolicy warmup = WarmupPolicy::kRechargeAfterIdle;
  /// Free-form capability label ("big", "edge", ...) surfaced in per-PCU
  /// report breakdowns; never interpreted by the runtime.
  std::string tag;
};

/// How simulate_admission picks a PCU for each admitted request. Every
/// policy is deterministic: candidates are scored from the (deterministic)
/// virtual-time state only, ties break toward the lowest PCU index.
enum class DispatchPolicy {
  /// Dispatch to the PCU whose previous work finishes earliest — the
  /// pre-heterogeneous behavior, and the bit-compatibility default. Blind
  /// to per-PCU speed: on a mixed fleet an idle slow PCU wins over a
  /// nearly-free fast one even when the fast one would complete sooner.
  kEarliestFree,
  /// Dispatch to the PCU that would *complete* the request earliest,
  /// scoring max(arrival, free) + service (warmup included per the PCU's
  /// policy). On a homogeneous fleet of equal state this matches
  /// kEarliestFree; on a mixed fleet it routes work to fast PCUs until
  /// their backlog makes a slow PCU competitive.
  kLeastLoaded,
  /// kLeastLoaded restricted to *capable* PCUs: those whose WDM/ring
  /// budget maps the served network with the fleet-minimum number of
  /// segmented bank passes (Pcu::channel_split_passes). PCUs that would
  /// need extra splits — and therefore extra passes, ADC samples, and
  /// time — are skipped entirely.
  kCapabilityAware,
  /// Class-partitioned earliest-deadline-first: among every request that
  /// has *arrived but not yet started*, dispatch the most urgent one —
  /// strictly by PriorityClass, then by earliest absolute deadline, then
  /// by arrival and id — to the free PCU with the earliest predicted
  /// completion, as soon as one is free. Unlike the FIFO policies above, a
  /// later arrival with a tighter deadline overtakes queued work, so
  /// dispatch commitments are deferred to the moment a PCU actually frees
  /// (the event-driven admission mode; see simulate_admission).
  kEdf,
  /// Swap-aware multi-model dispatch. Prefers a free PCU already
  /// programmed with the request's model (zero swap); when every affine
  /// PCU is busy, the request *waits for one* as long as waiting neither
  /// blows its deadline nor finishes later than swapping onto the best
  /// free capable PCU right now — otherwise it falls back to
  /// least-loaded-capable and pays the swap. Requests are considered in
  /// the same urgency order as kEdf (class, deadline, arrival, id), so a
  /// run without SLO metadata degenerates to FIFO with model reordering;
  /// shedding and the autoscaler compose unchanged. The only policy whose
  /// completion predictions include the swap charge — the legacy policies
  /// are deliberately model-blind (that asymmetry is what the multi-model
  /// bench measures). Always event-driven: deferral decisions need the
  /// fleet state at the moment a PCU frees.
  kModelAffinity,
  /// Pipeline-parallel serving. A request whose model has a PipelineGroup
  /// (see PcuPool::build_pipeline) is routed to the group's head stage as
  /// soon as the head PCU is free; its service is the chain of per-stage
  /// spans — stage n of image i overlapping stage n-1 of image i+1 — with
  /// the inter-stage activation hand-off charged at every boundary. Stage
  /// banks are pinned: the first image through a stage pays its pin and
  /// the group never swaps afterwards. Requests whose model has no group
  /// (or whose group lost every healthy member) fall back to least-loaded
  /// over the PCUs no group reserves. Pending requests are considered in
  /// EDF urgency order, and shedding, the autoscaler (reserved PCUs are
  /// held active), and fault quarantine compose — a quarantined or
  /// crashed stage PCU triggers a deterministic re-placement of the group
  /// over its remaining healthy members. Always event-driven.
  kPipeline,
};

const char* dispatch_policy_name(DispatchPolicy policy);

/// All built-in policies, in enum order (for sweeps over policies).
inline constexpr DispatchPolicy kAllDispatchPolicies[] = {
    DispatchPolicy::kEarliestFree, DispatchPolicy::kLeastLoaded,
    DispatchPolicy::kCapabilityAware, DispatchPolicy::kEdf,
    DispatchPolicy::kModelAffinity, DispatchPolicy::kPipeline};

/// One pinned stage of a PipelineGroup: a contiguous op range of the
/// group's model resident on one PCU. Timing constants come from that
/// PCU's Pcu::stage_timings and are refreshed on re-placement.
struct PipelineStage {
  std::size_t pcu = 0;
  std::size_t op_begin = 0;
  std::size_t op_end = 0;
  /// Partitioner balance cost of the range (channel_split_passes share).
  std::size_t cost = 0;
  StageTimings timings;
};

/// A model pinned across a chain of PCUs, one contiguous layer range each.
/// Built by PcuPool::build_pipeline; DispatchPolicy::kPipeline routes the
/// model's requests through it head-first.
struct PipelineGroup {
  std::uint32_t model = 0;
  /// Inter-stage activation hand-off charged at each stage boundary [s]
  /// (the feature map leaves stage n's DRAM and enters stage n+1's).
  double handoff_time = 0.0;
  /// The PCUs this group may place stages on (the build-time set, fixed).
  std::vector<std::size_t> members;
  /// Per-op partition weights (priced on the strongest member at build).
  std::vector<std::size_t> op_costs;
  /// Current placement, head first. Re-placement after quarantine keeps
  /// `members`/`op_costs` and rebuilds this vector deterministically;
  /// empty when no member is healthy (the group is down).
  std::vector<PipelineStage> stages;
};

/// One stage's span inside a pipelined request's service — the per-stage
/// breakdown of a ScheduledService whose model ran on a PipelineGroup.
struct StageService {
  std::size_t stage = 0; ///< stage index within the group
  std::size_t pcu = 0;   ///< PCU the stage ran on
  std::size_t op_begin = 0; ///< op range the stage ran
  std::size_t op_end = 0;
  double start = 0.0;      ///< [s]
  double completion = 0.0; ///< [s]
  /// One-time bank pin charged inside this span [s]; 0 once the stage is
  /// warm (a pinned stage never re-pays it and never swaps).
  double pin = 0.0;
  /// Activation hand-off charged between the previous stage's completion
  /// and this span's start [s]; 0 for the head stage.
  double handoff = 0.0;
};

/// Pipeline outcome of one admission run (zeros without pipeline groups).
struct PipelineStats {
  std::size_t groups = 0;            ///< groups configured on the pool
  std::size_t pipelined_requests = 0;///< requests served through a group
  std::size_t stage_spans = 0;       ///< total per-stage spans committed
  std::size_t replacements = 0;      ///< deterministic stage re-placements
  double pin_time = 0.0;             ///< Σ pins charged [s]
  double handoff_time = 0.0;         ///< Σ hand-offs charged [s]
};

/// One request's place in the deterministic virtual-time schedule.
/// All times are simulated seconds; queueing delay is start - arrival,
/// sojourn (reported request latency) is completion - arrival.
struct ScheduledService {
  std::uint64_t id = 0;
  std::size_t pcu = 0;     ///< virtual PCU the request was dispatched to
  double arrival = 0.0;    ///< [s]
  double start = 0.0;      ///< service start: max(arrival, PCU free) [s]
  double completion = 0.0; ///< [s]
  /// Pipeline-fill warmup charged inside [start, completion] [s]; 0 on the
  /// serial (non-double-buffered) schedule and within warm streaks.
  double warmup = 0.0;
  // Serving metadata carried through from the InferenceRequest so reports
  // can break the schedule down per tenant / priority / SLO.
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  double deadline = std::numeric_limits<double>::infinity(); ///< [s]
  /// Registered model the request ran (InferenceRequest::model_id).
  std::uint32_t model = 0;
  /// Weight-bank swap charged inside [start, completion] because this
  /// dispatch switched the PCU's programmed model [s]; 0 when the PCU was
  /// already programmed with `model` (or on the serial schedule, which
  /// pays every recalibration inline).
  double swap = 0.0;
  /// True when this dispatch reprogrammed the PCU from a *different*
  /// model. Distinct from swap > 0: under TimingFidelity::kPaper
  /// recalibration is free, so a real switch can charge zero seconds.
  bool swapped = false;
  /// 1-based service attempt this entry records. > 1 means injected faults
  /// destroyed earlier attempts and this is the retry that finally served
  /// the request (always 1 without fault injection).
  std::uint32_t attempts = 1;
  /// Per-stage spans when this request ran on a PipelineGroup (pcu is then
  /// the head stage's PCU, start/completion the chain's ends, and warmup
  /// the total pin charged across stages). Empty for non-pipelined
  /// service.
  std::vector<StageService> stages;
};

/// Elastic fleet sizing for the admission loop. When enabled, dispatch
/// sees only the *active* subset of the pool: the loop grows the set
/// (lowest inactive index first) when the pending backlog exceeds
/// backlog_per_pcu requests per active PCU, and shrinks it (highest
/// active index first, never below min_active) when a PCU has sat idle
/// for shrink_after_idle simulated seconds. A (re)activated PCU is forced
/// cold: its next request pays the pipeline-fill warmup regardless of its
/// WarmupPolicy — the cold-start cost the autoscaler has to reason about.
/// Enabling the autoscaler routes admission through the event-driven mode
/// (see simulate_admission).
struct AutoscalerPolicy {
  bool enabled = false;
  /// Lower bound on the active set; the initial active set is the
  /// min_active lowest-indexed PCUs. Must be >= 1 and <= max_active.
  std::size_t min_active = 1;
  /// Upper bound on the active set; 0 means the whole pool.
  std::size_t max_active = 0;
  /// Scale up when pending requests > backlog_per_pcu * active count.
  double backlog_per_pcu = 2.0;
  /// Deactivate a PCU idle at least this long [s]; <= 0 disables
  /// shrinking. Idleness is evaluated at admission events, so an idle PCU
  /// is deactivated at the first event past the threshold.
  double shrink_after_idle = 0.0;
};

/// Everything that shapes one admission-loop run (the long form of
/// simulate_admission; the (double_buffer, policy) overload is the
/// backward-compatible shorthand).
struct AdmissionOptions {
  /// Price service as the double-buffered steady-state interval plus
  /// warmup (true) or the serial request time (false).
  bool double_buffer = true;
  DispatchPolicy policy = DispatchPolicy::kEarliestFree;
  /// Load shedding: reject a request at the moment it would be dispatched
  /// if the predicted completion of that dispatch would exceed the
  /// request's deadline, instead of serving it late. Shed requests occupy
  /// no PCU time and are reported in AdmissionResult::shed. Requests
  /// without a deadline (+inf) are never shed. Forces the event-driven
  /// admission mode.
  bool shed_expired = false;
  AutoscalerPolicy autoscaler;
  /// Fault injection and tolerance: a timed FaultSchedule to replay plus
  /// health-aware dispatch, retry-with-backoff, and quarantine/repair
  /// knobs (see fault_plan.hpp). The default (empty schedule) bypasses
  /// every fault code path — the resulting schedule is bit-identical to a
  /// run without fault machinery for every dispatch policy. A non-empty
  /// schedule forces the event-driven admission mode.
  FaultOptions faults;
  /// Opt-in observability (runtime/telemetry.hpp). Borrowed; may be null
  /// (the default — telemetry off). When set, the loop feeds it read-only
  /// hooks and records the finished result; the schedule itself is
  /// bitwise identical either way (observation, not perturbation).
  Telemetry* telemetry = nullptr;
};

/// One load-shedding decision: the request that was rejected and when.
struct ShedDecision {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  double arrival = 0.0;       ///< [s]
  double deadline = 0.0;      ///< the SLO it would have missed [s]
  double decision_time = 0.0; ///< virtual time the shed was decided [s]
};

/// Load-shedding outcome of one admission run.
struct ShedReport {
  std::size_t shed = 0; ///< total rejected requests
  /// Rejections per tenant id (only tenants with at least one shed).
  std::map<std::uint32_t, std::size_t> per_tenant;
  /// Every decision, in shed order.
  std::vector<ShedDecision> decisions;
};

/// Elastic-sizing outcome of one admission run.
struct AutoscalerStats {
  std::size_t scale_ups = 0;   ///< PCU activations (cold starts charged)
  std::size_t scale_downs = 0; ///< PCU deactivations
  /// Time-averaged active-set size over [0, makespan]; the full pool size
  /// when the autoscaler is disabled.
  double mean_active = 0.0;
};

/// Full result of one admission-loop run: the deterministic virtual-time
/// schedule of the *served* requests plus shedding and sizing outcomes.
struct AdmissionResult {
  std::vector<ScheduledService> schedule;
  ShedReport shed;
  AutoscalerStats autoscaler;
  /// Fault-tolerance outcome (trivial when AdmissionOptions::faults is
  /// empty). Requests in `fault.losses` appear in no schedule entry.
  FaultReport fault;
  /// Pipeline-parallel outcome (zeros unless groups are configured and
  /// the policy is DispatchPolicy::kPipeline).
  PipelineStats pipeline;
};

class PcuPool {
 public:
  /// Build one PCU per spec, serving `net`. `net`/`weights` are borrowed
  /// and must outlive the pool; `specs` is consumed. `fidelity` applies
  /// fleet-wide (it selects the timing *model*, not a device budget).
  /// Throws if `specs` is empty or any spec's config cannot map the
  /// network (SRAM working-set overflow).
  PcuPool(std::vector<PcuSpec> specs, core::TimingFidelity fidelity,
          const nn::Network& net, const nn::NetWeights& weights);

  /// Legacy homogeneous form: `num_pcus` identical replicas of `config`.
  /// Exactly equivalent to a vector of `num_pcus` default-policy specs —
  /// reports and outputs are bit-identical between the two forms.
  PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
          core::TimingFidelity fidelity, const nn::Network& net,
          const nn::NetWeights& weights);

  std::size_t size() const { return pcus_.size(); }
  const Pcu& pcu(std::size_t i) const { return pcus_[i]; }
  Pcu& pcu(std::size_t i) { return pcus_[i]; }

  /// Register another model on every PCU of the fleet (borrowed;
  /// net/weights must outlive the pool). Returns the new model id — dense,
  /// starting at 1; id 0 is the primary model the pool was built with.
  /// Requests carry their target via InferenceRequest::model_id, and the
  /// admission loop charges a weight-bank swap whenever a dispatch
  /// switches a PCU's programmed model (see Pcu::swap_time).
  std::uint32_t register_model(const nn::Network& net,
                               const nn::NetWeights& weights);

  /// Number of registered models (>= 1).
  std::size_t num_models() const { return min_split_passes_.size(); }

  /// True when every PCU was built from an identical spec (the legacy
  /// constructor, or a spec vector whose entries all match). Homogeneous
  /// pools may shard functional work dynamically; heterogeneous ones must
  /// serve on the scheduled PCU (serve_scheduled).
  bool homogeneous() const { return homogeneous_; }

  /// Fleet-minimum Pcu::channel_split_passes for one model — the bar a
  /// PCU must meet to be *capable* of that model under
  /// DispatchPolicy::kCapabilityAware and for kModelAffinity's
  /// least-loaded-capable fallback.
  std::size_t min_split_passes(std::uint32_t model = 0) const {
    return min_split_passes_.at(model);
  }

  /// Build a pipeline group for `model` over `pcus`: core::StagePartitioner
  /// splits the model into pcus.size() contiguous op ranges balanced by
  /// channel_split_passes (costs priced on the strongest member), and the
  /// capability assignment gives the heaviest stage to the strongest PCU —
  /// steering small-core members to light stages. `handoff_time` is the
  /// activation hand-off charged per stage boundary [s]. Returns the group
  /// index. At most one group per model; a PCU may belong to at most one
  /// group (its banks are pinned to that group's stage). Only
  /// DispatchPolicy::kPipeline consults groups — every other policy
  /// ignores them entirely.
  std::size_t build_pipeline(std::uint32_t model,
                             const std::vector<std::size_t>& pcus,
                             double handoff_time = 0.0);

  std::size_t num_pipelines() const { return groups_.size(); }
  const PipelineGroup& pipeline(std::size_t group) const {
    return groups_.at(group);
  }
  /// The group serving `model`, or nullptr if none was built for it.
  const PipelineGroup* pipeline_for_model(std::uint32_t model) const;

  /// Re-place a group's stages over `candidates` (healthy members):
  /// re-partition op_costs into min(members, candidates) ranges, reassign
  /// heaviest-stage-to-strongest-PCU, and refresh stage timings from the
  /// owning PCUs. Clears g.stages when `candidates` is empty. Pure
  /// function of (g.members ∩ candidates) — the deterministic
  /// re-placement the admission loop runs when a stage PCU is quarantined
  /// (on a *copy* of the group; the pool's own groups never mutate).
  void place_pipeline(PipelineGroup& g,
                      const std::vector<std::size_t>& candidates) const;

  /// Drain `queue` with one worker thread per PCU and return the results
  /// ordered by request id. Work is sharded dynamically, which is only
  /// output-safe on a homogeneous pool (any PCU computes the same bits for
  /// a given request); throws pcnna::Error on a heterogeneous pool — use
  /// serve_scheduled there. Requests must have dense ids in
  /// [0, expected_requests); the queue must already be closed (or be
  /// closed by a concurrent producer) for the call to terminate. Rethrows
  /// the first worker exception after all threads join.
  std::vector<RequestResult> serve_all(RequestQueue& queue,
                                       std::size_t expected_requests,
                                       bool simulate_values);

  /// Serve `requests` on exactly the PCU the virtual-time `schedule`
  /// assigned to each (one worker thread per PCU, each walking its own
  /// assignment list in schedule order). Deterministic even on a
  /// heterogeneous pool: the schedule is deterministic, so the same PCU —
  /// hence the same device model — produces each output every run.
  /// `schedule` must reference request ids in [0, requests.size()), each
  /// at most once; ids absent from the schedule (load-shed requests) come
  /// back as empty placeholder results that still carry their id,
  /// model_id, and tenant (so per-tenant / per-model accounting stays
  /// correct under shedding). Results come back ordered by request id.
  /// Rethrows the first worker exception after all threads join.
  std::vector<RequestResult> serve_scheduled(
      std::vector<InferenceRequest> requests,
      const std::vector<ScheduledService>& schedule, bool simulate_values);

  /// serve_scheduled for a schedule containing pipelined entries: each
  /// ScheduledService with stage spans runs as a chain — every stage
  /// executes on exactly the PCU its span names, in span-start order per
  /// PCU, handing the activation and the engine RNG state to the next
  /// stage (Pcu::serve_stage). One worker thread per PCU: stage n of
  /// image i really does overlap stage n-1 of image i+1 on the host.
  /// Entries without stage spans serve exactly as in serve_scheduled, so a
  /// mixed schedule (pipelined models + fallback data-parallel models) is
  /// fine. The span chains come from the deterministic admission loop, so
  /// the dependency order is acyclic and outputs are deterministic.
  std::vector<RequestResult> serve_pipelined(
      std::vector<InferenceRequest> requests,
      const std::vector<ScheduledService>& schedule, bool simulate_values);

  /// Clocked admission loop in virtual time — the single source of truth
  /// for every reported latency/throughput number.
  ///
  /// Advances a virtual clock along the arrival timeline; at each step it
  /// admits (pop_arrived) every request that has arrived and dispatches it
  /// to the PCU `policy` selects (ties broken toward the lowest index),
  /// charging the queueing delay start - arrival before service begins.
  /// Service time per request:
  ///
  ///  * double_buffer: the dispatched PCU's steady-state overlapped
  ///    interval, plus its pipeline-fill warmup when its WarmupPolicy says
  ///    the pipeline is cold — by default on the PCU's first request and
  ///    again after any idle gap (start > previous free time), because the
  ///    recalibration overlap only spans back-to-back requests.
  ///  * !double_buffer: the PCU's serial request time, no warmup (each
  ///    layer pays its own recalibration inline).
  ///
  /// Preconditions: `queue` is closed and holds requests in nondecreasing
  /// arrival_time order (push() enforces this). The queue is drained.
  /// Single-threaded and deterministic: identical inputs and options yield
  /// a bitwise-identical schedule.
  ///
  /// Two internal modes, selected automatically:
  ///
  ///  * Eager (FIFO policies, no shedding, no autoscaler): each request is
  ///    dispatched the moment it is admitted. Exact because FIFO dispatch
  ///    scores depend only on deterministic per-PCU free times — a later
  ///    arrival can never change an earlier commitment. This is the
  ///    pre-SLO code path, kept bit-identical.
  ///  * Event-driven (kEdf, kModelAffinity, shed_expired,
  ///    autoscaler.enabled, or a non-empty fault schedule): arrived
  ///    requests wait in a pending set and commitments are deferred to the
  ///    moment a PCU frees, because EDF lets a later tighter-deadline
  ///    arrival overtake, affinity may hold a request for a busy PCU
  ///    programmed with its model, shedding is decided at the would-start
  ///    moment, the active PCU set itself varies over time, and faults
  ///    change PCU health mid-run.
  ///
  /// Fault tolerance (options.faults, see fault_plan.hpp): the loop
  /// replays the FaultSchedule against the same virtual clock. Transients
  /// corrupt the in-flight request (detected at its completion); crashes
  /// lose the in-flight request at fault time and kill the PCU until its
  /// kRecover; degrades inflate the PCU's service times (and downgrade its
  /// capability under the capability-sensitive policies) until detection
  /// quarantines it for a full recalibration repair — which bumps the
  /// PCU's configuration epoch in FaultOptions::plan_cache when one is
  /// attached. Lost/corrupted requests re-enqueue with deadline-aware
  /// exponential backoff and re-dispatch to a healthy capable PCU, keeping
  /// their id (hence their per-request seed: a successful retry is
  /// bit-identical to an undisturbed serve). Retries that cannot meet
  /// their deadline flow into the ordinary shed_expired path; requests
  /// that exhaust the retry budget — or outlive the whole fleet — land in
  /// AdmissionResult::fault.losses and appear in no schedule entry.
  ///
  /// Multi-model accounting (any mode): each PCU tracks its programmed
  /// model; a dispatch that switches it charges Pcu::swap_time(model)
  /// instead of the warmup (the swap is the full serial reprogram and
  /// subsumes the pipeline fill). A PCU's very first programming is free
  /// of swap — there is no outgoing model to tear down — and the serial
  /// (!double_buffer) schedule never charges swaps at all, because every
  /// layer already pays its recalibration inline on every request.
  ///
  /// Returns the schedule of *served* requests in dispatch order plus the
  /// shed, autoscaler, and fault outcomes; without shedding or fault
  /// injection the schedule covers every request.
  AdmissionResult simulate_admission(RequestQueue& queue,
                                     const AdmissionOptions& options);

  /// Shorthand for the pre-SLO call sites: no shedding, no autoscaler.
  /// Returns just the schedule — one entry per request.
  std::vector<ScheduledService> simulate_admission(
      RequestQueue& queue, bool double_buffer,
      DispatchPolicy policy = DispatchPolicy::kEarliestFree);

 private:
  std::vector<Pcu> pcus_;
  bool homogeneous_ = true;
  /// Fleet-minimum split passes, one entry per registered model.
  std::vector<std::size_t> min_split_passes_;
  /// Pipeline groups (at most one per model; see build_pipeline).
  std::vector<PipelineGroup> groups_;
};

} // namespace pcnna::runtime
