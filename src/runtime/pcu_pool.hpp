// Fleet of replicated PCUs draining a shared RequestQueue.
//
// One worker thread per PCU pulls requests off the queue (dynamic
// sharding — a slow host thread simply grabs fewer requests) and writes
// each result into the slot named by the request id. Because every request
// carries its own engine seed, the sharding decision changes only *who*
// computes a result, never the result itself.
//
// Timing is accounted separately from that physical work by
// simulate_admission(): a single-threaded, deterministic virtual-time loop
// that replays the request stream against its arrival timestamps, charges
// each request its queueing delay, and dispatches to the earliest-free
// virtual PCU. All reported latency/throughput numbers come from this
// schedule, never from host thread interleaving.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "nn/network.hpp"
#include "runtime/pcu.hpp"
#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

/// One request's place in the deterministic virtual-time schedule.
/// All times are simulated seconds; queueing delay is start - arrival,
/// sojourn (reported request latency) is completion - arrival.
struct ScheduledService {
  std::uint64_t id = 0;
  std::size_t pcu = 0;     ///< virtual PCU the request was dispatched to
  double arrival = 0.0;    ///< [s]
  double start = 0.0;      ///< service start: max(arrival, PCU free) [s]
  double completion = 0.0; ///< [s]
};

class PcuPool {
 public:
  /// Build `num_pcus` identical accelerator replicas serving `net`.
  /// `net`/`weights` are borrowed and must outlive the pool.
  PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
          core::TimingFidelity fidelity, const nn::Network& net,
          const nn::NetWeights& weights);

  std::size_t size() const { return pcus_.size(); }
  const Pcu& pcu(std::size_t i) const { return pcus_[i]; }
  Pcu& pcu(std::size_t i) { return pcus_[i]; }

  /// Drain `queue` with one worker thread per PCU and return the results
  /// ordered by request id. Requests must have dense ids in
  /// [0, expected_requests); the queue must already be closed (or be closed
  /// by a concurrent producer) for the call to terminate. Rethrows the
  /// first worker exception after all threads join.
  std::vector<RequestResult> serve_all(RequestQueue& queue,
                                       std::size_t expected_requests,
                                       bool simulate_values);

  /// Clocked admission loop in virtual time — the single source of truth
  /// for every reported latency/throughput number.
  ///
  /// Advances a virtual clock along the arrival timeline; at each step it
  /// admits (pop_arrived) every request that has arrived and dispatches it
  /// to the earliest-free virtual PCU (ties broken toward the lowest
  /// index), charging the queueing delay start - arrival before service
  /// begins. Service time per request:
  ///
  ///  * double_buffer: the steady-state overlapped interval; a request
  ///    dispatched to an idle PCU (start > previous free time, or a cold
  ///    PCU) additionally pays the pipeline-fill warmup, because the
  ///    recalibration overlap only spans back-to-back requests.
  ///  * !double_buffer: the serial request time, no warmup (each layer
  ///    pays its own recalibration inline).
  ///
  /// Preconditions: `queue` is closed and holds requests in nondecreasing
  /// arrival_time order. The queue is drained. Single-threaded and
  /// deterministic: identical inputs yield a bitwise-identical schedule.
  /// Returns one entry per request in admission (= arrival) order.
  std::vector<ScheduledService> simulate_admission(RequestQueue& queue,
                                                   bool double_buffer);

 private:
  std::vector<Pcu> pcus_;
};

} // namespace pcnna::runtime
