// Fleet of replicated PCUs draining a shared RequestQueue.
//
// One worker thread per PCU pulls requests off the queue (dynamic
// sharding — a slow host thread simply grabs fewer requests) and writes
// each result into the slot named by the request id. Because every request
// carries its own engine seed, the sharding decision changes only *who*
// computes a result, never the result itself.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "nn/network.hpp"
#include "runtime/pcu.hpp"
#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

class PcuPool {
 public:
  /// Build `num_pcus` identical accelerator replicas serving `net`.
  /// `net`/`weights` are borrowed and must outlive the pool.
  PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
          core::TimingFidelity fidelity, const nn::Network& net,
          const nn::NetWeights& weights);

  std::size_t size() const { return pcus_.size(); }
  const Pcu& pcu(std::size_t i) const { return pcus_[i]; }
  Pcu& pcu(std::size_t i) { return pcus_[i]; }

  /// Drain `queue` with one worker thread per PCU and return the results
  /// ordered by request id. Requests must have dense ids in
  /// [0, expected_requests); the queue must already be closed (or be closed
  /// by a concurrent producer) for the call to terminate. Rethrows the
  /// first worker exception after all threads join.
  std::vector<RequestResult> serve_all(RequestQueue& queue,
                                       std::size_t expected_requests,
                                       bool simulate_values);

 private:
  std::vector<Pcu> pcus_;
};

} // namespace pcnna::runtime
