// Deterministic fault injection for the serving runtime.
//
// The device layer already models *fabrication* failures (stuck microring
// heaters, WeightBank::fail_ring, measured_usable_range); this header adds
// the *operational* hazards the paper's calibration story implies for a
// long-running fleet: thermal drift that inflates service time until the
// banks are re-trimmed, transient corruption of a single inference, and
// outright PCU loss. Mirroring arrival.hpp, a FaultSchedule is a timestamped
// event list that is reproducible bit-for-bit from its arguments alone —
// generated from a seeded per-PCU Poisson MTBF process (poisson_faults) or
// replayed from a trace file (parse/load_fault_trace).
//
// The admission loop (PcuPool::simulate_admission) consumes a FaultSchedule
// through AdmissionOptions::faults and reacts with health tracking, retry
// with deadline-aware exponential backoff, and quarantine/repair — all in
// virtual time, so every outcome in the FaultReport is deterministic. An
// EMPTY FaultSchedule is the contract for "no fault machinery at all":
// every dispatch policy's schedule stays bit-identical to a run without
// these options (pinned by test_admission_properties.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "runtime/request_queue.hpp"

namespace pcnna::core {
class PlanCache;
} // namespace pcnna::core

namespace pcnna::runtime {

/// What a FaultEvent does to its PCU when the virtual clock reaches it.
enum class FaultKind : std::uint8_t {
  /// One-shot corruption: the request in flight on the PCU (if any)
  /// completes on schedule but its output is corrupt, detected at
  /// completion — the classic silent-data-corruption-with-checksum model.
  /// The PCU itself stays healthy.
  kTransient,
  /// Calibration drift: from this instant the PCU's service times are
  /// inflated by FaultEvent::severity and its capability is downgraded
  /// (capability-sensitive policies stop counting it as fully capable).
  /// Persists until quarantine/repair (health-aware mode) or a kRecover
  /// event re-trims it.
  kDegrade,
  /// The PCU dies: the request in flight is lost at fault time, and the
  /// PCU serves nothing until a kRecover event repairs it. Requests
  /// dispatched to it while dead (fault-blind dispatch, or health-aware
  /// dispatch inside the detection-latency window) are lost too.
  kCrash,
  /// External repair completes: the PCU returns to service healthy, banks
  /// freshly re-trimmed (unprogrammed — its next dispatch recalibrates).
  kRecover,
};

const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name; throws pcnna::Error on an unknown token.
FaultKind parse_fault_kind(const std::string& token);

/// One timed fault on one PCU of the fleet.
struct FaultEvent {
  double time = 0.0;   ///< virtual seconds
  std::size_t pcu = 0; ///< target PCU index (validated against the fleet)
  FaultKind kind = FaultKind::kTransient;
  /// Service-time inflation factor while degraded (>= 1; only meaningful
  /// for kDegrade — generators and the trace format default it to 1).
  double severity = 1.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Timestamped fault timeline for a whole fleet, sorted by (time, pcu).
/// Valid schedules have finite nonnegative nondecreasing times and
/// severities >= 1 (validate_fault_schedule checks all three).
using FaultSchedule = std::vector<FaultEvent>;

/// Throw pcnna::Error unless `faults` is sorted by time with finite
/// nonnegative timestamps and severities >= 1. PCU indices are validated
/// against the fleet size by simulate_admission (a schedule is fleet-size
/// agnostic until it meets a pool).
void validate_fault_schedule(const FaultSchedule& faults);

/// Knobs of the seeded Poisson fault generator (poisson_faults).
struct FaultModel {
  /// Mean time between faults per PCU [s]; +inf (the default) generates an
  /// empty schedule. Each PCU runs an independent exponential-gap process.
  double mtbf = std::numeric_limits<double>::infinity();
  /// Generate events in [0, horizon) — typically the arrival schedule's
  /// last timestamp. <= 0 generates an empty schedule.
  double horizon = 0.0;
  /// Relative mix of generated kinds (>= 0 each, sum > 0). kRecover is
  /// never drawn directly — every kCrash emits its own paired kRecover.
  double transient_weight = 1.0;
  double degrade_weight = 1.0;
  double crash_weight = 1.0;
  /// Severity stamped on generated kDegrade events (>= 1).
  double degrade_severity = 1.5;
  /// Mean time to repair a crash [s] (> 0 when crash_weight > 0): each
  /// kCrash is followed by a kRecover after an exponential downtime draw,
  /// during which the dead PCU generates no further faults.
  double mean_time_to_repair = 0.0;
};

/// Seeded per-PCU Poisson fault process: each PCU p draws exponential
/// inter-fault gaps at rate 1/mtbf from its own Rng stream (seed mixed with
/// p via derive_request_seed, so fleets of different sizes share per-PCU
/// streams), picks the kind by a weighted draw, and pairs every crash with
/// a kRecover after an exponential mean_time_to_repair downtime. The merged
/// schedule is deterministic in (num_pcus, model, seed) alone.
FaultSchedule poisson_faults(std::size_t num_pcus, const FaultModel& model,
                             std::uint64_t seed);

/// Parse a fault trace: one event per line as
///   <time> <pcu> <kind> [severity]
/// with kind in {transient, degrade, crash, recover}; blank lines and lines
/// starting with '#' are ignored. Throws pcnna::Error naming the offending
/// line number on malformed lines, out-of-order timestamps, or invalid
/// severities.
FaultSchedule parse_fault_trace(std::istream& in);

/// parse_fault_trace over the contents of `path`. Throws on I/O failure.
FaultSchedule load_fault_trace(const std::string& path);

/// Write `faults` in the format parse_fault_trace reads, with full
/// round-trip precision (max_digits10), preceded by a '#' header comment.
void write_fault_trace(std::ostream& out, const FaultSchedule& faults);

/// Retry discipline for lost or corrupted requests, charged in virtual
/// time. Attempt k's re-enqueue is delayed by backoff_base *
/// backoff_factor^(k-1) after the loss is detected, capped so the retry
/// could still start early enough to meet a finite deadline on the fastest
/// capable PCU (deadline-aware backoff — sleeping past the point of no
/// return is never useful). A request that exhausts max_retries is
/// permanently lost (FaultReport::losses); one whose retry still cannot
/// meet its deadline flows into the ordinary shed_expired path at dispatch.
struct RetryPolicy {
  /// Re-dispatch budget per request beyond the first attempt.
  std::size_t max_retries = 3;
  /// First-retry delay [s]; 0 retries the instant the loss is detected.
  double backoff_base = 0.0;
  /// Multiplier per additional attempt (>= 1).
  double backoff_factor = 2.0;
};

/// Fault-tolerance configuration of one admission run. Default-constructed
/// (empty schedule) means every fault code path is bypassed entirely —
/// the bit-identity contract.
struct FaultOptions {
  /// The fault timeline to inject. Empty disables all fault machinery.
  FaultSchedule schedule;
  /// Health-aware dispatch: detected-crashed and quarantined PCUs are
  /// pulled from dispatch, lost/corrupted requests are retried (per
  /// `retry`), and detected degrades trigger quarantine/repair. False is
  /// the fault-blind baseline: faults still strike, but the dispatcher
  /// keeps routing to dead PCUs and nothing is ever retried or repaired —
  /// every request a crash touches is permanently lost.
  bool health_aware = true;
  /// Delay [s] between a fault striking and the health system acting on
  /// it: a crash's loss is noticed (and its retry clock started) only at
  /// detection, and dispatches inside the window still go to — and die
  /// on — the failed PCU; a degrade is quarantined only at detection.
  double detection_latency = 0.0;
  /// Retry discipline for lost/corrupted requests (health-aware only).
  RetryPolicy retry;
  /// Fixed extra repair time [s] a quarantined PCU pays on top of the full
  /// recalibration (Pcu::swap_time of its programmed model).
  double repair_time = 0.0;
  /// Optional plan cache shared with core::Planner integrations: every
  /// completed repair re-trims the PCU's banks, so its configuration's
  /// recalibration epoch is bumped (core::PlanCache::bump_epoch(key)) and
  /// stale calibration artifacts are lazily invalidated. Borrowed; may be
  /// null.
  core::PlanCache* plan_cache = nullptr;

  bool enabled() const { return !schedule.empty(); }
};

/// Health of one PCU as tracked by the admission loop.
enum class HealthState : std::uint8_t {
  kHealthy,     ///< in service, nominal timing
  kDegraded,    ///< in service, service inflated / capability downgraded
  kQuarantined, ///< pulled from dispatch, draining + paying repair
  kFailed,      ///< dead (crash) until its kRecover event
};

const char* health_state_name(HealthState state);

/// One service attempt a fault destroyed: the span the PCU was (believed)
/// occupied and the kind of fault that killed it.
struct FaultedAttempt {
  std::uint64_t id = 0;
  std::size_t pcu = 0;
  double start = 0.0; ///< [s]
  double end = 0.0;   ///< loss time: crash instant or corrupt completion [s]
  FaultKind fault = FaultKind::kTransient;
  /// 1-based attempt number of the destroyed attempt.
  std::uint32_t attempt = 1;
};

/// One permanently lost request: every attempt (within the retry budget)
/// was destroyed, or the fleet died with it still pending.
struct RequestLoss {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  double arrival = 0.0; ///< [s]
  double time = 0.0;    ///< virtual time the loss became final [s]
  /// Service attempts that were made (0 when the fleet died first).
  std::uint32_t attempts = 0;
};

/// Per-PCU health outcome of one admission run. Durations partition the
/// makespan; availability is the dispatchable fraction.
struct PcuHealthStats {
  std::size_t transients = 0;  ///< kTransient events applied to this PCU
  std::size_t degrades = 0;    ///< kDegrade events that took effect
  std::size_t crashes = 0;     ///< kCrash events that took effect
  std::size_t quarantines = 0; ///< detected degrades pulled from dispatch
  std::size_t repairs = 0;     ///< completed repairs (quarantine + recover)
  double healthy_time = 0.0;     ///< [s]
  double degraded_time = 0.0;    ///< [s]
  double quarantined_time = 0.0; ///< [s]
  double failed_time = 0.0;      ///< [s]
  /// (healthy_time + degraded_time) / makespan; 1 when the makespan is 0.
  double availability = 1.0;
  std::size_t lost_attempts = 0; ///< service attempts destroyed on this PCU
  double lost_time = 0.0;        ///< PCU time those attempts wasted [s]
};

/// Fault-tolerance outcome of one admission run, threaded into
/// OpenLoopReport. Trivial (all zero / empty) when no faults were injected.
struct FaultReport {
  /// Fault events the run applied (events past the end of the simulated
  /// timeline are never reached and not counted).
  std::size_t injections = 0;
  /// Requests whose output a kTransient corrupted (detected at completion).
  std::size_t transient_corruptions = 0;
  /// Service attempts destroyed by a dead PCU (in flight at the crash, or
  /// dispatched to it while down).
  std::size_t crash_losses = 0;
  /// Re-enqueues the retry policy issued.
  std::size_t retries = 0;
  /// Requests served successfully after at least one destroyed attempt.
  std::size_t recovered_requests = 0;
  /// Requests permanently lost (retry budget exhausted, or fleet death).
  std::size_t lost_requests = 0;
  std::size_t quarantines = 0; ///< fleet-total quarantine entries
  std::size_t repairs = 0;     ///< fleet-total completed repairs
  /// Virtual time PCUs spent paying quarantine repairs [s].
  double repair_time = 0.0;
  /// Recalibration-epoch bumps issued to FaultOptions::plan_cache.
  std::size_t plan_epoch_bumps = 0;
  /// Every destroyed attempt, in loss order.
  std::vector<FaultedAttempt> attempts;
  /// Every permanent loss, in loss order.
  std::vector<RequestLoss> losses;
  /// Per-PCU health breakdown, aligned with PCU indices (empty when no
  /// faults were injected).
  std::vector<PcuHealthStats> per_pcu;
};

} // namespace pcnna::runtime
