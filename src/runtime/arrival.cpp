#include "runtime/arrival.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pcnna::runtime {

void validate_arrival_schedule(const ArrivalSchedule& arrivals) {
  double prev = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    PCNNA_CHECK_MSG(std::isfinite(arrivals[i]) && arrivals[i] >= 0.0,
                    "arrival " << i << " has invalid timestamp "
                               << arrivals[i]);
    PCNNA_CHECK_MSG(arrivals[i] >= prev,
                    "arrival " << i << " at t=" << arrivals[i]
                               << " precedes arrival " << i - 1 << " at t="
                               << prev << " (schedule must be nondecreasing)");
    prev = arrivals[i];
  }
}

ArrivalSchedule closed_batch_arrivals(std::size_t count) {
  return ArrivalSchedule(count, 0.0);
}

ArrivalSchedule poisson_arrivals(std::size_t count, double rate_rps,
                                 std::uint64_t seed) {
  PCNNA_CHECK_MSG(rate_rps > 0.0,
                  "Poisson arrival rate must be positive, got " << rate_rps);
  Rng rng(seed);
  ArrivalSchedule arrivals;
  arrivals.reserve(count);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Inverse-transform exponential draw. uniform() is in [0, 1), so
    // 1 - u is in (0, 1] and the log argument never hits zero.
    t += -std::log(1.0 - rng.uniform()) / rate_rps;
    arrivals.push_back(t);
  }
  return arrivals;
}

ArrivalSchedule uniform_arrivals(std::size_t count, double rate_rps) {
  PCNNA_CHECK_MSG(rate_rps > 0.0,
                  "uniform arrival rate must be positive, got " << rate_rps);
  ArrivalSchedule arrivals;
  arrivals.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    arrivals.push_back(static_cast<double>(i) / rate_rps);
  return arrivals;
}

ArrivalSchedule parse_arrival_trace(std::istream& in) {
  ArrivalSchedule arrivals;
  std::string line;
  std::size_t line_no = 0;
  double prev = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip CR (Windows traces) and surrounding whitespace.
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    if (token.front() == '#') continue;

    std::istringstream cell(token);
    double t = 0.0;
    char trailing = '\0';
    PCNNA_CHECK_MSG(cell >> t && !(cell >> trailing),
                    "arrival trace line " << line_no
                                          << " is not a timestamp: '" << token
                                          << "'");
    // Validate in place so a bad trace names the offending *line*, not a
    // post-hoc schedule index (comments and blanks shift the two apart).
    PCNNA_CHECK_MSG(std::isfinite(t) && t >= 0.0,
                    "arrival trace line " << line_no
                                          << " has invalid timestamp " << t);
    PCNNA_CHECK_MSG(t >= prev,
                    "arrival trace line "
                        << line_no << " at t=" << t
                        << " precedes the previous arrival at t=" << prev
                        << " (trace must be nondecreasing)");
    prev = t;
    arrivals.push_back(t);
  }
  return arrivals;
}

ArrivalSchedule load_arrival_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_arrival_trace: cannot open '" + path + "'");
  return parse_arrival_trace(in);
}

void write_arrival_trace(std::ostream& out, const ArrivalSchedule& arrivals) {
  out << "# pcnna arrival trace: one arrival timestamp [s] per line\n";
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (double t : arrivals) out << t << '\n';
  out.precision(old_precision);
}

double offered_rate(const ArrivalSchedule& arrivals) {
  if (arrivals.empty() || arrivals.back() <= 0.0)
    return std::numeric_limits<double>::infinity();
  return static_cast<double>(arrivals.size()) / arrivals.back();
}

SloSchedule assign_tenants(const ArrivalSchedule& arrivals,
                           const std::vector<TenantClass>& mix,
                           std::uint64_t seed) {
  PCNNA_CHECK_MSG(!mix.empty(), "assign_tenants needs at least one tenant");
  double total_weight = 0.0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    PCNNA_CHECK_MSG(std::isfinite(mix[i].weight) && mix[i].weight > 0.0,
                    "tenant mix entry " << i << " has invalid weight "
                                        << mix[i].weight);
    total_weight += mix[i].weight;
  }

  Rng rng(seed);
  SloSchedule slos;
  slos.reserve(arrivals.size());
  for (double arrival : arrivals) {
    // Weighted inverse-CDF draw over the mix; the final entry absorbs any
    // floating-point shortfall so the draw always lands.
    double u = rng.uniform() * total_weight;
    std::size_t pick = mix.size() - 1;
    for (std::size_t i = 0; i + 1 < mix.size(); ++i) {
      u -= mix[i].weight;
      if (u < 0.0) {
        pick = i;
        break;
      }
    }
    const TenantClass& t = mix[pick];
    slos.push_back({t.tenant, t.priority, arrival + t.slo_budget});
  }
  return slos;
}

} // namespace pcnna::runtime
