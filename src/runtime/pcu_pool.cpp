#include "runtime/pcu_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace pcnna::runtime {

const char* dispatch_policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kEarliestFree: return "earliest-free";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kCapabilityAware: return "capability-aware";
  }
  return "?";
}

namespace {

/// Effective per-PCU config: the spec's engine-thread override applied.
core::PcnnaConfig effective_config(const PcuSpec& spec) {
  core::PcnnaConfig config = spec.config;
  if (spec.engine_threads > 0) config.engine_threads = spec.engine_threads;
  return config;
}

} // namespace

PcuPool::PcuPool(std::vector<PcuSpec> specs, core::TimingFidelity fidelity,
                 const nn::Network& net, const nn::NetWeights& weights) {
  PCNNA_CHECK_MSG(!specs.empty(), "a PcuPool needs at least one PCU");
  pcus_.reserve(specs.size());
  const core::PcnnaConfig reference = effective_config(specs.front());
  min_split_passes_ = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const core::PcnnaConfig config = effective_config(specs[i]);
    // Homogeneity is decided on the *device model* alone: only the config
    // changes what bits a PCU computes for a given request (warmup policy
    // and tag shape scheduling and reporting, never outputs). Engine
    // threads are normalized out of the comparison for the same reason —
    // outputs are bit-identical for any thread count.
    core::PcnnaConfig comparable = config;
    comparable.engine_threads = reference.engine_threads;
    if (!(comparable == reference)) homogeneous_ = false;
    pcus_.emplace_back(i, config, fidelity, net, weights, specs[i].warmup,
                       std::move(specs[i].tag));
    min_split_passes_ =
        std::min(min_split_passes_, pcus_.back().channel_split_passes());
  }
}

PcuPool::PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
                 core::TimingFidelity fidelity, const nn::Network& net,
                 const nn::NetWeights& weights)
    : PcuPool(std::vector<PcuSpec>(num_pcus, PcuSpec{config, 0,
                                                     WarmupPolicy::
                                                         kRechargeAfterIdle,
                                                     {}}),
              fidelity, net, weights) {
  // num_pcus == 0 is rejected by the delegated constructor's empty-fleet
  // check.
}

std::vector<RequestResult> PcuPool::serve_all(RequestQueue& queue,
                                              std::size_t expected_requests,
                                              bool simulate_values) {
  PCNNA_CHECK_MSG(homogeneous_,
                  "serve_all shards dynamically, which is only output-safe "
                  "when every PCU is identical; use serve_scheduled on a "
                  "heterogeneous pool");
  std::vector<RequestResult> results(expected_requests);
  // Byte flags, not vector<bool>: distinct bytes are safe to write from
  // different workers; packed bits are not.
  std::vector<unsigned char> served(expected_requests, 0);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](Pcu& pcu) {
    InferenceRequest request;
    while (queue.pop(request)) {
      try {
        PCNNA_CHECK_MSG(request.id < expected_requests,
                        "request id " << request.id << " out of range");
        // Distinct ids address distinct slots, so workers never write the
        // same element concurrently.
        results[request.id] = pcu.serve(request, simulate_values);
        served[request.id] = 1;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (Pcu& pcu : pcus_) threads.emplace_back(worker, std::ref(pcu));
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  for (std::size_t id = 0; id < expected_requests; ++id)
    PCNNA_CHECK_MSG(served[id], "request " << id << " was never served");
  return results;
}

std::vector<RequestResult> PcuPool::serve_scheduled(
    std::vector<InferenceRequest> requests,
    const std::vector<ScheduledService>& schedule, bool simulate_values) {
  PCNNA_CHECK_MSG(schedule.size() == requests.size(),
                  "schedule covers " << schedule.size() << " requests, got "
                                     << requests.size());
  // Per-PCU assignment lists in schedule (= admission) order; each request
  // id must be scheduled exactly once and index into `requests`.
  std::vector<std::vector<std::size_t>> assigned(pcus_.size());
  std::vector<unsigned char> seen(requests.size(), 0);
  for (const ScheduledService& s : schedule) {
    PCNNA_CHECK_MSG(s.pcu < pcus_.size(),
                    "scheduled PCU " << s.pcu << " out of range");
    PCNNA_CHECK_MSG(s.id < requests.size() && !seen[s.id],
                    "schedule must name each request id exactly once (id "
                        << s.id << ")");
    seen[s.id] = 1;
    assigned[s.pcu].push_back(static_cast<std::size_t>(s.id));
  }

  std::vector<RequestResult> results(requests.size());
  std::mutex error_mu;
  std::exception_ptr first_error;

  // One worker per PCU over its own assignment list: the worker owns its
  // Pcu exclusively, and distinct ids address distinct result slots.
  auto worker = [&](std::size_t p) {
    try {
      for (const std::size_t id : assigned[p])
        results[id] = pcus_[p].serve(requests[id], simulate_values);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (std::size_t p = 0; p < pcus_.size(); ++p)
    threads.emplace_back(worker, p);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<ScheduledService> PcuPool::simulate_admission(
    RequestQueue& queue, bool double_buffer, DispatchPolicy policy) {
  PCNNA_CHECK_MSG(queue.closed(),
                  "simulate_admission needs a closed request stream");

  std::vector<double> free_at(pcus_.size(), 0.0);
  std::vector<std::size_t> served(pcus_.size(), 0);
  std::vector<ScheduledService> schedule;

  // Pipeline-fill charge for dispatching a request to PCU p at `start`,
  // per that PCU's warmup policy. Zero on the serial schedule: without
  // double buffering every layer pays its recalibration inline.
  const auto warmup_charge = [&](std::size_t p, double start) -> double {
    if (!double_buffer) return 0.0;
    bool cold = true;
    switch (pcus_[p].warmup_policy()) {
      case WarmupPolicy::kRechargeAfterIdle:
        // An idle gap drains the double-buffer pipeline, so the next
        // request pays the pipeline-fill warmup again; within a
        // back-to-back streak only the steady-state interval is charged.
        cold = served[p] == 0 || start > free_at[p];
        break;
      case WarmupPolicy::kPinnedAfterFirst:
        cold = served[p] == 0;
        break;
      case WarmupPolicy::kAlwaysCold:
        cold = true;
        break;
    }
    return cold ? pcus_[p].warmup_time() : 0.0;
  };

  // Service span on PCU p for a request starting at `start`; the policies
  // that predict completion score candidates with exactly this function,
  // so the dispatch decision and the actual charge never disagree.
  const auto service_time = [&](std::size_t p, double start) -> double {
    if (!double_buffer) return pcus_[p].request_time_serial();
    return pcus_[p].request_interval_overlapped() + warmup_charge(p, start);
  };

  const auto pick_pcu = [&](double arrival) -> std::size_t {
    if (policy == DispatchPolicy::kEarliestFree) {
      return static_cast<std::size_t>(
          std::min_element(free_at.begin(), free_at.end()) - free_at.begin());
    }
    // kLeastLoaded / kCapabilityAware: earliest predicted completion, the
    // latter restricted to PCUs that map the network with the fleet-minimum
    // number of segmented bank passes (no extra splits).
    std::size_t best = pcus_.size();
    double best_completion = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      if (policy == DispatchPolicy::kCapabilityAware &&
          pcus_[p].channel_split_passes() != min_split_passes_)
        continue;
      const double start = std::max(arrival, free_at[p]);
      const double completion = start + service_time(p, start);
      if (completion < best_completion) {
        best_completion = completion;
        best = p;
      }
    }
    return best; // the capable set is never empty: the minimum is attained
  };

  double now = 0.0;
  double next = 0.0;
  InferenceRequest request;
  while (queue.next_arrival(next)) {
    // Advance the virtual clock to the next arrival, then admit everything
    // that has arrived by then. Dispatching eagerly is exact for a FIFO
    // stream: every policy scores candidates from the deterministic free
    // times alone, not from when the decision is made.
    now = std::max(now, next);
    while (queue.pop_arrived(now, request)) {
      const std::size_t p = pick_pcu(request.arrival_time);
      const double start = std::max(request.arrival_time, free_at[p]);
      const double warmup = warmup_charge(p, start);
      const double service =
          double_buffer ? pcus_[p].request_interval_overlapped() + warmup
                        : pcus_[p].request_time_serial();
      const double completion = start + service;
      free_at[p] = completion;
      served[p] += 1;
      schedule.push_back(
          {request.id, p, request.arrival_time, start, completion, warmup});
    }
  }
  return schedule;
}

} // namespace pcnna::runtime
