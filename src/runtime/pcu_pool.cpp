#include "runtime/pcu_pool.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace pcnna::runtime {

PcuPool::PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
                 core::TimingFidelity fidelity, const nn::Network& net,
                 const nn::NetWeights& weights) {
  PCNNA_CHECK_MSG(num_pcus >= 1, "a PcuPool needs at least one PCU");
  pcus_.reserve(num_pcus);
  for (std::size_t i = 0; i < num_pcus; ++i)
    pcus_.emplace_back(i, config, fidelity, net, weights);
}

std::vector<RequestResult> PcuPool::serve_all(RequestQueue& queue,
                                              std::size_t expected_requests,
                                              bool simulate_values) {
  std::vector<RequestResult> results(expected_requests);
  // Byte flags, not vector<bool>: distinct bytes are safe to write from
  // different workers; packed bits are not.
  std::vector<unsigned char> served(expected_requests, 0);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](Pcu& pcu) {
    InferenceRequest request;
    while (queue.pop(request)) {
      try {
        PCNNA_CHECK_MSG(request.id < expected_requests,
                        "request id " << request.id << " out of range");
        // Distinct ids address distinct slots, so workers never write the
        // same element concurrently.
        results[request.id] = pcu.serve(request, simulate_values);
        served[request.id] = 1;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (Pcu& pcu : pcus_) threads.emplace_back(worker, std::ref(pcu));
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  for (std::size_t id = 0; id < expected_requests; ++id)
    PCNNA_CHECK_MSG(served[id], "request " << id << " was never served");
  return results;
}

} // namespace pcnna::runtime
