#include "runtime/pcu_pool.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace pcnna::runtime {

PcuPool::PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
                 core::TimingFidelity fidelity, const nn::Network& net,
                 const nn::NetWeights& weights) {
  PCNNA_CHECK_MSG(num_pcus >= 1, "a PcuPool needs at least one PCU");
  pcus_.reserve(num_pcus);
  for (std::size_t i = 0; i < num_pcus; ++i)
    pcus_.emplace_back(i, config, fidelity, net, weights);
}

std::vector<RequestResult> PcuPool::serve_all(RequestQueue& queue,
                                              std::size_t expected_requests,
                                              bool simulate_values) {
  std::vector<RequestResult> results(expected_requests);
  // Byte flags, not vector<bool>: distinct bytes are safe to write from
  // different workers; packed bits are not.
  std::vector<unsigned char> served(expected_requests, 0);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](Pcu& pcu) {
    InferenceRequest request;
    while (queue.pop(request)) {
      try {
        PCNNA_CHECK_MSG(request.id < expected_requests,
                        "request id " << request.id << " out of range");
        // Distinct ids address distinct slots, so workers never write the
        // same element concurrently.
        results[request.id] = pcu.serve(request, simulate_values);
        served[request.id] = 1;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (Pcu& pcu : pcus_) threads.emplace_back(worker, std::ref(pcu));
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  for (std::size_t id = 0; id < expected_requests; ++id)
    PCNNA_CHECK_MSG(served[id], "request " << id << " was never served");
  return results;
}

std::vector<ScheduledService> PcuPool::simulate_admission(RequestQueue& queue,
                                                          bool double_buffer) {
  PCNNA_CHECK_MSG(queue.closed(),
                  "simulate_admission needs a closed request stream");

  std::vector<double> free_at(pcus_.size(), 0.0);
  std::vector<std::size_t> served(pcus_.size(), 0);
  std::vector<ScheduledService> schedule;

  double now = 0.0;
  double next = 0.0;
  InferenceRequest request;
  while (queue.next_arrival(next)) {
    // Advance the virtual clock to the next arrival, then admit everything
    // that has arrived by then. Dispatching eagerly to the earliest-free
    // PCU is exact for a FIFO stream: the assignment depends only on the
    // (deterministic) free times, not on when the decision is made.
    now = std::max(now, next);
    while (queue.pop_arrived(now, request)) {
      const std::size_t p = static_cast<std::size_t>(
          std::min_element(free_at.begin(), free_at.end()) - free_at.begin());
      const double start = std::max(request.arrival_time, free_at[p]);
      // An idle gap drains the double-buffer pipeline, so the next request
      // pays the pipeline-fill warmup again; within a back-to-back streak
      // only the steady-state interval is charged.
      const bool cold = served[p] == 0 || start > free_at[p];
      double service_time;
      if (double_buffer) {
        service_time = pcus_[p].request_interval_overlapped() +
                       (cold ? pcus_[p].warmup_time() : 0.0);
      } else {
        service_time = pcus_[p].request_time_serial();
      }
      const double completion = start + service_time;
      free_at[p] = completion;
      served[p] += 1;
      schedule.push_back(
          {request.id, p, request.arrival_time, start, completion});
    }
  }
  return schedule;
}

} // namespace pcnna::runtime
