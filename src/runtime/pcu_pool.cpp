#include "runtime/pcu_pool.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "core/planner.hpp"
#include "core/stage_partitioner.hpp"
#include "runtime/telemetry.hpp"

namespace pcnna::runtime {

const char* dispatch_policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kEarliestFree: return "earliest-free";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kCapabilityAware: return "capability-aware";
    case DispatchPolicy::kEdf: return "edf";
    case DispatchPolicy::kModelAffinity: return "model-affinity";
    case DispatchPolicy::kPipeline: return "pipeline";
  }
  // -Werror=switch makes the switch exhaustive at build time; reaching
  // here means an out-of-range cast, not a missing case.
  throw Error("invalid DispatchPolicy");
}

namespace {

/// Effective per-PCU config: the spec's engine-thread override applied.
core::PcnnaConfig effective_config(const PcuSpec& spec) {
  core::PcnnaConfig config = spec.config;
  if (spec.engine_threads > 0) config.engine_threads = spec.engine_threads;
  return config;
}

} // namespace

PcuPool::PcuPool(std::vector<PcuSpec> specs, core::TimingFidelity fidelity,
                 const nn::Network& net, const nn::NetWeights& weights) {
  PCNNA_CHECK_MSG(!specs.empty(), "a PcuPool needs at least one PCU");
  pcus_.reserve(specs.size());
  const core::PcnnaConfig reference = effective_config(specs.front());
  std::size_t min_passes = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const core::PcnnaConfig config = effective_config(specs[i]);
    // Homogeneity is decided on the *device model* alone: only the config
    // changes what bits a PCU computes for a given request (warmup policy
    // and tag shape scheduling and reporting, never outputs). Engine
    // threads are normalized out of the comparison for the same reason —
    // outputs are bit-identical for any thread count.
    core::PcnnaConfig comparable = config;
    comparable.engine_threads = reference.engine_threads;
    if (!(comparable == reference)) homogeneous_ = false;
    pcus_.emplace_back(i, config, fidelity, net, weights, specs[i].warmup,
                       std::move(specs[i].tag));
    min_passes = std::min(min_passes, pcus_.back().channel_split_passes());
  }
  min_split_passes_.push_back(min_passes);
}

std::uint32_t PcuPool::register_model(const nn::Network& net,
                                      const nn::NetWeights& weights) {
  std::uint32_t id = 0;
  std::size_t min_passes = std::numeric_limits<std::size_t>::max();
  for (Pcu& pcu : pcus_) {
    id = pcu.add_model(net, weights);
    PCNNA_CHECK_MSG(id == min_split_passes_.size(),
                    "model registry out of sync across the fleet");
    min_passes = std::min(min_passes, pcu.channel_split_passes(id));
  }
  min_split_passes_.push_back(min_passes);
  return id;
}

const PipelineGroup* PcuPool::pipeline_for_model(std::uint32_t model) const {
  for (const PipelineGroup& g : groups_)
    if (g.model == model) return &g;
  return nullptr;
}

void PcuPool::place_pipeline(PipelineGroup& g,
                             const std::vector<std::size_t>& candidates) const {
  // Healthy members in member order (deterministic: `members` is fixed).
  std::vector<std::size_t> avail;
  for (std::size_t m : g.members) {
    if (std::find(candidates.begin(), candidates.end(), m) !=
        candidates.end())
      avail.push_back(m);
  }
  g.stages.clear();
  if (avail.empty()) return; // the group is down until a member heals

  std::size_t convs = 0;
  for (std::size_t c : g.op_costs)
    if (c > 0) convs += 1;
  const std::size_t k = std::min(avail.size(), convs);
  const std::vector<core::StageRange> ranges =
      core::partition_costs(g.op_costs, k);
  std::vector<std::size_t> passes;
  passes.reserve(avail.size());
  for (std::size_t p : avail)
    passes.push_back(pcus_[p].channel_split_passes(g.model));
  const std::vector<std::size_t> placement =
      core::assign_stages(ranges, avail, passes);

  g.stages.reserve(ranges.size());
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    PipelineStage st;
    st.pcu = placement[j];
    st.op_begin = ranges[j].op_begin;
    st.op_end = ranges[j].op_end;
    st.cost = ranges[j].cost;
    st.timings = pcus_[st.pcu].stage_timings(g.model, st.op_begin, st.op_end);
    g.stages.push_back(st);
  }
}

std::size_t PcuPool::build_pipeline(std::uint32_t model,
                                    const std::vector<std::size_t>& pcus,
                                    double handoff_time) {
  PCNNA_CHECK_MSG(model < min_split_passes_.size(),
                  "cannot pipeline unregistered model " << model);
  PCNNA_CHECK_MSG(!pcus.empty(), "a pipeline group needs at least one PCU");
  PCNNA_CHECK_MSG(std::isfinite(handoff_time) && handoff_time >= 0.0,
                  "hand-off time must be finite and >= 0, got "
                      << handoff_time);
  PCNNA_CHECK_MSG(pipeline_for_model(model) == nullptr,
                  "model " << model << " already has a pipeline group");
  std::vector<unsigned char> seen(pcus_.size(), 0);
  for (std::size_t p : pcus) {
    PCNNA_CHECK_MSG(p < pcus_.size(), "pipeline PCU " << p << " out of range");
    PCNNA_CHECK_MSG(!seen[p], "duplicate PCU " << p << " in pipeline group");
    seen[p] = 1;
    for (const PipelineGroup& g : groups_) {
      PCNNA_CHECK_MSG(std::find(g.members.begin(), g.members.end(), p) ==
                          g.members.end(),
                      "PCU " << p
                             << " is already reserved by the pipeline group "
                                "of model "
                             << g.model);
    }
  }
  const nn::Network& net = pcus_.front().model_network(model);
  PCNNA_CHECK_MSG(pcus.size() <= core::StagePartitioner::max_stages(net),
                  "network '" << net.name() << "' has only "
                              << core::StagePartitioner::max_stages(net)
                              << " conv ops; cannot build " << pcus.size()
                              << " pipeline stages");

  PipelineGroup g;
  g.model = model;
  g.handoff_time = handoff_time;
  g.members = pcus;
  // Partition weights are priced once, on the strongest member (fewest
  // whole-model passes, ties toward the lowest index), so re-placement
  // after a quarantine re-partitions the *same* cost vector and stays a
  // pure function of the healthy-member set.
  std::size_t strongest = pcus.front();
  for (std::size_t p : pcus) {
    if (pcus_[p].channel_split_passes(model) <
        pcus_[strongest].channel_split_passes(model))
      strongest = p;
  }
  g.op_costs =
      core::StagePartitioner(pcus_[strongest].config()).op_costs(net);
  place_pipeline(g, pcus);
  PCNNA_CHECK_MSG(!g.stages.empty(), "pipeline group construction failed");
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

PcuPool::PcuPool(std::size_t num_pcus, const core::PcnnaConfig& config,
                 core::TimingFidelity fidelity, const nn::Network& net,
                 const nn::NetWeights& weights)
    : PcuPool(std::vector<PcuSpec>(num_pcus, PcuSpec{config, 0,
                                                     WarmupPolicy::
                                                         kRechargeAfterIdle,
                                                     {}}),
              fidelity, net, weights) {
  // num_pcus == 0 is rejected by the delegated constructor's empty-fleet
  // check.
}

std::vector<RequestResult> PcuPool::serve_all(RequestQueue& queue,
                                              std::size_t expected_requests,
                                              bool simulate_values) {
  PCNNA_CHECK_MSG(homogeneous_,
                  "serve_all shards dynamically, which is only output-safe "
                  "when every PCU is identical; use serve_scheduled on a "
                  "heterogeneous pool");
  std::vector<RequestResult> results(expected_requests);
  // Byte flags, not vector<bool>: distinct bytes are safe to write from
  // different workers; packed bits are not.
  std::vector<unsigned char> served(expected_requests, 0);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](Pcu& pcu) {
    InferenceRequest request;
    while (queue.pop(request)) {
      try {
        PCNNA_CHECK_MSG(request.id < expected_requests,
                        "request id " << request.id << " out of range");
        // Distinct ids address distinct slots, so workers never write the
        // same element concurrently.
        results[request.id] = pcu.serve(request, simulate_values);
        served[request.id] = 1;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (Pcu& pcu : pcus_) threads.emplace_back(worker, std::ref(pcu));
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  for (std::size_t id = 0; id < expected_requests; ++id)
    PCNNA_CHECK_MSG(served[id], "request " << id << " was never served");
  return results;
}

std::vector<RequestResult> PcuPool::serve_scheduled(
    std::vector<InferenceRequest> requests,
    const std::vector<ScheduledService>& schedule, bool simulate_values) {
  PCNNA_CHECK_MSG(schedule.size() <= requests.size(),
                  "schedule covers " << schedule.size()
                                     << " requests but only "
                                     << requests.size() << " were given");
  // Per-PCU assignment lists in schedule (= admission) order; each request
  // id must be scheduled at most once and index into `requests`. Ids the
  // schedule skips (load-shed requests) are simply never served — their
  // result slot stays an id-only placeholder.
  std::vector<std::vector<std::size_t>> assigned(pcus_.size());
  std::vector<unsigned char> seen(requests.size(), 0);
  for (const ScheduledService& s : schedule) {
    PCNNA_CHECK_MSG(s.pcu < pcus_.size(),
                    "scheduled PCU " << s.pcu << " out of range");
    PCNNA_CHECK_MSG(s.id < requests.size() && !seen[s.id],
                    "schedule must name each request id at most once (id "
                        << s.id << ")");
    seen[s.id] = 1;
    assigned[s.pcu].push_back(static_cast<std::size_t>(s.id));
  }

  std::vector<RequestResult> results(requests.size());
  // Pre-fill every slot with the request's identity metadata: ids the
  // schedule skips (load-shed requests) stay placeholders, but per-tenant
  // and per-model accounting must still see who they were.
  for (std::size_t id = 0; id < results.size(); ++id) {
    results[id].id = id;
    results[id].model_id = requests[id].model_id;
    results[id].tenant = requests[id].tenant;
  }
  std::mutex error_mu;
  std::exception_ptr first_error;

  // One worker per PCU over its own assignment list: the worker owns its
  // Pcu exclusively, and distinct ids address distinct result slots.
  auto worker = [&](std::size_t p) {
    try {
      for (const std::size_t id : assigned[p])
        results[id] = pcus_[p].serve(requests[id], simulate_values);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (std::size_t p = 0; p < pcus_.size(); ++p)
    threads.emplace_back(worker, p);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<RequestResult> PcuPool::serve_pipelined(
    std::vector<InferenceRequest> requests,
    const std::vector<ScheduledService>& schedule, bool simulate_values) {
  PCNNA_CHECK_MSG(schedule.size() <= requests.size(),
                  "schedule covers " << schedule.size()
                                     << " requests but only "
                                     << requests.size() << " were given");
  constexpr std::size_t kWhole = std::numeric_limits<std::size_t>::max();

  /// One unit of PCU work: a whole request (stage == kWhole) or one stage
  /// of a pipelined request. Ordered by virtual span start — the admission
  /// loop guarantees per-PCU spans never overlap, so start order is the
  /// execution order.
  struct Exec {
    std::size_t sched = 0; ///< index into `schedule`
    std::size_t stage = kWhole;
    double start = 0.0;
  };
  std::vector<std::vector<Exec>> assigned(pcus_.size());
  std::vector<unsigned char> seen(requests.size(), 0);
  // Hand-off chain per pipelined schedule entry: promise/future pairs, one
  // per stage boundary. Stage j fulfills boundary j; stage j+1 consumes it.
  std::vector<std::vector<std::promise<StageHandoff>>> chains(schedule.size());
  std::vector<std::vector<std::future<StageHandoff>>> handoffs(
      schedule.size());

  for (std::size_t si = 0; si < schedule.size(); ++si) {
    const ScheduledService& s = schedule[si];
    PCNNA_CHECK_MSG(s.id < requests.size() && !seen[s.id],
                    "schedule must name each request id at most once (id "
                        << s.id << ")");
    seen[s.id] = 1;
    if (s.stages.empty()) {
      PCNNA_CHECK_MSG(s.pcu < pcus_.size(),
                      "scheduled PCU " << s.pcu << " out of range");
      assigned[s.pcu].push_back({si, kWhole, s.start});
      continue;
    }
    for (std::size_t j = 0; j < s.stages.size(); ++j) {
      PCNNA_CHECK_MSG(s.stages[j].pcu < pcus_.size(),
                      "scheduled stage PCU " << s.stages[j].pcu
                                             << " out of range");
      assigned[s.stages[j].pcu].push_back({si, j, s.stages[j].start});
    }
    chains[si].resize(s.stages.size() - 1);
    handoffs[si].reserve(s.stages.size() - 1);
    for (std::size_t j = 0; j + 1 < s.stages.size(); ++j)
      handoffs[si].push_back(chains[si][j].get_future());
  }
  for (std::vector<Exec>& list : assigned) {
    std::sort(list.begin(), list.end(), [](const Exec& a, const Exec& b) {
      if (a.start != b.start) return a.start < b.start;
      if (a.sched != b.sched) return a.sched < b.sched;
      return a.stage < b.stage;
    });
  }

  std::vector<RequestResult> results(requests.size());
  for (std::size_t id = 0; id < results.size(); ++id) {
    results[id].id = id;
    results[id].model_id = requests[id].model_id;
    results[id].tenant = requests[id].tenant;
  }
  std::mutex error_mu;
  std::exception_ptr first_error;

  // One worker per PCU over its own execution list. A stage past the head
  // blocks on the previous stage's future; the virtual-time schedule is
  // acyclic (every dependency points to an earlier span), so in-order
  // processing cannot deadlock. On error the worker poisons every hand-off
  // it still owes so downstream stages fail instead of waiting forever.
  auto worker = [&](std::size_t p) {
    std::size_t done = 0;
    try {
      for (const Exec& e : assigned[p]) {
        const ScheduledService& s = schedule[e.sched];
        if (e.stage == kWhole) {
          results[s.id] = pcus_[p].serve(requests[s.id], simulate_values);
          done += 1;
          continue;
        }
        const StageService& span = s.stages[e.stage];
        StageHandoff in;
        const nn::Tensor* input = nullptr;
        const Rng::State* rng = nullptr;
        if (e.stage == 0) {
          input = &requests[s.id].input;
        } else {
          in = handoffs[e.sched][e.stage - 1].get();
          input = &in.activation;
          rng = &in.rng;
        }
        StageHandoff out = pcus_[p].serve_stage(
            s.model, span.op_begin, span.op_end, *input, rng,
            requests[s.id].seed, e.stage == 0 ? 0.0 : in.energy,
            simulate_values);
        if (e.stage > 0) out.work += in.work; // chain the work counters
        if (e.stage + 1 < s.stages.size()) {
          chains[e.sched][e.stage].set_value(std::move(out));
        } else {
          RequestResult& r = results[s.id];
          r.pcu_index = s.pcu;
          r.output = std::move(out.activation);
          r.service_time_serial = pcus_[s.pcu].request_time_serial(s.model);
          r.service_time_overlapped =
              pcus_[s.pcu].request_interval_overlapped(s.model);
          r.energy = out.energy;
          r.work = out.work;
        }
        done += 1;
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      for (std::size_t i = done; i < assigned[p].size(); ++i) {
        const Exec& e = assigned[p][i];
        if (e.stage != kWhole && e.stage + 1 < schedule[e.sched].stages.size())
          chains[e.sched][e.stage].set_exception(std::current_exception());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pcus_.size());
  for (std::size_t p = 0; p < pcus_.size(); ++p)
    threads.emplace_back(worker, p);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

namespace {

/// Scheduling-relevant slice of an InferenceRequest, parked in the
/// event-driven pending set between arrival and dispatch (the input tensor
/// never affects timing, so it is not carried).
struct PendingRequest {
  std::uint64_t id = 0;
  double arrival = 0.0;
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  double deadline = std::numeric_limits<double>::infinity();
  std::uint32_t model = 0;
  /// 1-based service attempt the next dispatch of this request will be;
  /// bumped by the fault machinery's retry path, 1 everywhere else.
  std::uint32_t attempts = 1;
};

/// Sentinel for a PCU whose weight banks have never been programmed: its
/// first dispatch programs them as part of the normal pipeline fill, so no
/// swap is charged — there is no outgoing model to tear down.
inline constexpr std::uint32_t kNoModel =
    std::numeric_limits<std::uint32_t>::max();

/// Dispatch order of the pending set. Under kEdf: strict PriorityClass
/// precedence, then earliest absolute deadline (class-partitioned EDF —
/// a near-expiry best-effort request must not overtake fresh interactive
/// traffic). Every other policy keeps FIFO order. (arrival, id) always
/// closes the ordering, so the set is a strict weak order with unique keys.
struct UrgencyOrder {
  bool edf = false;
  bool operator()(const PendingRequest& a, const PendingRequest& b) const {
    if (edf) {
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
    }
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  }
};

/// One request parked between loss detection and re-enqueue — the fault
/// machinery's retry queue, ordered by when the backoff expires.
struct RetryEntry {
  double ready = 0.0; ///< virtual time the retry re-enters the pending set
  PendingRequest req;
};

struct RetryOrder {
  bool operator()(const RetryEntry& a, const RetryEntry& b) const {
    if (a.ready != b.ready) return a.ready < b.ready;
    return a.req.id < b.req.id; // ids are unique: strict weak order
  }
};

/// The attempt currently occupying one PCU in virtual time — the fault
/// machinery's answer to "who dies if this PCU fails right now".
struct Inflight {
  bool valid = false;
  std::size_t sched_index = 0; ///< index into the uncompacted schedule
  double completion = 0.0;
  PendingRequest req;
};

/// Pending health-system action on one PCU (at most one at a time; a crash
/// supersedes whatever was pending).
enum class TimerKind : unsigned char {
  kNone,
  kDetectCrash,   ///< crash noticed: pull the dead PCU from dispatch
  kDetectDegrade, ///< drift noticed: enter quarantine, schedule the repair
  kRepairDone,    ///< quarantine repair complete: rejoin healthy
};

} // namespace

AdmissionResult PcuPool::simulate_admission(RequestQueue& queue,
                                            const AdmissionOptions& options) {
  PCNNA_CHECK_MSG(queue.closed(),
                  "simulate_admission needs a closed request stream");
  const bool double_buffer = options.double_buffer;
  const DispatchPolicy policy = options.policy;
  // Opt-in observability. Strictly read-only hooks: telemetry never feeds
  // anything back into the loop, so the schedule is bitwise identical with
  // or without it (pinned by the telemetry property tests).
  Telemetry* const telemetry = options.telemetry;

  // Resolve the autoscaler envelope against the pool size.
  const AutoscalerPolicy& scaler = options.autoscaler;
  const std::size_t max_active =
      scaler.enabled && scaler.max_active > 0
          ? std::min(scaler.max_active, pcus_.size())
          : pcus_.size();
  const std::size_t min_active =
      scaler.enabled ? scaler.min_active : pcus_.size();
  if (scaler.enabled) {
    PCNNA_CHECK_MSG(min_active >= 1 && min_active <= max_active,
                    "autoscaler needs 1 <= min_active <= max_active, got ["
                        << min_active << ", " << max_active << "]");
  }

  // Fault machinery (see fault_plan.hpp). fault_active == false is the
  // contract that every code path below is bit-identical to the pre-fault
  // loop: all fault state is inert and every fault branch is guarded.
  const FaultOptions& faults = options.faults;
  const bool fault_active = faults.enabled();
  if (fault_active) {
    validate_fault_schedule(faults.schedule);
    for (std::size_t i = 0; i < faults.schedule.size(); ++i) {
      PCNNA_CHECK_MSG(faults.schedule[i].pcu < pcus_.size(),
                      "fault event " << i << " targets PCU "
                                     << faults.schedule[i].pcu
                                     << " but the fleet has " << pcus_.size()
                                     << " PCUs");
    }
    PCNNA_CHECK_MSG(std::isfinite(faults.detection_latency) &&
                        faults.detection_latency >= 0.0,
                    "fault detection latency must be finite and >= 0, got "
                        << faults.detection_latency);
    PCNNA_CHECK_MSG(std::isfinite(faults.repair_time) &&
                        faults.repair_time >= 0.0,
                    "fault repair time must be finite and >= 0, got "
                        << faults.repair_time);
    PCNNA_CHECK_MSG(std::isfinite(faults.retry.backoff_base) &&
                        faults.retry.backoff_base >= 0.0,
                    "retry backoff base must be finite and >= 0, got "
                        << faults.retry.backoff_base);
    PCNNA_CHECK_MSG(std::isfinite(faults.retry.backoff_factor) &&
                        faults.retry.backoff_factor >= 1.0,
                    "retry backoff factor must be finite and >= 1, got "
                        << faults.retry.backoff_factor);
  }

  AdmissionResult result;
  std::vector<double> free_at(pcus_.size(), 0.0);
  std::vector<std::size_t> served(pcus_.size(), 0);
  // Programmed model per PCU: which model's weights currently sit in the
  // banks. Starts unprogrammed; a dispatch that switches it pays the swap.
  std::vector<std::uint32_t> programmed(pcus_.size(), kNoModel);
  // Autoscaler state. Without it every PCU is active forever and
  // force_cold never fires, so the lambdas below behave exactly as before.
  std::vector<unsigned char> active(pcus_.size(), 0);
  std::vector<unsigned char> force_cold(pcus_.size(), 0);
  std::vector<double> activated_at(pcus_.size(), 0.0);
  std::size_t active_count = scaler.enabled ? min_active : pcus_.size();
  for (std::size_t p = 0; p < active_count; ++p) active[p] = 1;

  // --- pipeline (kPipeline) state: inert under every other policy ---
  const bool pipelined = policy == DispatchPolicy::kPipeline;
  // Work on a copy of the built groups: quarantine-driven re-placement
  // mutates stage assignments mid-run, and simulate_admission must stay a
  // pure function of the pool's built state (two identical runs, identical
  // schedules).
  std::vector<PipelineGroup> groups =
      pipelined ? groups_ : std::vector<PipelineGroup>{};
  // reserved[p]: PCU p belongs to a pipeline group — never a target for
  // fallback (group-less) dispatch and exempt from autoscaler shrink. All
  // zero unless pipelined, so every guard below is inert otherwise.
  std::vector<unsigned char> reserved(pcus_.size(), 0);
  // pinned[g][j]: stage j of group g has paid its one-time pin (the stage
  // range's first-layer recalibration). Reset on re-placement: new stage
  // ranges mean freshly reprogrammed banks.
  std::vector<std::vector<unsigned char>> pinned(groups.size());
  // last_healthy[g]: the member subset group g is currently placed over.
  std::vector<std::vector<std::size_t>> last_healthy(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    pinned[g].assign(groups[g].stages.size(), 0);
    last_healthy[g] = groups[g].members;
    for (std::size_t p : groups[g].members) reserved[p] = 1;
  }
  result.pipeline.groups = groups.size();
  if (pipelined && scaler.enabled) {
    // Pipeline members are statically placed; parking one would stall its
    // whole group. They are always active (and shrink_idle skips them).
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      if (reserved[p] && !active[p]) {
        active[p] = 1;
        active_count += 1;
      }
    }
  }

  // Per-PCU health state (inert without faults).
  std::vector<HealthState> health(pcus_.size(), HealthState::kHealthy);
  std::vector<double> degrade_mult(pcus_.size(), 1.0);
  // Pulled from dispatch: quarantined, or failed once detection fires.
  std::vector<unsigned char> excluded(pcus_.size(), 0);
  std::vector<double> health_since(pcus_.size(), 0.0);
  std::vector<TimerKind> timer_kind(pcus_.size(), TimerKind::kNone);
  std::vector<double> timer_at(pcus_.size(),
                               std::numeric_limits<double>::infinity());
  std::vector<Inflight> inflight(pcus_.size());
  // Tombstones parallel to result.schedule (maintained only when
  // fault_active): destroyed attempts stay in place until the final stable
  // compaction so in-flight bookkeeping can index the schedule directly.
  std::vector<unsigned char> cancelled;
  // In-flight *pipelined* attempts (maintained only when fault_active and
  // pipelined): a pipelined request occupies several PCUs over disjoint
  // stage spans, so fault events must search the committed spans — the
  // single-PCU `inflight` slots cannot represent it. Entries go stale once
  // their schedule entry is cancelled or past; scans skip those.
  struct PipeInflight {
    std::size_t sched_index;
    PendingRequest req;
  };
  std::vector<PipeInflight> pipe_inflight;
  std::set<RetryEntry, RetryOrder> retries;
  std::size_t fault_cursor = 0;
  if (fault_active) result.fault.per_pcu.resize(pcus_.size());

  // Pipeline-fill charge for dispatching model m to PCU p at `start`, per
  // that PCU's warmup policy. Zero on the serial schedule: without double
  // buffering every layer pays its recalibration inline. A PCU the
  // autoscaler just (re)activated is cold regardless of policy.
  const auto warmup_charge = [&](std::size_t p, std::uint32_t m,
                                 double start) -> double {
    if (!double_buffer) return 0.0;
    bool cold = true;
    switch (pcus_[p].warmup_policy()) {
      case WarmupPolicy::kRechargeAfterIdle:
        // An idle gap drains the double-buffer pipeline, so the next
        // request pays the pipeline-fill warmup again; within a
        // back-to-back streak only the steady-state interval is charged.
        // start == free_at[p] is back-to-back — the comparison must stay
        // strictly greater-than, or a request landing exactly when the
        // PCU frees would be double-charged warmup.
        cold = served[p] == 0 || start > free_at[p];
        break;
      case WarmupPolicy::kPinnedAfterFirst:
        cold = served[p] == 0;
        break;
      case WarmupPolicy::kAlwaysCold:
        cold = true;
        break;
    }
    return (cold || force_cold[p]) ? pcus_[p].warmup_time(m) : 0.0;
  };

  // True when dispatching model m to PCU p would reprogram its banks from
  // a *different* model — the swap event. Only meaningful on the
  // double-buffered schedule (serial requests reprogram inline anyway),
  // and never on a PCU's very first programming.
  const auto would_swap = [&](std::size_t p, std::uint32_t m) -> bool {
    return double_buffer && programmed[p] != kNoModel && programmed[p] != m;
  };

  // Calibration-drift inflation: a degraded PCU's whole service span is
  // stretched by its worst unrepaired degrade severity. 1.0 (always,
  // without faults) multiplies every span bit-identically.
  const auto degrade_factor = [&](std::size_t p) -> double {
    return fault_active ? degrade_mult[p] : 1.0;
  };

  // Truthful service span on PCU p for a model-m request starting at
  // `start`, swap included: exactly what dispatch() will charge. Used for
  // the actual charge, shed decisions, and kModelAffinity's scoring.
  const auto true_service = [&](std::size_t p, std::uint32_t m,
                                double start) -> double {
    if (!double_buffer)
      return pcus_[p].request_time_serial(m) * degrade_factor(p);
    return (pcus_[p].request_interval_overlapped(m) +
            (would_swap(p, m) ? pcus_[p].swap_time(m)
                              : warmup_charge(p, m, start))) *
           degrade_factor(p);
  };

  // Model-blind service span: the legacy policies' completion score, which
  // deliberately ignores the swap a dispatch may charge — least-loaded is
  // a *load* balancer, not a placement policy, and that blindness is
  // precisely what kModelAffinity fixes (and what the multi-model bench
  // measures). Identical to true_service on a single-model stream.
  const auto blind_service = [&](std::size_t p, std::uint32_t m,
                                 double start) -> double {
    if (!double_buffer)
      return pcus_[p].request_time_serial(m) * degrade_factor(p);
    return (pcus_[p].request_interval_overlapped(m) +
            warmup_charge(p, m, start)) *
           degrade_factor(p);
  };

  // --- fault helpers (all no-ops / unreachable when !fault_active) ---

  // Close the current health-state dwell bucket of PCU p at time t.
  const auto close_health = [&](std::size_t p, double t) {
    const double dt = t - health_since[p];
    if (dt > 0.0) {
      PcuHealthStats& hs = result.fault.per_pcu[p];
      switch (health[p]) {
        case HealthState::kHealthy: hs.healthy_time += dt; break;
        case HealthState::kDegraded: hs.degraded_time += dt; break;
        case HealthState::kQuarantined: hs.quarantined_time += dt; break;
        case HealthState::kFailed: hs.failed_time += dt; break;
      }
      health_since[p] = t;
    }
  };

  // A completed repair re-trims PCU p's weight banks: lazily invalidate
  // every calibration artifact planned for its configuration.
  const auto bump_plan_epoch = [&](std::size_t p) {
    if (faults.plan_cache == nullptr) return;
    faults.plan_cache->bump_epoch(
        core::plan_config_key(pcus_[p].config(), pcus_[p].fidelity()));
    result.fault.plan_epoch_bumps += 1;
  };

  // Fastest base service any PCU offers for model m — the bound behind
  // deadline-aware backoff (a retry sleeping past deadline - this can
  // never succeed).
  const auto fleet_min_service = [&](std::uint32_t m) -> double {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      best = std::min(best, double_buffer
                                ? pcus_[p].request_interval_overlapped(m)
                                : pcus_[p].request_time_serial(m));
    }
    return best;
  };

  // A destroyed attempt of `req` was detected at `detect`: re-enqueue it
  // with exponential backoff if the budget allows, else record the
  // permanent loss. The backoff is capped so the retry could still start
  // early enough to meet a finite deadline on the fastest capable PCU.
  const auto schedule_retry = [&](const PendingRequest& req, double detect) {
    if (!faults.health_aware || req.attempts > faults.retry.max_retries) {
      result.fault.lost_requests += 1;
      result.fault.losses.push_back({req.id, req.tenant, req.priority,
                                     req.arrival, detect, req.attempts});
      return;
    }
    double delay = faults.retry.backoff_base;
    for (std::uint32_t k = 1; k < req.attempts; ++k)
      delay *= faults.retry.backoff_factor;
    double ready = detect + delay;
    if (std::isfinite(req.deadline)) {
      ready = std::max(detect,
                       std::min(ready, req.deadline -
                                           fleet_min_service(req.model)));
    }
    PendingRequest next = req;
    next.attempts += 1;
    retries.insert({ready, next});
    result.fault.retries += 1;
  };

  // Destroy one dispatched attempt: tombstone its schedule entry, record
  // it, and route the request into retry (or permanent loss). `end` is
  // when the PCU time was wasted until; `detect` is when the loss becomes
  // known (the retry clock's start).
  const auto lose_attempt = [&](const PendingRequest& req,
                                std::size_t sched_index, std::size_t p,
                                FaultKind kind, double end, double detect) {
    cancelled[sched_index] = 1;
    result.fault.attempts.push_back(
        {req.id, p, result.schedule[sched_index].start, end, kind,
         req.attempts});
    result.fault.per_pcu[p].lost_attempts += 1;
    result.fault.per_pcu[p].lost_time +=
        end - result.schedule[sched_index].start;
    if (kind == FaultKind::kCrash) {
      result.fault.crash_losses += 1;
    } else {
      result.fault.transient_corruptions += 1;
    }
    schedule_retry(req, detect);
  };

  // Commit one dispatch: charge service on PCU p starting at `start`
  // (swap or warmup per the programmed state) and append the schedule
  // entry.
  const auto dispatch = [&](const PendingRequest& r, std::size_t p,
                            double start) {
    const bool swapped = would_swap(p, r.model);
    const double swap = swapped ? pcus_[p].swap_time(r.model) : 0.0;
    const double warmup = swapped ? 0.0 : warmup_charge(p, r.model, start);
    const double service =
        (double_buffer
             ? pcus_[p].request_interval_overlapped(r.model) + swap + warmup
             : pcus_[p].request_time_serial(r.model)) *
        degrade_factor(p);
    const double completion = start + service;
    free_at[p] = completion;
    served[p] += 1;
    force_cold[p] = 0;
    programmed[p] = r.model;
    result.schedule.push_back({r.id, p, r.arrival, start, completion, warmup,
                               r.tenant, r.priority, r.deadline, r.model,
                               swap, swapped, r.attempts});
    if (telemetry) telemetry->on_dispatch(swapped, /*pipelined=*/false);
    if (fault_active) {
      cancelled.push_back(0);
      const std::size_t idx = result.schedule.size() - 1;
      if (health[p] == HealthState::kFailed) {
        // Black hole: the PCU is dead (fault-blind dispatch, or
        // health-aware inside the detection window). The dispatcher only
        // learns at the predicted completion that the request never came
        // back.
        lose_attempt(r, idx, p, FaultKind::kCrash, completion, completion);
        inflight[p].valid = false;
      } else {
        inflight[p] = {true, idx, completion, r};
      }
    }
  };

  // Per-model capability: under kCapabilityAware (and kModelAffinity's
  // least-loaded-capable fallback) a PCU must map the request's model with
  // the fleet-minimum number of segmented bank passes.
  const auto capable = [&](std::size_t p, std::uint32_t m) {
    if (policy != DispatchPolicy::kCapabilityAware &&
        policy != DispatchPolicy::kModelAffinity)
      return true;
    return pcus_[p].channel_split_passes(m) == min_split_passes_[m];
  };

  // Model-independent eligibility for the free-event scan: a PCU capable
  // of no registered model can never be dispatched to.
  const auto scan_capable = [&](std::size_t p) {
    for (std::uint32_t m = 0; m < min_split_passes_.size(); ++m)
      if (capable(p, m)) return true;
    return false;
  };

  const auto check_model = [&](const InferenceRequest& request) {
    PCNNA_CHECK_MSG(request.model_id < min_split_passes_.size(),
                    "request " << request.id << " targets model "
                               << request.model_id << " but only "
                               << min_split_passes_.size()
                               << " models are registered");
  };

  const bool deferred = policy == DispatchPolicy::kEdf ||
                        policy == DispatchPolicy::kModelAffinity ||
                        policy == DispatchPolicy::kPipeline ||
                        options.shed_expired || scaler.enabled ||
                        fault_active;

  if (!deferred) {
    // Eager mode — the pre-SLO code path, kept bit-identical. Dispatching
    // at admission is exact for a FIFO stream: every policy scores
    // candidates from the deterministic free times alone, not from when
    // the decision is made.
    const auto pick_pcu = [&](double arrival,
                              std::uint32_t model) -> std::size_t {
      if (policy == DispatchPolicy::kEarliestFree) {
        return static_cast<std::size_t>(
            std::min_element(free_at.begin(), free_at.end()) -
            free_at.begin());
      }
      // kLeastLoaded / kCapabilityAware: earliest predicted (model-blind)
      // completion, the latter restricted to PCUs that map the request's
      // model with the fleet-minimum number of segmented bank passes (no
      // extra splits).
      std::size_t best = pcus_.size();
      double best_completion = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < pcus_.size(); ++p) {
        if (!capable(p, model)) continue;
        const double start = std::max(arrival, free_at[p]);
        const double completion = start + blind_service(p, model, start);
        if (completion < best_completion) {
          best_completion = completion;
          best = p;
        }
      }
      return best; // the capable set is never empty: the minimum is attained
    };

    double now = 0.0;
    double next = 0.0;
    InferenceRequest request;
    while (queue.next_arrival(next)) {
      now = std::max(now, next);
      while (queue.pop_arrived(now, request)) {
        check_model(request);
        const std::size_t p = pick_pcu(request.arrival_time,
                                       request.model_id);
        const double start = std::max(request.arrival_time, free_at[p]);
        dispatch({request.id, request.arrival_time, request.tenant,
                  request.priority, request.deadline, request.model_id},
                 p, start);
      }
    }
    result.autoscaler.mean_active = static_cast<double>(pcus_.size());
    if (telemetry) telemetry->record_admission(result, *this, options);
    return result;
  }

  // Event-driven mode: arrived requests wait in `pending` and every
  // commitment is deferred to the moment an eligible PCU actually frees.
  // Necessary because (a) EDF lets a later tighter-deadline arrival
  // overtake queued work, (b) shedding is decided from the fleet state at
  // the would-start moment, (c) the autoscaler changes the eligible set
  // over time, and (d) model affinity may hold a request for a busy PCU
  // programmed with its model while a less picky request behind it runs.
  // Events are arrivals and PCU-free instants; the clock only moves
  // forward, so the schedule stays deterministic.
  //
  // kModelAffinity reuses the EDF urgency order: with SLO metadata the
  // most urgent request gets first pick of the fleet; without it the
  // order degenerates to FIFO and only the per-model deferrals reorder.
  std::set<PendingRequest, UrgencyOrder> pending(
      UrgencyOrder{policy == DispatchPolicy::kEdf ||
                   policy == DispatchPolicy::kModelAffinity ||
                   policy == DispatchPolicy::kPipeline});

  double now = 0.0;
  double last_event = 0.0;
  double active_integral = 0.0; // ∫ active_count dt for mean_active
  const auto advance_to = [&](double t) {
    if (t > last_event) {
      active_integral +=
          static_cast<double>(active_count) * (t - last_event);
      last_event = t;
    }
    now = std::max(now, t);
  };

  // --- fault event machinery (only reached when fault_active) ---

  // Fire the pending health-system timer of PCU p at its due time t.
  const auto fire_timer = [&](std::size_t p, double t) {
    const TimerKind kind = timer_kind[p];
    timer_kind[p] = TimerKind::kNone;
    timer_at[p] = std::numeric_limits<double>::infinity();
    switch (kind) {
      case TimerKind::kNone:
        return;
      case TimerKind::kDetectCrash:
        // The health system notices the crash: pull the dead PCU from
        // dispatch. (A recovery before detection clears this timer.)
        if (health[p] == HealthState::kFailed) excluded[p] = 1;
        return;
      case TimerKind::kDetectDegrade: {
        if (health[p] != HealthState::kDegraded) return;
        // Quarantine: out of dispatch, drain the in-flight request, then
        // pay the full repair recalibration (fixed repair time plus the
        // full serial reprogram of whatever model is in the banks).
        close_health(p, t);
        health[p] = HealthState::kQuarantined;
        excluded[p] = 1;
        result.fault.quarantines += 1;
        result.fault.per_pcu[p].quarantines += 1;
        const std::uint32_t m =
            programmed[p] == kNoModel ? 0u : programmed[p];
        const double repair_start = std::max(t, free_at[p]);
        const double repair_end =
            repair_start + faults.repair_time + pcus_[p].swap_time(m);
        result.fault.repair_time += repair_end - repair_start;
        free_at[p] = std::max(free_at[p], repair_end);
        timer_kind[p] = TimerKind::kRepairDone;
        timer_at[p] = repair_end;
        return;
      }
      case TimerKind::kRepairDone:
        // Rejoin healthy with freshly re-trimmed, unprogrammed banks: the
        // next dispatch recalibrates from cold, and every calibration
        // artifact planned for this configuration goes stale.
        close_health(p, t);
        health[p] = HealthState::kHealthy;
        excluded[p] = 0;
        degrade_mult[p] = 1.0;
        programmed[p] = kNoModel;
        force_cold[p] = 1;
        result.fault.repairs += 1;
        result.fault.per_pcu[p].repairs += 1;
        bump_plan_epoch(p);
        return;
    }
    throw Error("invalid TimerKind");
  };

  // Apply one FaultEvent at its timestamp.
  const auto apply_fault = [&](const FaultEvent& e) {
    result.fault.injections += 1;
    const std::size_t p = e.pcu;
    switch (e.kind) {
      case FaultKind::kTransient: {
        result.fault.per_pcu[p].transients += 1;
        if (health[p] == HealthState::kFailed) return; // nothing to corrupt
        const Inflight fl = inflight[p];
        if (fl.valid && fl.completion > e.time &&
            !cancelled[fl.sched_index]) {
          // The victim runs to its scheduled completion (occupying the
          // PCU) but its output is corrupt — detected at completion, when
          // the retry clock starts.
          lose_attempt(fl.req, fl.sched_index, p, FaultKind::kTransient,
                       fl.completion, fl.completion);
          inflight[p].valid = false;
        }
        // A pipelined attempt is corrupted when the fault lands inside one
        // of its stage spans on p; the corruption surfaces only when the
        // final stage completes (earlier stages hand off silently).
        for (const PipeInflight& pf : pipe_inflight) {
          if (cancelled[pf.sched_index]) continue;
          const ScheduledService& s = result.schedule[pf.sched_index];
          for (const StageService& st : s.stages) {
            if (st.pcu == p && st.start <= e.time &&
                e.time < st.completion) {
              lose_attempt(pf.req, pf.sched_index, p, FaultKind::kTransient,
                           s.completion, s.completion);
              break;
            }
          }
        }
        return;
      }
      case FaultKind::kDegrade: {
        if (health[p] == HealthState::kFailed) return; // dead already
        result.fault.per_pcu[p].degrades += 1;
        degrade_mult[p] = std::max(degrade_mult[p], e.severity);
        if (health[p] == HealthState::kHealthy) {
          close_health(p, e.time);
          health[p] = HealthState::kDegraded;
        }
        // Already-quarantined PCUs are being repaired anyway; an earlier
        // pending detection keeps its (earlier) due time.
        if (faults.health_aware && health[p] == HealthState::kDegraded &&
            timer_kind[p] == TimerKind::kNone) {
          timer_kind[p] = TimerKind::kDetectDegrade;
          timer_at[p] = e.time + faults.detection_latency;
        }
        return;
      }
      case FaultKind::kCrash: {
        result.fault.per_pcu[p].crashes += 1;
        if (health[p] == HealthState::kFailed) return; // dead already
        close_health(p, e.time);
        health[p] = HealthState::kFailed;
        // A crash supersedes any pending detection and aborts a repair in
        // progress (the repair never completes: no repairs count, no
        // epoch bump — the banks were never re-trimmed).
        timer_kind[p] = TimerKind::kNone;
        timer_at[p] = std::numeric_limits<double>::infinity();
        if (faults.health_aware) {
          timer_kind[p] = TimerKind::kDetectCrash;
          timer_at[p] = e.time + faults.detection_latency;
        }
        const Inflight fl = inflight[p];
        if (fl.valid && fl.completion > e.time &&
            !cancelled[fl.sched_index]) {
          // The in-flight request dies at fault time; the loss is noticed
          // after the detection latency.
          lose_attempt(fl.req, fl.sched_index, p, FaultKind::kCrash, e.time,
                       e.time + faults.detection_latency);
          inflight[p].valid = false;
        }
        // A crash on p kills every pipelined attempt with a stage span on
        // p not yet complete at fault time — including future spans, whose
        // activation would arrive at a dead PCU.
        for (const PipeInflight& pf : pipe_inflight) {
          if (cancelled[pf.sched_index]) continue;
          const ScheduledService& s = result.schedule[pf.sched_index];
          for (const StageService& st : s.stages) {
            if (st.pcu == p && st.completion > e.time) {
              lose_attempt(pf.req, pf.sched_index, p, FaultKind::kCrash,
                           e.time, e.time + faults.detection_latency);
              break;
            }
          }
        }
        return;
      }
      case FaultKind::kRecover:
        // External repair: back in service healthy, banks freshly
        // re-trimmed and unprogrammed (a mid-quarantine recover completes
        // the repair early; a recover on a healthy PCU is an external
        // re-trim — both count as a repair and bump the epoch).
        close_health(p, e.time);
        health[p] = HealthState::kHealthy;
        excluded[p] = 0;
        degrade_mult[p] = 1.0;
        programmed[p] = kNoModel;
        force_cold[p] = 1;
        free_at[p] = std::max(free_at[p], e.time);
        timer_kind[p] = TimerKind::kNone;
        timer_at[p] = std::numeric_limits<double>::infinity();
        result.fault.repairs += 1;
        result.fault.per_pcu[p].repairs += 1;
        bump_plan_epoch(p);
        return;
    }
    throw Error("invalid FaultKind");
  };

  // Re-place every pipeline group whose healthy member set changed — a
  // member got quarantined or declared dead (excluded) or repaired back in.
  // place_pipeline is a pure function of the surviving members, so the
  // re-placement is deterministic; pins reset because new stage ranges mean
  // freshly reprogrammed banks.
  const auto refresh_pipelines = [&] {
    if (!pipelined) return;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::vector<std::size_t> healthy_members;
      for (std::size_t p : groups[g].members)
        if (!excluded[p]) healthy_members.push_back(p);
      if (healthy_members == last_healthy[g]) continue;
      last_healthy[g] = healthy_members;
      place_pipeline(groups[g], healthy_members);
      pinned[g].assign(groups[g].stages.size(), 0);
      result.pipeline.replacements += 1;
    }
  };

  // Earliest pending health timer (ties: lowest PCU index).
  const auto next_timer = [&]() -> std::pair<double, std::size_t> {
    double best = std::numeric_limits<double>::infinity();
    std::size_t who = pcus_.size();
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      if (timer_at[p] < best) {
        best = timer_at[p];
        who = p;
      }
    }
    return {best, who};
  };

  const auto next_fault_time = [&]() -> double {
    return fault_cursor < faults.schedule.size()
               ? faults.schedule[fault_cursor].time
               : std::numeric_limits<double>::infinity();
  };

  // Earliest instant the health system acts next (timer or injection).
  const auto next_health_event = [&]() -> double {
    return std::min(next_timer().first, next_fault_time());
  };

  // Process every health timer and fault event due by `t`, each at its own
  // timestamp (timers first on exact ties: detection/repair outcomes must
  // be visible to a fault striking at the same instant).
  const auto process_events_to = [&](double t) {
    while (true) {
      const auto [tt, tp] = next_timer();
      const double ft = next_fault_time();
      if (tt <= ft) {
        if (tt > t) break;
        advance_to(tt);
        fire_timer(tp, tt);
      } else {
        if (ft > t) break;
        advance_to(ft);
        apply_fault(faults.schedule[fault_cursor]);
        fault_cursor += 1;
      }
      // Either branch may have changed a PCU's exclusion; pipeline groups
      // re-place over their surviving members immediately.
      refresh_pipelines();
    }
  };

  // Every clock advance of the event-driven loop goes through here so
  // faults strike in order, at their own timestamps, before the loop acts
  // at `t`. Identical to advance_to when no faults are injected.
  const auto step_to = [&](double t) {
    if (fault_active) process_events_to(t);
    advance_to(t);
  };

  // Drain every permanently-undispatchable request into the loss record —
  // the fleet died (or stayed incapable) with them still waiting and no
  // future event can change that.
  const auto drain_all_lost = [&](std::set<PendingRequest, UrgencyOrder>&
                                      pending_set) {
    for (const PendingRequest& r : pending_set) {
      result.fault.lost_requests += 1;
      result.fault.losses.push_back(
          {r.id, r.tenant, r.priority, r.arrival, now, r.attempts - 1});
    }
    pending_set.clear();
    for (const RetryEntry& e : retries) {
      result.fault.lost_requests += 1;
      result.fault.losses.push_back({e.req.id, e.req.tenant, e.req.priority,
                                     e.req.arrival, now,
                                     e.req.attempts - 1});
    }
    retries.clear();
  };

  // Shrink: deactivate PCUs idle at least shrink_after_idle, highest
  // index first, never below min_active. A busy PCU (free_at > now) has
  // negative idle time and is never touched.
  const auto shrink_idle = [&] {
    if (scaler.shrink_after_idle <= 0.0) return;
    for (std::size_t i = pcus_.size(); i-- > 0 && active_count > min_active;) {
      // A reserved PCU (pipeline group member) is never parked: the group
      // admits work at the head's pace and any member going cold would
      // stall the whole chain. `reserved` is all-zero without kPipeline.
      if (!active[i] || reserved[i]) continue;
      const double idle_from = std::max(free_at[i], activated_at[i]);
      if (now - idle_from >= scaler.shrink_after_idle) {
        active[i] = 0;
        active_count -= 1;
        result.autoscaler.scale_downs += 1;
      }
    }
  };

  // Grow: activate the lowest-indexed inactive PCU while the pending
  // backlog exceeds the per-PCU budget. Activation forces a cold start:
  // the pipeline of a parked PCU has drained no matter its WarmupPolicy.
  const auto grow_on_backlog = [&] {
    while (active_count < max_active &&
           static_cast<double>(pending.size()) >
               scaler.backlog_per_pcu * static_cast<double>(active_count)) {
      // Skip health-excluded PCUs: activating a quarantined or
      // detected-dead PCU would waste the slot (excluded is always clear
      // without fault injection).
      std::size_t p = 0;
      while (p < pcus_.size() && (active[p] || excluded[p])) ++p;
      if (p == pcus_.size()) break; // every inactive PCU is unhealthy
      active[p] = 1;
      force_cold[p] = 1;
      activated_at[p] = now;
      active_count += 1;
      result.autoscaler.scale_ups += 1;
    }
    // Under kPipeline, reserved group members inflate active_count but
    // never serve group-less models, so the backlog threshold alone can
    // park every unreserved PCU forever. If a pending request's model has
    // no (surviving) pipeline group while no unreserved PCU is awake,
    // force one up — the fallback path must never starve behind the
    // reserved fleet.
    if (pipelined && active_count < max_active) {
      bool groupless_pending = false;
      for (const PendingRequest& r : pending) {
        const PipelineGroup* g = nullptr;
        for (const PipelineGroup& cand : groups)
          if (cand.model == r.model) g = &cand;
        if (g == nullptr || g->stages.empty()) {
          groupless_pending = true;
          break;
        }
      }
      bool any_unreserved_awake = false;
      if (groupless_pending) {
        for (std::size_t p = 0; p < pcus_.size(); ++p)
          if (active[p] && !reserved[p] && !excluded[p])
            any_unreserved_awake = true;
      }
      if (groupless_pending && !any_unreserved_awake) {
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (active[p] || excluded[p] || reserved[p]) continue;
          active[p] = 1;
          force_cold[p] = 1;
          activated_at[p] = now;
          active_count += 1;
          result.autoscaler.scale_ups += 1;
          break;
        }
      }
    }
  };

  InferenceRequest request;
  while (true) {
    // Re-enqueue retries whose backoff has expired: they re-enter the
    // pending set with their original arrival (and id, hence seed) and
    // compete under the normal urgency order.
    if (fault_active) {
      while (!retries.empty() && retries.begin()->ready <= now) {
        pending.insert(retries.begin()->req);
        retries.erase(retries.begin());
      }
    }

    // Admit everything that has arrived by `now` into the pending set.
    while (queue.pop_arrived(now, request)) {
      check_model(request);
      pending.insert({request.id, request.arrival_time, request.tenant,
                      request.priority, request.deadline,
                      request.model_id});
    }

    if (pending.empty()) {
      double next = std::numeric_limits<double>::infinity();
      double na = 0.0;
      if (queue.next_arrival(na)) next = na;
      if (fault_active) {
        if (!retries.empty()) next = std::min(next, retries.begin()->ready);
        // Faults can still destroy work in flight: process health events
        // up to the latest in-flight completion. Events past it are past
        // the end of the simulated timeline and never fire.
        double in_flight_until = -std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (inflight[p].valid && !cancelled[inflight[p].sched_index])
            in_flight_until =
                std::max(in_flight_until, inflight[p].completion);
        }
        for (const PipeInflight& pf : pipe_inflight) {
          if (!cancelled[pf.sched_index])
            in_flight_until =
                std::max(in_flight_until,
                         result.schedule[pf.sched_index].completion);
        }
        const double ev = next_health_event();
        if (ev <= in_flight_until) next = std::min(next, ev);
      }
      if (!std::isfinite(next)) break; // drained: done
      step_to(next);
      continue;
    }

    if (scaler.enabled) {
      shrink_idle();
      grow_on_backlog();
    }

    // The next dispatch opportunity: the earliest instant an eligible
    // (active, not health-excluded, capable-of-some-model) PCU is free.
    double free_time = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      if (!active[p] || excluded[p] || !scan_capable(p)) continue;
      free_time = std::min(free_time, std::max(now, free_at[p]));
    }
    if (!std::isfinite(free_time)) {
      PCNNA_CHECK_MSG(fault_active,
                      "no active capable PCU to dispatch to — autoscaler "
                      "min_active excludes every capable PCU");
      // The whole fleet is dead or quarantined. Wait for whatever event
      // can change that (a repair, a recovery, more arrivals); if nothing
      // ever will, everything still waiting is permanently lost.
      double next_event = std::numeric_limits<double>::infinity();
      double na = 0.0;
      if (queue.next_arrival(na)) next_event = na;
      if (!retries.empty())
        next_event = std::min(next_event, retries.begin()->ready);
      next_event = std::min(next_event, next_health_event());
      if (!std::isfinite(next_event)) {
        drain_all_lost(pending);
        break;
      }
      step_to(next_event);
      continue;
    }

    // If another request arrives before (or exactly when) a PCU frees,
    // admit it first: under EDF it may be more urgent than anything
    // already pending.
    double next = 0.0;
    if (queue.next_arrival(next) && next <= free_time) {
      step_to(next);
      continue;
    }
    if (fault_active) {
      // Same for a retry whose backoff expires, or a health event — a
      // fault could kill the very PCU the dispatch below would pick, so
      // events strictly before (or at) the free instant are applied and
      // the picture re-evaluated first.
      double ev = next_health_event();
      if (!retries.empty()) ev = std::min(ev, retries.begin()->ready);
      if (ev <= free_time) {
        step_to(ev);
        continue;
      }
    }
    step_to(free_time);

    // Walk the pending set in urgency order and act on the first request
    // that can: dispatch it to a free PCU, or shed it. A request may
    // instead *defer* — under kModelAffinity, to wait for a busy PCU
    // programmed with its model; under multi-model kCapabilityAware, when
    // every PCU capable of its model is busy — and then the next pending
    // request gets its chance. On a single-model stream nothing ever
    // defers (the free event guarantees a free capable PCU), so this loop
    // acts on *pending.begin() exactly like the pre-multi-model code.
    if (telemetry) telemetry->on_queue_depth(now, pending.size());
    bool acted = false;
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      const PendingRequest r = *it;
      std::size_t best = pcus_.size();
      double best_score = std::numeric_limits<double>::infinity();

      // Health-aware capability downgrade: under the capability-sensitive
      // policies a degraded PCU no longer meets the bar — unless no
      // fully-healthy capable PCU is dispatchable for this model at all,
      // in which case degraded capacity beats none.
      bool allow_degraded = true;
      if (fault_active && (policy == DispatchPolicy::kCapabilityAware ||
                           policy == DispatchPolicy::kModelAffinity)) {
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (active[p] && !excluded[p] && capable(p, r.model) &&
              health[p] == HealthState::kHealthy) {
            allow_degraded = false;
            break;
          }
        }
      }
      // Dispatch eligibility of PCU p for this request. Reduces exactly to
      // active && capable when no faults are injected.
      const auto elig = [&](std::size_t p) {
        if (!active[p] || !capable(p, r.model)) return false;
        if (!fault_active) return true;
        if (excluded[p]) return false;
        return allow_degraded || health[p] != HealthState::kDegraded;
      };

      if (policy == DispatchPolicy::kPipeline) {
        // Route to the model's pipeline group. The head PCU gates
        // admission: a new image enters the pipeline when stage 0 frees,
        // and downstream stages chain from the hand-off instants.
        std::size_t gi = groups.size();
        for (std::size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].model == r.model) {
            gi = g;
            break;
          }
        }
        if (gi < groups.size() && !groups[gi].stages.empty()) {
          const PipelineGroup& g = groups[gi];
          const std::size_t head = g.stages.front().pcu;
          if (free_at[head] > now) continue; // defer until stage 0 frees
          // Chain the stage spans: stage j starts once the previous
          // stage's activation has crossed the inter-stage link AND the
          // stage's PCU is free (busy with image i-1 of the same stream).
          std::vector<StageService> spans;
          spans.reserve(g.stages.size());
          double prev = now;
          double total_pin = 0.0;
          double total_handoff = 0.0;
          for (std::size_t j = 0; j < g.stages.size(); ++j) {
            const PipelineStage& st = g.stages[j];
            const double handoff = j == 0 ? 0.0 : g.handoff_time;
            const double start = std::max(prev + handoff, free_at[st.pcu]);
            // The pin — the stage range's first-layer recalibration — is
            // paid once per placement; afterwards the stage's banks never
            // change (that is the whole point of pipelining: zero swaps).
            const double pin =
                (pinned[gi][j] ? 0.0 : st.timings.pin) *
                degrade_factor(st.pcu);
            const double span =
                st.timings.interval * degrade_factor(st.pcu) + pin;
            spans.push_back({j, st.pcu, st.op_begin, st.op_end, start,
                             start + span, pin, handoff});
            total_pin += pin;
            total_handoff += handoff;
            prev = start + span;
          }
          const double completion = spans.back().completion;
          if (options.shed_expired && completion > r.deadline) {
            result.shed.shed += 1;
            result.shed.per_tenant[r.tenant] += 1;
            result.shed.decisions.push_back(
                {r.id, r.tenant, r.priority, r.arrival, r.deadline, now});
          } else {
            for (std::size_t j = 0; j < spans.size(); ++j) {
              const std::size_t p = spans[j].pcu;
              free_at[p] = spans[j].completion;
              served[p] += 1;
              force_cold[p] = 0;
              programmed[p] = r.model;
              pinned[gi][j] = 1;
            }
            ScheduledService entry;
            entry.id = r.id;
            entry.pcu = head;
            entry.arrival = r.arrival;
            entry.start = spans.front().start;
            entry.completion = completion;
            entry.warmup = total_pin;
            entry.tenant = r.tenant;
            entry.priority = r.priority;
            entry.deadline = r.deadline;
            entry.model = r.model;
            entry.attempts = r.attempts;
            entry.stages = std::move(spans);
            result.schedule.push_back(std::move(entry));
            result.pipeline.pipelined_requests += 1;
            result.pipeline.stage_spans +=
                result.schedule.back().stages.size();
            if (telemetry)
              telemetry->on_dispatch(/*swapped=*/false, /*pipelined=*/true);
            result.pipeline.pin_time += total_pin;
            result.pipeline.handoff_time += total_handoff;
            if (fault_active) {
              cancelled.push_back(0);
              const std::size_t idx = result.schedule.size() - 1;
              // Dispatching across an undetected-dead stage PCU is a
              // black hole, same as the single-PCU case: the loss is only
              // noticed at the predicted completion.
              std::size_t dead_pcu = pcus_.size();
              for (const StageService& s : result.schedule[idx].stages) {
                if (health[s.pcu] == HealthState::kFailed) {
                  dead_pcu = s.pcu;
                  break;
                }
              }
              if (dead_pcu < pcus_.size()) {
                lose_attempt(r, idx, dead_pcu, FaultKind::kCrash,
                             completion, completion);
              } else {
                pipe_inflight.push_back({idx, r});
              }
            }
          }
          pending.erase(it);
          acted = true;
          break;
        }
        // No pipeline group for this model — or the group lost every
        // member. Fall back to least-loaded over the unreserved fleet so
        // mixed deployments (some models pipelined, some not) still serve.
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (reserved[p] || !elig(p) || free_at[p] > now) continue;
          const double score = now + blind_service(p, r.model, now);
          if (score < best_score) {
            best_score = score;
            best = p;
          }
        }
        if (best == pcus_.size()) {
          bool any_unreserved = false;
          for (std::size_t p = 0; p < pcus_.size(); ++p)
            if (!reserved[p] && active[p] && capable(p, r.model))
              any_unreserved = true;
          PCNNA_CHECK_MSG(any_unreserved || fault_active,
                          "model " << r.model
                                   << " has no pipeline group and every "
                                      "PCU is reserved by one");
          continue; // defer until an unreserved PCU frees
        }
      } else if (policy == DispatchPolicy::kModelAffinity) {
        // (a) Free PCU already programmed with r.model: earliest truthful
        // completion wins (no swap by construction).
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (!elig(p) || free_at[p] > now || programmed[p] != r.model)
            continue;
          const double score = now + true_service(p, r.model, now);
          if (score < best_score) {
            best_score = score;
            best = p;
          }
        }
        if (best == pcus_.size()) {
          // (b) Every affine PCU is busy (or none exists). Waiting for
          // the soonest busy affine PCU predicts completion at its free
          // time plus a warm steady-state interval; falling back means
          // swapping onto the best free capable PCU now. Wait only when
          // waiting both meets the deadline and is at least as fast —
          // otherwise the affinity queue would blow the SLO (or just
          // lose throughput) for the sake of a swap.
          double affine_completion =
              std::numeric_limits<double>::infinity();
          for (std::size_t p = 0; p < pcus_.size(); ++p) {
            if (!elig(p) || programmed[p] != r.model || free_at[p] <= now)
              continue;
            affine_completion =
                std::min(affine_completion,
                         free_at[p] + pcus_[p].request_interval_overlapped(
                                          r.model) *
                                          degrade_factor(p));
          }
          for (std::size_t p = 0; p < pcus_.size(); ++p) {
            if (!elig(p) || free_at[p] > now) continue;
            const double score = now + true_service(p, r.model, now);
            if (score < best_score) {
              best_score = score;
              best = p;
            }
          }
          if (std::isfinite(affine_completion) &&
              affine_completion <= r.deadline &&
              affine_completion <= best_score) {
            continue; // defer: hold out for the busy affine PCU
          }
          if (best == pcus_.size()) {
            // No free capable PCU either; r waits for a busy one.
            bool any_capable = false;
            for (std::size_t p = 0; p < pcus_.size(); ++p)
              if (active[p] && capable(p, r.model)) any_capable = true;
            PCNNA_CHECK_MSG(any_capable || fault_active,
                            "no active PCU capable of model " << r.model);
            continue;
          }
        }
      } else {
        // Legacy policies: best free (active, capable) PCU. kEarliestFree
        // keeps its longest-free-wins score; the others take the earliest
        // predicted (model-blind) completion.
        for (std::size_t p = 0; p < pcus_.size(); ++p) {
          if (!elig(p) || free_at[p] > now) continue;
          const double score =
              policy == DispatchPolicy::kEarliestFree
                  ? free_at[p]
                  : now + blind_service(p, r.model, now);
          if (score < best_score) {
            best_score = score;
            best = p;
          }
        }
        if (best == pcus_.size()) {
          // Only reachable multi-model under kCapabilityAware: every PCU
          // capable of r.model is busy, so r waits while less demanding
          // pending requests may still dispatch.
          bool any_capable = false;
          for (std::size_t p = 0; p < pcus_.size(); ++p)
            if (active[p] && capable(p, r.model)) any_capable = true;
          PCNNA_CHECK_MSG(any_capable || fault_active,
                          "no active PCU capable of model " << r.model);
          continue;
        }
      }

      if (options.shed_expired &&
          now + true_service(best, r.model, now) > r.deadline) {
        // Predicted completion blows the SLO: reject now, at the moment
        // the dispatch decision is made, instead of serving uselessly
        // late.
        result.shed.shed += 1;
        result.shed.per_tenant[r.tenant] += 1;
        result.shed.decisions.push_back(
            {r.id, r.tenant, r.priority, r.arrival, r.deadline, now});
      } else {
        dispatch(r, best, now);
      }
      pending.erase(it);
      acted = true;
      break;
    }

    if (!acted) {
      // Every pending request deferred: nothing can start at `now`.
      // Advance to the next event that can change the picture — the next
      // arrival, the next strictly-later free time of an eligible PCU, or
      // (with faults) the next retry expiry or health event.
      double next_event = std::numeric_limits<double>::infinity();
      if (queue.next_arrival(next)) next_event = next;
      for (std::size_t p = 0; p < pcus_.size(); ++p) {
        if (!active[p] || excluded[p] || !scan_capable(p) ||
            free_at[p] <= now)
          continue;
        next_event = std::min(next_event, free_at[p]);
      }
      if (fault_active) {
        if (!retries.empty())
          next_event = std::min(next_event, retries.begin()->ready);
        next_event = std::min(next_event, next_health_event());
      }
      if (!std::isfinite(next_event)) {
        PCNNA_CHECK_MSG(fault_active,
                        "admission deadlock: every pending request is "
                        "deferred with no future event");
        // No PCU will ever become dispatchable for what remains.
        drain_all_lost(pending);
        break;
      }
      step_to(next_event);
    }
  }

  if (fault_active) {
    // Repairs complete even after the last request — fire every remaining
    // health timer for the availability/repair accounting. (Remaining
    // fault *events* are past the end of the simulated timeline and never
    // fire.)
    while (true) {
      const auto [tt, tp] = next_timer();
      if (!std::isfinite(tt)) break;
      advance_to(tt);
      fire_timer(tp, tt);
    }
    // Drop destroyed attempts from the schedule (stable), keeping only
    // the attempt that actually served each request.
    std::vector<ScheduledService> kept;
    kept.reserve(result.schedule.size());
    for (std::size_t i = 0; i < result.schedule.size(); ++i) {
      if (!cancelled[i]) kept.push_back(result.schedule[i]);
    }
    result.schedule = std::move(kept);
    for (const ScheduledService& s : result.schedule) {
      if (s.attempts > 1) result.fault.recovered_requests += 1;
    }
  }

  // Close the mean-active integral at the makespan (the last completion —
  // destroyed attempts included — or the last event when everything was
  // shed).
  double makespan = last_event;
  for (const ScheduledService& s : result.schedule)
    makespan = std::max(makespan, s.completion);
  if (fault_active) {
    for (const FaultedAttempt& a : result.fault.attempts)
      makespan = std::max(makespan, a.end);
  }
  advance_to(makespan);
  result.autoscaler.mean_active =
      makespan > 0.0 ? active_integral / makespan
                     : static_cast<double>(active_count);

  if (fault_active) {
    // Close every health dwell bucket at the makespan and derive per-PCU
    // availability (the in-service fraction of the run).
    for (std::size_t p = 0; p < pcus_.size(); ++p) {
      close_health(p, makespan);
      PcuHealthStats& hs = result.fault.per_pcu[p];
      hs.availability =
          makespan > 0.0
              ? (hs.healthy_time + hs.degraded_time) / makespan
              : 1.0;
    }
  }
  if (telemetry) telemetry->record_admission(result, *this, options);
  return result;
}

std::vector<ScheduledService> PcuPool::simulate_admission(
    RequestQueue& queue, bool double_buffer, DispatchPolicy policy) {
  AdmissionOptions options;
  options.double_buffer = double_buffer;
  options.policy = policy;
  return simulate_admission(queue, options).schedule;
}

} // namespace pcnna::runtime
