// Batch-parallel inference runner: the top-level serving API.
//
// A BatchRunner owns one model (Network + NetWeights) and a PcuPool —
// either N identical accelerator replicas (homogeneous constructor) or an
// arbitrary mixed fleet built from a PcuSpec vector (heterogeneous
// constructor: per-PCU PcnnaConfig, engine threads, warmup policy,
// capability tag). Two entry points share the machinery:
//
//  * run() — closed batch: the whole workload is present at t = 0. Returns
//    outputs in request order plus a fleet-level FleetReport.
//
//  * run_open_loop() / simulate_open_loop() — open loop: each request
//    carries an arrival timestamp (runtime/arrival.hpp generates Poisson,
//    trace-replay, or uniform schedules), the admission loop charges its
//    queueing delay in virtual time, and the OpenLoopReport summarizes the
//    latency distribution (p50/p90/p99/p999), per-PCU utilization, mean
//    queue depth, and offered vs. achieved throughput. The closed batch is
//    exactly the degenerate all-at-t=0 arrival schedule.
//
// Two clocks are deliberately separated:
//
//  * Host wall-clock decides which physical worker simulates which request.
//    On a homogeneous fleet this is dynamic sharding (a slow host core
//    simply grabs fewer requests) and affects nothing but load balancing of
//    the simulation work itself. On a heterogeneous fleet the physical
//    assignment instead follows the deterministic virtual-time schedule
//    (PcuPool::serve_scheduled), because PCUs with different device models
//    produce different — all valid — output bits, and "which PCU served
//    request i" must not depend on host timing.
//
//  * Simulated hardware time is accounted by the deterministic virtual-time
//    admission loop (PcuPool::simulate_admission): requests are admitted in
//    arrival order (or by deadline urgency under kEdf) and dispatched by
//    BatchRunnerOptions::dispatch (earliest-free, least-loaded,
//    capability-aware, or EDF). With shed_expired the loop load-sheds
//    requests that cannot meet their deadline; with options.autoscaler the
//    active fleet grows and shrinks against backlog. All reported
//    latency / throughput / energy numbers come from this schedule, so
//    reports are reproducible run to run and machine to machine.
//
// Every serving-configuration knob on this page is cataloged in
// docs/configuration.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/report.hpp"
#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"
#include "runtime/arrival.hpp"
#include "runtime/pcu_pool.hpp"

namespace pcnna::runtime {

struct BatchRunnerOptions {
  /// Number of replicated photonic conv units (and host worker threads).
  /// Used by the homogeneous constructor only; the heterogeneous
  /// constructor takes its fleet size from the PcuSpec vector.
  std::size_t num_pcus = 1;
  /// Timing fidelity of every PCU's accelerator model. kFull exposes the
  /// weight-load / settle costs that double buffering hides; under kPaper
  /// recalibration is free and the overlap is a no-op.
  core::TimingFidelity fidelity = core::TimingFidelity::kFull;
  /// Push values through the photonic functional model (true) or compute
  /// them on the golden CPU path while still pricing the hardware (false).
  bool simulate_values = true;
  /// Account weight-bank recalibration as double-buffered against optical
  /// compute (the Fig. 4 overlap lifted to the request stream).
  bool double_buffer = true;
  /// How the admission loop picks a PCU for each admitted request
  /// (see runtime::DispatchPolicy). The default reproduces the
  /// pre-heterogeneous earliest-free behavior bit for bit.
  DispatchPolicy dispatch = DispatchPolicy::kEarliestFree;
  /// Load shedding: reject a request whose predicted completion would
  /// exceed its deadline instead of serving it late
  /// (AdmissionOptions::shed_expired). Shed requests come back as id-only
  /// placeholder results with RequestResult::shed set.
  bool shed_expired = false;
  /// Elastic fleet sizing of the admission loop (see AutoscalerPolicy);
  /// disabled by default — the whole fleet is always active.
  AutoscalerPolicy autoscaler;
  /// Fault injection + tolerance (runtime/fault_plan.hpp): a non-empty
  /// faults.schedule turns on health tracking, retry with backoff, and
  /// quarantine/repair in the admission loop. The default (empty schedule)
  /// keeps every serving path bit-identical to a fault-free build.
  FaultOptions faults;
  /// Opt-in observability (runtime/telemetry.hpp). Borrowed; may be null
  /// (the default — telemetry off). When set, open-loop runs record
  /// per-request spans, dispatch/engine metrics, and the finished report
  /// into it; every schedule, output, and report stays bitwise identical
  /// either way. One Telemetry per concurrently running fleet.
  Telemetry* telemetry = nullptr;
  /// Base seed; per-request engine seeds derive from it (SplitMix64), so
  /// the whole batch is reproducible from this one number.
  std::uint64_t seed = 1;
  /// Intra-image engine threads per PCU (> 0 overrides
  /// PcnnaConfig::engine_threads — and any per-spec override — for every
  /// PCU). Outputs are bit-identical for any value; this trades host cores
  /// between request-level sharding (one worker per PCU) and per-image
  /// latency. The host runs up to num_pcus * engine_threads simulation
  /// threads at once.
  std::size_t engine_threads = 0;
};

/// Per-PCU slice of the deterministic virtual-time schedule, reported by
/// both FleetReport and OpenLoopReport so fleet skew is observable. All
/// times are simulated seconds.
struct PcuBreakdown {
  /// The PcuSpec's capability tag (empty for the homogeneous constructor).
  std::string tag;
  /// Requests this virtual PCU served.
  std::size_t requests = 0;
  /// Total time in service (completion - start summed over its requests).
  double busy_time = 0.0;
  /// Portion of busy_time spent re-filling the double-buffer pipeline
  /// (warmup charges; 0 without double buffering).
  double warmup_time = 0.0;
  /// busy_time / makespan, in [0, 1]. 0 when the makespan is 0.
  double utilization = 0.0;
  /// Weight-bank swaps this PCU paid: dispatches that reprogrammed it
  /// from a different model (ScheduledService::swapped).
  std::size_t swaps = 0;
  /// Portion of busy_time spent on those swaps [s].
  double swap_time = 0.0;
  /// Service attempts injected faults destroyed on this PCU (crash losses
  /// plus corrupted transients; 0 on fault-free runs).
  std::size_t lost_attempts = 0;
  /// Service time those lost attempts burned before dying [s]. Not part of
  /// busy_time: the schedule only keeps attempts that completed.
  double lost_time = 0.0;
};

/// Fleet-level serving summary. All times are simulated hardware seconds
/// unless suffixed _wall. The single-request reference fields
/// (request_time_serial, request_interval, overlap_speedup,
/// makespan_sequential) are computed from PCU 0 — on a heterogeneous fleet
/// put the flagship spec first.
struct FleetReport {
  std::size_t pcus = 1;
  std::size_t requests = 0;
  core::TimingFidelity fidelity = core::TimingFidelity::kFull;
  bool double_buffer = true;
  DispatchPolicy dispatch = DispatchPolicy::kEarliestFree;

  /// One request on one PCU, serial schedule (Σ layer full_system_time).
  double request_time_serial = 0.0;
  /// Steady-state completion interval with double-buffered recalibration.
  double request_interval = 0.0;
  /// request_time_serial / request_interval (1.0 when not double buffered).
  double overlap_speedup = 1.0;
  /// Images per simulated second of one PCU on the serial schedule
  /// (1 / request_time_serial) — the per-image rate the deleted
  /// Accelerator::run_batch used to report.
  double sequential_rps = 0.0;

  /// Whole batch on 1 PCU, serial schedule — the baseline.
  double makespan_sequential = 0.0;
  /// Whole batch on the fleet (virtual-time schedule).
  double makespan = 0.0;
  /// requests / makespan.
  double throughput_rps = 0.0;
  /// makespan_sequential / makespan (sharding x overlap gains).
  double speedup_vs_sequential = 1.0;
  /// speedup normalized by fleet size.
  double scaling_efficiency = 1.0;

  /// Request latency under all-at-once arrival (queueing + service).
  double mean_latency = 0.0;
  double max_latency = 0.0;

  double total_energy = 0.0;      ///< [J]
  double energy_per_request = 0.0;///< [J]

  /// Per-PCU schedule breakdown (requests, busy/warmup time, utilization,
  /// tag), aligned with PCU indices.
  std::vector<PcuBreakdown> per_pcu;
  /// Requests each virtual PCU served in the deterministic schedule
  /// (per_pcu[p].requests; kept as a flat vector for existing callers).
  std::vector<std::size_t> virtual_requests_per_pcu;

  /// Host seconds spent actually simulating the batch (informational; on a
  /// multi-core host this is where N worker threads pay off).
  double wall_seconds = 0.0;
};

/// Per-tenant slice of an SLO-aware open-loop run. A request meets its SLO
/// when it is served and completes by its deadline (+inf deadlines always
/// count as met); shed requests always count as missed.
struct TenantBreakdown {
  std::uint32_t tenant = 0;
  /// Offered requests (served + shed).
  std::size_t requests = 0;
  std::size_t served = 0;
  std::size_t shed = 0;
  /// Requests injected faults permanently destroyed (0 without faults).
  std::size_t failed = 0;
  /// Served-late plus shed plus fault-failed.
  std::size_t slo_misses = 0;
  /// (requests - slo_misses) / requests; 1.0 for an empty tenant.
  double slo_attainment = 1.0;
  /// Sojourn latency of the *served* requests [s].
  DistributionSummary latency;
};

/// Open-loop serving summary. All times are simulated hardware seconds
/// unless suffixed _wall; all rates are requests per simulated second.
struct OpenLoopReport {
  std::size_t pcus = 1;
  std::size_t requests = 0;
  core::TimingFidelity fidelity = core::TimingFidelity::kFull;
  bool double_buffer = true;
  DispatchPolicy dispatch = DispatchPolicy::kEarliestFree;

  /// Offered load of the arrival schedule (requests / last arrival time
  /// [req/s]; +inf for the degenerate closed batch).
  double offered_rps = 0.0;
  /// served_requests / makespan [req/s]. Tracks offered_rps below
  /// saturation and pins at fleet_capacity_rps above it (shed requests
  /// never count as achieved work).
  double achieved_rps = 0.0;
  /// Steady-state saturation throughput: sum over PCUs of
  /// 1 / steady-state service interval [req/s]. On a heterogeneous fleet
  /// each PCU contributes its own rate.
  double fleet_capacity_rps = 0.0;
  /// offered_rps / fleet_capacity_rps (the load factor rho; 0 when offered
  /// load is infinite, i.e. a closed batch).
  double load_factor = 0.0;

  /// Last completion time [s].
  double makespan = 0.0;
  /// Request latency (sojourn: completion - arrival) distribution [s].
  DistributionSummary latency;
  /// Queueing delay (start - arrival) distribution [s].
  DistributionSummary queue_wait;
  /// Time-averaged number of requests waiting for a PCU (Little's law:
  /// total queue wait / makespan) [requests].
  double mean_queue_depth = 0.0;

  /// Per-PCU schedule breakdown (requests, busy/warmup time, utilization,
  /// tag), aligned with PCU indices.
  std::vector<PcuBreakdown> per_pcu;
  /// Per-PCU busy fraction: simulated busy time / makespan, in [0, 1]
  /// (per_pcu[p].utilization; kept as a flat vector for existing callers).
  std::vector<double> utilization_per_pcu;
  /// Requests each virtual PCU served in the deterministic schedule
  /// (per_pcu[p].requests; kept as a flat vector for existing callers).
  std::vector<std::size_t> virtual_requests_per_pcu;

  double total_energy = 0.0;       ///< [J]
  double energy_per_request = 0.0; ///< [J]

  // --- SLO-aware serving (meaningful when the run carried tenants,
  // deadlines, or shedding; trivial defaults otherwise) ---

  /// Requests that actually completed on a PCU
  /// (= requests - shed_requests - failed_requests).
  std::size_t served_requests = 0;
  /// Requests load shedding rejected.
  std::size_t shed_requests = 0;
  /// shed_requests / requests (0 when nothing was offered).
  double shed_rate = 0.0;
  /// Fleet-wide SLO attainment: requests served by their deadline over
  /// offered requests (+inf deadlines count as met, shed as missed).
  double slo_attainment = 1.0;
  /// Per-tenant attainment/shed slices, ordered by tenant id. Populated
  /// only for SLO-aware runs (some request carried a tenant, a non-default
  /// priority, a finite deadline — or something was shed).
  std::vector<TenantBreakdown> per_tenant;
  /// Elastic-sizing outcome (mean_active == pcus when disabled).
  AutoscalerStats autoscaler;

  // --- Multi-model serving (trivial on a single-model run) ---

  /// Fleet-total weight-bank swaps: dispatches that reprogrammed a PCU
  /// from a different model (sum of per_pcu[p].swaps).
  std::size_t model_swaps = 0;
  /// Fleet-total time spent on those swaps [s].
  double model_swap_time = 0.0;

  // --- Pipeline-parallel serving (trivial without pipeline groups) ---

  /// Pipeline outcome: groups configured, requests routed through one,
  /// stage spans committed, quarantine-driven re-placements, and the total
  /// pin / hand-off time charged. All zero unless the run dispatched with
  /// DispatchPolicy::kPipeline on a runner with built pipeline groups.
  PipelineStats pipeline;

  // --- Fault tolerance (trivial on a run without injected faults) ---

  /// Requests injected faults permanently destroyed — every budgeted retry
  /// was lost (or the whole fleet died). Placeholder results carry
  /// RequestResult::failed. requests = served + shed + failed.
  std::size_t failed_requests = 0;
  /// Sojourn latency of served requests that needed at least one retry [s]
  /// — the tail the fault tolerance machinery adds.
  DistributionSummary retry_latency;
  /// Full fault-injection outcome: injections, losses, retries,
  /// quarantine/repair counts, and per-PCU health/availability.
  FaultReport fault;

  /// Host seconds spent on the call (0 for simulate_open_loop, which does
  /// no functional work).
  double wall_seconds = 0.0;
};

class BatchRunner {
 public:
  /// Homogeneous fleet: options.num_pcus identical replicas of `config`.
  /// Copies of net/weights are taken so the runner is self-contained.
  BatchRunner(core::PcnnaConfig config, nn::Network net,
              nn::NetWeights weights, BatchRunnerOptions options = {});

  /// Heterogeneous fleet: one PCU per spec (options.num_pcus is ignored;
  /// the fleet size is specs.size()). A spec vector whose entries are all
  /// identical behaves bit-identically to the homogeneous constructor.
  /// FleetReport's single-request reference fields read PCU 0, so put the
  /// flagship spec first.
  BatchRunner(std::vector<PcuSpec> specs, nn::Network net,
              nn::NetWeights weights, BatchRunnerOptions options = {});

  // The pool's Pcus hold references into this object's net_/weights_, so
  // the runner must stay at one address for its lifetime.
  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;
  BatchRunner(BatchRunner&&) = delete;
  BatchRunner& operator=(BatchRunner&&) = delete;

  const BatchRunnerOptions& options() const { return options_; }
  const nn::Network& network() const { return net_; }
  PcuPool& pool() { return pool_; }

  /// Register another model the fleet can serve (copies are taken, like
  /// the constructor's primary model). Returns the new model id — dense,
  /// starting at 1; the constructor's model is id 0. Requests name their
  /// target via a ModelSchedule on the open-loop entry points; a dispatch
  /// that switches a PCU's programmed model charges a weight-bank swap
  /// (DispatchPolicy::kModelAffinity routes to minimize exactly that).
  std::uint32_t register_model(nn::Network net, nn::NetWeights weights);

  /// Number of registered models (>= 1).
  std::size_t num_models() const { return pool_.num_models(); }

  /// Pin registered model `model` across a chain of PCUs as a pipeline
  /// group (see PcuPool::build_pipeline for the placement contract).
  /// Serving it requires options().dispatch == DispatchPolicy::kPipeline;
  /// the group's PCUs are reserved for it and fall out of fallback
  /// dispatch. Returns the group index.
  std::size_t build_pipeline(std::uint32_t model,
                             const std::vector<std::size_t>& pcus,
                             double handoff_time = 0.0) {
    return pool_.build_pipeline(model, pcus, handoff_time);
  }

  /// Serve `inputs` as requests 0..B-1 arriving all at once (closed batch —
  /// the degenerate all-at-t=0 arrival schedule).
  ///
  /// Preconditions: every input matches the network's input shape (the
  /// accelerator throws pcnna::Error otherwise). Postconditions: results
  /// come back ordered by request id, each served exactly once;
  /// `report`, when given, is filled with the deterministic fleet summary.
  /// Not thread-safe: one run()/run_open_loop()/run_one() at a time per
  /// runner (each call reuses the pool's PCU engines).
  std::vector<RequestResult> run(const std::vector<nn::Tensor>& inputs,
                                 FleetReport* report = nullptr);

  /// Open-loop serving: request i arrives at `arrivals[i]` (simulated
  /// seconds; validate_arrival_schedule is enforced, and arrivals.size()
  /// must equal inputs.size()). On a homogeneous fleet the functional
  /// results are bit-identical to run() / run_one() for the same ids —
  /// arrival times shape only the virtual-time schedule the OpenLoopReport
  /// summarizes. On a heterogeneous fleet each output is computed by the
  /// deterministically scheduled PCU's own device model, so results are
  /// still bit-reproducible run to run, but can legitimately differ
  /// between dispatch policies (a different PCU is a different chip).
  std::vector<RequestResult> run_open_loop(
      const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
      OpenLoopReport* report = nullptr);

  /// SLO-aware open loop: like run_open_loop, with request i additionally
  /// carrying slos[i]'s tenant, priority class, and absolute deadline
  /// (runtime::assign_tenants builds an SloSchedule from a TenantClass
  /// mix; an empty `slos` means no SLO metadata). With
  /// options().shed_expired the admission loop may reject requests — those
  /// come back as id-only placeholders with RequestResult::shed set, and
  /// the report carries shed counts and per-tenant SLO attainment.
  std::vector<RequestResult> run_open_loop(
      const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
      const SloSchedule& slos, OpenLoopReport* report);

  /// Multi-model open loop: request i additionally targets registered
  /// model models[i] (an empty `models` means everything runs the primary
  /// model; every id must be < num_models(), and each input must match
  /// its model's input shape).
  std::vector<RequestResult> run_open_loop(
      const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
      const SloSchedule& slos, const ModelSchedule& models,
      OpenLoopReport* report);

  /// Timing-only open loop: simulate the admission schedule for `arrivals`
  /// and return its report without running any functional inference
  /// (energy is filled from the per-request analytical model of the PCU
  /// each request was dispatched to). Lets load sweeps use tens of
  /// thousands of requests cheaply.
  OpenLoopReport simulate_open_loop(const ArrivalSchedule& arrivals);

  /// Timing-only SLO-aware open loop (see the SloSchedule overload of
  /// run_open_loop for the `slos` contract).
  OpenLoopReport simulate_open_loop(const ArrivalSchedule& arrivals,
                                    const SloSchedule& slos);

  /// Timing-only multi-model open loop (see the ModelSchedule overload of
  /// run_open_loop for the `models` contract).
  OpenLoopReport simulate_open_loop(const ArrivalSchedule& arrivals,
                                    const SloSchedule& slos,
                                    const ModelSchedule& models);

  /// Sequential single-PCU baseline: serves request `id` on PCU 0 with the
  /// same per-request seed run() would use — the bit-identity reference.
  RequestResult run_one(const nn::Tensor& input, std::uint64_t id);

  /// Render a FleetReport as aligned tables via common::report.
  static void print_report(const FleetReport& report, std::ostream& os,
                           const std::string& title = "batch serving");

  /// Render an OpenLoopReport as aligned tables via common::report.
  static void print_report(const OpenLoopReport& report, std::ostream& os,
                           const std::string& title = "open-loop serving");

 private:
  /// Timing-only admission-loop run for requests 0..arrivals.size()-1
  /// (no tensors, no functional work), under options_'s dispatch,
  /// shedding, and autoscaler settings.
  AdmissionResult simulate_admission_result(const ArrivalSchedule& arrivals,
                                            const SloSchedule& slos,
                                            const ModelSchedule& models);

  /// Build the dense request vector (ids, SplitMix64 seeds, arrivals, SLO
  /// metadata, model targets, inputs) the serving paths share.
  std::vector<InferenceRequest> make_requests(
      const std::vector<nn::Tensor>& inputs, const ArrivalSchedule& arrivals,
      const SloSchedule& slos, const ModelSchedule& models) const;

  /// Physically serve `requests`: dynamic sharding on a homogeneous pool,
  /// schedule-driven assignment otherwise — and always schedule-driven
  /// when shedding may skip requests.
  std::vector<RequestResult> serve(std::vector<InferenceRequest> requests,
                                   const std::vector<ScheduledService>& schedule,
                                   bool simulate_values);

  /// Derive every schedule-dependent OpenLoopReport field.
  OpenLoopReport summarize_schedule(const AdmissionResult& admission,
                                    const ArrivalSchedule& arrivals) const;

  /// Fill `out` (sized pool_.size()) from the schedule; returns the
  /// makespan so both report types share the accounting.
  double fill_breakdowns(const std::vector<ScheduledService>& schedule,
                         std::vector<PcuBreakdown>& out) const;

  nn::Network net_;
  nn::NetWeights weights_;
  BatchRunnerOptions options_;
  /// Models registered after construction (ids 1+). A deque keeps every
  /// element at a stable address — the pool's Pcus borrow references.
  std::deque<std::pair<nn::Network, nn::NetWeights>> extra_models_;
  PcuPool pool_;
};

} // namespace pcnna::runtime
