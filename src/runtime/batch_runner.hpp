// Batch-parallel inference runner: the top-level serving API.
//
// A BatchRunner owns one model (Network + NetWeights) and a PcuPool of N
// replicated accelerators. run() pushes a batch of inputs through a shared
// RequestQueue, serves them on N host worker threads (one per PCU), and
// returns the outputs in request order together with a fleet-level
// FleetReport.
//
// Two clocks are deliberately separated:
//
//  * Host wall-clock decides which physical worker simulates which request
//    (dynamic sharding). It affects nothing but load balancing of the
//    simulation work itself.
//
//  * Simulated hardware time is accounted by a deterministic virtual-time
//    scheduler: requests are assigned in id order to the least-loaded
//    virtual PCU. All reported latency / throughput / energy numbers come
//    from this schedule, so reports are reproducible run to run and
//    machine to machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"
#include "runtime/pcu_pool.hpp"

namespace pcnna::runtime {

struct BatchRunnerOptions {
  /// Number of replicated photonic conv units (and host worker threads).
  std::size_t num_pcus = 1;
  /// Timing fidelity of every PCU's accelerator model. kFull exposes the
  /// weight-load / settle costs that double buffering hides; under kPaper
  /// recalibration is free and the overlap is a no-op.
  core::TimingFidelity fidelity = core::TimingFidelity::kFull;
  /// Push values through the photonic functional model (true) or compute
  /// them on the golden CPU path while still pricing the hardware (false).
  bool simulate_values = true;
  /// Account weight-bank recalibration as double-buffered against optical
  /// compute (the Fig. 4 overlap lifted to the request stream).
  bool double_buffer = true;
  /// Base seed; per-request engine seeds derive from it (SplitMix64), so
  /// the whole batch is reproducible from this one number.
  std::uint64_t seed = 1;
};

/// Fleet-level serving summary. All times are simulated hardware seconds
/// unless suffixed _wall.
struct FleetReport {
  std::size_t pcus = 1;
  std::size_t requests = 0;
  core::TimingFidelity fidelity = core::TimingFidelity::kFull;
  bool double_buffer = true;

  /// One request on one PCU, serial schedule (Σ layer full_system_time).
  double request_time_serial = 0.0;
  /// Steady-state completion interval with double-buffered recalibration.
  double request_interval = 0.0;
  /// request_time_serial / request_interval (1.0 when not double buffered).
  double overlap_speedup = 1.0;

  /// Whole batch on 1 PCU, serial schedule — the baseline.
  double makespan_sequential = 0.0;
  /// Whole batch on the fleet (virtual-time schedule).
  double makespan = 0.0;
  /// requests / makespan.
  double throughput_rps = 0.0;
  /// makespan_sequential / makespan (sharding x overlap gains).
  double speedup_vs_sequential = 1.0;
  /// speedup normalized by fleet size.
  double scaling_efficiency = 1.0;

  /// Request latency under all-at-once arrival (queueing + service).
  double mean_latency = 0.0;
  double max_latency = 0.0;

  double total_energy = 0.0;      ///< [J]
  double energy_per_request = 0.0;///< [J]

  /// Requests each virtual PCU served in the deterministic schedule.
  std::vector<std::size_t> virtual_requests_per_pcu;

  /// Host seconds spent actually simulating the batch (informational; on a
  /// multi-core host this is where N worker threads pay off).
  double wall_seconds = 0.0;
};

class BatchRunner {
 public:
  /// Copies of net/weights are taken so the runner is self-contained.
  BatchRunner(core::PcnnaConfig config, nn::Network net,
              nn::NetWeights weights, BatchRunnerOptions options = {});

  // The pool's Pcus hold references into this object's net_/weights_, so
  // the runner must stay at one address for its lifetime.
  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;
  BatchRunner(BatchRunner&&) = delete;
  BatchRunner& operator=(BatchRunner&&) = delete;

  const BatchRunnerOptions& options() const { return options_; }
  const nn::Network& network() const { return net_; }
  PcuPool& pool() { return pool_; }

  /// Serve `inputs` as requests 0..B-1. Results come back ordered by
  /// request id; `report`, when given, is filled with the fleet summary.
  std::vector<RequestResult> run(const std::vector<nn::Tensor>& inputs,
                                 FleetReport* report = nullptr);

  /// Sequential single-PCU baseline: serves request `id` on PCU 0 with the
  /// same per-request seed run() would use — the bit-identity reference.
  RequestResult run_one(const nn::Tensor& input, std::uint64_t id);

  /// Render a FleetReport as aligned tables via common::report.
  static void print_report(const FleetReport& report, std::ostream& os,
                           const std::string& title = "batch serving");

 private:
  core::PcnnaConfig config_;
  nn::Network net_;
  nn::NetWeights weights_;
  BatchRunnerOptions options_;
  PcuPool pool_;
};

} // namespace pcnna::runtime
