#include "runtime/request_queue.hpp"

#include "common/error.hpp"

namespace pcnna::runtime {

std::uint64_t derive_request_seed(std::uint64_t base_seed,
                                  std::uint64_t request_id) {
  // SplitMix64 finalizer over base ^ golden-ratio-scaled id: the same mixing
  // construction common::Rng uses for seeding, so per-request streams are
  // decorrelated even for adjacent ids.
  std::uint64_t z = base_seed + (request_id + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const char* priority_class_name(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive: return "interactive";
    case PriorityClass::kStandard: return "standard";
    case PriorityClass::kBestEffort: return "best-effort";
  }
  throw Error("invalid PriorityClass");
}

void RequestQueue::push(InferenceRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PCNNA_CHECK_MSG(!closed_, "push() on a closed RequestQueue");
    PCNNA_CHECK_MSG(
        request.arrival_time >= last_arrival_,
        "out-of-order push: request " << request.id << " arrives at t="
            << request.arrival_time << " but a request arriving at t="
            << last_arrival_
            << " was already pushed — virtual-time admission needs "
               "nondecreasing arrival_time (sort the trace)");
    last_arrival_ = request.arrival_time;
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
}

bool RequestQueue::pop(InferenceRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool RequestQueue::try_pop(InferenceRequest& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool RequestQueue::pop_arrived(double virtual_now, InferenceRequest& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty() || queue_.front().arrival_time > virtual_now)
    return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool RequestQueue::next_arrival(double& when) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  when = queue_.front().arrival_time;
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

} // namespace pcnna::runtime
