#include "runtime/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pcnna::runtime {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
  }
  throw Error("unknown FaultKind");
}

FaultKind parse_fault_kind(const std::string& token) {
  if (token == "transient") return FaultKind::kTransient;
  if (token == "degrade") return FaultKind::kDegrade;
  if (token == "crash") return FaultKind::kCrash;
  if (token == "recover") return FaultKind::kRecover;
  throw Error("unknown fault kind '" + token +
              "' (expected transient|degrade|crash|recover)");
}

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kFailed: return "failed";
  }
  throw Error("unknown HealthState");
}

void validate_fault_schedule(const FaultSchedule& faults) {
  double prev = 0.0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultEvent& e = faults[i];
    PCNNA_CHECK_MSG(std::isfinite(e.time) && e.time >= 0.0,
                    "fault event " << i << " has invalid timestamp " << e.time);
    PCNNA_CHECK_MSG(e.time >= prev,
                    "fault event " << i << " at t=" << e.time
                                   << " precedes event " << i - 1 << " at t="
                                   << prev
                                   << " (schedule must be nondecreasing)");
    PCNNA_CHECK_MSG(std::isfinite(e.severity) && e.severity >= 1.0,
                    "fault event " << i << " has invalid severity "
                                   << e.severity << " (must be >= 1)");
    prev = e.time;
  }
}

FaultSchedule poisson_faults(std::size_t num_pcus, const FaultModel& model,
                             std::uint64_t seed) {
  FaultSchedule faults;
  if (num_pcus == 0 || model.horizon <= 0.0 ||
      !(model.mtbf < std::numeric_limits<double>::infinity())) {
    return faults;
  }
  PCNNA_CHECK_MSG(std::isfinite(model.mtbf) && model.mtbf > 0.0,
                  "fault MTBF must be positive, got " << model.mtbf);
  PCNNA_CHECK_MSG(std::isfinite(model.horizon),
                  "fault horizon must be finite, got " << model.horizon);
  PCNNA_CHECK_MSG(model.transient_weight >= 0.0 && model.degrade_weight >= 0.0 &&
                      model.crash_weight >= 0.0,
                  "fault kind weights must be nonnegative");
  const double total_weight =
      model.transient_weight + model.degrade_weight + model.crash_weight;
  PCNNA_CHECK_MSG(std::isfinite(total_weight) && total_weight > 0.0,
                  "fault kind weights must sum to a positive value, got "
                      << total_weight);
  PCNNA_CHECK_MSG(std::isfinite(model.degrade_severity) &&
                      model.degrade_severity >= 1.0,
                  "degrade severity must be >= 1, got "
                      << model.degrade_severity);
  if (model.crash_weight > 0.0) {
    PCNNA_CHECK_MSG(std::isfinite(model.mean_time_to_repair) &&
                        model.mean_time_to_repair > 0.0,
                    "mean_time_to_repair must be positive when crashes are "
                    "generated, got "
                        << model.mean_time_to_repair);
  }

  for (std::size_t p = 0; p < num_pcus; ++p) {
    // Each PCU owns an independent stream keyed by (seed, p) — the same
    // SplitMix64 mix the request layer uses — so per-PCU timelines are
    // stable under fleet resizes: PCU p's faults do not depend on how many
    // other PCUs exist.
    Rng rng(derive_request_seed(seed, p));
    double t = 0.0;
    while (true) {
      // Inverse-transform exponential gap; uniform() is in [0, 1), so the
      // log argument never hits zero.
      t += -std::log(1.0 - rng.uniform()) * model.mtbf;
      if (t >= model.horizon) break;

      // Weighted kind draw (kRecover is only ever emitted as a crash's
      // paired repair, never drawn directly).
      double u = rng.uniform() * total_weight;
      FaultKind kind = FaultKind::kCrash;
      if (u < model.transient_weight) {
        kind = FaultKind::kTransient;
      } else if (u < model.transient_weight + model.degrade_weight) {
        kind = FaultKind::kDegrade;
      }

      FaultEvent event;
      event.time = t;
      event.pcu = p;
      event.kind = kind;
      if (kind == FaultKind::kDegrade) event.severity = model.degrade_severity;
      faults.push_back(event);

      if (kind == FaultKind::kCrash) {
        // Exponential downtime; the dead PCU generates nothing until its
        // repair completes. Recoveries may land past the horizon — a crash
        // inside the window must still heal.
        const double downtime =
            -std::log(1.0 - rng.uniform()) * model.mean_time_to_repair;
        t += downtime;
        faults.push_back({t, p, FaultKind::kRecover, 1.0});
      }
    }
  }

  // Merge the per-PCU streams into one timeline. (time, pcu, recover-first)
  // is a total order here: a PCU's own events never share a timestamp
  // (exponential gaps are almost surely positive), so the pcu tiebreak only
  // arbitrates across streams, deterministically.
  std::sort(faults.begin(), faults.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.pcu != b.pcu) return a.pcu < b.pcu;
              return a.kind == FaultKind::kRecover && b.kind != FaultKind::kRecover;
            });
  return faults;
}

FaultSchedule parse_fault_trace(std::istream& in) {
  FaultSchedule faults;
  std::string line;
  std::size_t line_no = 0;
  double prev = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip CR (Windows traces) and surrounding whitespace.
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    if (token.front() == '#') continue;

    std::istringstream cell(token);
    FaultEvent event;
    std::string kind_token;
    char trailing = '\0';
    double severity = 1.0;
    const bool head_ok = bool(cell >> event.time >> event.pcu >> kind_token);
    PCNNA_CHECK_MSG(head_ok,
                    "fault trace line "
                        << line_no << " is not '<time> <pcu> <kind> [severity]': '"
                        << token << "'");
    const bool has_severity = bool(cell >> severity);
    // A failed severity read leaves the stream failed whether it hit EOF
    // (fine) or a non-numeric token (trailing garbage) — clear and re-probe
    // so the garbage case is caught below.
    if (!has_severity) cell.clear();
    PCNNA_CHECK_MSG(!(cell >> trailing),
                    "fault trace line " << line_no
                                        << " has trailing garbage: '" << token
                                        << "'");
    try {
      event.kind = parse_fault_kind(kind_token);
    } catch (const Error& e) {
      throw Error("fault trace line " + std::to_string(line_no) + ": " +
                  e.what());
    }
    PCNNA_CHECK_MSG(std::isfinite(event.time) && event.time >= 0.0,
                    "fault trace line " << line_no << " has invalid timestamp "
                                        << event.time);
    PCNNA_CHECK_MSG(event.time >= prev,
                    "fault trace line "
                        << line_no << " at t=" << event.time
                        << " precedes the previous event at t=" << prev
                        << " (trace must be nondecreasing)");
    if (has_severity) {
      PCNNA_CHECK_MSG(std::isfinite(severity) && severity >= 1.0,
                      "fault trace line " << line_no << " has invalid severity "
                                          << severity << " (must be >= 1)");
      event.severity = severity;
    }
    prev = event.time;
    faults.push_back(event);
  }
  return faults;
}

FaultSchedule load_fault_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_fault_trace: cannot open '" + path + "'");
  return parse_fault_trace(in);
}

void write_fault_trace(std::ostream& out, const FaultSchedule& faults) {
  out << "# pcnna fault trace: <time [s]> <pcu> <kind> [severity]\n";
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (const FaultEvent& e : faults) {
    out << e.time << ' ' << e.pcu << ' ' << fault_kind_name(e.kind);
    if (e.kind == FaultKind::kDegrade) out << ' ' << e.severity;
    out << '\n';
  }
  out.precision(old_precision);
}

} // namespace pcnna::runtime
