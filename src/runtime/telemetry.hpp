// Fleet telemetry: per-request spans, a metrics registry, and exporters.
//
// Opt-in observability for the serving runtime. A Telemetry instance hangs
// off AdmissionOptions / BatchRunnerOptions as a raw pointer (nullptr —
// the default — means off); when present, the admission loop feeds it
// cheap read-only hooks (queue-depth samples at each dispatch opportunity,
// dispatch-decision counters) and hands it the finished AdmissionResult,
// from which the per-request spans are derived in virtual time:
//
//   queue-wait        arrival -> service start (tenant track)
//   service           start -> completion on the serving PCU, with the
//                     swap / warmup charges rendered as leading sub-slices
//   stage / pin /     per-stage spans of pipelined requests on the PCU
//     hand-off        that ran each stage
//   lost attempt      PCU time a fault destroyed (retried or not)
//   shed / failed     instants on the tenant track
//
// Engine-phase counters (patches streamed, bank passes, noise draws,
// DAC/ADC conversions) arrive via record_results: each functional
// RequestResult carries its own EngineWork (a pure function of the request,
// filled by hooks in OpticalConvEngine), and the fleet totals are summed in
// request-id order — bit-stable regardless of engine_threads or host
// scheduling.
//
// Contract: observation, not perturbation. Telemetry never writes anything
// the admission loop or the engine reads, so every schedule, output, and
// report is bitwise identical with telemetry on or off (pinned by the
// telemetry property tests — the same contract the fault and pipeline
// layers obey). All recording happens on the orchestration thread; a
// Telemetry instance is not thread-safe and must not be shared between
// concurrently-running fleets.
//
// Exporters:
//   write_chrome_trace  Chrome trace-event JSON (one track per PCU, one
//                       per tenant class, a fleet queue-depth counter, and
//                       an "otherData" section embedding the
//                       OpenLoopReport per-PCU totals so
//                       scripts/trace_summary.py can reconcile the file
//                       against the report exactly). Loads in Perfetto /
//                       chrome://tracing.
//   write_prometheus    Prometheus text-exposition snapshot of the
//                       metrics registry.
//
// See docs/observability.md for the span model, the metric catalog, and
// the exporter formats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "runtime/batch_runner.hpp"
#include "runtime/pcu_pool.hpp"

namespace pcnna::runtime {

/// Monotonically increasing exact integer counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed log-spaced-bucket histogram with Kahan-compensated sum. The
/// bucket edges are fixed at construction (log-spaced between `lo` and
/// `hi`), observations accumulate exact integer bucket counts plus a
/// compensated double sum, and every accessor is a pure read — so two
/// identical observation sequences produce bit-identical snapshots.
class Histogram {
 public:
  /// `buckets` finite buckets with upper bounds log-spaced over [lo, hi]
  /// (bound i = lo * (hi/lo)^((i+1)/buckets)), plus an implicit +Inf
  /// overflow bucket. Requires 0 < lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Ascending finite upper bounds (size = buckets).
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; index i counts v <= bounds()[i] (and above the
  /// previous bound); the final extra slot is the +Inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double compensation_ = 0.0; // Kahan correction term
};

/// Insertion-ordered registry of named metrics. Re-requesting a name
/// returns the existing instrument (the kind must match; histograms must
/// also match bucket shape). Names may carry Prometheus-style labels
/// (`pcnna_pcu_busy_seconds{pcu="0"}`); the text exporter emits one
/// HELP/TYPE header per family (the name up to the label brace).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       double lo, double hi, std::size_t buckets);

  /// Prometheus text exposition format, metrics in registration order.
  void write_prometheus(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::size_t index; ///< into the store of its kind
  };

  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
  // deques: stable references across later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// What one RequestSpan describes.
enum class SpanKind : unsigned char {
  kQueueWait,    ///< arrival -> service start (tenant track)
  kService,      ///< whole-request service span on its PCU
  kSwap,         ///< weight-bank swap charge at the head of a service span
  kWarmup,       ///< pipeline-fill charge at the head of a service span
  kStage,        ///< one pipeline stage span on its PCU
  kStagePin,     ///< one-time stage bank pin at the head of a stage span
  kStageHandoff, ///< inter-stage activation hand-off
  kLostAttempt,  ///< PCU time destroyed by a fault
  kShed,         ///< load-shed decision (instant, tenant track)
  kFailed,       ///< permanent fault loss (instant, tenant track)
};

const char* span_kind_name(SpanKind kind);

/// One virtual-time span (or instant: start == end), derived from the
/// AdmissionResult after the run. Recording stores one span per service /
/// stage / shed / loss; the redundant trace events (queue-wait on the
/// tenant track, swap / warmup / pin / hand-off overhead slices) are pure
/// functions of these fields and are derived at export time, keeping the
/// in-run recording cost minimal.
struct RequestSpan {
  /// Track sentinel: the span lives on its tenant's track, not a PCU's.
  static constexpr std::size_t kNoPcu = std::numeric_limits<std::size_t>::max();

  SpanKind kind = SpanKind::kService;
  std::uint64_t id = 0;
  std::size_t pcu = kNoPcu;
  std::uint32_t tenant = 0;
  std::uint32_t model = 0;
  PriorityClass priority = PriorityClass::kStandard;
  std::uint32_t attempts = 1;
  std::uint32_t stage = 0; ///< stage index (kStage/kStagePin/kStageHandoff)
  /// Request arrival time; with `start` it yields the queue-wait span.
  double arrival = 0.0;
  double start = 0.0;
  double end = 0.0;
  /// kService: the warmup charge; kStage: the stage pin. Exact doubles,
  /// exported in the trace args so trace_summary.py reconciles bitwise.
  double warmup = 0.0;
  /// kService: the swap charge; kStage: the hand-off charge.
  double swap = 0.0;
  /// kService only: this dispatch reprogrammed the PCU (swap may still be
  /// 0 under TimingFidelity::kPaper, where recalibration is free).
  bool swapped = false;
};

class Telemetry {
 public:
  Telemetry();

  // --- in-loop hooks (called by PcuPool::simulate_admission) ---

  /// Pending-queue depth at a dispatch opportunity (event-driven mode).
  void on_queue_depth(double t, std::size_t depth);
  /// One committed dispatch decision.
  void on_dispatch(bool swapped, bool pipelined);

  // --- post-run recording ---

  /// Derive spans and admission metrics from a finished admission run.
  /// Accumulates: serving the same Telemetry to several runs concatenates
  /// their spans (the trace then shows them back to back).
  void record_admission(const AdmissionResult& result, const PcuPool& pool,
                        const AdmissionOptions& options);
  /// Fold per-request engine-phase counters into the fleet totals,
  /// summing in request-id order (results as returned by BatchRunner).
  void record_results(const std::vector<RequestResult>& results);
  /// Capture the finished report: per-PCU breakdown gauges plus the
  /// reconciliation totals embedded in the Chrome trace.
  void record_report(const OpenLoopReport& report);

  // --- access ---

  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  const std::vector<RequestSpan>& spans() const { return spans_; }
  const std::vector<std::pair<double, std::uint64_t>>& queue_depth_samples()
      const {
    return queue_depth_samples_;
  }

  // --- exporters ---

  /// Chrome trace-event JSON; see the file comment. Byte-deterministic:
  /// two identical runs write identical files.
  void write_chrome_trace(std::ostream& os) const;
  /// Prometheus text-exposition snapshot of the metrics registry.
  void write_prometheus(std::ostream& os) const;

 private:
  MetricsRegistry registry_;

  // Canonical instruments, registered once in the constructor.
  Counter* dispatches_ = nullptr;
  Counter* dispatch_swaps_ = nullptr;
  Counter* pipeline_dispatches_ = nullptr;
  Counter* served_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* failed_ = nullptr;
  Counter* fault_injections_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* lost_attempts_ = nullptr;
  Counter* quarantines_ = nullptr;
  Counter* repairs_ = nullptr;
  Counter* engine_patches_ = nullptr;
  Counter* engine_bank_passes_ = nullptr;
  Counter* engine_noise_draws_ = nullptr;
  Counter* engine_dac_ = nullptr;
  Counter* engine_adc_ = nullptr;
  Gauge* queue_depth_last_ = nullptr;
  Gauge* makespan_ = nullptr;
  Gauge* mean_active_ = nullptr;
  Histogram* queue_wait_ = nullptr;
  Histogram* latency_ = nullptr;
  Histogram* queue_depth_ = nullptr;

  std::vector<RequestSpan> spans_;
  std::vector<std::pair<double, std::uint64_t>> queue_depth_samples_;

  // Fleet shape, captured at record_admission.
  std::size_t num_pcus_ = 0;
  std::vector<std::string> pcu_tags_;
  std::string policy_name_;

  // Report capture for the trace's reconciliation section.
  bool have_report_ = false;
  OpenLoopReport report_;
};

} // namespace pcnna::runtime
