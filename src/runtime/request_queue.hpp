// Thread-safe inference request queue for the batch-parallel runtime.
//
// A RequestQueue is the single work-distribution point of a PcuPool: the
// submitter pushes InferenceRequests, N PCU workers pop them. close() wakes
// every blocked consumer once the stream ends; pop() then drains whatever is
// left and finally reports exhaustion. Requests carry their own engine seed
// so results are bit-identical no matter which PCU (or how many) serves
// them — dynamic sharding must never change the numbers.
//
// The queue serves two distinct consumers:
//
//  * PCU worker threads (pop / try_pop) drain it concurrently to do the
//    physical simulation work; ordering between workers is wall-clock
//    nondeterministic and deliberately irrelevant to results. This is the
//    homogeneous-fleet path (PcuPool::serve_all) — a heterogeneous fleet
//    must pin each request to its scheduled PCU instead, so it bypasses
//    the shared queue entirely (PcuPool::serve_scheduled walks per-PCU
//    assignment lists).
//
//  * The virtual-time admission loop (pop_arrived / next_arrival) replays
//    the same requests single-threaded against their simulated arrival
//    timestamps to charge queueing delay deterministically
//    (PcuPool::simulate_admission).
//
// Thread-safety: every member function takes the internal mutex and is safe
// to call from any thread, but the virtual-time interface is only
// *meaningful* from one thread at a time (an admission loop interleaved
// across threads would race on the virtual clock it advances).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include "nn/tensor.hpp"

namespace pcnna::runtime {

/// Priority class of a request, the strict precedence tier of the
/// SLO-aware admission order (DispatchPolicy::kEdf dispatches classes in
/// this order, earliest deadline first within a class). Lower values are
/// more urgent.
enum class PriorityClass : std::uint8_t {
  kInteractive = 0, ///< user-facing traffic with a tight completion SLO
  kStandard = 1,    ///< default tier
  kBestEffort = 2,  ///< throughput traffic; first to wait and to shed
};

const char* priority_class_name(PriorityClass priority);

/// One inference request: an input feature map plus the identity and RNG
/// seed that make its simulation order-independent, and the serving
/// metadata (tenant, priority class, deadline) the SLO-aware admission
/// loop schedules and sheds by.
struct InferenceRequest {
  /// Dense id in [0, batch); doubles as the slot index for its result.
  std::uint64_t id = 0;
  /// Engine noise/fabrication seed for this request (derive_request_seed).
  std::uint64_t seed = 0;
  /// Simulated arrival timestamp [s]. 0 for the closed-batch path (all
  /// requests present at t = 0); set from an ArrivalSchedule for open-loop
  /// serving. Affects only the virtual-time schedule, never the output.
  double arrival_time = 0.0;
  /// Owning tenant; reports aggregate SLO attainment and shed counts per
  /// tenant. Never interpreted beyond grouping.
  std::uint32_t tenant = 0;
  /// Priority tier for the SLO-aware admission order.
  PriorityClass priority = PriorityClass::kStandard;
  /// Absolute completion deadline [s]; +inf means no SLO. Consumed by the
  /// EDF admission order and by load shedding (a request whose predicted
  /// completion exceeds this is rejected). Never affects the output.
  double deadline = std::numeric_limits<double>::infinity();
  /// Which registered model this request targets (index into the pool's
  /// model registry; 0 is the primary model every pool is built with).
  /// Dispatching a request to a PCU programmed with a different model
  /// charges a weight-bank swap through the double-buffer timing model.
  std::uint32_t model_id = 0;
  nn::Tensor input;
};

/// Per-request serving metadata aligned with an ArrivalSchedule: element i
/// names the tenant, priority class, and absolute deadline of request i
/// (runtime::assign_tenants generates one from a TenantClass mix).
struct RequestSlo {
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  /// Absolute completion deadline [s]; +inf = no SLO.
  double deadline = std::numeric_limits<double>::infinity();
};

/// One RequestSlo per request, index-aligned with the ArrivalSchedule.
using SloSchedule = std::vector<RequestSlo>;

/// One model id per request, index-aligned with the ArrivalSchedule:
/// element i names the registered model request i targets. An empty
/// schedule means every request runs the primary model (id 0).
using ModelSchedule = std::vector<std::uint32_t>;

/// Per-request seed derived from the runner's base seed by a SplitMix64
/// mixing step: decorrelated across ids, reproducible from (base, id) alone,
/// and independent of which PCU executes the request.
std::uint64_t derive_request_seed(std::uint64_t base_seed,
                                  std::uint64_t request_id);

/// Unbounded multi-producer / multi-consumer FIFO with shutdown semantics.
class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueue one request. Throws pcnna::Error if the queue is closed, or
  /// if the request's arrival_time precedes that of an earlier push: the
  /// virtual-time interface below peeks the *front* of the FIFO as the
  /// earliest pending arrival, so an out-of-order push (e.g. an unsorted
  /// trace file) would silently corrupt virtual-time admission.
  void push(InferenceRequest request);

  /// Block until a request is available or the queue is closed and drained.
  /// Returns false (leaving `out` untouched) only on exhaustion.
  bool pop(InferenceRequest& out);

  /// Non-blocking variant: returns false when nothing is currently queued.
  bool try_pop(InferenceRequest& out);

  // --- Virtual-time interface (open-loop admission loop) ---
  //
  // Requests are guaranteed to sit in nondecreasing arrival_time order
  // (push() rejects out-of-order arrivals). Both calls are non-blocking.

  /// Pop the front request only if it has arrived by simulated time
  /// `virtual_now` [s]. Returns false when the queue is empty or the front
  /// request's arrival_time is still in the virtual future.
  bool pop_arrived(double virtual_now, InferenceRequest& out);

  /// Peek the front (= earliest, given ordered pushes) pending arrival
  /// time into `when` [s]. Returns false when the queue is empty.
  bool next_arrival(double& when) const;

  /// End the stream: no further push() succeeds, blocked pop()s drain the
  /// remaining requests and then return false.
  void close();

  bool closed() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<InferenceRequest> queue_;
  /// Largest arrival_time pushed so far (persists across pops), enforcing
  /// the nondecreasing-push precondition of the virtual-time interface.
  double last_arrival_ = 0.0;
  bool closed_ = false;
};

} // namespace pcnna::runtime
