// Thread-safe inference request queue for the batch-parallel runtime.
//
// A RequestQueue is the single work-distribution point of a PcuPool: the
// submitter pushes InferenceRequests, N PCU workers pop them. close() wakes
// every blocked consumer once the stream ends; pop() then drains whatever is
// left and finally reports exhaustion. Requests carry their own engine seed
// so results are bit-identical no matter which PCU (or how many) serves
// them — dynamic sharding must never change the numbers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "nn/tensor.hpp"

namespace pcnna::runtime {

/// One inference request: an input feature map plus the identity and RNG
/// seed that make its simulation order-independent.
struct InferenceRequest {
  /// Dense id in [0, batch); doubles as the slot index for its result.
  std::uint64_t id = 0;
  /// Engine noise/fabrication seed for this request (derive_request_seed).
  std::uint64_t seed = 0;
  nn::Tensor input;
};

/// Per-request seed derived from the runner's base seed by a SplitMix64
/// mixing step: decorrelated across ids, reproducible from (base, id) alone,
/// and independent of which PCU executes the request.
std::uint64_t derive_request_seed(std::uint64_t base_seed,
                                  std::uint64_t request_id);

/// Unbounded multi-producer / multi-consumer FIFO with shutdown semantics.
class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueue one request. Throws pcnna::Error if the queue is closed.
  void push(InferenceRequest request);

  /// Block until a request is available or the queue is closed and drained.
  /// Returns false (leaving `out` untouched) only on exhaustion.
  bool pop(InferenceRequest& out);

  /// Non-blocking variant: returns false when nothing is currently queued.
  bool try_pop(InferenceRequest& out);

  /// End the stream: no further push() succeeds, blocked pop()s drain the
  /// remaining requests and then return false.
  void close();

  bool closed() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<InferenceRequest> queue_;
  bool closed_ = false;
};

} // namespace pcnna::runtime
