#include "runtime/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/trace_writer.hpp"

namespace pcnna::runtime {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(double lo, double hi, std::size_t buckets) {
  PCNNA_CHECK_MSG(lo > 0.0 && hi > lo && buckets >= 1,
                  "Histogram needs 0 < lo < hi and >= 1 bucket, got lo="
                      << lo << " hi=" << hi << " buckets=" << buckets);
  bounds_.reserve(buckets);
  const double ratio = std::log(hi / lo);
  for (std::size_t i = 0; i < buckets; ++i) {
    const double frac =
        static_cast<double>(i + 1) / static_cast<double>(buckets);
    bounds_.push_back(i + 1 == buckets ? hi : lo * std::exp(ratio * frac));
  }
  counts_.assign(buckets + 1, 0); // +1: the +Inf overflow bucket
}

void Histogram::observe(double v) {
  // Kahan-compensated accumulation: the sum of N observations is the same
  // bits regardless of magnitude disparities piling up error.
  const double y = v - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
  count_ += 1;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  if (const Entry* e = find(name)) {
    PCNNA_CHECK_MSG(e->kind == Kind::kCounter,
                    "metric '" << name << "' already registered as a "
                               << "different kind");
    return counters_[e->index];
  }
  entries_.push_back({Kind::kCounter, name, help, counters_.size()});
  counters_.emplace_back();
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  if (const Entry* e = find(name)) {
    PCNNA_CHECK_MSG(e->kind == Kind::kGauge,
                    "metric '" << name << "' already registered as a "
                               << "different kind");
    return gauges_[e->index];
  }
  entries_.push_back({Kind::kGauge, name, help, gauges_.size()});
  gauges_.emplace_back();
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help, double lo,
                                      double hi, std::size_t buckets) {
  if (const Entry* e = find(name)) {
    PCNNA_CHECK_MSG(e->kind == Kind::kHistogram,
                    "metric '" << name << "' already registered as a "
                               << "different kind");
    Histogram& h = histograms_[e->index];
    PCNNA_CHECK_MSG(h.upper_bounds().size() == buckets &&
                        h.upper_bounds().back() == hi,
                    "histogram '" << name
                                  << "' re-registered with different buckets");
    return h;
  }
  entries_.push_back({Kind::kHistogram, name, help, histograms_.size()});
  histograms_.emplace_back(lo, hi, buckets);
  return histograms_.back();
}

namespace {

/// Family name: everything before the label brace (Prometheus HELP/TYPE
/// headers apply per family, not per labeled series).
std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Insert-or-extend labels: "f{a=\"1\"}" + (le, v) -> "f{a=\"1\",le=\"v\"}".
std::string with_label(const std::string& name, const std::string& label,
                       const std::string& value) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos)
    return name + "{" + label + "=\"" + value + "\"}";
  std::string out = name.substr(0, name.size() - 1); // drop '}'
  out += "," + label + "=\"" + value + "\"}";
  return out;
}

/// Prometheus sample value: %.17g doubles, "+Inf" for infinity.
std::string prom_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Suffix-aware name split: "f_total{labels}" -> f_total, labels part.
void emit_header(std::ostream& os, std::set<std::string>& done,
                 const std::string& family, const std::string& help,
                 const char* type) {
  if (!done.insert(family).second) return;
  os << "# HELP " << family << " " << help << "\n";
  os << "# TYPE " << family << " " << type << "\n";
}

} // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::set<std::string> headered;
  for (const Entry& e : entries_) {
    const std::string family = family_of(e.name);
    switch (e.kind) {
      case Kind::kCounter:
        emit_header(os, headered, family, e.help, "counter");
        os << e.name << " " << counters_[e.index].value() << "\n";
        break;
      case Kind::kGauge:
        emit_header(os, headered, family, e.help, "gauge");
        os << e.name << " " << prom_value(gauges_[e.index].value()) << "\n";
        break;
      case Kind::kHistogram: {
        emit_header(os, headered, family, e.help, "histogram");
        const Histogram& h = histograms_[e.index];
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          os << with_label(e.name + "_bucket", "le",
                           prom_value(h.upper_bounds()[i]))
             << " " << cumulative << "\n";
        }
        cumulative += h.bucket_counts().back();
        os << with_label(e.name + "_bucket", "le", "+Inf") << " "
           << cumulative << "\n";
        os << e.name << "_sum " << prom_value(h.sum()) << "\n";
        os << e.name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Telemetry

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait: return "queue-wait";
    case SpanKind::kService: return "service";
    case SpanKind::kSwap: return "swap";
    case SpanKind::kWarmup: return "warmup";
    case SpanKind::kStage: return "stage";
    case SpanKind::kStagePin: return "pin";
    case SpanKind::kStageHandoff: return "handoff";
    case SpanKind::kLostAttempt: return "lost-attempt";
    case SpanKind::kShed: return "shed";
    case SpanKind::kFailed: return "failed";
  }
  throw Error("invalid SpanKind");
}

Telemetry::Telemetry() {
  dispatches_ = &registry_.counter(
      "pcnna_dispatches_total",
      "Dispatch decisions the admission loop committed");
  dispatch_swaps_ = &registry_.counter(
      "pcnna_dispatch_swaps_total",
      "Dispatches that reprogrammed a PCU from a different model");
  pipeline_dispatches_ = &registry_.counter(
      "pcnna_pipeline_dispatches_total",
      "Dispatches routed through a pipeline group");
  served_ = &registry_.counter("pcnna_requests_served_total",
                               "Requests that completed service");
  shed_ = &registry_.counter("pcnna_requests_shed_total",
                             "Requests load shedding rejected");
  failed_ = &registry_.counter(
      "pcnna_requests_failed_total",
      "Requests injected faults permanently destroyed");
  fault_injections_ = &registry_.counter("pcnna_fault_injections_total",
                                         "Fault events applied to the run");
  retries_ = &registry_.counter("pcnna_retries_total",
                                "Re-enqueues the retry policy issued");
  lost_attempts_ = &registry_.counter(
      "pcnna_lost_attempts_total",
      "Service attempts destroyed by injected faults");
  quarantines_ = &registry_.counter("pcnna_quarantines_total",
                                    "PCU quarantine entries");
  repairs_ = &registry_.counter("pcnna_repairs_total",
                                "Completed PCU quarantine repairs");
  engine_patches_ = &registry_.counter(
      "pcnna_engine_patches_streamed_total",
      "Pixel patches the streaming engine pushed through a weight bank");
  engine_bank_passes_ = &registry_.counter(
      "pcnna_engine_bank_passes_total",
      "Optical weight-bank passes (segments x per-channel passes)");
  engine_noise_draws_ = &registry_.counter(
      "pcnna_engine_noise_draws_total",
      "Gaussian noise draws the photonic noise model consumed");
  engine_dac_ = &registry_.counter("pcnna_engine_dac_conversions_total",
                                   "Input DAC conversions");
  engine_adc_ = &registry_.counter("pcnna_engine_adc_conversions_total",
                                   "Output ADC conversions");
  queue_depth_last_ = &registry_.gauge(
      "pcnna_queue_depth_last",
      "Pending-queue depth at the last dispatch opportunity");
  makespan_ = &registry_.gauge("pcnna_makespan_seconds",
                               "Last completion time of the run [s]");
  mean_active_ = &registry_.gauge(
      "pcnna_mean_active_pcus",
      "Time-averaged active-set size (fleet size without autoscaling)");
  queue_wait_ = &registry_.histogram(
      "pcnna_queue_wait_seconds",
      "Queueing delay (service start - arrival) of served requests [s]",
      1e-6, 1e3, 36);
  latency_ = &registry_.histogram(
      "pcnna_request_latency_seconds",
      "Sojourn latency (completion - arrival) of served requests [s]",
      1e-6, 1e3, 36);
  queue_depth_ = &registry_.histogram(
      "pcnna_queue_depth",
      "Pending-queue depth sampled at dispatch opportunities", 1.0, 1e4, 16);
}

void Telemetry::on_queue_depth(double t, std::size_t depth) {
  queue_depth_samples_.emplace_back(t, static_cast<std::uint64_t>(depth));
  queue_depth_last_->set(static_cast<double>(depth));
  queue_depth_->observe(static_cast<double>(depth));
}

void Telemetry::on_dispatch(bool swapped, bool pipelined) {
  dispatches_->add();
  if (swapped) dispatch_swaps_->add();
  if (pipelined) pipeline_dispatches_->add();
}

void Telemetry::record_admission(const AdmissionResult& result,
                                 const PcuPool& pool,
                                 const AdmissionOptions& options) {
  num_pcus_ = pool.size();
  pcu_tags_.clear();
  for (std::size_t p = 0; p < pool.size(); ++p)
    pcu_tags_.push_back(pool.pcu(p).tag());
  policy_name_ = dispatch_policy_name(options.policy);

  // One span per served request (or per stage for pipelined requests),
  // one instant per shed decision / destroyed attempt / permanent loss.
  // The queue-wait and overhead trace events are derived from these at
  // export time, so this — the only per-request recording on the run
  // path — stays inside the bench's telemetry-overhead budget.
  std::size_t worst = result.shed.decisions.size() +
                      result.fault.attempts.size() +
                      result.fault.losses.size();
  for (const ScheduledService& s : result.schedule)
    worst += s.stages.empty() ? 1 : s.stages.size();
  spans_.reserve(spans_.size() + worst);

  double makespan = 0.0;
  for (const ScheduledService& s : result.schedule) {
    served_->add();
    latency_->observe(s.completion - s.arrival);
    queue_wait_->observe(s.start - s.arrival);
    makespan = std::max(makespan, s.completion);

    RequestSpan base;
    base.id = s.id;
    base.tenant = s.tenant;
    base.model = s.model;
    base.priority = s.priority;
    base.attempts = s.attempts;
    base.arrival = s.arrival;

    if (s.stages.empty()) {
      RequestSpan svc = base;
      svc.kind = SpanKind::kService;
      svc.pcu = s.pcu;
      svc.start = s.start;
      svc.end = s.completion;
      svc.warmup = s.warmup;
      svc.swap = s.swap;
      svc.swapped = s.swapped;
      spans_.push_back(svc);
    } else {
      for (const StageService& st : s.stages) {
        RequestSpan stage = base;
        stage.kind = SpanKind::kStage;
        stage.pcu = st.pcu;
        stage.stage = static_cast<std::uint32_t>(st.stage);
        stage.start = st.start;
        stage.end = st.completion;
        stage.warmup = st.pin;    // stage pin rides the warmup slot
        stage.swap = st.handoff;  // hand-off rides the swap slot
        spans_.push_back(stage);
        makespan = std::max(makespan, st.completion);
      }
    }
  }

  shed_->add(result.shed.shed);
  for (const ShedDecision& d : result.shed.decisions) {
    RequestSpan span;
    span.kind = SpanKind::kShed;
    span.id = d.id;
    span.tenant = d.tenant;
    span.priority = d.priority;
    span.start = span.end = d.decision_time;
    spans_.push_back(span);
  }

  fault_injections_->add(result.fault.injections);
  retries_->add(result.fault.retries);
  quarantines_->add(result.fault.quarantines);
  repairs_->add(result.fault.repairs);
  lost_attempts_->add(result.fault.attempts.size());
  for (const FaultedAttempt& a : result.fault.attempts) {
    RequestSpan span;
    span.kind = SpanKind::kLostAttempt;
    span.id = a.id;
    span.pcu = a.pcu;
    span.attempts = a.attempt;
    span.start = a.start;
    span.end = a.end;
    spans_.push_back(span);
  }
  failed_->add(result.fault.losses.size());
  for (const RequestLoss& l : result.fault.losses) {
    RequestSpan span;
    span.kind = SpanKind::kFailed;
    span.id = l.id;
    span.tenant = l.tenant;
    span.priority = l.priority;
    span.attempts = l.attempts;
    span.start = span.end = l.time;
    spans_.push_back(span);
  }

  makespan_->set(makespan);
  mean_active_->set(result.autoscaler.mean_active);
}

void Telemetry::record_results(const std::vector<RequestResult>& results) {
  // Results arrive ordered by request id (the BatchRunner contract), so the
  // fold below is the same sequence of exact integer additions every run.
  EngineWork total;
  for (const RequestResult& r : results) total += r.work;
  engine_patches_->add(total.patches_streamed);
  engine_bank_passes_->add(total.bank_passes);
  engine_noise_draws_->add(total.noise_draws);
  engine_dac_->add(total.dac_conversions);
  engine_adc_->add(total.adc_conversions);
}

void Telemetry::record_report(const OpenLoopReport& report) {
  report_ = report;
  have_report_ = true;
  makespan_->set(report.makespan);
  mean_active_->set(report.autoscaler.mean_active);
  for (std::size_t p = 0; p < report.per_pcu.size(); ++p) {
    const PcuBreakdown& b = report.per_pcu[p];
    const std::string label = "{pcu=\"" + std::to_string(p) + "\"}";
    registry_
        .gauge("pcnna_pcu_busy_seconds" + label,
               "Simulated time each PCU spent in service [s]")
        .set(b.busy_time);
    registry_
        .gauge("pcnna_pcu_utilization" + label,
               "Per-PCU busy fraction of the makespan")
        .set(b.utilization);
    registry_
        .gauge("pcnna_pcu_requests" + label,
               "Requests the deterministic schedule placed on each PCU")
        .set(static_cast<double>(b.requests));
  }
}

void Telemetry::write_prometheus(std::ostream& os) const {
  registry_.write_prometheus(os);
}

namespace {

std::string track_name(std::size_t p, const std::string& tag) {
  std::string name = "pcu " + std::to_string(p);
  if (!tag.empty()) name += " (" + tag + ")";
  return name;
}

} // namespace

void Telemetry::write_chrome_trace(std::ostream& os) const {
  TraceWriter writer;
  constexpr std::uint32_t kFleetPid = 1;
  constexpr std::uint32_t kTenantPid = 2;

  writer.set_process_name(kFleetPid, "pcnna fleet");
  for (std::size_t p = 0; p < num_pcus_; ++p) {
    const std::string tag = p < pcu_tags_.size() ? pcu_tags_[p] : "";
    writer.set_thread_name(kFleetPid, static_cast<std::uint32_t>(p),
                           track_name(p, tag));
  }

  // Tenant tracks host the derived queue-wait spans of every served
  // request (head stage for pipelined ones) plus shed/failed instants.
  std::set<std::uint32_t> tenants;
  for (const RequestSpan& s : spans_) {
    if (s.kind == SpanKind::kStage && s.stage != 0) continue;
    if (s.kind == SpanKind::kLostAttempt) continue;
    tenants.insert(s.tenant);
  }
  if (!tenants.empty()) {
    writer.set_process_name(kTenantPid, "pcnna tenants");
    for (std::uint32_t t : tenants)
      writer.set_thread_name(kTenantPid, t, "tenant " + std::to_string(t));
  }

  for (const RequestSpan& s : spans_) {
    const auto pcu_tid = static_cast<std::uint32_t>(s.pcu);
    // Derived tenant-track queue-wait span: arrival -> service start of a
    // whole request or the head stage of a pipelined one.
    if (s.kind == SpanKind::kService ||
        (s.kind == SpanKind::kStage && s.stage == 0)) {
      writer.complete(kTenantPid, s.tenant, "queue", "queue", s.arrival,
                      s.start,
                      {TraceArg::num("id", static_cast<double>(s.id)),
                       TraceArg::num("model", s.model),
                       TraceArg::str("priority",
                                     priority_class_name(s.priority))});
    }
    switch (s.kind) {
      case SpanKind::kQueueWait:
        writer.complete(kTenantPid, s.tenant, "queue", "queue", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id)),
                         TraceArg::num("model", s.model),
                         TraceArg::str("priority",
                                       priority_class_name(s.priority))});
        break;
      case SpanKind::kService:
        writer.complete(
            kFleetPid, pcu_tid, "req " + std::to_string(s.id), "service",
            s.start, s.end,
            {TraceArg::num("id", static_cast<double>(s.id)),
             TraceArg::num("tenant", s.tenant),
             TraceArg::num("model", s.model),
             TraceArg::str("priority", priority_class_name(s.priority)),
             TraceArg::num("attempts", s.attempts),
             // Exact simulated-seconds copies: ts/dur are scaled to
             // microseconds, these survive the file bit for bit and are
             // what trace_summary.py reconciles against the report.
             TraceArg::num("start", s.start), TraceArg::num("end", s.end),
             TraceArg::num("warmup", s.warmup),
             TraceArg::num("swap", s.swap),
             TraceArg::num("swapped", s.swapped ? 1.0 : 0.0)});
        // Derived overhead slices at the head of the service span.
        if (s.swap > 0.0) {
          writer.complete(kFleetPid, pcu_tid, "swap", "overhead", s.start,
                          s.start + s.swap,
                          {TraceArg::num("id", static_cast<double>(s.id))});
        }
        if (s.warmup > 0.0) {
          writer.complete(kFleetPid, pcu_tid, "warmup", "overhead",
                          s.start + s.swap, s.start + s.swap + s.warmup,
                          {TraceArg::num("id", static_cast<double>(s.id))});
        }
        break;
      case SpanKind::kSwap:
        writer.complete(kFleetPid, pcu_tid, "swap", "overhead", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id))});
        break;
      case SpanKind::kWarmup:
        writer.complete(kFleetPid, pcu_tid, "warmup", "overhead", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id))});
        break;
      case SpanKind::kStage:
        writer.complete(
            kFleetPid, pcu_tid,
            "req " + std::to_string(s.id) + " stage " +
                std::to_string(s.stage),
            "stage", s.start, s.end,
            {TraceArg::num("id", static_cast<double>(s.id)),
             TraceArg::num("tenant", s.tenant),
             TraceArg::num("model", s.model),
             TraceArg::num("stage", s.stage),
             TraceArg::num("start", s.start), TraceArg::num("end", s.end),
             TraceArg::num("pin", s.warmup),
             TraceArg::num("handoff", s.swap)});
        // Derived hand-off (activations arriving) and one-time pin slices.
        if (s.swap > 0.0) {
          writer.complete(kFleetPid, pcu_tid, "handoff", "overhead",
                          s.start - s.swap, s.start,
                          {TraceArg::num("id", static_cast<double>(s.id)),
                           TraceArg::num("stage", s.stage)});
        }
        if (s.warmup > 0.0) {
          writer.complete(kFleetPid, pcu_tid, "pin", "overhead", s.start,
                          s.start + s.warmup,
                          {TraceArg::num("id", static_cast<double>(s.id)),
                           TraceArg::num("stage", s.stage)});
        }
        break;
      case SpanKind::kStagePin:
        writer.complete(kFleetPid, pcu_tid, "pin", "overhead", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id)),
                         TraceArg::num("stage", s.stage)});
        break;
      case SpanKind::kStageHandoff:
        writer.complete(kFleetPid, pcu_tid, "handoff", "overhead", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id)),
                         TraceArg::num("stage", s.stage)});
        break;
      case SpanKind::kLostAttempt:
        writer.complete(kFleetPid, pcu_tid, "lost attempt", "fault", s.start,
                        s.end,
                        {TraceArg::num("id", static_cast<double>(s.id)),
                         TraceArg::num("attempt", s.attempts),
                         TraceArg::num("start", s.start),
                         TraceArg::num("end", s.end)});
        break;
      case SpanKind::kShed:
        writer.instant(kTenantPid, s.tenant, "shed", "shed", s.start,
                       {TraceArg::num("id", static_cast<double>(s.id)),
                        TraceArg::str("priority",
                                      priority_class_name(s.priority))});
        break;
      case SpanKind::kFailed:
        writer.instant(kTenantPid, s.tenant, "failed", "fault", s.start,
                       {TraceArg::num("id", static_cast<double>(s.id)),
                        TraceArg::num("attempts", s.attempts)});
        break;
    }
  }

  // Queue-depth counter track: one sample per change (the viewer holds the
  // level between samples, so repeats add bytes without information).
  bool have_depth = false;
  std::uint64_t last_depth = 0;
  for (const auto& [t, depth] : queue_depth_samples_) {
    if (have_depth && depth == last_depth) continue;
    writer.counter(kFleetPid, "queue depth", t, "pending",
                   static_cast<double>(depth));
    have_depth = true;
    last_depth = depth;
  }

  writer.write(os, [this](JsonWriter& json) {
    json.key("otherData");
    json.begin_object();
    json.kv("policy", policy_name_);
    json.kv("pcus", static_cast<std::uint64_t>(num_pcus_));
    json.kv("spans", static_cast<std::uint64_t>(spans_.size()));
    json.kv("queue_depth_samples",
            static_cast<std::uint64_t>(queue_depth_samples_.size()));
    if (have_report_) {
      json.kv("makespan", report_.makespan);
      json.kv("requests", static_cast<std::uint64_t>(report_.requests));
      json.kv("served_requests",
              static_cast<std::uint64_t>(report_.served_requests));
      json.kv("shed_requests",
              static_cast<std::uint64_t>(report_.shed_requests));
      json.kv("failed_requests",
              static_cast<std::uint64_t>(report_.failed_requests));
      json.key("per_pcu");
      json.begin_array();
      for (std::size_t p = 0; p < report_.per_pcu.size(); ++p) {
        const PcuBreakdown& b = report_.per_pcu[p];
        json.begin_object();
        json.kv("pcu", static_cast<std::uint64_t>(p));
        json.kv("tag", b.tag);
        json.kv("requests", static_cast<std::uint64_t>(b.requests));
        json.kv("busy_time", b.busy_time);
        json.kv("warmup_time", b.warmup_time);
        json.kv("swap_time", b.swap_time);
        json.kv("swaps", static_cast<std::uint64_t>(b.swaps));
        json.kv("lost_attempts",
                static_cast<std::uint64_t>(b.lost_attempts));
        json.kv("lost_time", b.lost_time);
        json.kv("utilization", b.utilization);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  });
}

} // namespace pcnna::runtime
