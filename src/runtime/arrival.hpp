// Open-loop arrival generation for the serving runtime.
//
// The closed-batch BatchRunner::run() path measures a fleet that receives
// its whole workload at t = 0 — which hides queueing delay, the dominant
// latency term for a serving system under sustained load. The generators
// here produce *timestamped* arrival schedules for the open-loop path
// (BatchRunner::run_open_loop / simulate_open_loop):
//
//  * poisson_arrivals()      — seeded Poisson process at a chosen offered
//                              rate (the standard open-loop load generator),
//  * parse/load_arrival_trace() — replay of a recorded trace file,
//  * closed_batch_arrivals() — the degenerate all-at-t=0 schedule, which
//                              makes the closed batch a special case of the
//                              open loop.
//
// Determinism contract: every generator is reproducible bit-for-bit from
// its arguments alone. Poisson gaps are inverse-transform exponential draws
// on common::Rng (xoshiro256**), so the same (count, rate, seed) triple
// yields the same schedule on any platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

/// Timestamped arrival schedule: element i is request i's arrival time in
/// simulated seconds. Valid schedules are nonnegative and nondecreasing
/// (validate_arrival_schedule checks both).
using ArrivalSchedule = std::vector<double>;

/// Throw pcnna::Error unless every timestamp is finite, nonnegative, and
/// nondecreasing. All open-loop entry points call this on their input.
void validate_arrival_schedule(const ArrivalSchedule& arrivals);

/// All `count` requests arrive at t = 0: the degenerate schedule under
/// which the open-loop admission loop reproduces the closed-batch numbers.
ArrivalSchedule closed_batch_arrivals(std::size_t count);

/// Seeded Poisson process: `count` arrivals at mean rate `rate_rps`
/// (requests per simulated second, must be > 0). Inter-arrival gaps are
/// exponential draws -ln(1 - u) / rate_rps with u from common::Rng, so the
/// schedule is deterministic in (count, rate_rps, seed).
ArrivalSchedule poisson_arrivals(std::size_t count, double rate_rps,
                                 std::uint64_t seed);

/// Evenly spaced arrivals at `rate_rps` starting at t = 0 (request i
/// arrives at i / rate_rps): the zero-burstiness reference against which
/// Poisson queueing delay can be compared. Requires rate_rps > 0.
ArrivalSchedule uniform_arrivals(std::size_t count, double rate_rps);

/// Parse a trace: one arrival timestamp (simulated seconds, decimal or
/// scientific notation) per line; blank lines and lines starting with '#'
/// are ignored. Throws pcnna::Error on malformed, non-finite, negative, or
/// out-of-order timestamps, naming the offending 1-based trace line (not
/// the schedule index — comments and blanks shift the two apart).
ArrivalSchedule parse_arrival_trace(std::istream& in);

/// parse_arrival_trace over the contents of `path`. Throws on I/O failure.
ArrivalSchedule load_arrival_trace(const std::string& path);

/// Write `arrivals` in the format parse_arrival_trace reads, with full
/// round-trip precision (max_digits10), preceded by a '#' header comment.
void write_arrival_trace(std::ostream& out, const ArrivalSchedule& arrivals);

/// Offered load of a schedule in requests per simulated second:
/// count / last arrival time. Returns +inf when the schedule is empty or
/// every request arrives at t = 0 (the closed batch offers "infinite" load).
double offered_rate(const ArrivalSchedule& arrivals);

/// One tenant of a multi-tenant traffic mix: its share of the request
/// stream, its priority tier, and its latency budget.
struct TenantClass {
  std::uint32_t tenant = 0;
  PriorityClass priority = PriorityClass::kStandard;
  /// Relative share of the stream (normalized over the mix; must be > 0).
  double weight = 1.0;
  /// Per-request latency budget [s]: request i's absolute deadline is
  /// arrival_i + slo_budget. +inf (the default) means no SLO.
  double slo_budget = std::numeric_limits<double>::infinity();
};

/// Deterministically assign each arrival to one TenantClass of `mix` by a
/// seeded weighted draw (common::Rng, same determinism contract as
/// poisson_arrivals), returning the index-aligned SloSchedule with each
/// request's absolute deadline already resolved against its arrival time.
/// Throws pcnna::Error when `mix` is empty or any weight is not > 0.
SloSchedule assign_tenants(const ArrivalSchedule& arrivals,
                           const std::vector<TenantClass>& mix,
                           std::uint64_t seed);

} // namespace pcnna::runtime
