#include "runtime/pcu.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/energy_model.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"

namespace pcnna::runtime {

const char* warmup_policy_name(WarmupPolicy policy) {
  switch (policy) {
    case WarmupPolicy::kRechargeAfterIdle: return "recharge-after-idle";
    case WarmupPolicy::kPinnedAfterFirst: return "pinned-after-first";
    case WarmupPolicy::kAlwaysCold: return "always-cold";
  }
  // -Werror=switch makes the switch exhaustive at build time; reaching
  // here means an out-of-range cast, not a missing case.
  throw Error("invalid WarmupPolicy");
}

Pcu::Pcu(std::size_t index, const core::PcnnaConfig& config,
         core::TimingFidelity fidelity, const nn::Network& net,
         const nn::NetWeights& weights, WarmupPolicy warmup, std::string tag)
    : index_(index),
      config_(config),
      fidelity_(fidelity),
      accelerator_(config, fidelity),
      warmup_policy_(warmup),
      tag_(std::move(tag)) {
  add_model(net, weights);
}

std::uint32_t Pcu::add_model(const nn::Network& net,
                             const nn::NetWeights& weights) {
  const std::vector<nn::ConvLayerParams> layers = net.conv_layers();
  const core::TimingModel timing(config_, fidelity_);
  const core::EnergyModel energy(config_);
  const core::Scheduler scheduler(config_);

  ModelSlot slot;
  slot.net = &net;
  slot.weights = &weights;

  // Per-layer split into recalibration (hideable behind the previous
  // layer's compute via the shadow bank set) and everything else (floored
  // by the layer's concurrent DRAM stream, which stays exposed).
  std::vector<double> recal(layers.size(), 0.0);
  std::vector<double> nonrecal(layers.size(), 0.0);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const core::LayerTiming t = timing.layer_time(layers[i]);
    recal[i] = t.weight_load_time;
    nonrecal[i] =
        std::max(t.full_system_time - t.weight_load_time, t.dram_time);
    slot.request_time_serial += t.full_system_time;
    // Capability metric: sequential bank passes per kernel location this
    // config needs for the layer (1 when the receptive field fits a
    // full-kernel bank; channel-group segments x per-channel passes
    // otherwise).
    slot.split_passes += scheduler.plan(layers[i]).cycles_per_location;
  }

  // Steady-state interval: layer i's optical pass of request r overlaps the
  // recalibration for layer i+1 — wrapping to layer 0 of request r+1 at the
  // end of the stack, which is what lifts the Fig. 4 overlap from one layer
  // to the whole request stream.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double next_recal = recal[(i + 1) % layers.size()];
    slot.request_interval += std::max(nonrecal[i], next_recal);
    // Switching the programmed model reprograms every bank with nothing to
    // hide behind: the swap is the plain sum of the recalibrations.
    slot.swap_time += recal[i];
  }
  // A recalibration that was already hidden under its own layer's DRAM
  // stream in the serial schedule can make the sum above exceed the serial
  // time; double buffering can always fall back to the serial schedule, so
  // the interval is capped there.
  slot.request_interval =
      std::min(slot.request_interval, slot.request_time_serial);
  slot.warmup = layers.empty() ? 0.0 : recal.front();

  for (const core::EnergyReport& e :
       energy.network_energy(layers, fidelity_)) {
    slot.request_energy += e.total();
  }

  models_.push_back(slot);
  return static_cast<std::uint32_t>(models_.size() - 1);
}

const Pcu::ModelSlot& Pcu::timings(std::uint32_t model) const {
  PCNNA_CHECK_MSG(model < models_.size(),
                  "PCU " << index_ << " has " << models_.size()
                         << " registered models, no model " << model);
  return models_[model];
}

StageTimings Pcu::stage_timings(std::uint32_t model, std::size_t op_begin,
                                std::size_t op_end) const {
  const ModelSlot& slot = timings(model);
  const std::vector<nn::LayerOp>& ops = slot.net->ops();
  PCNNA_CHECK_MSG(op_begin <= op_end && op_end <= ops.size(),
                  "stage range [" << op_begin << ", " << op_end
                                  << ") out of bounds for model " << model);
  std::vector<nn::ConvLayerParams> layers;
  for (std::size_t i = op_begin; i < op_end; ++i)
    if (ops[i].kind == nn::OpKind::kConv) layers.push_back(ops[i].conv);

  const core::TimingModel timing(config_, fidelity_);
  const core::EnergyModel energy(config_);
  const core::Scheduler scheduler(config_);

  StageTimings st;
  // Same split as add_model: recalibration (hideable behind the previous
  // layer's compute) vs everything else (floored by the DRAM stream).
  std::vector<double> recal(layers.size(), 0.0);
  std::vector<double> nonrecal(layers.size(), 0.0);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const core::LayerTiming t = timing.layer_time(layers[i]);
    recal[i] = t.weight_load_time;
    nonrecal[i] =
        std::max(t.full_system_time - t.weight_load_time, t.dram_time);
    st.serial += t.full_system_time;
    st.split_passes += scheduler.plan(layers[i]).cycles_per_location;
  }
  // Steady-state interval of the stage: the double-buffer overlap wraps
  // within the range — layer i of image r hides the recalibration for
  // layer i+1, the range's last layer hides its first layer's for image
  // r+1. Capped at the serial fallback exactly like the whole-model case.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    st.interval += std::max(nonrecal[i], recal[(i + 1) % layers.size()]);
  }
  st.interval = std::min(st.interval, st.serial);
  st.pin = layers.empty() ? 0.0 : recal.front();
  for (const core::EnergyReport& e : energy.network_energy(layers, fidelity_))
    st.energy += e.total();
  return st;
}

StageHandoff Pcu::serve_stage(std::uint32_t model, std::size_t op_begin,
                              std::size_t op_end, const nn::Tensor& input,
                              const Rng::State* rng, std::uint64_t seed,
                              double energy_so_far, bool simulate_values) {
  const ModelSlot& slot = timings(model);
  // First stage: restart the noise stream from the request seed, exactly
  // like serve(). Later stages: resume the stream where the previous
  // stage's PCU left it, so the split run draws the same values a
  // whole-network run would.
  if (rng == nullptr) {
    accelerator_.reseed_engine(seed);
  } else {
    accelerator_.set_engine_rng_state(*rng);
  }
  core::NetworkRunReport run = accelerator_.run_range(
      *slot.net, *slot.weights, input, op_begin, op_end, simulate_values);

  StageHandoff handoff;
  handoff.activation = std::move(run.output);
  handoff.rng = accelerator_.engine_rng_state();
  handoff.energy = energy_so_far + run.total_energy;
  for (const core::LayerRunReport& l : run.conv_layers)
    handoff.work.add(l.engine);
  for (const core::LayerRunReport& l : run.fc_layers)
    handoff.work.add(l.engine);
  stats_.energy += run.total_energy;
  return handoff;
}

RequestResult Pcu::serve(const InferenceRequest& request,
                         bool simulate_values) {
  const ModelSlot& slot = timings(request.model_id);
  // Per-request reseed: the engine's noise stream restarts from the
  // request's own seed, so the output is identical whether this request is
  // the first thing this PCU ever ran or the thousandth.
  accelerator_.reseed_engine(request.seed);
  core::NetworkRunReport run = accelerator_.run(
      *slot.net, *slot.weights, request.input, simulate_values,
      /*compare_reference=*/false);

  RequestResult result;
  result.id = request.id;
  result.pcu_index = index_;
  result.output = std::move(run.output);
  result.service_time_serial = slot.request_time_serial;
  result.service_time_overlapped = slot.request_interval;
  result.energy = run.total_energy;
  result.model_id = request.model_id;
  result.tenant = request.tenant;
  for (const core::LayerRunReport& l : run.conv_layers)
    result.work.add(l.engine);
  for (const core::LayerRunReport& l : run.fc_layers)
    result.work.add(l.engine);

  stats_.requests_served += 1;
  stats_.busy_time_serial += slot.request_time_serial;
  stats_.busy_time_overlapped += slot.request_interval;
  stats_.energy += run.total_energy;
  return result;
}

} // namespace pcnna::runtime
