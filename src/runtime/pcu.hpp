// One photonic conv unit (PCU) of the batch-serving fleet.
//
// A Pcu wraps a core::Accelerator replica programmed with one model and
// serves InferenceRequests one at a time. Since the fleet became
// heterogeneous, each Pcu carries its *own* PcnnaConfig (ring/WDM budget,
// DAC counts, fidelity-limited usable range), its warmup policy, and a
// free-form capability tag — a fleet can mix big-budget PCUs for wide
// layers with small cheap ones soaking up the rest. Besides the functional
// run it prices each request two ways:
//
//  * serial: the paper's single-image schedule — every layer pays its
//    weight-bank reprogramming (MRR retuning + thermal settling) before its
//    optical pass (sum of LayerTiming::full_system_time).
//
//  * double-buffered: the Fig. 4 overlap lifted from one layer to the
//    request stream. With a shadow weight-bank set, layer i+1's slow MRR
//    recalibration is loaded while layer i's fast optical pass computes
//    (wrapping around the layer ring across consecutive requests), so each
//    layer contributes max(non-recal work, next layer's recalibration)
//    instead of their sum. The non-recal work is itself floored by the
//    layer's concurrent DRAM stream, which double buffering cannot hide.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"
#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

/// When a PCU must (re)pay the one-time double-buffer pipeline fill — the
/// first layer's weight-bank recalibration, which nothing earlier can hide.
/// Only meaningful on the double-buffered schedule; the serial schedule
/// charges every layer's recalibration inline and never adds a warmup.
enum class WarmupPolicy {
  /// Default, and the only pre-heterogeneous behavior: the warmup is paid
  /// on the PCU's first request and re-charged whenever an idle gap drains
  /// the pipeline (service start > previous free time).
  kRechargeAfterIdle,
  /// Persistent calibration: a background keep-alive holds the shadow
  /// banks programmed across idle gaps, so only the very first request
  /// pays the fill. Models a PCU pinned to one network.
  kPinnedAfterFirst,
  /// Conservative bound: every request pays the fill, as if each one
  /// reprogrammed the pipeline from scratch (no persistence at all).
  kAlwaysCold,
};

const char* warmup_policy_name(WarmupPolicy policy);

/// Completed inference for one request. All times are simulated hardware
/// seconds and all energies simulated joules; nothing here depends on the
/// host clock.
struct RequestResult {
  std::uint64_t id = 0;
  /// Index of the PCU that physically served the request. In a homogeneous
  /// fleet this is a wall-clock scheduling detail (the output itself is
  /// PCU-independent); in a heterogeneous fleet it is the deterministic
  /// virtual-time assignment, and the output was produced by *this* PCU's
  /// device model.
  std::size_t pcu_index = 0;
  nn::Tensor output;
  /// Simulated single-request service time, serial schedule [s].
  double service_time_serial = 0.0;
  /// Simulated service time with double-buffered recalibration [s].
  double service_time_overlapped = 0.0;
  /// Simulated energy for the request [J].
  double energy = 0.0;
  /// True when load shedding rejected the request instead of serving it:
  /// the slot is an id-only placeholder (empty output, zero times/energy).
  bool shed = false;
};

/// Cumulative counters for one PCU (wall-clock sharding outcome).
struct PcuStats {
  std::size_t requests_served = 0;
  double busy_time_serial = 0.0;     ///< simulated, serial schedule [s]
  double busy_time_overlapped = 0.0; ///< simulated, double-buffered [s]
  double energy = 0.0;               ///< simulated [J]
};

class Pcu {
 public:
  /// Build one unit: `config`/`fidelity` shape the accelerator model,
  /// `net`/`weights` are the served model (borrowed; must outlive the Pcu).
  /// `warmup` picks the pipeline-fill accounting of the admission loop and
  /// `tag` is a free-form capability label surfaced in per-PCU report
  /// breakdowns ("big", "edge", ...).
  Pcu(std::size_t index, const core::PcnnaConfig& config,
      core::TimingFidelity fidelity, const nn::Network& net,
      const nn::NetWeights& weights,
      WarmupPolicy warmup = WarmupPolicy::kRechargeAfterIdle,
      std::string tag = {});

  std::size_t index() const { return index_; }
  const PcuStats& stats() const { return stats_; }
  WarmupPolicy warmup_policy() const { return warmup_policy_; }
  const std::string& tag() const { return tag_; }

  /// Serve one request: reseed the engine to the request's seed (so the
  /// result does not depend on what this PCU served before), run the
  /// network, and price it. `simulate_values` as in core::Accelerator::run.
  ///
  /// Precondition: the request's input matches the network's input shape
  /// (throws pcnna::Error otherwise). Not thread-safe per Pcu — each Pcu
  /// is owned by exactly one PcuPool worker thread at a time; distinct
  /// Pcus may serve concurrently. Internally the accelerator engine may
  /// additionally fan one request's pixel sweep across
  /// PcnnaConfig::engine_threads workers (BatchRunnerOptions::engine_threads
  /// sets it fleet-wide); that intra-image parallelism is deterministic and
  /// does not change any output bit.
  RequestResult serve(const InferenceRequest& request, bool simulate_values);

  // The accessors below are precomputed per-model constants (set at
  // construction, immutable after), so they are safe to read from any
  // thread — the virtual-time admission loop reads them while workers
  // serve.

  /// Simulated time for one request [s], serial schedule
  /// (Σ layer full_system_time).
  double request_time_serial() const { return request_time_serial_; }

  /// Simulated steady-state interval between request completions with
  /// double-buffered recalibration [s].
  double request_interval_overlapped() const { return request_interval_; }

  /// One-time pipeline fill [s]: the first request's first-layer
  /// recalibration, which nothing earlier can hide. When (and how often)
  /// the admission loop re-charges it is governed by warmup_policy().
  double warmup_time() const { return warmup_; }

  /// Simulated energy per request [J] (analytical layer energies;
  /// value-independent).
  double request_energy() const { return request_energy_; }

  /// Capability metric for dispatch: sequential weight-bank passes per
  /// kernel location this PCU needs for the served network, summed over
  /// conv layers (LayerPlan::cycles_per_location — WDM channel-group
  /// segmentation times any per-channel allocation passes). A receptive
  /// field wider than PcnnaConfig::max_wavelengths splits into sequential
  /// bank passes whose partial sums add electronically, and the
  /// per-channel ring allocation retunes once per input channel, so a
  /// small-budget PCU pays *extra splits* (and time) that a big one does
  /// not. DispatchPolicy::kCapabilityAware skips PCUs whose count exceeds
  /// the fleet minimum.
  std::size_t channel_split_passes() const { return split_passes_; }

 private:
  std::size_t index_;
  core::Accelerator accelerator_;
  const nn::Network& net_;
  const nn::NetWeights& weights_;
  WarmupPolicy warmup_policy_;
  std::string tag_;
  PcuStats stats_;

  // Precomputed per-request timing/energy of the served model.
  double request_time_serial_ = 0.0;
  double request_interval_ = 0.0;
  double warmup_ = 0.0;
  double request_energy_ = 0.0;
  std::size_t split_passes_ = 0;
};

} // namespace pcnna::runtime
