// One photonic conv unit (PCU) of the batch-serving fleet.
//
// A Pcu wraps a core::Accelerator replica that can be programmed with any
// of the fleet's registered models and serves InferenceRequests one at a
// time. Since the fleet became heterogeneous, each Pcu carries its *own*
// PcnnaConfig (ring/WDM budget, DAC counts, fidelity-limited usable range),
// its warmup policy, and a free-form capability tag — a fleet can mix
// big-budget PCUs for wide layers with small cheap ones. Besides the
// functional run it prices each request two ways:
//
//  * serial: the paper's single-image schedule — every layer pays its
//    weight-bank reprogramming (MRR retuning + thermal settling) before its
//    optical pass (sum of LayerTiming::full_system_time).
//
//  * double-buffered: the Fig. 4 overlap lifted from one layer to the
//    request stream. With a shadow weight-bank set, layer i+1's slow MRR
//    recalibration is loaded while layer i's fast optical pass computes
//    (wrapping around the layer ring across consecutive requests), so each
//    layer contributes max(non-recal work, next layer's recalibration)
//    instead of their sum. The non-recal work is itself floored by the
//    layer's concurrent DRAM stream, which double buffering cannot hide.
//
// Multi-model serving: a Pcu is built with one primary model (id 0) and
// add_model() registers more. All per-request timing/energy constants are
// precomputed per model; switching the *programmed* model on the
// double-buffered schedule costs a weight-bank swap — the full serial
// reprogram Σ layer recalibrations, because the outgoing model's compute
// stream is gone and nothing remains to hide the retuning behind. The swap
// subsumes the pipeline-fill warmup (which is just the first layer's share
// of that same sum). The serial schedule charges every layer's
// recalibration inline on every request, so it never charges a separate
// swap. Who pays a swap when is the admission loop's business
// (PcuPool::simulate_admission tracks the programmed model per PCU).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "core/config.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"
#include "runtime/request_queue.hpp"

namespace pcnna::runtime {

/// When a PCU must (re)pay the one-time double-buffer pipeline fill — the
/// first layer's weight-bank recalibration, which nothing earlier can hide.
/// Only meaningful on the double-buffered schedule; the serial schedule
/// charges every layer's recalibration inline and never adds a warmup.
enum class WarmupPolicy {
  /// Default, and the only pre-heterogeneous behavior: the warmup is paid
  /// on the PCU's first request and re-charged whenever an idle gap drains
  /// the pipeline (service start > previous free time).
  kRechargeAfterIdle,
  /// Persistent calibration: a background keep-alive holds the shadow
  /// banks programmed across idle gaps, so only the very first request
  /// pays the fill. Models a PCU pinned to one network.
  kPinnedAfterFirst,
  /// Conservative bound: every request pays the fill, as if each one
  /// reprogrammed the pipeline from scratch (no persistence at all).
  kAlwaysCold,
};

const char* warmup_policy_name(WarmupPolicy policy);

/// Deterministic engine-phase work counters for one request, summed over
/// every layer of its network run (core::EngineStats per layer). A pure
/// function of (model, config, request seed) — independent of which PCU
/// served the request on a homogeneous fleet, of engine_threads, and of
/// host scheduling — so fleet totals summed in request-id order are
/// bit-stable. All zeros when values were not simulated (timing-only
/// serving never runs the engine).
struct EngineWork {
  std::uint64_t patches_streamed = 0; ///< pixel-sweep patches
  std::uint64_t bank_passes = 0;      ///< optical weight-bank passes
  std::uint64_t noise_draws = 0;      ///< noise-source draws consumed
  std::uint64_t dac_conversions = 0;  ///< input-DAC samples
  std::uint64_t adc_conversions = 0;  ///< output samples digitized

  void add(const core::EngineStats& stats) {
    patches_streamed += stats.patches_streamed;
    bank_passes += stats.optical_passes;
    noise_draws += stats.noise_draws;
    dac_conversions += stats.dac_conversions;
    adc_conversions += stats.adc_conversions;
  }
  EngineWork& operator+=(const EngineWork& other) {
    patches_streamed += other.patches_streamed;
    bank_passes += other.bank_passes;
    noise_draws += other.noise_draws;
    dac_conversions += other.dac_conversions;
    adc_conversions += other.adc_conversions;
    return *this;
  }
};

/// Completed inference for one request. All times are simulated hardware
/// seconds and all energies simulated joules; nothing here depends on the
/// host clock.
struct RequestResult {
  std::uint64_t id = 0;
  /// Index of the PCU that physically served the request. In a homogeneous
  /// fleet this is a wall-clock scheduling detail (the output itself is
  /// PCU-independent); in a heterogeneous fleet it is the deterministic
  /// virtual-time assignment, and the output was produced by *this* PCU's
  /// device model.
  std::size_t pcu_index = 0;
  nn::Tensor output;
  /// Simulated single-request service time, serial schedule [s].
  double service_time_serial = 0.0;
  /// Simulated service time with double-buffered recalibration [s].
  double service_time_overlapped = 0.0;
  /// Simulated energy for the request [J].
  double energy = 0.0;
  /// True when load shedding rejected the request instead of serving it:
  /// the slot is a placeholder (empty output, zero times/energy) that still
  /// carries id, model_id, and tenant so per-tenant/per-model accounting
  /// stays correct.
  bool shed = false;
  /// True when injected faults permanently destroyed the request: every
  /// retry budgeted for it was lost to crashes/corruption (or the whole
  /// fleet died), so the slot is a placeholder like a shed one — empty
  /// output, zero times/energy, but id/model_id/tenant intact.
  bool failed = false;
  /// Registered model the request targeted (valid on shed placeholders too).
  std::uint32_t model_id = 0;
  /// Owning tenant, carried through from the InferenceRequest (valid on
  /// shed placeholders too).
  std::uint32_t tenant = 0;
  /// Engine-phase work counters of the functional run (zeros when values
  /// were not simulated, and on shed/failed placeholders).
  EngineWork work;
};

/// Serving constants for one contiguous op range of a model — one pipeline
/// stage — computed exactly like the whole-model constants but over the
/// range's conv layers. All simulated seconds / joules.
struct StageTimings {
  /// Serial time of the range (Σ layer full_system_time).
  double serial = 0.0;
  /// Steady-state per-image interval with double-buffered recalibration,
  /// wrapping within the range (the stage streams images back-to-back).
  double interval = 0.0;
  /// One-time bank pin: the first image's exposed recalibration (the
  /// range's first layer; later layers hide behind earlier compute). A
  /// pinned stage never re-pays it — pinning *is* kPinnedAfterFirst — and
  /// never swaps, which is the whole point of pipeline parallelism here.
  double pin = 0.0;
  /// Energy per image for the range's conv layers.
  double energy = 0.0;
  /// Capability metric of the range (Σ LayerPlan::cycles_per_location).
  std::size_t split_passes = 0;
};

/// Activation + engine-RNG hand-off between consecutive pipeline stages.
/// Carrying the RNG state keeps a split run bit-identical to a
/// whole-network run from the same request seed: the engine draws noise /
/// fabrication values strictly in layer order, so stage n+1 resumes the
/// stream exactly where stage n left it.
struct StageHandoff {
  nn::Tensor activation;
  Rng::State rng;
  /// Accumulated simulated energy across the stages run so far [J].
  double energy = 0.0;
  /// Engine-phase work counters of *this* stage's range only; the
  /// pipelined worker accumulates them across the chain into the final
  /// RequestResult (mirroring how `energy` accumulates via energy_so_far).
  EngineWork work;
};

/// Cumulative counters for one PCU (wall-clock sharding outcome).
struct PcuStats {
  std::size_t requests_served = 0;
  double busy_time_serial = 0.0;     ///< simulated, serial schedule [s]
  double busy_time_overlapped = 0.0; ///< simulated, double-buffered [s]
  double energy = 0.0;               ///< simulated [J]
};

class Pcu {
 public:
  /// Build one unit: `config`/`fidelity` shape the accelerator model,
  /// `net`/`weights` are the primary served model, id 0 (borrowed; must
  /// outlive the Pcu). `warmup` picks the pipeline-fill accounting of the
  /// admission loop and `tag` is a free-form capability label surfaced in
  /// per-PCU report breakdowns ("big", "edge", ...).
  Pcu(std::size_t index, const core::PcnnaConfig& config,
      core::TimingFidelity fidelity, const nn::Network& net,
      const nn::NetWeights& weights,
      WarmupPolicy warmup = WarmupPolicy::kRechargeAfterIdle,
      std::string tag = {});

  std::size_t index() const { return index_; }
  const PcuStats& stats() const { return stats_; }
  WarmupPolicy warmup_policy() const { return warmup_policy_; }
  const std::string& tag() const { return tag_; }
  /// This PCU's hardware model (with any engine-thread override applied).
  /// With fidelity(), identifies the PCU's plan-cache configuration key
  /// (core::plan_config_key) — the fault-tolerant admission loop bumps that
  /// key's recalibration epoch when a repair re-trims this PCU's banks.
  const core::PcnnaConfig& config() const { return config_; }
  core::TimingFidelity fidelity() const { return fidelity_; }

  /// Register another model this PCU can be programmed with (borrowed;
  /// must outlive the Pcu). Returns the new model id (dense, starting at
  /// 1 — id 0 is the constructor's primary model). Throws if this PCU's
  /// config cannot map the network (SRAM working-set overflow).
  std::uint32_t add_model(const nn::Network& net,
                          const nn::NetWeights& weights);

  /// Number of registered models (>= 1).
  std::size_t num_models() const { return models_.size(); }

  /// Serve one request: reseed the engine to the request's seed (so the
  /// result does not depend on what this PCU served before), run the
  /// request's model (request.model_id), and price it. `simulate_values`
  /// as in core::Accelerator::run.
  ///
  /// Preconditions: request.model_id < num_models() and the request's
  /// input matches that model's input shape (throws pcnna::Error
  /// otherwise). Not thread-safe per Pcu — each Pcu is owned by exactly
  /// one PcuPool worker thread at a time; distinct Pcus may serve
  /// concurrently. Internally the accelerator engine may additionally fan
  /// one request's pixel sweep across PcnnaConfig::engine_threads workers
  /// (BatchRunnerOptions::engine_threads sets it fleet-wide); that
  /// intra-image parallelism is deterministic and does not change any
  /// output bit.
  RequestResult serve(const InferenceRequest& request, bool simulate_values);

  /// Run ops [op_begin, op_end) of `model` — one pipeline stage — from
  /// `input`. For the first stage pass `rng == nullptr` and the request's
  /// seed (the engine reseeds exactly as serve() would); later stages pass
  /// the previous stage's hand-off state and `seed` is ignored. Returns
  /// the activation leaving the range, the engine RNG state after it, and
  /// the accumulated energy (incoming hand-off energy plus this range's).
  /// Same thread-ownership rules as serve().
  StageHandoff serve_stage(std::uint32_t model, std::size_t op_begin,
                           std::size_t op_end, const nn::Tensor& input,
                           const Rng::State* rng, std::uint64_t seed,
                           double energy_so_far, bool simulate_values);

  /// Serving constants for the stage [op_begin, op_end) of `model`,
  /// computed on demand from this PCU's timing/energy/plan models (the
  /// same math as the whole-model constants, restricted to the range's
  /// conv layers).
  StageTimings stage_timings(std::uint32_t model, std::size_t op_begin,
                             std::size_t op_end) const;

  /// The registered network behind `model` (borrowed). The pipeline
  /// builder partitions it and validates stage ranges against it.
  const nn::Network& model_network(std::uint32_t model) const {
    return *timings(model).net;
  }

  // The accessors below are precomputed per-model constants (set at
  // registration, immutable after), so they are safe to read from any
  // thread — the virtual-time admission loop reads them while workers
  // serve. `model` indexes the registry; the default is the primary model,
  // keeping every pre-multi-model call site unchanged.

  /// Simulated time for one request [s], serial schedule
  /// (Σ layer full_system_time).
  double request_time_serial(std::uint32_t model = 0) const {
    return timings(model).request_time_serial;
  }

  /// Simulated steady-state interval between request completions with
  /// double-buffered recalibration [s].
  double request_interval_overlapped(std::uint32_t model = 0) const {
    return timings(model).request_interval;
  }

  /// One-time pipeline fill [s]: the first request's first-layer
  /// recalibration, which nothing earlier can hide. When (and how often)
  /// the admission loop re-charges it is governed by warmup_policy().
  double warmup_time(std::uint32_t model = 0) const {
    return timings(model).warmup;
  }

  /// Weight-bank swap cost [s]: the full serial reprogram (Σ layer
  /// recalibrations — MRR retuning + thermal settling) this PCU pays on
  /// the double-buffered schedule when it switches to `model` from a
  /// *different* programmed model. The outgoing model's compute stream is
  /// gone, so none of it can hide behind the Fig. 4 overlap; it subsumes
  /// warmup_time() (the first layer's share of the same sum). Always
  /// <= request_interval_overlapped(model): each recalibration appears in
  /// exactly one max() term of the interval sum.
  double swap_time(std::uint32_t model = 0) const {
    return timings(model).swap_time;
  }

  /// Simulated energy per request [J] (analytical layer energies;
  /// value-independent).
  double request_energy(std::uint32_t model = 0) const {
    return timings(model).request_energy;
  }

  /// Capability metric for dispatch: sequential weight-bank passes per
  /// kernel location this PCU needs for the given model, summed over
  /// conv layers (LayerPlan::cycles_per_location — WDM channel-group
  /// segmentation times any per-channel allocation passes). A receptive
  /// field wider than PcnnaConfig::max_wavelengths splits into sequential
  /// bank passes whose partial sums add electronically, and the
  /// per-channel ring allocation retunes once per input channel, so a
  /// small-budget PCU pays *extra splits* (and time) that a big one does
  /// not. DispatchPolicy::kCapabilityAware skips PCUs whose count exceeds
  /// the fleet minimum for the request's model.
  std::size_t channel_split_passes(std::uint32_t model = 0) const {
    return timings(model).split_passes;
  }

 private:
  /// Per-model precomputed serving constants plus the borrowed model.
  struct ModelSlot {
    const nn::Network* net = nullptr;
    const nn::NetWeights* weights = nullptr;
    double request_time_serial = 0.0;
    double request_interval = 0.0;
    double warmup = 0.0;
    double swap_time = 0.0;
    double request_energy = 0.0;
    std::size_t split_passes = 0;
  };

  const ModelSlot& timings(std::uint32_t model) const;

  std::size_t index_;
  core::PcnnaConfig config_;
  core::TimingFidelity fidelity_;
  core::Accelerator accelerator_;
  WarmupPolicy warmup_policy_;
  std::string tag_;
  PcuStats stats_;
  std::vector<ModelSlot> models_;
};

} // namespace pcnna::runtime
