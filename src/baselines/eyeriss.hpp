// Analytical model of Eyeriss (Chen et al., ISSCC/ISCA 2016) — the paper's
// primary electronic comparison point in Fig. 6.
//
// Eyeriss is a 12 x 14 PE array at 200 MHz using the row-stationary
// dataflow: a processing strip of (kernel rows m) x (output rows mapped to
// PE columns) is replicated across the array as many times as it fits. The
// model estimates per-layer latency as MACs / (active PEs * clock), which
// preserves the order-of-magnitude behaviour Fig. 6 depends on without the
// authors' testbed. We do not claim cycle accuracy (DESIGN.md substitution
// table).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::baselines {

struct EyerissConfig {
  std::uint64_t pe_rows = 12;
  std::uint64_t pe_cols = 14;
  double clock = 200.0 * units::MHz;
  /// Fraction of ideally-mapped cycles actually achieved (pipeline stalls,
  /// memory waits). Chen et al. report high PE utilization; 0.85 keeps the
  /// estimate on the optimistic (conservative-for-PCNNA) side.
  double efficiency = 0.85;
};

class EyerissModel {
 public:
  explicit EyerissModel(EyerissConfig config = {});

  const EyerissConfig& config() const { return config_; }

  std::uint64_t total_pes() const { return config_.pe_rows * config_.pe_cols; }

  /// Row-stationary spatial utilization in [0, 1]: fraction of PEs holding
  /// active strips for this layer shape.
  double utilization(const nn::ConvLayerParams& layer) const;

  /// Estimated wall time for one forward pass of the layer [s].
  double layer_time(const nn::ConvLayerParams& layer) const;

 private:
  EyerissConfig config_;
};

} // namespace pcnna::baselines
