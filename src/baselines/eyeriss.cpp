#include "baselines/eyeriss.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pcnna::baselines {

EyerissModel::EyerissModel(EyerissConfig config) : config_(config) {
  PCNNA_CHECK(config.pe_rows > 0 && config.pe_cols > 0);
  PCNNA_CHECK(config.clock > 0.0);
  PCNNA_CHECK(config.efficiency > 0.0 && config.efficiency <= 1.0);
}

double EyerissModel::utilization(const nn::ConvLayerParams& layer) const {
  layer.validate();
  // A processing strip occupies (kernel rows) x (output rows on PE columns).
  // Kernels taller than the array fold over multiple passes (conservatively
  // treated as full-array usage); otherwise the strip replicates until the
  // array is exhausted.
  const std::uint64_t strip_rows = std::min(layer.m, config_.pe_rows);
  const std::uint64_t strip_cols =
      std::min<std::uint64_t>(layer.output_side(), config_.pe_cols);
  const std::uint64_t strip = strip_rows * strip_cols;
  const std::uint64_t replicas = std::max<std::uint64_t>(1, total_pes() / strip);
  const std::uint64_t active = std::min(total_pes(), replicas * strip);
  return static_cast<double>(active) / static_cast<double>(total_pes());
}

double EyerissModel::layer_time(const nn::ConvLayerParams& layer) const {
  const double throughput = static_cast<double>(total_pes()) *
                            utilization(layer) * config_.efficiency *
                            config_.clock; // MACs per second
  return static_cast<double>(layer.macs()) / throughput;
}

} // namespace pcnna::baselines
