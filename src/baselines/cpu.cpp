#include "baselines/cpu.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

namespace pcnna::baselines {

CpuMeasurement CpuDirectBaseline::measure(const nn::ConvLayerParams& layer,
                                          bool* extrapolated) const {
  layer.validate();
  nn::ConvLayerParams timed = layer;
  bool did_crop = false;
  // Shrink the spatial extent until the cropped layer is affordable, keeping
  // kernel/channels/stride so per-MAC cost is representative.
  while (timed.macs() > max_direct_macs &&
         timed.n > 3 * timed.m + 2 * timed.p) {
    timed.n = std::max<std::uint64_t>(3 * timed.m, timed.n / 2);
    did_crop = true;
  }

  pcnna::Rng rng(7);
  const nn::Tensor input = nn::make_input(timed, rng);
  const nn::Tensor weights = nn::make_conv_weights(timed, rng);
  const nn::Tensor bias = nn::make_conv_bias(timed, rng);

  const auto start = std::chrono::steady_clock::now();
  const nn::Tensor out = nn::conv2d_im2col(input, weights, bias, timed.s, timed.p);
  const auto stop = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(stop - start).count();
  // Guard against sub-resolution timings on tiny layers.
  seconds = std::max(seconds, 1e-9);

  const double per_mac = seconds / static_cast<double>(timed.macs());
  CpuMeasurement m;
  m.seconds = per_mac * static_cast<double>(layer.macs());
  m.macs_per_s = 1.0 / per_mac;
  if (extrapolated) *extrapolated = did_crop;
  // Keep the output alive so the optimizer cannot elide the convolution.
  if (out.size() == 0) m.seconds = 0.0;
  return m;
}

} // namespace pcnna::baselines
