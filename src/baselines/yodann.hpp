// Analytical model of YodaNN (Andri et al., ISVLSI 2016) — the paper's
// second electronic comparison point in Fig. 6.
//
// YodaNN is a binary-weight CNN accelerator: a 32 x 32 sum-of-products
// array at 480 MHz in the high-throughput corner. Binary weights let it
// replace multipliers with muxes, so its MAC throughput is roughly an order
// above Eyeriss at much lower power. Modeled, like Eyeriss, as
// MACs / (array throughput * efficiency) (DESIGN.md substitution table).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::baselines {

struct YodannConfig {
  std::uint64_t array_width = 32;  ///< SoP units
  std::uint64_t array_height = 32; ///< parallel pixels per SoP
  double clock = 480.0 * units::MHz;
  double efficiency = 0.9;
};

class YodannModel {
 public:
  explicit YodannModel(YodannConfig config = {});

  const YodannConfig& config() const { return config_; }

  /// Peak MAC throughput [MAC/s].
  double peak_throughput() const {
    return static_cast<double>(config_.array_width * config_.array_height) *
           config_.clock;
  }

  /// Estimated wall time for one forward pass of the layer [s].
  double layer_time(const nn::ConvLayerParams& layer) const;

 private:
  YodannConfig config_;
};

} // namespace pcnna::baselines
