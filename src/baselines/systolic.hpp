// Analytical model of a weight-stationary systolic array (TPU-v1 class) —
// an extra electronic baseline beyond the paper's Fig. 6 pair.
//
// A rows x cols MAC array at `clock`: the reduction dimension (Nkernel)
// maps to rows, the kernel dimension (K) to columns; layers larger than the
// array tile over ceil(Nkernel/rows) * ceil(K/cols) passes, each streaming
// Nlocs activations plus an array-fill ramp.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::baselines {

struct SystolicConfig {
  std::uint64_t rows = 256;
  std::uint64_t cols = 256;
  double clock = 700.0 * units::MHz; ///< TPU-v1 class
  double efficiency = 0.85;          ///< stall/refill derating
};

class SystolicModel {
 public:
  explicit SystolicModel(SystolicConfig config = {});

  const SystolicConfig& config() const { return config_; }

  /// Tiles needed to cover the layer's (Nkernel x K) weight matrix.
  std::uint64_t tiles(const nn::ConvLayerParams& layer) const;

  /// Fraction of array MACs doing useful work across all tiles.
  double utilization(const nn::ConvLayerParams& layer) const;

  /// Estimated wall time for one forward pass of the layer [s].
  double layer_time(const nn::ConvLayerParams& layer) const;

 private:
  SystolicConfig config_;
};

} // namespace pcnna::baselines
