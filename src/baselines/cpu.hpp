// Measured single-thread CPU convolution baseline.
//
// Not in the paper's Fig. 6, but a useful sanity anchor for the benches:
// times the golden im2col convolution on synthetic data for a given layer
// shape on the host machine.
#pragma once

#include "nn/conv_params.hpp"

namespace pcnna::baselines {

struct CpuMeasurement {
  double seconds = 0.0;   ///< wall time of one forward pass
  double macs_per_s = 0.0;///< achieved MAC throughput
};

/// Run the layer once with seeded synthetic tensors and time it. For very
/// large layers the convolution is run on a spatially cropped input (at
/// least 3x the kernel) and the time is extrapolated by MAC ratio; the
/// `extrapolated` flag reports when that happened.
struct CpuDirectBaseline {
  /// Crop threshold: layers above this many MACs are cropped before timing.
  std::uint64_t max_direct_macs = 400'000'000;

  CpuMeasurement measure(const nn::ConvLayerParams& layer,
                         bool* extrapolated = nullptr) const;
};

} // namespace pcnna::baselines
