#include "baselines/yodann.hpp"

#include "common/error.hpp"

namespace pcnna::baselines {

YodannModel::YodannModel(YodannConfig config) : config_(config) {
  PCNNA_CHECK(config.array_width > 0 && config.array_height > 0);
  PCNNA_CHECK(config.clock > 0.0);
  PCNNA_CHECK(config.efficiency > 0.0 && config.efficiency <= 1.0);
}

double YodannModel::layer_time(const nn::ConvLayerParams& layer) const {
  layer.validate();
  return static_cast<double>(layer.macs()) /
         (peak_throughput() * config_.efficiency);
}

} // namespace pcnna::baselines
