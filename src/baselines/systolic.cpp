#include "baselines/systolic.hpp"

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace pcnna::baselines {

SystolicModel::SystolicModel(SystolicConfig config) : config_(config) {
  PCNNA_CHECK(config.rows > 0 && config.cols > 0);
  PCNNA_CHECK(config.clock > 0.0);
  PCNNA_CHECK(config.efficiency > 0.0 && config.efficiency <= 1.0);
}

std::uint64_t SystolicModel::tiles(const nn::ConvLayerParams& layer) const {
  layer.validate();
  return ceil_div(layer.kernel_size(), config_.rows) *
         ceil_div(layer.K, config_.cols);
}

double SystolicModel::utilization(const nn::ConvLayerParams& layer) const {
  const double useful =
      static_cast<double>(layer.kernel_size()) * static_cast<double>(layer.K);
  const double provisioned =
      static_cast<double>(tiles(layer)) *
      static_cast<double>(config_.rows * config_.cols);
  return useful / provisioned;
}

double SystolicModel::layer_time(const nn::ConvLayerParams& layer) const {
  // Each tile streams Nlocs activation columns plus a rows+cols fill ramp.
  const double cycles_per_tile =
      static_cast<double>(layer.num_locations() + config_.rows + config_.cols);
  const double cycles = static_cast<double>(tiles(layer)) * cycles_per_tile;
  return cycles / (config_.clock * config_.efficiency);
}

} // namespace pcnna::baselines
