#include "common/report.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pcnna {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PCNNA_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PCNNA_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

void TextTable::print(std::ostream& os, std::string_view title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  rule();
  emit(headers_);
  rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit(row.cells);
    }
  }
  rule();
}

std::string TextTable::to_string(std::string_view title) const {
  std::ostringstream os;
  print(os, title);
  return os.str();
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  PCNNA_CHECK_MSG(!sorted.empty(), "quantile of an empty sample set");
  PCNNA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile rank " << q
                                                         << " outside [0, 1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

DistributionSummary summarize_distribution(std::vector<double> samples) {
  DistributionSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = quantile_sorted(samples, 0.50);
  s.p90 = quantile_sorted(samples, 0.90);
  s.p99 = quantile_sorted(samples, 0.99);
  s.p999 = quantile_sorted(samples, 0.999);
  return s;
}

struct CsvWriter::Impl {
  std::ofstream out;
};

namespace {
std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
} // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(new Impl), columns_(header.size()) {
  PCNNA_CHECK(!header.empty());
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw Error("CsvWriter: cannot open '" + path + "' for writing");
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) impl_->out << ',';
    impl_->out << csv_escape(header[c]);
  }
  impl_->out << '\n';
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  PCNNA_CHECK(cells.size() == columns_);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) impl_->out << ',';
    impl_->out << csv_escape(cells[c]);
  }
  impl_->out << '\n';
  ++rows_written_;
}

} // namespace pcnna
