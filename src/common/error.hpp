// Error handling for the PCNNA library.
//
// Construction/configuration errors throw `pcnna::Error` (invalid layer
// shapes, infeasible hardware configs, calibration failures). Hot-path code
// uses PCNNA_DCHECK which compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pcnna {

/// Exception type thrown for invalid configurations and violated contracts.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "PCNNA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace pcnna

/// Always-on invariant check; throws pcnna::Error on failure.
#define PCNNA_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::pcnna::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Always-on invariant check with a streamed message.
#define PCNNA_CHECK_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream pcnna_check_os_;                                     \
      pcnna_check_os_ << msg;                                                 \
      ::pcnna::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                           pcnna_check_os_.str());            \
    }                                                                         \
  } while (false)

/// Debug-only check for hot paths; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define PCNNA_DCHECK(expr) ((void)0)
#else
#define PCNNA_DCHECK(expr) PCNNA_CHECK(expr)
#endif
