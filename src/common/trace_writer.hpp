// Chrome trace-event JSON writer.
//
// Serializes timeline events into the Chrome trace-event format (the
// "JSON object format" with a top-level "traceEvents" array), which loads
// directly in Perfetto (ui.perfetto.dev) and chrome://tracing. One writer
// instance buffers events and renders them in insertion order, so the
// output is a pure function of the call sequence — two identical call
// sequences produce byte-identical files, which the telemetry determinism
// tests pin.
//
// Track model: Chrome groups events by (pid, tid) and names the groups via
// "M" metadata events. Callers pick the mapping — the fleet telemetry uses
// one pid per facet (PCUs, tenants) and one tid per track; the device-level
// layer trace uses one tid per hardware resource.
//
// Times are given in seconds (the unit every simulated clock in this repo
// uses) and rendered as microseconds, the unit the viewers expect. Exact
// double-precision values survive the round trip through the file in event
// args (numbers print as %.17g via JsonWriter), which is what lets
// scripts/trace_summary.py reconcile per-PCU totals bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcnna {

class JsonWriter;

/// One key/value annotation on a trace event (the event's "args" object).
struct TraceArg {
  std::string key;
  bool is_number = false;
  double number = 0.0;
  std::string text;

  static TraceArg num(std::string key, double value);
  static TraceArg str(std::string key, std::string value);
};

class TraceWriter {
 public:
  /// Name the process group `pid` ("M"/process_name metadata event).
  void set_process_name(std::uint32_t pid, std::string name);
  /// Name the thread track (pid, tid) ("M"/thread_name metadata event).
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string name);

  /// One complete ("X") event: a span [start_s, end_s] on track (pid, tid).
  /// end_s must be >= start_s; zero-duration spans are legal.
  void complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                std::string category, double start_s, double end_s,
                std::vector<TraceArg> args = {});

  /// One instant ("i") event at t_s, thread-scoped.
  void instant(std::uint32_t pid, std::uint32_t tid, std::string name,
               std::string category, double t_s,
               std::vector<TraceArg> args = {});

  /// One counter ("C") sample: the viewer plots `series` over time as a
  /// track named `name` under `pid`.
  void counter(std::uint32_t pid, std::string name, double t_s,
               std::string series, double value);

  /// Number of buffered events (metadata included).
  std::size_t size() const { return events_.size(); }

  /// Serialize as {"displayTimeUnit": "ms", "traceEvents": [...]}.
  void write(std::ostream& os) const;

  /// Same, but `extra` (if non-null) is invoked with the writer positioned
  /// inside the top-level object, so callers can append extra sections
  /// (key + container) next to "traceEvents" — the Chrome format ignores
  /// unknown top-level keys, and trace_summary.py reads the telemetry's
  /// reconciliation section from one.
  void write(std::ostream& os,
             const std::function<void(JsonWriter&)>& extra) const;

 private:
  struct Event {
    char phase = 'X';
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    double start_s = 0.0;
    double dur_s = 0.0; ///< complete events only
    std::string name;
    std::string category;
    std::vector<TraceArg> args;
  };

  std::vector<Event> events_;
};

} // namespace pcnna
