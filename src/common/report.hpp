// Text-table and CSV report writers used by the bench harness.
//
// Every bench binary prints the rows of the paper table/figure it reproduces
// through TextTable (aligned, human-readable) and can mirror them to a CSV
// file for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pcnna {

/// Column-aligned ASCII table. Populate with add_row(), render with print().
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment, a header rule, and optional title.
  void print(std::ostream& os, std::string_view title = {}) const;

  /// Render to a string (convenience for tests).
  std::string to_string(std::string_view title = {}) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Minimal CSV writer (RFC-4180 quoting). One instance per output file.
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write one data row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_written_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t columns_;
  std::size_t rows_written_ = 0;
};

} // namespace pcnna
