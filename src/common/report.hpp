// Text-table and CSV report writers used by the bench harness, plus the
// sample-distribution summary the serving runtime reports latency through.
//
// Every bench binary prints the rows of the paper table/figure it reproduces
// through TextTable (aligned, human-readable) and can mirror them to a CSV
// file for plotting. Open-loop serving reports (tail latency, queue wait)
// summarize their per-request samples with DistributionSummary.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pcnna {

/// Column-aligned ASCII table. Populate with add_row(), render with print().
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment, a header rule, and optional title.
  void print(std::ostream& os, std::string_view title = {}) const;

  /// Render to a string (convenience for tests).
  std::string to_string(std::string_view title = {}) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Order statistics of a sample set (units follow the samples; the serving
/// runtime feeds simulated seconds). Zero-initialized for an empty set.
struct DistributionSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Linearly interpolated quantile of an already-sorted (ascending) sample
/// set at rank q in [0, 1]: index q * (n - 1), fractional indices blend the
/// two neighbors. Deterministic; requires a nonempty sorted input.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Sort a copy of `samples` and fill every DistributionSummary field.
/// An empty input yields the zero summary.
DistributionSummary summarize_distribution(std::vector<double> samples);

/// Minimal CSV writer (RFC-4180 quoting). One instance per output file.
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write one data row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_written_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t columns_;
  std::size_t rows_written_ = 0;
};

} // namespace pcnna
