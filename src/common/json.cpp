#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace pcnna {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::before_value() {
  if (stack_.empty()) return; // top-level single value
  if (stack_.back() == Scope::kObject) {
    PCNNA_CHECK_MSG(pending_key_, "JSON: value inside object requires key()");
    pending_key_ = false;
    return;
  }
  // Array element: comma separation.
  if (!first_.back()) os_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PCNNA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                  "JSON: end_object without matching begin_object");
  PCNNA_CHECK_MSG(!pending_key_, "JSON: dangling key at end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PCNNA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                  "JSON: end_array without matching begin_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PCNNA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                  "JSON: key() outside of an object");
  PCNNA_CHECK_MSG(!pending_key_, "JSON: two keys in a row");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  write_escaped(k);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
  } else {
    os_ << "null"; // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

void JsonWriter::finish() const {
  PCNNA_CHECK_MSG(stack_.empty(), "JSON: unbalanced containers at finish()");
  PCNNA_CHECK_MSG(!pending_key_, "JSON: dangling key at finish()");
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os_ << buf;
        } else {
          os_ << ch;
        }
    }
  }
  os_ << '"';
}

} // namespace pcnna
