#include "common/trace_writer.hpp"

#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"

namespace pcnna {

TraceArg TraceArg::num(std::string key, double value) {
  TraceArg a;
  a.key = std::move(key);
  a.is_number = true;
  a.number = value;
  return a;
}

TraceArg TraceArg::str(std::string key, std::string value) {
  TraceArg a;
  a.key = std::move(key);
  a.text = std::move(value);
  return a;
}

void TraceWriter::set_process_name(std::uint32_t pid, std::string name) {
  Event e;
  e.phase = 'M';
  e.pid = pid;
  e.name = "process_name";
  e.args.push_back(TraceArg::str("name", std::move(name)));
  events_.push_back(std::move(e));
}

void TraceWriter::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                  std::string name) {
  Event e;
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.args.push_back(TraceArg::str("name", std::move(name)));
  events_.push_back(std::move(e));
}

void TraceWriter::complete(std::uint32_t pid, std::uint32_t tid,
                           std::string name, std::string category,
                           double start_s, double end_s,
                           std::vector<TraceArg> args) {
  PCNNA_CHECK_MSG(end_s >= start_s, "trace span '"
                                        << name << "' ends (" << end_s
                                        << ") before it starts (" << start_s
                                        << ")");
  Event e;
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.start_s = start_s;
  e.dur_s = end_s - start_s;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::instant(std::uint32_t pid, std::uint32_t tid,
                          std::string name, std::string category, double t_s,
                          std::vector<TraceArg> args) {
  Event e;
  e.phase = 'i';
  e.pid = pid;
  e.tid = tid;
  e.start_s = t_s;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::counter(std::uint32_t pid, std::string name, double t_s,
                          std::string series, double value) {
  Event e;
  e.phase = 'C';
  e.pid = pid;
  e.start_s = t_s;
  e.name = std::move(name);
  e.args.push_back(TraceArg::num(std::move(series), value));
  events_.push_back(std::move(e));
}

void TraceWriter::write(std::ostream& os) const { write(os, nullptr); }

void TraceWriter::write(std::ostream& os,
                        const std::function<void(JsonWriter&)>& extra) const {
  JsonWriter json(os);
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("traceEvents");
  json.begin_array();
  for (const Event& e : events_) {
    json.begin_object();
    json.kv("ph", std::string_view(&e.phase, 1));
    json.kv("pid", static_cast<std::uint64_t>(e.pid));
    json.kv("tid", static_cast<std::uint64_t>(e.tid));
    if (e.phase != 'M') json.kv("ts", e.start_s * 1e6); // viewers want us
    if (e.phase == 'X') json.kv("dur", e.dur_s * 1e6);
    if (e.phase == 'i') json.kv("s", "t"); // thread-scoped instant
    json.kv("name", e.name);
    if (!e.category.empty()) json.kv("cat", e.category);
    if (!e.args.empty()) {
      json.key("args");
      json.begin_object();
      for (const TraceArg& a : e.args) {
        if (a.is_number) {
          json.kv(a.key, a.number);
        } else {
          json.kv(a.key, a.text);
        }
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  if (extra) extra(json);
  json.end_object();
  json.finish();
  os << "\n";
}

} // namespace pcnna
