#include "common/parallel.hpp"

#include "common/error.hpp"

namespace pcnna {

ThreadPool::ThreadPool(std::size_t workers) : num_workers_(workers) {
  PCNNA_CHECK(workers >= 1);
  threads_.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (num_workers_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    outstanding_ = num_workers_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  try {
    fn(0);
  } catch (...) {
    // Still join the pool workers before propagating.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
    throw;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

} // namespace pcnna
