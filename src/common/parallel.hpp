// Deterministic fork/join worker pool for intra-image parallelism.
//
// The engine hot path partitions output pixels into fixed contiguous tiles
// (one per worker) and runs each tile on its own worker with its own
// scratch; workers never share mutable state, so the result is bitwise
// independent of scheduling. The pool exists to amortize thread creation
// across the many conv2d calls of a network/serving run — workers are
// spawned once and parked on a condition variable between jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcnna {

/// Fixed-size fork/join pool. `workers()` includes the calling thread:
/// run(fn) invokes fn(w) for w in [0, workers()), with w == 0 executed on
/// the caller and the rest on parked pool threads. run() returns after all
/// workers finish; the first worker exception (if any) is rethrown.
class ThreadPool {
 public:
  /// Spawns `workers - 1` parked threads (workers >= 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return num_workers_; }

  /// Fork/join: every worker runs fn(worker_index) exactly once.
  void run(const std::function<void(std::size_t)>& fn);

  /// Static partition of [0, count) into `workers` contiguous chunks:
  /// worker w owns [chunk_begin(count, w, n), chunk_begin(count, w + 1, n)).
  /// The decomposition is a pure function of (count, workers), never of
  /// scheduling — part of the determinism contract, and the single home of
  /// the formula (callers must not re-derive it).
  static std::size_t chunk_begin(std::size_t count, std::size_t w,
                                 std::size_t workers) {
    return count * w / workers;
  }

 private:
  void worker_loop(std::size_t index);

  std::size_t num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t outstanding_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

} // namespace pcnna
