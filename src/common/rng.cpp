#include "common/rng.hpp"

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace pcnna {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

} // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  have_cached_normal_ = false;
}

Rng::State Rng::state() const {
  State s;
  for (std::size_t i = 0; i < 4; ++i) s.s[i] = state_[i];
  s.have_cached_normal = have_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::set_state(const State& state) {
  PCNNA_CHECK_MSG((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0,
                  "xoshiro state must not be all zero");
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PCNNA_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PCNNA_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              (std::numeric_limits<std::uint64_t>::max() % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; uniform() can return 0 so nudge away from log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PCNNA_DCHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

} // namespace pcnna
