// Engineering-notation formatting for report output.
//
// Benches print paper-style rows ("21.8 us", "2.2 mm^2", "5.2 B rings");
// these helpers keep that formatting consistent and locale-independent.
#pragma once

#include <cstdint>
#include <string>

namespace pcnna {

/// Format seconds with an auto-selected engineering prefix, e.g. "605 ns",
/// "2.20 us", "16.5 ms". `sig` controls significant digits (default 3).
std::string format_time(double seconds, int sig = 3);

/// Format an area in m^2 as mm^2 or um^2, e.g. "2.16 mm^2".
std::string format_area(double m2, int sig = 3);

/// Format a count with K/M/B suffixes, e.g. "5.25 B", "34.8 K", "3456".
std::string format_count(double count, int sig = 3);

/// Format a power in watts with an engineering prefix, e.g. "44.6 mW".
std::string format_power(double watts, int sig = 3);

/// Format an energy in joules with an engineering prefix, e.g. "1.3 uJ".
std::string format_energy(double joules, int sig = 3);

/// Format bytes as B/KiB/MiB/GiB, e.g. "129.8 KiB".
std::string format_bytes(double bytes, int sig = 3);

/// Format a frequency/rate, e.g. "5.00 GHz", "6.00 GSa/s" (suffix chooses).
std::string format_freq(double hz, int sig = 3);

/// Fixed-point with `digits` decimals, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double v, int digits);

/// Scientific notation with `sig` significant digits, e.g. "1.21e+05".
std::string format_sci(double v, int sig = 3);

} // namespace pcnna
