#include "common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pcnna {
namespace {

struct Prefix {
  double scale;
  const char* suffix;
};

std::string with_prefix(double value, const Prefix* prefixes, int n_prefixes,
                        int sig, const char* base_suffix) {
  if (value == 0.0) return std::string("0 ") + base_suffix;
  const double mag = std::abs(value);
  const Prefix* chosen = &prefixes[n_prefixes - 1];
  for (int i = 0; i < n_prefixes; ++i) {
    if (mag >= prefixes[i].scale) {
      chosen = &prefixes[i];
      break;
    }
  }
  const double scaled = value / chosen->scale;
  // Pick decimals so we show `sig` significant digits.
  const double abs_scaled = std::abs(scaled);
  int int_digits = abs_scaled >= 1.0
                       ? static_cast<int>(std::floor(std::log10(abs_scaled))) + 1
                       : 1;
  int decimals = sig - int_digits;
  if (decimals < 0) decimals = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s%s", decimals, scaled, chosen->suffix,
                base_suffix);
  return buf;
}

} // namespace

std::string format_time(double seconds, int sig) {
  static constexpr std::array<Prefix, 6> kPrefixes{{
      {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}}};
  return with_prefix(seconds, kPrefixes.data(), kPrefixes.size(), sig, "s");
}

std::string format_area(double m2, int sig) {
  if (std::abs(m2) >= 1e-8) { // >= 0.01 mm^2 -> mm^2
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f mm^2", sig > 1 ? sig - 1 : 1, m2 / 1e-6);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f um^2", sig > 1 ? sig - 1 : 1, m2 / 1e-12);
  return buf;
}

std::string format_count(double count, int sig) {
  static constexpr std::array<Prefix, 4> kPrefixes{{
      {1e12, "T"}, {1e9, "B"}, {1e6, "M"}, {1e3, "K"}}};
  // Counts below 10k print exactly (the paper quotes "3456 microrings").
  if (std::abs(count) < 1e4) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f", count);
    return buf;
  }
  return with_prefix(count, kPrefixes.data(), kPrefixes.size(), sig, "");
}

std::string format_power(double watts, int sig) {
  static constexpr std::array<Prefix, 5> kPrefixes{{
      {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}}};
  return with_prefix(watts, kPrefixes.data(), kPrefixes.size(), sig, "W");
}

std::string format_energy(double joules, int sig) {
  static constexpr std::array<Prefix, 6> kPrefixes{{
      {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}}};
  return with_prefix(joules, kPrefixes.data(), kPrefixes.size(), sig, "J");
}

std::string format_bytes(double bytes, int sig) {
  static constexpr std::array<Prefix, 4> kPrefixes{{{1024.0 * 1024.0 * 1024.0, "Gi"},
                                                    {1024.0 * 1024.0, "Mi"},
                                                    {1024.0, "Ki"},
                                                    {1.0, ""}}};
  return with_prefix(bytes, kPrefixes.data(), kPrefixes.size(), sig, "B");
}

std::string format_freq(double hz, int sig) {
  static constexpr std::array<Prefix, 4> kPrefixes{{
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}}};
  return with_prefix(hz, kPrefixes.data(), kPrefixes.size(), sig, "Hz");
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_sci(double v, int sig) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", sig > 1 ? sig - 1 : 0, v);
  return buf;
}

} // namespace pcnna
