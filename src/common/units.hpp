// SI unit helpers and physical constants used throughout the PCNNA simulator.
//
// All quantities in the library are carried in base SI units (seconds, meters,
// hertz, watts, joules, bytes) as `double`. These constexpr factors make
// call sites read like the paper: `5.0 * units::GHz`, `25.0 * units::um`.
#pragma once

namespace pcnna::units {

// --- time ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- frequency / sample rate ---
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;
/// Samples per second for data converters (dimensionally a rate in Hz).
inline constexpr double GSa = 1e9;
inline constexpr double MSa = 1e6;

// --- length / area ---
inline constexpr double m = 1.0;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;
inline constexpr double mm2 = 1e-6;  // square millimeters in m^2
inline constexpr double um2 = 1e-12; // square micrometers in m^2

// --- power / energy ---
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

// --- information ---
inline constexpr double bit = 1.0;
inline constexpr double byte = 8.0;
inline constexpr double KiB = 8.0 * 1024.0;
inline constexpr double kb = 1e3; // kilobit, as in "128 kb SRAM"

// --- physical constants ---
/// Speed of light in vacuum [m/s].
inline constexpr double c0 = 299'792'458.0;
/// Planck constant [J*s].
inline constexpr double h_planck = 6.626'070'15e-34;
/// Elementary charge [C].
inline constexpr double q_e = 1.602'176'634e-19;
/// Boltzmann constant [J/K].
inline constexpr double k_B = 1.380'649e-23;

} // namespace pcnna::units
