// Small numeric helpers shared across the photonic and electronic models.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

#include "common/error.hpp"

namespace pcnna {

/// Convert a linear power ratio to decibels.
inline double to_db(double linear) {
  PCNNA_DCHECK(linear > 0.0);
  return 10.0 * std::log10(linear);
}

/// Convert decibels to a linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert absolute power [W] to dBm.
inline double watts_to_dbm(double watts) {
  PCNNA_DCHECK(watts > 0.0);
  return 10.0 * std::log10(watts / 1e-3);
}

/// Convert dBm to absolute power [W].
inline double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

/// Clamp helper mirroring std::clamp but tolerant of lo == hi.
inline double clamp(double v, double lo, double hi) {
  PCNNA_DCHECK(lo <= hi);
  return std::min(std::max(v, lo), hi);
}

/// Linear interpolation.
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// |a - b| / max(|a|, |b|, eps): symmetric relative error, safe near zero.
inline double relative_error(double a, double b, double eps = 1e-12) {
  const double scale = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / scale;
}

/// True when a and b agree within the given absolute OR relative tolerance.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  return std::abs(a - b) <= std::max(abs_tol, rel_tol * std::max(std::abs(a), std::abs(b)));
}

/// Arithmetic mean of a span; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

/// Population standard deviation of a span; 0 for fewer than two elements.
inline double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

/// Root-mean-square error between two equally sized spans.
inline double rmse(std::span<const double> a, std::span<const double> b) {
  PCNNA_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

/// Ceiling division for nonnegative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

} // namespace pcnna
