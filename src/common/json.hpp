// Minimal streaming JSON writer.
//
// Bench and example binaries print human-readable tables by default; this
// writer provides machine-readable mirrors (design_explorer --json) without
// pulling in a JSON library. Commas and nesting are tracked internally;
// misuse (value without a key inside an object, unbalanced end calls)
// throws.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace pcnna {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& os);

  /// Destructor checks for balanced begin/end in debug builds only (it must
  /// not throw); call finish() to validate explicitly.
  ~JsonWriter() = default;

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // --- structure ---
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be directly inside an object and followed by
  /// exactly one value or container.
  JsonWriter& key(std::string_view k);

  // --- scalars ---
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Throws if any container is still open.
  void finish() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

} // namespace pcnna
