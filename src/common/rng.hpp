// Deterministic, seedable random number generation.
//
// All stochastic parts of the simulator (noise injection, synthetic weight
// and input generation, fabrication variation) draw from this generator so
// that every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace pcnna {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and deterministic
/// across platforms (unlike std::normal_distribution, whose output is
/// implementation-defined). Seeded through SplitMix64.
class Rng {
 public:
  /// Complete generator state: the xoshiro words plus the Box–Muller
  /// spare-normal cache. Capturing and restoring it around a draw sequence
  /// continues the stream exactly — the pipelined serving runtime hands the
  /// engine RNG from one PCU's stage to the next this way so a split run
  /// draws the same values a whole-network run would.
  struct State {
    std::uint64_t s[4]{};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the full state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Snapshot the complete generator state.
  State state() const;

  /// Restore a snapshot taken with state().
  void set_state(const State& state);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t state_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

} // namespace pcnna
