#include "core/energy_model.hpp"

#include "electronics/adc.hpp"
#include "electronics/dac.hpp"
#include "photonics/laser.hpp"

namespace pcnna::core {

EnergyModel::EnergyModel(PcnnaConfig config) : config_(std::move(config)) {
  config_.validate();
}

EnergyReport EnergyModel::layer_energy(const LayerPlan& plan,
                                       const LayerTiming& timing) const {
  EnergyReport e;
  e.layer_name = plan.layer.name;
  const double active_time = timing.full_system_time;

  // One laser per WDM channel in use, drawing wall-plug power for the layer.
  const phot::LaserDiode laser(config_.laser);
  e.laser = static_cast<double>(plan.group_size) * laser.electrical_power() *
            active_time;

  // Heaters: expectation of the tuning power over random weights is half of
  // the max-detuning drive per ring.
  const double mean_heater_per_ring =
      0.5 * config_.bank.ring.max_detuning / config_.bank.ring.thermal_efficiency;
  e.heater = static_cast<double>(plan.rings_total) * mean_heater_per_ring *
             active_time;

  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  const elec::Adc adc(config_.adc);
  e.input_dac = input_dac.conversion_energy(plan.input_dac_conversions);
  e.weight_dac = weight_dac.conversion_energy(plan.weight_dac_conversions);
  e.adc = adc.conversion_energy(plan.adc_conversions);

  // SRAM: every fresh input goes through the cache once (write + read), and
  // every digitized output is staged once.
  const std::uint64_t sram_accesses =
      2 * plan.input_dac_conversions + plan.adc_conversions;
  e.sram = static_cast<double>(sram_accesses) * config_.sram.access_energy;

  const std::uint64_t word_bytes =
      (static_cast<std::uint64_t>(config_.word_bits) + 7) / 8;
  e.dram = static_cast<double>(
               (plan.dram_read_words + plan.dram_write_words) * word_bytes) *
           config_.dram.energy_per_byte;
  return e;
}

std::vector<EnergyReport> EnergyModel::network_energy(
    const std::vector<nn::ConvLayerParams>& layers,
    TimingFidelity fidelity) const {
  const Scheduler scheduler(config_);
  const TimingModel timing(config_, fidelity);
  std::vector<EnergyReport> reports;
  reports.reserve(layers.size());
  for (const nn::ConvLayerParams& layer : layers) {
    reports.push_back(
        layer_energy(scheduler.plan(layer), timing.layer_time(layer)));
  }
  return reports;
}

} // namespace pcnna::core
