// Multi-core layer-pipelined throughput model (extension beyond the paper).
//
// The paper (SS I) notes that data dependencies across layers block
// *intra-image* inter-layer parallelization, and PCNNA therefore processes
// layers sequentially on one virtually-reused core. Across a *batch*,
// however, P physical cores can be pipelined — core p runs its contiguous
// slice of layers on image i while core p+1 runs its slice on image i-1.
// This model partitions the conv stack across P cores to minimize the
// pipeline interval (the slowest stage) and reports latency vs throughput.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// Result of pipelining a conv stack across `cores` PCNNA cores.
struct ThroughputReport {
  std::size_t cores = 1;
  /// Per-image latency (sum of all layer times; unchanged by pipelining).
  double latency = 0.0;
  /// Pipeline initiation interval: the slowest stage's total time.
  double interval = 0.0;
  double images_per_second() const {
    return interval > 0.0 ? 1.0 / interval : 0.0;
  }
  /// Speedup over the single-core sequential throughput.
  double throughput_speedup = 1.0;
  /// [first, last] layer index (inclusive) per core.
  std::vector<std::pair<std::size_t, std::size_t>> stages;
  /// Total time of each stage.
  std::vector<double> stage_times;
};

class ThroughputModel {
 public:
  ThroughputModel(PcnnaConfig config,
                  TimingFidelity fidelity = TimingFidelity::kPaper);

  /// Optimal contiguous partition of `layers` across `cores` stages
  /// (classic linear-partition DP, minimizing the max stage time).
  ThroughputReport pipeline(const std::vector<nn::ConvLayerParams>& layers,
                            std::size_t cores) const;

 private:
  TimingModel timing_;
};

} // namespace pcnna::core
