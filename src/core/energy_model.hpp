// Energy model (extension beyond the paper).
//
// The paper motivates photonics with power but reports no energy numbers;
// this model prices a LayerPlan + LayerTiming using the component specs the
// paper cites (DAC/ADC active power, SRAM access energy, DRAM energy/byte)
// plus laser wall-plug efficiency and mean ring-heater power. Used by the
// ablation benches and the examples.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"

namespace pcnna::core {

/// Per-layer energy breakdown [J].
struct EnergyReport {
  std::string layer_name;
  double laser = 0.0;      ///< WDM sources, electrical draw over layer time
  double heater = 0.0;     ///< ring thermal tuning
  double input_dac = 0.0;  ///< input-path conversions
  double weight_dac = 0.0; ///< weight programming
  double adc = 0.0;        ///< output digitization
  double sram = 0.0;       ///< cache accesses
  double dram = 0.0;       ///< off-chip traffic
  double total() const {
    return laser + heater + input_dac + weight_dac + adc + sram + dram;
  }
  /// Energy per MAC [J] given the layer's MAC count.
  double per_mac(std::uint64_t macs) const {
    return macs == 0 ? 0.0 : total() / static_cast<double>(macs);
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(PcnnaConfig config);

  /// Price one layer: `plan` supplies event counts, `timing` the wall time
  /// power-type consumers integrate over.
  EnergyReport layer_energy(const LayerPlan& plan,
                            const LayerTiming& timing) const;

  /// Convenience: plan + time + price a conv stack at the given fidelity.
  std::vector<EnergyReport> network_energy(
      const std::vector<nn::ConvLayerParams>& layers,
      TimingFidelity fidelity) const;

 private:
  PcnnaConfig config_;
};

} // namespace pcnna::core
