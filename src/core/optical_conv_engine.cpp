#include "core/optical_conv_engine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "electronics/adc.hpp"
#include "electronics/dac.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/waveguide.hpp"
#include "photonics/wdm.hpp"

// Hot-path bit-identity contract
// ------------------------------
// Every value this file computes must stay bit-identical to the frozen
// pre-rewrite engine (engine_reference.cpp): the serving runtime's
// request-level reproducibility guarantees are built on engine outputs, so
// the rewrite hoists and restructures but never reassociates. Concretely:
//
//  * per-element math (normalize, DAC quantize, MZM transfer) is hoisted
//    out of the pixel loops into per-layer tables — legal because they are
//    pure functions of the input element, evaluated with the identical
//    expressions;
//  * each per-bank dot product accumulates channel-ascending with += ,
//    exactly like the reference — the loop interchange to K independent
//    accumulation chains changes the schedule, never the per-accumulator
//    addition order;
//  * RNG draw order is pinned: all setup draws (bank fabrication,
//    inject_stuck_faults, measured_usable_range) happen sequentially in
//    construction order, and hot-loop draws (laser RIN, photodiode noise)
//    happen in sequential pixel order — pre-generated into a buffer before
//    tiles fan out when engine_threads > 1.
namespace pcnna::core {
namespace {

/// Precomputed constants of the analog signal chain shared by every bank.
struct AnalogChain {
  double p0 = 0.0;        ///< laser CW power [W]
  double bcast = 1.0;     ///< broadcast-tree factor to one bank
  double mzm_loss = 1.0;  ///< MZM insertion-loss factor
  double mzm_floor = 0.0; ///< MZM extinction floor (transmission at x = 0)
  double resp = 1.0;      ///< photodiode responsivity [A/W]
  /// Current corresponding to one unit of normalized MAC:
  /// resp * p0 * bcast * mzm_loss * (1 - floor).
  double denom_current = 1.0;
  /// Per-channel power at x = 0 (extinction leakage) [W].
  double dark_power = 0.0;
};

AnalogChain make_chain(const PcnnaConfig& cfg, std::size_t fanout) {
  const phot::LaserDiode laser(cfg.laser);
  const phot::MachZehnderModulator mzm(cfg.mzm);
  const phot::Waveguide wg(cfg.waveguide);
  AnalogChain chain;
  chain.p0 = laser.cw_power();
  chain.bcast = wg.broadcast_factor(fanout);
  chain.mzm_loss = from_db(-cfg.mzm.insertion_loss_db);
  chain.mzm_floor = from_db(-cfg.mzm.extinction_ratio_db);
  chain.resp = cfg.bank.photodiode.responsivity;
  chain.denom_current = chain.resp * chain.p0 * chain.bcast * chain.mzm_loss *
                        (1.0 - chain.mzm_floor);
  chain.dark_power = chain.p0 * chain.bcast * chain.mzm_loss * chain.mzm_floor;
  return chain;
}

/// Quantize a signed weight in [-1, 1] through the kernel-weight DAC.
double quantize_weight(const elec::Dac& dac, double w) {
  return dac.convert((w + 1.0) / 2.0) * 2.0 - 1.0;
}

struct CalibrationError {
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;
  void add(double err) {
    sum += err;
    if (err > max) max = err;
    ++count;
  }
};

/// ADC full scale for the normalized MAC values of a layer, in units of
/// sum_i x'_i * w'_i with x' in [0, 1] and |w'| <= 1.
///
/// A real deployment programs the back-end gain per layer from known weight
/// and input statistics (the weights are on-chip already and the input
/// buffer is observable); we model that range calibration as
///   fs = headroom * sqrt(N * E[x'^2] * E[w'^2]),
/// i.e. `headroom` standard deviations of the zero-mean random-sum model.
double adc_full_scale(double headroom, std::size_t n_channels,
                      double mean_x_sq, double mean_w_sq) {
  const double variance =
      static_cast<double>(n_channels) * mean_x_sq * mean_w_sq;
  return std::max(1e-6, headroom * std::sqrt(variance));
}

/// Mean square of a range of values after dividing by `scale`.
template <typename Range>
double mean_square_scaled(const Range& values, double scale) {
  if (values.empty() || scale == 0.0) return 0.0;
  double acc = 0.0;
  for (double v : values) {
    const double x = v / scale;
    acc += x * x;
  }
  return acc / static_cast<double>(values.size());
}

// --- noise sources -------------------------------------------------------
// The hot loop consumes standard normals through one of these; all three
// produce the identical value stream for a given engine state, which is the
// crux of determinism under threads (see the header).

/// Sequential path: draw from the engine RNG inline (the reference
/// behavior — Rng::normal(mean, sigma) is mean + sigma * Rng::normal()).
struct RngNormalSource {
  Rng* rng;
  double next() { return rng->normal(); }
};

/// Parallel noisy path: read standard normals pre-drawn in sequential pixel
/// order from EngineScratch::noise_z.
struct BufferNormalSource {
  const double* z;
  double next() { return *z++; }
};

/// Noise-free path: never called (kNoise == false elides all call sites).
struct NullNormalSource {
  double next() { return 0.0; }
};

/// Replicates BalancedPhotodiode::detect bit for bit while sourcing the
/// standard normals from `src`: each branch computes its ideal current,
/// then adds sigma * z when its noise sigma is nonzero (plus branch first —
/// the draw order the sequential engine produces).
template <bool kNoise, typename Source>
inline double detect_balanced(const phot::BalancedPhotodiode& pd,
                              double p_drop, double p_thru, double bw,
                              Source& src) {
  double cur_p = pd.plus_branch().ideal_current(p_drop);
  double cur_m = pd.minus_branch().ideal_current(p_thru);
  if constexpr (kNoise) {
    const double sp = pd.plus_branch().noise_sigma(cur_p, bw);
    if (sp != 0.0) cur_p = cur_p + sp * src.next();
    const double sm = pd.minus_branch().noise_sigma(cur_m, bw);
    if (sm != 0.0) cur_m = cur_m + sm * src.next();
  }
  return cur_p - cur_m;
}

/// True when every balanced-detect branch consumes a compile-time-known
/// number of normals per sample (0 or 1) — the precondition for pre-drawing
/// the parallel noisy path. Shot-only noise with zero dark current makes
/// the draw data-dependent (sigma == 0 exactly when the mean current is 0),
/// so that corner falls back to the sequential path.
bool pd_draw_count_fixed(const phot::PhotodiodeConfig& pd) {
  if (!pd.enable_shot_noise && !pd.enable_thermal_noise) return true; // 0
  if (pd.enable_thermal_noise) return true;                          // 1
  return pd.dark_current > 0.0; // shot only: mean >= dark > 0 -> 1
}

/// Normals one balanced-detect branch consumes per sample when the count is
/// fixed.
std::size_t pd_draws_per_branch(const phot::PhotodiodeConfig& pd) {
  return (pd.enable_shot_noise || pd.enable_thermal_noise) ? 1 : 0;
}

/// Per-layer constants of one pixel sweep, shared read-only by all workers.
struct SweepCtx {
  const GroupSlice* groups = nullptr;
  std::size_t n_groups = 0;
  const double* transfer = nullptr;
  double transfer_pad = 0.0;
  const std::int32_t* patch = nullptr;
  std::size_t n_kernel = 0;   ///< patch row stride
  std::size_t patch_offset = 0; ///< per-channel allocation: c * m * m
  const double* drop_t = nullptr;
  const double* thru_t = nullptr;
  const double* baseline = nullptr;
  const std::size_t* group_base = nullptr;
  std::size_t K = 0;
  std::size_t pixels = 0;
  double bcast = 1.0;
  double laser_mean = 0.0;
  double laser_sigma = 0.0;
  double p_src0 = 0.0; ///< noise-free modulated source power (p0 * bcast)
  const phot::BalancedPhotodiode* pd = nullptr;
  double bw = 0.0;
  double denom_current = 1.0;
  bool quantize = false;
  const elec::Adc* adc = nullptr;
  double adc_fs = 1.0;
  double recover = 1.0;
  const double* bias = nullptr; ///< null when the layer has no bias
  double* out = nullptr;
  /// Full-kernel: analog wire-sum across groups, one ADC sample per kernel
  /// (false). Per-channel: every pass is digitized and accumulated into
  /// `out` electronically (true).
  bool accumulate = false;
};

/// Inner MAC step: rank-1 update of the K drop/through accumulators with
/// one channel's power. The __restrict qualifiers let the compiler
/// vectorize across the K independent chains — legal bitwise because each
/// chain's addition order is untouched (lanes are distinct accumulators).
inline void mac_update(std::size_t K, double pw, const double* __restrict dr,
                       const double* __restrict th, double* __restrict dacc,
                       double* __restrict tacc) {
  for (std::size_t k = 0; k < K; ++k) {
    dacc[k] += pw * dr[k];
    tacc[k] += pw * th[k];
  }
}

/// One kernel location: modulate the receptive field, run all K banks, and
/// digitize. Identical value/draw sequence to the reference engine's
/// per-pixel body.
template <bool kNoise, typename Source>
void conv_pixel(const SweepCtx& c, std::size_t p, Source& src,
                EngineScratch::Worker& wk) {
  const std::int32_t* prow = c.patch + p * c.n_kernel + c.patch_offset;
  double* powers = wk.powers.data();
  double* dacc = wk.drop_acc.data();
  double* tacc = wk.thru_acc.data();
  double* acc = wk.acc.data();
  if (!c.accumulate) std::fill(acc, acc + c.K, 0.0);

  for (std::size_t g = 0; g < c.n_groups; ++g) {
    const GroupSlice& slice = c.groups[g];
    const std::size_t width = slice.size();
    // Modulate this group's input slice through the precomputed transfer
    // table (gather via the im2col patch map).
    for (std::size_t i = 0; i < width; ++i) {
      const std::int32_t idx = prow[slice.begin + i];
      const double tf = idx >= 0 ? c.transfer[idx] : c.transfer_pad;
      if constexpr (kNoise) {
        const double emit =
            std::max(0.0, c.laser_mean + c.laser_sigma * src.next());
        powers[i] = emit * c.bcast * tf;
      } else {
        powers[i] = c.p_src0 * tf;
      }
    }

    // Branch-free MAC: K independent drop/through accumulation chains over
    // the transposed bank responses; each chain adds channel-ascending,
    // exactly like the reference inner loop.
    std::fill(dacc, dacc + c.K, 0.0);
    std::fill(tacc, tacc + c.K, 0.0);
    const double* drop = c.drop_t + c.group_base[g];
    const double* thru = c.thru_t + c.group_base[g];
    for (std::size_t i = 0; i < width; ++i)
      mac_update(c.K, powers[i], drop + i * c.K, thru + i * c.K, dacc, tacc);

    const double* base = c.baseline + g * c.K;
    if (!c.accumulate) {
      for (std::size_t k = 0; k < c.K; ++k) {
        const double current =
            detect_balanced<kNoise>(*c.pd, dacc[k], tacc[k], c.bw, src);
        acc[k] += (current - base[k]) / c.denom_current;
      }
    } else {
      // Per-channel partial sums are digitized every pass and accumulated
      // electronically.
      for (std::size_t k = 0; k < c.K; ++k) {
        const double current =
            detect_balanced<kNoise>(*c.pd, dacc[k], tacc[k], c.bw, src);
        double v = (current - base[k]) / c.denom_current;
        if (c.quantize) v = c.adc->convert(v / c.adc_fs) * c.adc_fs;
        ++wk.adc_conversions;
        c.out[k * c.pixels + p] += v;
      }
    }
    ++wk.optical_passes;
  }

  if (!c.accumulate) {
    // Segment currents wire-sum in analog; one ADC sample per kernel.
    for (std::size_t k = 0; k < c.K; ++k) {
      double v = acc[k];
      if (c.quantize) v = c.adc->convert(v / c.adc_fs) * c.adc_fs;
      ++wk.adc_conversions;
      const double b = c.bias ? c.bias[k] : 0.0;
      c.out[k * c.pixels + p] = v * c.recover + b;
    }
  }
}

/// Drive conv_pixel over all kernel locations: sequentially (drawing noise
/// inline from `rng`), or across fixed contiguous pixel tiles on the pool —
/// pre-drawing the noise stream in sequential pixel order first so the
/// fan-out cannot perturb it.
void sweep_pixels(const SweepCtx& ctx, std::size_t workers,
                  std::size_t draws_per_pixel, Rng& rng,
                  EngineScratch& scratch, ThreadPool* pool) {
  const std::size_t pixels = ctx.pixels;
  const auto chunk = [&](std::size_t w) {
    return ThreadPool::chunk_begin(pixels, w, workers);
  };

  // The pool may hold more threads than this layer's effective worker
  // count (small output maps clamp it); surplus workers no-op.

  if (ctx.bw == 0.0) {
    auto tile = [&](std::size_t w) {
      if (w >= workers) return;
      NullNormalSource src;
      EngineScratch::Worker& wk = scratch.workers[w];
      for (std::size_t p = chunk(w); p < chunk(w + 1); ++p)
        conv_pixel<false>(ctx, p, src, wk);
    };
    if (workers == 1) {
      tile(0);
    } else {
      pool->run(tile);
    }
    return;
  }

  if (workers == 1) {
    RngNormalSource src{&rng};
    for (std::size_t p = 0; p < pixels; ++p)
      conv_pixel<true>(ctx, p, src, scratch.workers[0]);
    return;
  }

  // Parallel noisy path: generate the layer's standard-normal stream in the
  // exact sequential order, then let every tile index its pixel's slice.
  scratch.noise_z.resize(pixels * draws_per_pixel);
  for (double& z : scratch.noise_z) z = rng.normal();
  auto tile = [&](std::size_t w) {
    if (w >= workers) return;
    EngineScratch::Worker& wk = scratch.workers[w];
    for (std::size_t p = chunk(w); p < chunk(w + 1); ++p) {
      BufferNormalSource src{scratch.noise_z.data() + p * draws_per_pixel};
      conv_pixel<true>(ctx, p, src, wk);
    }
  };
  pool->run(tile);
}

/// Size the transposed SoA program arrays for one layer plan (K response
/// chains per group slice).
void size_bank_soa(const LayerPlan& plan, EngineScratch& s) {
  const std::size_t K = plan.layer.K;
  const std::size_t G = plan.groups.size();
  s.group_base.assign(G + 1, 0);
  for (std::size_t g = 0; g < G; ++g)
    s.group_base[g + 1] = s.group_base[g] + plan.groups[g].size() * K;
  s.drop_t.assign(s.group_base[G], 0.0);
  s.thru_t.assign(s.group_base[G], 0.0);
  s.baseline.assign(G * K, 0.0);
}

/// Program one bank with its weight slice (channel_offset = c * m * m for
/// the per-channel allocation, 0 for full-kernel) and flatten the
/// calibrated response into the transposed SoA arrays. Identical value
/// sequence to the reference engine's per-bank programming block.
void program_bank_soa(phot::WeightBank& bank, const LayerPlan& plan,
                      std::size_t g, std::size_t k,
                      std::size_t channel_offset, const nn::Tensor& weights,
                      double w_absmax, double denom, bool quantize,
                      const elec::Dac& weight_dac, const AnalogChain& chain,
                      EngineScratch& s, CalibrationError& cal_err) {
  const GroupSlice& slice = plan.groups[g];
  const std::size_t width = slice.size();
  const std::size_t K = plan.layer.K;
  const std::size_t n_kernel = plan.layer.kernel_size();

  s.targets.resize(width);
  for (std::size_t i = 0; i < width; ++i) {
    double w = weights[k * n_kernel + channel_offset + slice.begin + i] /
               w_absmax * denom;
    if (quantize) w = quantize_weight(weight_dac, w);
    s.targets[i] = w;
  }
  const std::vector<double> achieved = bank.calibrate(s.targets);
  for (std::size_t i = 0; i < width; ++i)
    cal_err.add(std::abs(achieved[i] - s.targets[i]));

  s.splits.resize(width);
  bank.channel_splits_into(s.splits);
  double base = 0.0;
  for (const auto& split : s.splits)
    base += chain.dark_power * (split.drop - split.thru);
  s.baseline[g * K + k] = chain.resp * base;
  const std::size_t gb = s.group_base[g];
  for (std::size_t i = 0; i < width; ++i) {
    s.drop_t[gb + i * K + k] = s.splits[i].drop;
    s.thru_t[gb + i * K + k] = s.splits[i].thru;
  }
}

/// Fill the read-only sweep context from already-sized scratch. The single
/// home of the laser-RIN sigma expression (must mirror LaserDiode::emit
/// bit for bit).
SweepCtx make_sweep_ctx(const LayerPlan& plan, const PcnnaConfig& cfg,
                        const AnalogChain& chain,
                        const phot::BalancedPhotodiode& pd,
                        const elec::Adc& adc, double bw, double adc_fs,
                        double recover, bool accumulate,
                        const nn::Tensor& bias, nn::Tensor& out,
                        EngineScratch& s) {
  SweepCtx ctx;
  ctx.groups = plan.groups.data();
  ctx.n_groups = plan.groups.size();
  ctx.transfer = s.transfer.data();
  ctx.transfer_pad = s.transfer_pad;
  ctx.patch = s.patch.data();
  ctx.n_kernel = plan.layer.kernel_size();
  ctx.drop_t = s.drop_t.data();
  ctx.thru_t = s.thru_t.data();
  ctx.baseline = s.baseline.data();
  ctx.group_base = s.group_base.data();
  ctx.K = plan.layer.K;
  const std::size_t side = plan.layer.output_side();
  ctx.pixels = side * side;
  ctx.bcast = chain.bcast;
  ctx.laser_mean = chain.p0;
  ctx.laser_sigma =
      bw > 0.0 ? chain.p0 * std::sqrt(from_db(cfg.laser.rin_db_per_hz) * bw)
               : 0.0;
  ctx.p_src0 = chain.p0 * chain.bcast;
  ctx.pd = &pd;
  ctx.bw = bw;
  ctx.denom_current = chain.denom_current;
  ctx.quantize = cfg.enable_quantization;
  ctx.adc = &adc;
  ctx.adc_fs = adc_fs;
  ctx.recover = recover;
  // Per-channel passes (accumulate) add the bias during the final rescale
  // instead.
  ctx.bias = (!accumulate && !bias.empty()) ? bias.data().data() : nullptr;
  ctx.out = out.data().data();
  ctx.accumulate = accumulate;
  return ctx;
}

/// Per-layer patch-streaming precompute: normalize, DAC-quantize, and push
/// every input element through the MZM transfer exactly once.
void precompute_transfer(const nn::Tensor& input, double x_scale,
                         bool quantize, const elec::Dac& dac,
                         const phot::MachZehnderModulator& mzm,
                         EngineScratch& s) {
  const std::span<const double> in = input.data();
  s.transfer.resize(in.size());
  for (std::size_t e = 0; e < in.size(); ++e) {
    double x = in[e] / x_scale;
    if (quantize) x = dac.convert(x);
    s.transfer[e] = mzm.transmit_fraction(x);
  }
  double xp = 0.0 / x_scale;
  if (quantize) xp = dac.convert(xp);
  s.transfer_pad = mzm.transmit_fraction(xp);
}

/// Build the im2col gather map. Receptive-field order (channel-major, then
/// ky, then kx) mirrors nn::receptive_field.
void build_patch_map(const nn::ConvLayerParams& layer, const nn::Shape4& in,
                     EngineScratch& s) {
  const std::size_t side = layer.output_side();
  const std::size_t n_kernel = layer.kernel_size();
  const long long H = static_cast<long long>(in.h);
  const long long W = static_cast<long long>(in.w);
  s.patch.resize(side * side * n_kernel);
  std::int32_t* row = s.patch.data();
  for (std::size_t oy = 0; oy < side; ++oy) {
    for (std::size_t ox = 0; ox < side; ++ox) {
      for (std::size_t c = 0; c < layer.nc; ++c) {
        for (std::size_t ky = 0; ky < layer.m; ++ky) {
          const long long iy = static_cast<long long>(oy * layer.s + ky) -
                               static_cast<long long>(layer.p);
          for (std::size_t kx = 0; kx < layer.m; ++kx) {
            const long long ix = static_cast<long long>(ox * layer.s + kx) -
                                 static_cast<long long>(layer.p);
            *row++ = (iy >= 0 && iy < H && ix >= 0 && ix < W)
                         ? static_cast<std::int32_t>(
                               (static_cast<long long>(c) * H + iy) * W + ix)
                         : -1;
          }
        }
      }
    }
  }
}

} // namespace

void inject_stuck_faults(const PcnnaConfig& cfg, phot::WeightBank& bank,
                         Rng& rng, EngineStats& st) {
  if (cfg.stuck_ring_rate <= 0.0) return;
  for (std::size_t i = 0; i < bank.channels(); ++i) {
    if (rng.uniform() < cfg.stuck_ring_rate) {
      bank.fail_ring(i);
      ++st.stuck_rings;
    }
  }
}

double measured_usable_range(const PcnnaConfig& cfg, std::size_t channels,
                             Rng& rng) {
  PCNNA_CHECK(channels >= 1);
  const phot::WdmGrid grid(channels);
  phot::WeightBank bank(grid, cfg.bank, rng);
  return measured_usable_range(bank);
}

double measured_usable_range(phot::WeightBank& bank) {
  const std::size_t channels = bank.channels();
  PCNNA_CHECK(channels >= 1);
  const std::size_t mid = channels / 2;
  const std::vector<double> hi(channels, 1.0);
  bank.calibrate(hi);
  const double w_hi = bank.effective_weight(mid);
  const std::vector<double> lo(channels, -1.0);
  bank.calibrate(lo);
  const double w_lo = bank.effective_weight(mid);
  return std::min(w_hi, -w_lo);
}

OpticalConvEngine::OpticalConvEngine(PcnnaConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.validate();
}

std::size_t OpticalConvEngine::prepare_workers(std::size_t pixels,
                                               bool fixed_draw_count,
                                               std::size_t group_size,
                                               std::size_t K) {
  std::size_t n = config_.engine_threads;
  // The parallel noisy path needs a data-independent per-pixel draw count
  // to pre-generate the noise stream; otherwise stay sequential (outputs
  // are identical either way — this only affects host scheduling).
  if (config_.enable_noise && !fixed_draw_count) n = 1;
  n = std::max<std::size_t>(1, std::min(n, pixels));
  // The pool is created once at full engine_threads size and kept for the
  // engine's lifetime; layers whose pixel count clamps the effective worker
  // count below that leave the surplus workers idle for the sweep (see
  // sweep_pixels) instead of respawning threads per layer.
  if (n > 1 && !pool_)
    pool_ = std::make_unique<ThreadPool>(config_.engine_threads);
  scratch_.workers.resize(n);
  for (EngineScratch::Worker& w : scratch_.workers) {
    w.powers.resize(group_size);
    w.drop_acc.resize(K);
    w.thru_acc.resize(K);
    w.acc.resize(K);
    w.optical_passes = 0;
    w.adc_conversions = 0;
  }
  return n;
}

nn::Tensor OpticalConvEngine::conv2d(const nn::Tensor& input,
                                     const nn::Tensor& weights,
                                     const nn::Tensor& bias,
                                     std::size_t stride, std::size_t pad,
                                     EngineStats* stats) {
  PCNNA_CHECK_MSG(input.shape().n == 1, "batched inputs not supported");
  PCNNA_CHECK_MSG(input.shape().h == input.shape().w,
                  "PCNNA layers operate on square feature maps");
  if (!input.empty() && input.min() < 0.0) {
    PCNNA_CHECK_MSG(config_.dual_rail_inputs,
                    "photonic amplitude encoding requires non-negative inputs"
                    " (apply ReLU or normalize first, or enable"
                    " dual_rail_inputs)");
    // Dual-rail: x = x+ - x-; both halves are non-negative, so each runs on
    // the single-rail path; results subtract electronically. The bias rides
    // on the positive rail only.
    nn::Tensor pos(input.shape()), neg(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i) {
      pos[i] = std::max(0.0, input[i]);
      neg[i] = std::max(0.0, -input[i]);
    }
    EngineStats pos_stats, neg_stats;
    nn::Tensor out = conv2d(pos, weights, bias, stride, pad, &pos_stats);
    const nn::Tensor out_neg = conv2d(neg, weights, {}, stride, pad, &neg_stats);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] -= out_neg[i];
    if (stats) {
      *stats = pos_stats;
      stats->optical_passes += neg_stats.optical_passes;
      stats->dac_conversions += neg_stats.dac_conversions;
      stats->adc_conversions += neg_stats.adc_conversions;
      stats->banks_built += neg_stats.banks_built;
      stats->stuck_rings += neg_stats.stuck_rings;
      stats->patches_streamed += neg_stats.patches_streamed;
      stats->noise_draws += neg_stats.noise_draws;
    }
    return out;
  }
  PCNNA_CHECK(weights.shape().c == input.shape().c);
  PCNNA_CHECK(weights.shape().h == weights.shape().w);

  nn::ConvLayerParams params;
  params.name = "engine";
  params.n = input.shape().h;
  params.m = weights.shape().h;
  params.p = pad;
  params.s = stride;
  params.nc = input.shape().c;
  params.K = weights.shape().n;
  params.validate();

  const Scheduler scheduler(config_);
  const LayerPlan plan = scheduler.plan(params);

  EngineStats local;
  EngineStats& st = stats ? *stats : local;
  st = EngineStats{};
  st.locations = plan.locations;
  st.dac_conversions = plan.input_dac_conversions;
  st.weight_dac_conversions = plan.weight_dac_conversions;
  st.recalibrations = plan.recalibrations;
  st.rings_used = plan.rings_total;
  st.wavelengths_used = plan.group_size;

  nn::Tensor out = plan.allocation == RingAllocation::kFullKernel
                       ? run_full_kernel(plan, input, weights, bias, st)
                       : run_per_channel(plan, input, weights, bias, st);
  return out;
}

nn::Tensor OpticalConvEngine::run_full_kernel(const LayerPlan& plan,
                                              const nn::Tensor& input,
                                              const nn::Tensor& weights,
                                              const nn::Tensor& bias,
                                              EngineStats& stats) {
  const nn::ConvLayerParams& layer = plan.layer;
  const std::size_t K = layer.K;
  const std::size_t n_kernel = layer.kernel_size();
  const std::size_t side = layer.output_side();
  const std::size_t pixels = side * side;

  nn::Tensor out(nn::Shape4{1, K, side, side});

  // Electronic scaling: inputs normalized to [0, 1], weights to the bank's
  // representable range; the product is undone after detection.
  const double x_scale = input.abs_max();
  const double w_absmax = weights.abs_max();
  if (x_scale == 0.0 || w_absmax == 0.0) {
    for (std::size_t k = 0; k < K; ++k) {
      const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
      for (std::size_t l = 0; l < pixels; ++l) out[k * pixels + l] = b;
    }
    return out;
  }

  const AnalogChain chain = make_chain(config_, K);
  const phot::MachZehnderModulator mzm(config_.mzm);
  const phot::BalancedPhotodiode pd(config_.bank.photodiode);
  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  elec::AdcConfig adc_cfg = config_.adc;
  adc_cfg.full_scale = 1.0;
  const elec::Adc adc(adc_cfg);

  // Probe the representable weight range with a scratch bank of the same
  // width as the widest group.
  const double usable =
      measured_usable_range(config_, plan.group_size, rng_);
  PCNNA_CHECK_MSG(usable > 0.0, "weight bank has no usable signed range");
  const double denom = 0.95 * usable;
  const double recover = x_scale * w_absmax / denom;

  // --- Program every bank segment once (weights are fixed for the layer),
  // flattening calibrated responses straight into transposed SoA form.
  const std::size_t G = plan.groups.size();
  size_bank_soa(plan, scratch_);
  CalibrationError cal_err;
  for (std::size_t g = 0; g < G; ++g) {
    const phot::WdmGrid grid(plan.groups[g].size());
    for (std::size_t k = 0; k < K; ++k) {
      phot::WeightBank bank(grid, config_.bank, rng_);
      inject_stuck_faults(config_, bank, rng_, stats);
      program_bank_soa(bank, plan, g, k, /*channel_offset=*/0, weights,
                       w_absmax, denom, config_.enable_quantization,
                       weight_dac, chain, scratch_, cal_err);
      ++stats.banks_built;
      stats.total_heater_power += bank.total_heater_power();
      stats.total_ring_area += bank.total_area();
    }
  }

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  // Per-layer ADC range calibration from weight and input statistics.
  const double mean_w_sq =
      mean_square_scaled(weights.data(), w_absmax) * denom * denom;
  const double mean_x_sq = mean_square_scaled(input.data(), x_scale);
  const double adc_fs =
      adc_full_scale(config_.adc_headroom, n_kernel, mean_x_sq, mean_w_sq);

  precompute_transfer(input, x_scale, config_.enable_quantization, input_dac,
                      mzm, scratch_);
  build_patch_map(layer, input.shape(), scratch_);

  const std::size_t branch_draws = pd_draws_per_branch(config_.bank.photodiode);
  const std::size_t draws_per_pixel = n_kernel + 2 * branch_draws * K * G;
  const std::size_t workers =
      prepare_workers(pixels, pd_draw_count_fixed(config_.bank.photodiode),
                      plan.group_size, K);
  const SweepCtx ctx =
      make_sweep_ctx(plan, config_, chain, pd, adc, bw, adc_fs, recover,
                     /*accumulate=*/false, bias, out, scratch_);

  sweep_pixels(ctx, workers, draws_per_pixel, rng_, scratch_, pool_.get());
  stats.patches_streamed += pixels;
  if (bw > 0.0) stats.noise_draws += pixels * draws_per_pixel;

  for (const EngineScratch::Worker& w : scratch_.workers) {
    stats.optical_passes += w.optical_passes;
    stats.adc_conversions += w.adc_conversions;
  }

  if (cal_err.count > 0) {
    stats.mean_calibration_error = cal_err.sum / static_cast<double>(cal_err.count);
    stats.max_calibration_error = cal_err.max;
  }
  return out;
}

nn::Tensor OpticalConvEngine::run_per_channel(const LayerPlan& plan,
                                              const nn::Tensor& input,
                                              const nn::Tensor& weights,
                                              const nn::Tensor& bias,
                                              EngineStats& stats) {
  const nn::ConvLayerParams& layer = plan.layer;
  const std::size_t K = layer.K;
  const std::size_t per_channel = layer.m * layer.m;
  const std::size_t side = layer.output_side();
  const std::size_t pixels = side * side;

  nn::Tensor out(nn::Shape4{1, K, side, side});

  const double x_scale = input.abs_max();
  const double w_absmax = weights.abs_max();
  if (x_scale == 0.0 || w_absmax == 0.0) {
    for (std::size_t k = 0; k < K; ++k) {
      const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
      for (std::size_t l = 0; l < pixels; ++l) out[k * pixels + l] = b;
    }
    return out;
  }

  const AnalogChain chain = make_chain(config_, K);
  const phot::MachZehnderModulator mzm(config_.mzm);
  const phot::BalancedPhotodiode pd(config_.bank.photodiode);
  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  elec::AdcConfig adc_cfg = config_.adc;
  adc_cfg.full_scale = 1.0;
  const elec::Adc adc(adc_cfg);

  const double usable =
      measured_usable_range(config_, plan.group_size, rng_);
  PCNNA_CHECK_MSG(usable > 0.0, "weight bank has no usable signed range");
  const double denom = 0.95 * usable;
  const double recover = x_scale * w_absmax / denom;

  // Persistent banks (K per group slice of the m*m block), retuned per
  // channel pass — the physical rings live across recalibrations.
  const std::size_t G = plan.groups.size();
  std::vector<std::vector<phot::WeightBank>> banks(G);
  for (std::size_t g = 0; g < G; ++g) {
    const phot::WdmGrid grid(plan.groups[g].size());
    banks[g].reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
      banks[g].emplace_back(grid, config_.bank, rng_);
      inject_stuck_faults(config_, banks[g].back(), rng_, stats);
      ++stats.banks_built;
      stats.total_ring_area += banks[g].back().total_area();
    }
  }

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  // Per-layer ADC range calibration (per-channel passes sum m*m terms).
  const double mean_w_sq =
      mean_square_scaled(weights.data(), w_absmax) * denom * denom;
  const double mean_x_sq = mean_square_scaled(input.data(), x_scale);
  const double adc_fs =
      adc_full_scale(config_.adc_headroom, per_channel, mean_x_sq, mean_w_sq);

  size_bank_soa(plan, scratch_);
  precompute_transfer(input, x_scale, config_.enable_quantization, input_dac,
                      mzm, scratch_);
  build_patch_map(layer, input.shape(), scratch_);

  const std::size_t branch_draws = pd_draws_per_branch(config_.bank.photodiode);
  const std::size_t draws_per_pixel = per_channel + 2 * branch_draws * K * G;
  const std::size_t workers =
      prepare_workers(pixels, pd_draw_count_fixed(config_.bank.photodiode),
                      plan.group_size, K);
  SweepCtx ctx =
      make_sweep_ctx(plan, config_, chain, pd, adc, bw, adc_fs, recover,
                     /*accumulate=*/true, bias, out, scratch_);

  // Channel-major execution: retune, then sweep all locations.
  CalibrationError cal_err;
  for (std::size_t c = 0; c < layer.nc; ++c) {
    for (std::size_t g = 0; g < G; ++g) {
      for (std::size_t k = 0; k < K; ++k) {
        program_bank_soa(banks[g][k], plan, g, k,
                         /*channel_offset=*/c * per_channel, weights,
                         w_absmax, denom, config_.enable_quantization,
                         weight_dac, chain, scratch_, cal_err);
      }
    }

    ctx.patch_offset = c * per_channel;
    sweep_pixels(ctx, workers, draws_per_pixel, rng_, scratch_, pool_.get());
    stats.patches_streamed += pixels;
    if (bw > 0.0) stats.noise_draws += pixels * draws_per_pixel;
  }

  // Undo scaling and add biases once all channel passes have accumulated.
  for (std::size_t k = 0; k < K; ++k) {
    const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
    for (std::size_t oy = 0; oy < side; ++oy)
      for (std::size_t ox = 0; ox < side; ++ox)
        out.at(0, k, oy, ox) = out.at(0, k, oy, ox) * recover + b;
  }

  for (const auto& group : banks)
    for (const auto& bank : group)
      stats.total_heater_power += bank.total_heater_power();

  for (const EngineScratch::Worker& w : scratch_.workers) {
    stats.optical_passes += w.optical_passes;
    stats.adc_conversions += w.adc_conversions;
  }

  if (cal_err.count > 0) {
    stats.mean_calibration_error = cal_err.sum / static_cast<double>(cal_err.count);
    stats.max_calibration_error = cal_err.max;
  }
  return out;
}

nn::Tensor OpticalConvEngine::fully_connected(const nn::Tensor& input,
                                              const nn::Tensor& weights,
                                              const nn::Tensor& bias,
                                              EngineStats* stats) {
  const std::size_t in = input.size();
  const std::size_t out_n = weights.shape().n;
  PCNNA_CHECK_MSG(weights.shape().c == in && weights.shape().h == 1 &&
                      weights.shape().w == 1,
                  "FC weights must be [out, in, 1, 1] with in == input size");
  PCNNA_CHECK_MSG(input.min() >= 0.0,
                  "photonic amplitude encoding requires non-negative inputs");
  if (!bias.empty()) PCNNA_CHECK(bias.size() == out_n);

  EngineStats local;
  EngineStats& st = stats ? *stats : local;
  st = EngineStats{};
  st.locations = 1;
  st.recalibrations = 1;

  nn::Tensor out(nn::Shape4{1, out_n, 1, 1});
  const double x_scale = input.abs_max();
  const double w_absmax = weights.abs_max();
  if (x_scale == 0.0 || w_absmax == 0.0) {
    for (std::size_t o = 0; o < out_n; ++o)
      out[o] = bias.empty() ? 0.0 : bias[o];
    return out;
  }

  const AnalogChain chain = make_chain(config_, out_n);
  const phot::LaserDiode laser(config_.laser);
  const phot::MachZehnderModulator mzm(config_.mzm);
  const phot::BalancedPhotodiode pd(config_.bank.photodiode);
  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  elec::AdcConfig adc_cfg = config_.adc;
  adc_cfg.full_scale = 1.0;
  const elec::Adc adc(adc_cfg);

  const std::size_t group_size =
      std::min<std::size_t>(config_.max_wavelengths, in);
  const double usable = measured_usable_range(config_, group_size, rng_);
  PCNNA_CHECK_MSG(usable > 0.0, "weight bank has no usable signed range");
  const double denom = 0.95 * usable;
  const double recover = x_scale * w_absmax / denom;
  st.wavelengths_used = group_size;
  st.weight_dac_conversions = weights.size();
  st.dac_conversions = in;
  st.rings_used = out_n * in;

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  const double mean_w_sq =
      mean_square_scaled(weights.data(), w_absmax) * denom * denom;
  const double mean_x_sq = mean_square_scaled(input.data(), x_scale);
  const double adc_fs =
      adc_full_scale(config_.adc_headroom, in, mean_x_sq, mean_w_sq);

  CalibrationError cal_err;
  std::vector<double> acc(out_n, 0.0);
  std::vector<double> powers;
  for (std::size_t begin = 0; begin < in; begin += group_size) {
    const std::size_t end = std::min(begin + group_size, in);
    const std::size_t width = end - begin;
    const phot::WdmGrid grid(width);

    // Modulate this input slice once; all banks share the broadcast bundle.
    powers.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      double x = input[begin + i] / x_scale;
      if (config_.enable_quantization) x = input_dac.convert(x);
      powers[i] = mzm.modulate(laser.emit(bw, rng_) * chain.bcast, x);
    }

    for (std::size_t o = 0; o < out_n; ++o) {
      phot::WeightBank bank(grid, config_.bank, rng_);
      inject_stuck_faults(config_, bank, rng_, st);
      std::vector<double> targets(width);
      for (std::size_t i = 0; i < width; ++i) {
        double w = weights[o * in + begin + i] / w_absmax * denom;
        if (config_.enable_quantization) w = quantize_weight(weight_dac, w);
        targets[i] = w;
      }
      const std::vector<double> achieved = bank.calibrate(targets);
      for (std::size_t i = 0; i < width; ++i)
        cal_err.add(std::abs(achieved[i] - targets[i]));
      ++st.banks_built;
      st.total_heater_power += bank.total_heater_power();
      st.total_ring_area += bank.total_area();

      const auto splits = bank.channel_splits();
      double p_drop = 0.0, p_thru = 0.0, base = 0.0;
      for (std::size_t i = 0; i < width; ++i) {
        p_drop += powers[i] * splits[i].drop;
        p_thru += powers[i] * splits[i].thru;
        base += chain.dark_power * (splits[i].drop - splits[i].thru);
      }
      const double current = pd.detect(p_drop, p_thru, bw, rng_);
      acc[o] += (current - chain.resp * base) / chain.denom_current;
    }
    ++st.optical_passes;
  }

  for (std::size_t o = 0; o < out_n; ++o) {
    double v = acc[o];
    if (config_.enable_quantization) v = adc.convert(v / adc_fs) * adc_fs;
    ++st.adc_conversions;
    out[o] = v * recover + (bias.empty() ? 0.0 : bias[o]);
  }

  if (cal_err.count > 0) {
    st.mean_calibration_error = cal_err.sum / static_cast<double>(cal_err.count);
    st.max_calibration_error = cal_err.max;
  }
  return out;
}

} // namespace pcnna::core
