#include "core/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "electronics/sram.hpp"

namespace pcnna::core {

Scheduler::Scheduler(PcnnaConfig config) : config_(std::move(config)) {
  config_.validate();
}

LayerPlan Scheduler::plan(const nn::ConvLayerParams& layer) const {
  layer.validate();

  LayerPlan plan;
  plan.layer = layer;
  plan.allocation = config_.allocation;
  plan.locations = layer.num_locations();

  const std::uint64_t n_kernel = layer.kernel_size();
  const std::uint64_t fresh_per_loc =
      std::min<std::uint64_t>(layer.updated_inputs_per_location(), n_kernel);

  if (config_.allocation == RingAllocation::kFullKernel) {
    // Every receptive-field value has a dedicated ring in every kernel's
    // bank (Eq. 5); wider-than-WDM receptive fields are segmented into
    // sequential passes whose balanced-photodiode currents wire-sum.
    plan.group_size = std::min<std::uint64_t>(config_.max_wavelengths, n_kernel);
    for (std::uint64_t begin = 0; begin < n_kernel; begin += plan.group_size) {
      plan.groups.push_back(
          GroupSlice{begin, std::min(begin + plan.group_size, n_kernel)});
    }
    plan.rings_total = layer.K * n_kernel;
    plan.recalibrations = 1;
    plan.cycles_per_location = plan.groups.size();
    plan.sram_words = n_kernel;
    plan.dram_read_words = layer.input_size() + layer.weight_count();
    plan.dram_write_words = layer.output_size();
    plan.input_dac_conversions =
        n_kernel + (plan.locations - 1) * fresh_per_loc;
    plan.weight_dac_conversions = layer.weight_count();
    // Segment currents wire-sum in analog, so one ADC sample per kernel per
    // location.
    plan.adc_conversions = plan.locations * layer.K;
  } else {
    // Per-channel allocation (the paper's conv4 worked number): banks hold
    // only m*m rings per kernel; input channels are processed in sequential
    // passes with electronic partial-sum accumulation, and rings are
    // retuned between passes.
    const std::uint64_t per_channel = layer.m * layer.m;
    plan.group_size =
        std::min<std::uint64_t>(config_.max_wavelengths, per_channel);
    for (std::uint64_t begin = 0; begin < per_channel;
         begin += plan.group_size) {
      plan.groups.push_back(
          GroupSlice{begin, std::min(begin + plan.group_size, per_channel)});
    }
    plan.rings_total = layer.K * per_channel;
    plan.recalibrations = layer.nc;
    plan.cycles_per_location = layer.nc * plan.groups.size();
    plan.sram_words = per_channel;
    // Partial sums for (locations x K) outputs are accumulated across nc
    // passes; all but the last pass round-trip them through DRAM.
    const std::uint64_t partial_roundtrips =
        plan.locations * layer.K * (layer.nc - 1);
    plan.dram_read_words =
        layer.input_size() + layer.weight_count() + partial_roundtrips;
    plan.dram_write_words = layer.output_size() + partial_roundtrips;
    // Fresh inputs per location within one channel pass: m*s values (one
    // channel only); first location of each pass loads the full m*m window.
    const std::uint64_t fresh_one_channel =
        std::min<std::uint64_t>(layer.m * layer.s, per_channel);
    plan.input_dac_conversions =
        layer.nc * (per_channel + (plan.locations - 1) * fresh_one_channel);
    // Every weight is programmed once per layer, spread over nc retunings.
    plan.weight_dac_conversions = layer.weight_count();
    plan.adc_conversions = plan.locations * layer.K * layer.nc;
  }

  // The live working set must fit the input cache.
  const elec::Sram sram(config_.sram);
  PCNNA_CHECK_MSG(plan.sram_words <= sram.capacity_words(),
                  "layer '" << layer.name << "': working set of "
                            << plan.sram_words << " words exceeds SRAM ("
                            << sram.capacity_words() << " words)");
  return plan;
}

std::vector<LayerPlan> Scheduler::plan_network(
    const std::vector<nn::ConvLayerParams>& layers) const {
  std::vector<LayerPlan> plans;
  plans.reserve(layers.size());
  for (const nn::ConvLayerParams& layer : layers) plans.push_back(plan(layer));
  return plans;
}

} // namespace pcnna::core
